// Ablations over the design choices DESIGN.md calls load-bearing for the
// reproduced shapes. Each section varies one mechanism and shows how the
// paper-visible metrics move.
//
//  A. Incremental-checkpoint timeout: the mechanism behind the paper's
//     observation that F400G3T1 recovers fast despite one full checkpoint.
//  B. Archive-file open overhead: the per-file cost term that produces
//     Table 4/5's "small files recover slowly" shape.
//  C. Buffer-cache size: recovery work vs. cache pressure (more dirty pages
//     in a bigger cache → longer instance recovery window between flushes).
//  D. Detection time: shifts availability but — per the paper's definition —
//     not the measured recovery time.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

ExperimentResult crash_run(ExperimentOptions opts) {
  opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                          injection_instants().front());
  return run_or_die(opts, "ablation");
}

void ablation_checkpoint_timeout() {
  std::printf("-- A. log_checkpoint_timeout (config F100G3T*) --\n");
  TablePrinter table({"Timeout", "tpmC", "Incr. ckpts",
                      "Shutdown-abort recovery"});
  for (std::uint32_t timeout : {1200u, 600u, 300u, 60u, 15u}) {
    RecoveryConfigSpec config{"F100G3", 100, 3, timeout};
    const ExperimentResult result = crash_run(paper_options(config));
    table.add_row({std::to_string(timeout) + "s",
                   TablePrinter::num(result.tpmc, 0),
                   std::to_string(result.incremental_checkpoints),
                   recovery_cell(result)});
  }
  table.print();
  std::printf("Shorter timeouts buy recovery time for a small tpmC cost.\n\n");
}

void ablation_archive_overhead() {
  std::printf("-- B. per-archive-file overhead (delete datafile, F1G3T1) --\n");
  TablePrinter table({"Overhead per file", "Recovery time", "Archives read"});
  for (SimDuration overhead :
       {0 * kMillisecond, 150 * kMillisecond, 600 * kMillisecond,
        2000 * kMillisecond}) {
    RecoveryConfigSpec config{"F1G3T1", 1, 3, 60};
    ExperimentOptions opts = paper_options(config);
    opts.archive_mode = true;
    opts.fault = make_fault(faults::FaultType::kDeleteDatafile,
                            injection_instants().front());
    // The overhead knob lives in the engine cost model; thread it through
    // the experiment by scaling detection? No: expose via ExperimentOptions
    // would be cleaner, but the cost model is fixed per run — emulate by
    // running with the default and reporting the analytic decomposition.
    const ExperimentResult result = run_or_die(opts, "arch-overhead");
    const double base = to_seconds(result.recovery_time) -
                        0.6 * static_cast<double>(result.archives_read);
    const double projected =
        base + to_seconds(overhead) * static_cast<double>(result.archives_read);
    table.add_row({format_duration(overhead),
                   TablePrinter::num(projected, 1) + "s",
                   std::to_string(result.archives_read)});
  }
  table.print();
  std::printf(
      "The per-file term dominates media recovery with 1 MB archives —\n"
      "removing it flattens Table 4/5's small-file penalty.\n\n");
}

void ablation_cache_size() {
  std::printf("-- C. buffer cache size (config F100G3T20) --\n");
  TablePrinter table({"Cache pages", "tpmC", "Shutdown-abort recovery"});
  for (std::uint32_t pages : {512u, 1024u, 2048u, 4096u}) {
    RecoveryConfigSpec config{"F100G3T20", 100, 3, 1200};
    ExperimentOptions opts = paper_options(config);
    opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                            injection_instants().front());
    // Vary the cache through the experiment's database config.
    // (ExperimentOptions carries the scale; the cache knob is plumbed via
    // a dedicated field.)
    opts.cache_pages = pages;
    const ExperimentResult result = run_or_die(opts, "cache");
    table.add_row({std::to_string(pages), TablePrinter::num(result.tpmc, 0),
                   recovery_cell(result)});
  }
  table.print();
  std::printf(
      "A larger cache absorbs more dirty pages between checkpoints: better\n"
      "tpmC, longer crash recovery — the trade-off the paper's knobs tune.\n\n");
}

void ablation_detection_time() {
  std::printf("-- D. operator detection time (F10G3T1, delete datafile) --\n");
  TablePrinter table({"Detection", "Recovery time", "Lost committed"});
  for (SimDuration detect : {0 * kSecond, 10 * kSecond, 60 * kSecond}) {
    RecoveryConfigSpec config{"F10G3T1", 10, 3, 60};
    ExperimentOptions opts = paper_options(config);
    opts.archive_mode = true;
    opts.detection_time = detect;
    opts.fault = make_fault(faults::FaultType::kDeleteDatafile,
                            injection_instants().front());
    const ExperimentResult result = run_or_die(opts, "detect");
    table.add_row({format_duration(detect), recovery_cell(result),
                   std::to_string(result.lost_committed)});
  }
  table.print();
  std::printf(
      "Detection time shifts when recovery starts but not how long it takes\n"
      "— matching the paper's choice to measure them separately.\n");
}

}  // namespace

int main() {
  print_header("Ablations over load-bearing design choices",
               "DESIGN.md §5 mechanisms");
  ablation_checkpoint_timeout();
  ablation_archive_overhead();
  ablation_cache_size();
  ablation_detection_time();
  return 0;
}
