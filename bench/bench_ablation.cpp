// Ablations over the design choices DESIGN.md calls load-bearing for the
// reproduced shapes. Each section varies one mechanism and shows how the
// paper-visible metrics move.
//
//  A. Incremental-checkpoint timeout: the mechanism behind the paper's
//     observation that F400G3T1 recovers fast despite one full checkpoint.
//  B. Archive-file open overhead: the per-file cost term that produces
//     Table 4/5's "small files recover slowly" shape.
//  C. Buffer-cache size: recovery work vs. cache pressure (more dirty pages
//     in a bigger cache → longer instance recovery window between flushes).
//  D. Detection time: shifts availability but — per the paper's definition —
//     not the measured recovery time.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

ExperimentOptions crash_options(ExperimentOptions opts) {
  opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                          injection_instants().front());
  return opts;
}

const std::uint32_t kTimeouts[] = {1200u, 600u, 300u, 60u, 15u};
const SimDuration kArchiveOverheads[] = {0 * kMillisecond, 150 * kMillisecond,
                                         600 * kMillisecond,
                                         2000 * kMillisecond};
const std::uint32_t kCachePages[] = {512u, 1024u, 2048u, 4096u};
const SimDuration kDetectionTimes[] = {0 * kSecond, 10 * kSecond,
                                       60 * kSecond};

std::vector<std::size_t> enqueue_checkpoint_timeout(BenchRun& run) {
  std::vector<std::size_t> handles;
  for (std::uint32_t timeout : kTimeouts) {
    RecoveryConfigSpec config{"F100G3", 100, 3, timeout};
    handles.push_back(run.add("timeout-" + std::to_string(timeout),
                              crash_options(paper_options(config))));
  }
  return handles;
}

void print_checkpoint_timeout(BenchRun& run,
                              const std::vector<std::size_t>& handles) {
  std::printf("-- A. log_checkpoint_timeout (config F100G3T*) --\n");
  TablePrinter table({"Timeout", "tpmC", "Incr. ckpts",
                      "Shutdown-abort recovery"});
  std::size_t next = 0;
  for (std::uint32_t timeout : kTimeouts) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({std::to_string(timeout) + "s",
                   TablePrinter::num(result.tpmc, 0),
                   std::to_string(result.incremental_checkpoints),
                   recovery_cell(result)});
  }
  table.print();
  std::printf("Shorter timeouts buy recovery time for a small tpmC cost.\n\n");
}

std::size_t enqueue_archive_overhead(BenchRun& run) {
  RecoveryConfigSpec config{"F1G3T1", 1, 3, 60};
  ExperimentOptions opts = paper_options(config);
  opts.archive_mode = true;
  opts.fault = make_fault(faults::FaultType::kDeleteDatafile,
                          injection_instants().front());
  return run.add("arch-overhead", std::move(opts));
}

void print_archive_overhead(BenchRun& run, std::size_t handle) {
  std::printf("-- B. per-archive-file overhead (delete datafile, F1G3T1) --\n");
  TablePrinter table({"Overhead per file", "Recovery time", "Archives read"});
  // The overhead knob lives in the engine cost model, fixed per run; one
  // measured run anchors the analytic decomposition across the knob values.
  const ExperimentResult& result = run.get(handle);
  for (SimDuration overhead : kArchiveOverheads) {
    const double base = to_seconds(result.recovery_time) -
                        0.6 * static_cast<double>(result.archives_read);
    const double projected =
        base + to_seconds(overhead) * static_cast<double>(result.archives_read);
    table.add_row({format_duration(overhead),
                   TablePrinter::num(projected, 1) + "s",
                   std::to_string(result.archives_read)});
  }
  table.print();
  std::printf(
      "The per-file term dominates media recovery with 1 MB archives —\n"
      "removing it flattens Table 4/5's small-file penalty.\n\n");
}

std::vector<std::size_t> enqueue_cache_size(BenchRun& run) {
  std::vector<std::size_t> handles;
  for (std::uint32_t pages : kCachePages) {
    RecoveryConfigSpec config{"F100G3T20", 100, 3, 1200};
    ExperimentOptions opts = crash_options(paper_options(config));
    opts.cache_pages = pages;
    handles.push_back(run.add("cache-" + std::to_string(pages),
                              std::move(opts)));
  }
  return handles;
}

void print_cache_size(BenchRun& run, const std::vector<std::size_t>& handles) {
  std::printf("-- C. buffer cache size (config F100G3T20) --\n");
  TablePrinter table({"Cache pages", "tpmC", "Shutdown-abort recovery"});
  std::size_t next = 0;
  for (std::uint32_t pages : kCachePages) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({std::to_string(pages), TablePrinter::num(result.tpmc, 0),
                   recovery_cell(result)});
  }
  table.print();
  std::printf(
      "A larger cache absorbs more dirty pages between checkpoints: better\n"
      "tpmC, longer crash recovery — the trade-off the paper's knobs tune.\n\n");
}

std::vector<std::size_t> enqueue_detection_time(BenchRun& run) {
  std::vector<std::size_t> handles;
  for (SimDuration detect : kDetectionTimes) {
    RecoveryConfigSpec config{"F10G3T1", 10, 3, 60};
    ExperimentOptions opts = paper_options(config);
    opts.archive_mode = true;
    opts.detection_time = detect;
    opts.fault = make_fault(faults::FaultType::kDeleteDatafile,
                            injection_instants().front());
    handles.push_back(run.add("detect-" + format_duration(detect),
                              std::move(opts)));
  }
  return handles;
}

void print_detection_time(BenchRun& run,
                          const std::vector<std::size_t>& handles) {
  std::printf("-- D. operator detection time (F10G3T1, delete datafile) --\n");
  TablePrinter table({"Detection", "Recovery time", "Lost committed"});
  std::size_t next = 0;
  for (SimDuration detect : kDetectionTimes) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({format_duration(detect), recovery_cell(result),
                   std::to_string(result.lost_committed)});
  }
  table.print();
  std::printf(
      "Detection time shifts when recovery starts but not how long it takes\n"
      "— matching the paper's choice to measure them separately.\n");
}

}  // namespace

int main() {
  print_header("Ablations over load-bearing design choices",
               "DESIGN.md §5 mechanisms");
  BenchRun run("ablation");
  const auto timeout_handles = enqueue_checkpoint_timeout(run);
  const auto overhead_handle = enqueue_archive_overhead(run);
  const auto cache_handles = enqueue_cache_size(run);
  const auto detect_handles = enqueue_detection_time(run);
  print_checkpoint_timeout(run, timeout_handles);
  print_archive_overhead(run, overhead_handle);
  print_cache_size(run, cache_handles);
  print_detection_time(run, detect_handles);
  run.finish();
  return 0;
}
