// Concurrency-control study (extension): the TPC-C workload driven through
// the multi-threaded transaction coordinator, protocol x workers x
// {fault-free, crash}.
//
// Expected shapes:
//  - workers=1 is byte-identical to the serial driver for both protocols
//    (the coordinator is not engaged at all) — checked here, hard-failing
//    the bench on any divergence;
//  - fault-free throughput scales with workers (N workers model N
//    processors sharing the simulated devices), with the protocols paying
//    their characteristic penalty: 2PL blocks (enq_lock_wait), OCC aborts
//    and resubmits (occ_validate_fail);
//  - a SHUTDOWN ABORT mid-run recovers with zero integrity violations at
//    any worker count: per-worker redo staged into the shared arena keeps
//    the commit order the replay depends on.
#include <algorithm>
#include <cstdlib>

#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

SimDuration crash_inject_at() {
  return quick_mode() ? 150 * kSecond : 300 * kSecond;
}

std::vector<unsigned> worker_counts() {
  std::vector<unsigned> counts = {1, 2, 4};
  // VDB_CC_WORKERS=N widens the sweep (the cc-stress CI job runs 8).
  if (const char* env = std::getenv("VDB_CC_WORKERS")) {
    const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (n > 1 && std::find(counts.begin(), counts.end(), n) == counts.end()) {
      counts.push_back(n);
    }
  }
  return counts;
}

constexpr txn::CcProtocol kProtocols[] = {txn::CcProtocol::k2pl,
                                          txn::CcProtocol::kOcc};

}  // namespace

int main() {
  print_header("Concurrency control: protocol x workers x {fault-free, crash}",
               "extension of Vieira & Madeira, DSN 2002 (recovery under "
               "concurrent load)");

  const RecoveryConfigSpec* config = find_config("F40G3T10");
  VDB_CHECK(config != nullptr);
  const std::vector<unsigned> counts = worker_counts();

  BenchRun run("cc");
  const std::size_t serial = run.add("serial-baseline", paper_options(*config));
  struct Cell {
    txn::CcProtocol protocol;
    unsigned workers;
    bool crash;
    std::size_t handle;
  };
  std::vector<Cell> cells;
  for (const txn::CcProtocol protocol : kProtocols) {
    for (const unsigned workers : counts) {
      for (const bool crash : {false, true}) {
        ExperimentOptions opts = paper_options(*config);
        opts.workers = workers;
        opts.cc_protocol = protocol;
        if (crash) {
          opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                                  crash_inject_at());
        }
        const std::string label = std::string(txn::to_string(protocol)) +
                                  "-w" + std::to_string(workers) +
                                  (crash ? "-crash" : "");
        cells.push_back({protocol, workers, crash,
                         run.add(label, std::move(opts))});
      }
    }
  }

  const ExperimentResult& base = run.get(serial);

  TablePrinter table({"Protocol", "Workers", "Fault", "tpmC", "Committed",
                      "Aborts", "Retries", "WaitDie", "OccFail", "Recovery",
                      "Lost", "Violations"});
  table.add_row({"serial", "1", "-", TablePrinter::num(base.tpmc, 1),
                 std::to_string(base.committed), "0", "0", "0", "0", "-", "-",
                 std::to_string(base.integrity_violations)});
  bool identity_ok = true;
  for (const Cell& cell : cells) {
    const ExperimentResult& r = run.get(cell.handle);
    table.add_row({txn::to_string(cell.protocol),
                   std::to_string(cell.workers),
                   cell.crash ? "crash" : "-", TablePrinter::num(r.tpmc, 1),
                   std::to_string(r.committed), std::to_string(r.cc_aborts),
                   std::to_string(r.cc_retries),
                   std::to_string(r.wait_die_aborts),
                   std::to_string(r.occ_validate_fails), recovery_cell(r),
                   r.fault_injected ? std::to_string(r.lost_committed) : "-",
                   std::to_string(r.integrity_violations)});
    // The acceptance gate: workers=1 never engages the coordinator, so the
    // fault-free runs must replay the serial baseline bit for bit.
    if (cell.workers == 1 && !cell.crash) {
      if (r.committed != base.committed || r.tpmc != base.tpmc ||
          r.redo_bytes != base.redo_bytes || r.cc_aborts != 0) {
        identity_ok = false;
        std::fprintf(stderr,
                     "FATAL: %s-w1 diverged from the serial baseline "
                     "(committed %llu vs %llu, redo %llu vs %llu)\n",
                     txn::to_string(cell.protocol),
                     static_cast<unsigned long long>(r.committed),
                     static_cast<unsigned long long>(base.committed),
                     static_cast<unsigned long long>(r.redo_bytes),
                     static_cast<unsigned long long>(base.redo_bytes));
      }
    }
  }
  table.print();

  std::printf(
      "\nShape checks: workers=1 rows equal the serial baseline exactly\n"
      "(%s); fault-free throughput grows with workers; crash rows recover\n"
      "with zero integrity violations and zero lost transactions.\n",
      identity_ok ? "PASS" : "FAIL");
  run.finish();
  return identity_ok ? 0 : 1;
}
