// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper's §5. Runs use
// the paper's experimental parameters (20-minute workload, faults injected
// at 150/300/600 s, fixed detection time). Set VDB_QUICK=1 to shrink runs
// (shorter duration, one injection instant) while iterating, and VDB_JOBS=N
// to bound the worker pool (default: all cores).
//
// The binaries are written enqueue-then-collect: phase one walks the
// experiment matrix calling BenchRun::add, phase two collects results in
// submission order and renders the table. The fan-out happens on
// ExperimentRunner's thread pool; because collection order equals
// submission order, the rendered output is byte-identical whatever
// VDB_JOBS is.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "benchmark/experiment.hpp"
#include "benchmark/recovery_configs.hpp"
#include "benchmark/runner.hpp"
#include "common/table_printer.hpp"

namespace vdb::bench {

inline bool quick_mode() { return std::getenv("VDB_QUICK") != nullptr; }

inline SimDuration bench_duration() {
  return quick_mode() ? 6 * kMinute : 20 * kMinute;
}

inline std::vector<SimDuration> injection_instants() {
  if (quick_mode()) return {150 * kSecond};
  return {150 * kSecond, 300 * kSecond, 600 * kSecond};
}

inline ExperimentOptions paper_options(const RecoveryConfigSpec& config) {
  ExperimentOptions opts;
  opts.config = config;
  opts.duration = bench_duration();
  opts.seed = 20020623;  // DSN 2002
  // VDB_RESTART_MODE=m1|m2|m3|m4 (or the long names) runs the whole bench
  // under that instance-restart scheme — the smoke hook for the restart-
  // mode study without touching each binary's matrix.
  if (const char* env = std::getenv("VDB_RESTART_MODE")) {
    engine::RestartMode mode;
    if (engine::parse_restart_mode(env, &mode)) {
      opts.restart_mode = mode;
    } else {
      std::fprintf(stderr, "warning: bad VDB_RESTART_MODE '%s' ignored\n",
                   env);
    }
  }
  return opts;
}

inline faults::FaultSpec make_fault(faults::FaultType type,
                                    SimDuration inject_at) {
  faults::FaultSpec spec;
  spec.type = type;
  spec.inject_at = inject_at;
  spec.tablespace = "TPCC";
  spec.table = "history";
  spec.datafile_index = 0;
  return spec;
}

/// "317.0s" or ">590s" for runs where service did not return in the window.
inline std::string recovery_cell(const ExperimentResult& result) {
  if (!result.fault_injected) return "-";
  if (!result.recovered) {
    return ">" + std::to_string(static_cast<unsigned>(
                     to_seconds(result.recovery_time))) + "s";
  }
  return TablePrinter::num(to_seconds(result.recovery_time), 1) + "s";
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("\n=== %s ===\n", what);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Mode: %s (set VDB_QUICK=1 for a fast pass)\n\n",
              quick_mode() ? "QUICK" : "full (paper parameters)");
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace detail

/// Fan-out harness shared by the bench binaries: enqueue the whole matrix,
/// execute it on the runner's pool, collect in submission order. Also owns
/// the end-of-bench wall-clock summary and the machine-readable
/// results/bench_<name>.json used to track the perf trajectory across PRs.
class BenchRun {
 public:
  explicit BenchRun(std::string name) : name_(std::move(name)) {}

  /// Phase one: enqueue an experiment, returning the handle collect uses.
  std::size_t add(std::string label, ExperimentOptions opts) {
    VDB_CHECK_MSG(!executed_, "BenchRun::add after execute");
    queue_.push_back({std::move(label), std::move(opts)});
    return queue_.size() - 1;
  }

  /// Runs everything queued; idempotent so collection can trigger it.
  void execute() {
    if (executed_) return;
    executed_ = true;
    outcomes_ = runner_.run_all(queue_);
  }

  /// Phase two: the result for `handle`, aborting the bench loudly if the
  /// *harness* failed (faults under test are reported inside the result).
  const ExperimentResult& get(std::size_t handle) {
    execute();
    VDB_CHECK(handle < outcomes_.size());
    ExperimentOutcome& outcome = outcomes_[handle];
    if (!outcome.result.is_ok()) {
      std::fprintf(stderr, "FATAL: experiment '%s' failed: %s\n",
                   outcome.label.c_str(),
                   outcome.result.status().to_string().c_str());
      std::exit(1);
    }
    const ExperimentResult& result = outcome.result.value();
    for (const std::string& msg : result.integrity_messages) {
      std::fprintf(stderr, "[integrity] %s\n", msg.c_str());
    }
    return result;
  }

  /// Timing footer + JSON drop. Call once, after the tables are printed.
  void finish() {
    execute();
    const RunnerTiming& t = runner_.last_timing();
    std::printf("\n--- wall clock ---\n");
    std::printf("experiments: %zu  jobs: %u (VDB_JOBS)\n", t.experiments,
                t.jobs);
    std::printf(
        "wall %.2fs  serial-equivalent %.2fs  speedup %.2fx  "
        "slowest run %.2fs\n",
        t.wall_seconds, t.busy_seconds, t.speedup(),
        t.max_experiment_seconds);
    const std::string path = write_json();
    if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string write_json() {
    const RunnerTiming& t = runner_.last_timing();
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    const std::string path = "results/bench_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return {};
    }
    using detail::json_escape;
    using detail::json_num;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(name_).c_str());
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick_mode() ? "quick" : "full");
    std::fprintf(f, "  \"jobs\": %u,\n", t.jobs);
    std::fprintf(f, "  \"experiments\": %zu,\n", t.experiments);
    std::fprintf(f, "  \"wall_seconds\": %s,\n",
                 json_num(t.wall_seconds).c_str());
    std::fprintf(f, "  \"busy_seconds\": %s,\n",
                 json_num(t.busy_seconds).c_str());
    std::fprintf(f, "  \"speedup\": %s,\n", json_num(t.speedup()).c_str());
    std::fprintf(f, "  \"max_experiment_seconds\": %s,\n",
                 json_num(t.max_experiment_seconds).c_str());
    std::fprintf(f, "  \"runs\": [");
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
      const ExperimentOutcome& o = outcomes_[i];
      std::fprintf(f, "%s\n    {\"label\": \"%s\", \"wall_seconds\": %s, ",
                   i == 0 ? "" : ",", json_escape(o.label).c_str(),
                   json_num(o.wall_seconds).c_str());
      if (!o.result.is_ok()) {
        std::fprintf(f, "\"ok\": false, \"error\": \"%s\"}",
                     json_escape(o.result.status().to_string()).c_str());
        continue;
      }
      const ExperimentResult& r = o.result.value();
      std::fprintf(
          f,
          "\"ok\": true, \"tpmc\": %s, \"committed\": %llu, "
          "\"full_checkpoints\": %llu, \"incremental_checkpoints\": %llu, "
          "\"redo_bytes\": %llu, \"fault_injected\": %s, \"recovered\": %s, "
          "\"recovery_seconds\": %s, \"lost_committed\": %llu, "
          "\"integrity_violations\": %u, \"io_retries\": %llu, "
          "\"io_retry_exhausted\": %llu, \"bad_blocks_found\": %llu, "
          "\"blocks_repaired\": %llu, ",
          json_num(r.tpmc).c_str(),
          static_cast<unsigned long long>(r.committed),
          static_cast<unsigned long long>(r.full_checkpoints),
          static_cast<unsigned long long>(r.incremental_checkpoints),
          static_cast<unsigned long long>(r.redo_bytes),
          r.fault_injected ? "true" : "false",
          r.recovered ? "true" : "false",
          json_num(to_seconds(r.recovery_time)).c_str(),
          static_cast<unsigned long long>(r.lost_committed),
          r.integrity_violations,
          static_cast<unsigned long long>(r.io_retries),
          static_cast<unsigned long long>(r.io_retry_exhausted),
          static_cast<unsigned long long>(r.bad_blocks_found),
          static_cast<unsigned long long>(r.blocks_repaired));
      // Restart-mode study fields: every row carries the configured mode
      // plus the open / first-commit split of the recovery time (both zero
      // when no fault was injected or the run never recovered early).
      std::fprintf(f,
                   "\"restart_mode\": \"%s\", \"open_time_us\": %llu, "
                   "\"first_commit_us\": %llu, \"recovery_retries\": %llu, ",
                   json_escape(r.restart_mode).c_str(),
                   static_cast<unsigned long long>(r.open_time),
                   static_cast<unsigned long long>(r.first_commit_time),
                   static_cast<unsigned long long>(r.recovery_retries));
      // Concurrency-control fields: protocol, worker count, and the
      // protocol's abort/retry behaviour (all zeros for the serial driver).
      std::fprintf(
          f,
          "\"cc_protocol\": \"%s\", \"workers\": %u, \"aborts\": %llu, "
          "\"retries\": %llu, \"wait_die_aborts\": %llu, "
          "\"occ_validate_fails\": %llu, \"cc_lock_waits\": %llu, ",
          json_escape(r.cc_protocol).c_str(), r.workers,
          static_cast<unsigned long long>(r.cc_aborts),
          static_cast<unsigned long long>(r.cc_retries),
          static_cast<unsigned long long>(r.wait_die_aborts),
          static_cast<unsigned long long>(r.occ_validate_fails),
          static_cast<unsigned long long>(r.cc_lock_waits));
      // Per-phase recovery decomposition (simulated microseconds — spans
      // tile the trace, so the non-detection values sum exactly to
      // recovery_seconds) and the full V$-style statistics snapshot.
      std::fprintf(f, "\"recovery_phase_us\": {");
      for (std::size_t k = 0; k < r.recovery_phases.size(); ++k) {
        std::fprintf(f, "%s\"%s\": %llu", k == 0 ? "" : ", ",
                     json_escape(r.recovery_phases[k].first).c_str(),
                     static_cast<unsigned long long>(
                         r.recovery_phases[k].second));
      }
      std::fprintf(f, "}, \"metrics\": %s}",
                   r.metrics.to_json().c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return path;
  }

  std::string name_;
  ExperimentRunner runner_;
  std::vector<LabelledExperiment> queue_;
  std::vector<ExperimentOutcome> outcomes_;
  bool executed_ = false;
};

}  // namespace vdb::bench
