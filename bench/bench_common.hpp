// Shared helpers for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper's §5. Runs use
// the paper's experimental parameters (20-minute workload, faults injected
// at 150/300/600 s, fixed detection time). Set VDB_QUICK=1 to shrink runs
// (shorter duration, one injection instant) while iterating.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchmark/experiment.hpp"
#include "benchmark/recovery_configs.hpp"
#include "common/table_printer.hpp"

namespace vdb::bench {

inline bool quick_mode() { return std::getenv("VDB_QUICK") != nullptr; }

inline SimDuration bench_duration() {
  return quick_mode() ? 6 * kMinute : 20 * kMinute;
}

inline std::vector<SimDuration> injection_instants() {
  if (quick_mode()) return {150 * kSecond};
  return {150 * kSecond, 300 * kSecond, 600 * kSecond};
}

inline ExperimentOptions paper_options(const RecoveryConfigSpec& config) {
  ExperimentOptions opts;
  opts.config = config;
  opts.duration = bench_duration();
  opts.seed = 20020623;  // DSN 2002
  return opts;
}

inline faults::FaultSpec make_fault(faults::FaultType type,
                                    SimDuration inject_at) {
  faults::FaultSpec spec;
  spec.type = type;
  spec.inject_at = inject_at;
  spec.tablespace = "TPCC";
  spec.table = "history";
  spec.datafile_index = 0;
  return spec;
}

/// Runs one experiment, aborting the bench loudly on harness errors.
inline ExperimentResult run_or_die(const ExperimentOptions& opts,
                                   const char* label) {
  Experiment exp(opts);
  auto result = exp.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "FATAL: experiment '%s' failed: %s\n", label,
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// "317.0s" or ">590s" for runs where service did not return in the window.
inline std::string recovery_cell(const ExperimentResult& result) {
  if (!result.fault_injected) return "-";
  if (!result.recovered) {
    return ">" + std::to_string(static_cast<unsigned>(
                     to_seconds(result.recovery_time))) + "s";
  }
  return TablePrinter::num(to_seconds(result.recovery_time), 1) + "s";
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("\n=== %s ===\n", what);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Mode: %s (set VDB_QUICK=1 for a fast pass)\n\n",
              quick_mode() ? "QUICK" : "full (paper parameters)");
}

}  // namespace vdb::bench
