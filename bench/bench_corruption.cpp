// Storage-fault faultload (extension): silent page corruption, torn page
// writes, and transient I/O errors across the archive-capable recovery
// configurations of Table 3.
//
// These faults are silent at injection time — no error is returned to the
// writer — and surface later through verify-on-read (CRC32C on every fetch
// miss) or the bounded I/O retry budget. Repair is online block media
// recovery (the RMAN BLOCKRECOVER analogue): restore one block from the
// reference backup, roll it forward through the redo chain, datafile kept
// online. Archive mode is required so the roll-forward chain reaches back
// to the backup; the large-file configurations of Table 3 never archive
// within a 20-minute run, which is why the matrix uses archive_configs().
//
// Expected shapes:
//  - silent corruption: detected at the first fetch miss of the damaged
//    block, exactly one bad block found and repaired, zero integrity
//    violations, near-zero lost transactions (repair is online);
//  - torn write at crash: instance recovery + post-recovery block repair
//    from backup; recovery time tracks the config's redo-replay cost;
//  - transient I/O errors: mostly absorbed by the retry budget (visible in
//    the IoRetries column); exhaustion surfaces as failed attempts, never
//    as damage — zero bad blocks, zero violations.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

SimDuration storage_inject_at() {
  return quick_mode() ? 150 * kSecond : 300 * kSecond;
}

faults::ExtendedFaultSpec make_storage_fault(faults::ExtendedFaultType type) {
  faults::ExtendedFaultSpec spec;
  spec.type = type;
  spec.tablespace = "TPCC";
  switch (type) {
    case faults::ExtendedFaultType::kSilentPageCorruption:
      // File 0 block 0 is the warehouse page — hot enough that every
      // transaction references it, so detection is immediate once the
      // cached copy is dropped.
      spec.datafile_index = 0;
      spec.page_block = 0;
      break;
    case faults::ExtendedFaultType::kTornPageWrite:
      // Multi-row pages live in the second file. Keep only the first 64
      // bytes: the new checksum lands on disk but the payload keeps its
      // old bytes — the worst-case tear, guaranteed to be detectable
      // whenever the flushed page changed at all.
      spec.datafile_index = 1;
      spec.torn_keep_bytes = 64;
      break;
    case faults::ExtendedFaultType::kTransientIoErrors:
      spec.datafile_index = 0;
      spec.error_window = 30 * kSecond;
      spec.error_probability = 0.2;
      break;
    default:
      break;
  }
  return spec;
}

struct FaultSection {
  faults::ExtendedFaultType type;
  const char* label;
};

constexpr FaultSection kSections[] = {
    {faults::ExtendedFaultType::kSilentPageCorruption, "silent-corruption"},
    {faults::ExtendedFaultType::kTornPageWrite, "torn-write"},
    {faults::ExtendedFaultType::kTransientIoErrors, "transient-io"},
};

}  // namespace

int main() {
  print_header("Storage faults: detection, online block repair, I/O retry",
               "extension of Vieira & Madeira, DSN 2002 (Table 3 configs)");

  BenchRun run("corruption");
  std::vector<std::vector<std::size_t>> handles;  // [section][config]
  for (const FaultSection& section : kSections) {
    std::vector<std::size_t> row;
    for (const RecoveryConfigSpec& config : archive_configs()) {
      ExperimentOptions opts = paper_options(config);
      opts.archive_mode = true;
      opts.storage_fault = make_storage_fault(section.type);
      opts.storage_inject_at = storage_inject_at();
      row.push_back(run.add(std::string(config.name) + "+" + section.label,
                            std::move(opts)));
    }
    handles.push_back(std::move(row));
  }

  std::size_t section_index = 0;
  for (const FaultSection& section : kSections) {
    std::printf("-- %s --\n", faults::to_string(section.type));
    TablePrinter table({"Config", "Recovery", "Lost", "Violations",
                        "Bad Blocks", "Repaired", "I/O Retries",
                        "Exhausted"});
    std::size_t next = 0;
    for (const RecoveryConfigSpec& config : archive_configs()) {
      const ExperimentResult& result =
          run.get(handles[section_index][next++]);
      table.add_row({config.name, recovery_cell(result),
                     std::to_string(result.lost_committed),
                     std::to_string(result.integrity_violations),
                     std::to_string(result.bad_blocks_found),
                     std::to_string(result.blocks_repaired),
                     std::to_string(result.io_retries),
                     std::to_string(result.io_retry_exhausted)});
    }
    table.print();
    std::printf("\n");
    section_index += 1;
  }

  std::printf(
      "Shape checks: silent corruption and torn writes are found and\n"
      "repaired (Bad Blocks == Repaired) with zero integrity violations;\n"
      "the datafile never goes offline for silent corruption. Transient\n"
      "I/O shows retries absorbing the glitch — no blocks are ever bad.\n");
  run.finish();
  return 0;
}
