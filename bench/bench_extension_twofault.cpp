// EXTENSION: two-fault experiments.
//
// The paper's §4 excludes the "recovery mechanisms administration" fault
// class because "after a first fault affecting the recovery mechanisms we
// would need a second fault of other type to activate the recovery and
// reveal the effects of the first fault." This bench runs exactly those
// campaigns: a latent fault against a recovery mechanism, followed by a
// delete-datafile fault that needs that mechanism.
//
// Expected result: the latent fault is invisible in the workload, then
// turns an easily-recovered fault into a catastrophic one — media recovery
// degrades to restore-to-backup (losing everything since the backup) and
// recovery time balloons.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

ExperimentOptions pair_options(const RecoveryConfigSpec& config,
                               std::optional<faults::ExtendedFaultType> latent) {
  ExperimentOptions opts = paper_options(config);
  opts.archive_mode = true;
  opts.fault = make_fault(faults::FaultType::kDeleteDatafile,
                          injection_instants().back());
  if (latent.has_value()) {
    faults::ExtendedFaultSpec spec;
    spec.type = *latent;
    spec.tablespace = "TPCC";
    opts.latent_fault = spec;
    opts.latent_inject_at = 60 * kSecond;
  }
  return opts;
}

}  // namespace

int main() {
  print_header("EXTENSION: two-fault experiments",
               "the campaign the paper's Section 4 defers");

  const RecoveryConfigSpec config{"F10G3T1", 10, 3, 60};
  TablePrinter table({"Latent fault (at 60s)", "Second fault",
                      "Recovery", "Recovery time", "Lost committed",
                      "Violations"});

  struct Arm {
    const char* label;
    std::optional<faults::ExtendedFaultType> latent;
  };
  const Arm arms[] = {
      {"(none: control)", std::nullopt},
      {"Delete archive log", faults::ExtendedFaultType::kDeleteArchiveLog},
      {"Backups missing", faults::ExtendedFaultType::kDestroyBackups},
  };

  BenchRun run("extension_twofault");
  std::vector<std::size_t> handles;
  for (const Arm& arm : arms) {
    handles.push_back(run.add(arm.label, pair_options(config, arm.latent)));
  }

  std::size_t next = 0;
  for (const Arm& arm : arms) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({arm.label, "Delete datafile",
                   result.recovery_complete ? "complete" : "incomplete",
                   recovery_cell(result),
                   std::to_string(result.lost_committed),
                   std::to_string(result.integrity_violations)});
  }
  table.print();
  std::printf(
      "\nThe control arm recovers completely with zero loss. Each latent\n"
      "fault silently removes a link of the recovery chain: media recovery\n"
      "degrades to restore-to-backup (massive committed-transaction loss)\n"
      "or fails outright — while integrity of whatever IS recovered still\n"
      "holds. This quantifies why the paper calls the recovery-mechanism\n"
      "fault class 'very problematic ... effects are difficult to detect'.\n");
  run.finish();
  return 0;
}
