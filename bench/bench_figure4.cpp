// Figure 4: baseline performance (tpmC) and shutdown-abort recovery time
// for every Table 3 configuration, online redo logs only (§5.1).
//
// Expected shapes:
//  - only configurations with high checkpointing rates pay a clear
//    performance price;
//  - recovery time falls as checkpoint (and dirty-page write-out) rates
//    rise; F400G3T1/F100G3T1 recover fast despite few full checkpoints
//    because the 60 s incremental timeout keeps the dirty set small;
//  - no shutdown abort loses a committed transaction or breaks integrity.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header(
      "Figure 4: performance and recovery time (basic recovery mechanism)",
      "Vieira & Madeira, DSN 2002, Figure 4 / Section 5.1");

  BenchRun run("figure4");
  struct ConfigHandles {
    std::size_t baseline;
    std::vector<std::size_t> crashes;
  };
  std::vector<ConfigHandles> handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    ConfigHandles h;
    h.baseline = run.add(config.name, paper_options(config));
    for (SimDuration at : injection_instants()) {
      ExperimentOptions faulty = paper_options(config);
      faulty.fault = make_fault(faults::FaultType::kShutdownAbort, at);
      h.crashes.push_back(
          run.add(std::string(config.name) + "+crash", std::move(faulty)));
    }
    handles.push_back(std::move(h));
  }

  TablePrinter table({"Config", "tpmC (no fault)", "Recovery time (mean)",
                      "Lost committed", "Integrity violations"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ConfigHandles& h = handles[next++];
    const ExperimentResult& perf = run.get(h.baseline);

    double recovery_sum = 0;
    std::uint64_t lost = 0;
    std::uint32_t violations = 0;
    int recovered = 0;
    for (std::size_t crash : h.crashes) {
      const ExperimentResult& r = run.get(crash);
      if (r.recovered) {
        recovery_sum += to_seconds(r.recovery_time);
        recovered += 1;
      }
      lost += r.lost_committed;
      violations += r.integrity_violations;
    }
    table.add_row({config.name, TablePrinter::num(perf.tpmc, 0),
                   recovered > 0
                       ? TablePrinter::num(recovery_sum / recovered, 1) + "s"
                       : "n/a",
                   std::to_string(lost), std::to_string(violations)});
  }
  table.print();
  std::printf(
      "\nPaper conclusion reproduced when: lost committed = 0 and integrity\n"
      "violations = 0 for every configuration, and recovery time shrinks\n"
      "with checkpoint rate while tpmC only drops for the smallest files.\n");
  run.finish();
  return 0;
}
