// Figure 5: performance with and without archive logs (§5.2).
//
// Expected shape: a moderate, uniform overhead — the paper's argument for
// always running ARCHIVELOG.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Figure 5: performance with and without archive logs",
               "Vieira & Madeira, DSN 2002, Figure 5 / Section 5.2");

  BenchRun run("figure5");
  std::vector<std::pair<std::size_t, std::size_t>> handles;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    ExperimentOptions on = paper_options(config);
    on.archive_mode = true;
    handles.emplace_back(
        run.add(config.name, paper_options(config)),
        run.add(std::string(config.name) + "+archive", std::move(on)));
  }

  TablePrinter table({"Config", "tpmC (no archive)", "tpmC (archive)",
                      "Overhead %", "Archived logs"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    const auto& [off_h, on_h] = handles[next++];
    const ExperimentResult& without = run.get(off_h);
    const ExperimentResult& with = run.get(on_h);

    const double overhead =
        without.tpmc > 0 ? (1.0 - with.tpmc / without.tpmc) * 100.0 : 0;
    table.add_row({config.name, TablePrinter::num(without.tpmc, 0),
                   TablePrinter::num(with.tpmc, 0),
                   TablePrinter::num(overhead, 1),
                   std::to_string(with.log_switches)});
  }
  table.print();
  std::printf(
      "\nPaper conclusion reproduced when the overhead stays moderate (a few\n"
      "percent), i.e. the archive option is never a reason to run without\n"
      "recoverability.\n");
  run.finish();
  return 0;
}
