// Figure 6: performance and recovery time with archive logs vs. a stand-by
// database (§5.3).
//
// Expected shapes:
//  - the stand-by configuration costs a little more than archive-only on
//    the primary (shipping I/O + network), both remain moderate;
//  - fail-over time is short and roughly constant across configurations,
//    far below the media-recovery time of the delete-datafile fault at
//    600 s it is compared with in the paper.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Figure 6: archive logs vs stand-by database",
               "Vieira & Madeira, DSN 2002, Figure 6 / Section 5.3");

  const SimDuration inject_at =
      quick_mode() ? 150 * kSecond : 600 * kSecond;

  BenchRun run("figure6");
  struct ConfigHandles {
    std::size_t archive, standby, failover, media;
  };
  std::vector<ConfigHandles> handles;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    ExperimentOptions archive = paper_options(config);
    archive.archive_mode = true;

    ExperimentOptions standby = paper_options(config);
    standby.with_standby = true;

    // Fail over the stand-by on a primary crash at the late instant.
    ExperimentOptions failover = paper_options(config);
    failover.with_standby = true;
    failover.fault = make_fault(faults::FaultType::kShutdownAbort, inject_at);

    // The comparison case: archive-only media recovery of a deleted
    // datafile at the same instant.
    ExperimentOptions media = paper_options(config);
    media.archive_mode = true;
    media.fault = make_fault(faults::FaultType::kDeleteDatafile, inject_at);

    const std::string name = config.name;
    handles.push_back(
        {run.add(name + "+archive", std::move(archive)),
         run.add(name + "+standby", std::move(standby)),
         run.add(name + "+failover", std::move(failover)),
         run.add(name + "+media", std::move(media))});
  }

  TablePrinter table({"Config", "tpmC archive", "tpmC standby",
                      "Failover time", "Media recovery (del. datafile)"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    const ConfigHandles& h = handles[next++];
    const ExperimentResult& arch_perf = run.get(h.archive);
    const ExperimentResult& sb_perf = run.get(h.standby);
    const ExperimentResult& sb_rec = run.get(h.failover);
    const ExperimentResult& media_rec = run.get(h.media);

    table.add_row({config.name, TablePrinter::num(arch_perf.tpmc, 0),
                   TablePrinter::num(sb_perf.tpmc, 0),
                   recovery_cell(sb_rec), recovery_cell(media_rec)});
  }
  table.print();
  std::printf(
      "\nPaper conclusion reproduced when: standby tpmC is slightly below\n"
      "archive tpmC (both moderate), and failover time is roughly constant\n"
      "and considerably below the delete-datafile media recovery time.\n");
  run.finish();
  return 0;
}
