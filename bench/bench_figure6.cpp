// Figure 6: performance and recovery time with archive logs vs. a stand-by
// database (§5.3).
//
// Expected shapes:
//  - the stand-by configuration costs a little more than archive-only on
//    the primary (shipping I/O + network), both remain moderate;
//  - fail-over time is short and roughly constant across configurations,
//    far below the media-recovery time of the delete-datafile fault at
//    600 s it is compared with in the paper.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Figure 6: archive logs vs stand-by database",
               "Vieira & Madeira, DSN 2002, Figure 6 / Section 5.3");

  const SimDuration inject_at =
      quick_mode() ? 150 * kSecond : 600 * kSecond;

  TablePrinter table({"Config", "tpmC archive", "tpmC standby",
                      "Failover time", "Media recovery (del. datafile)"});
  for (const RecoveryConfigSpec& config : archive_configs()) {
    ExperimentOptions archive = paper_options(config);
    archive.archive_mode = true;
    const ExperimentResult arch_perf = run_or_die(archive, config.name);

    ExperimentOptions standby = paper_options(config);
    standby.with_standby = true;
    const ExperimentResult sb_perf = run_or_die(standby, config.name);

    // Fail over the stand-by on a primary crash at the late instant.
    ExperimentOptions failover = paper_options(config);
    failover.with_standby = true;
    failover.fault = make_fault(faults::FaultType::kShutdownAbort, inject_at);
    const ExperimentResult sb_rec = run_or_die(failover, config.name);

    // The comparison case: archive-only media recovery of a deleted
    // datafile at the same instant.
    ExperimentOptions media = paper_options(config);
    media.archive_mode = true;
    media.fault = make_fault(faults::FaultType::kDeleteDatafile, inject_at);
    const ExperimentResult media_rec = run_or_die(media, config.name);

    table.add_row({config.name, TablePrinter::num(arch_perf.tpmc, 0),
                   TablePrinter::num(sb_perf.tpmc, 0),
                   recovery_cell(sb_rec), recovery_cell(media_rec)});
  }
  table.print();
  std::printf(
      "\nPaper conclusion reproduced when: standby tpmC is slightly below\n"
      "archive tpmC (both moderate), and failover time is roughly constant\n"
      "and considerably below the delete-datafile media recovery time.\n");
  return 0;
}
