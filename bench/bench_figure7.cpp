// Figure 7: committed transactions lost at stand-by fail-over, as a
// function of the online redo file size and group count (§5.3).
//
// The standby only ever sees ARCHIVED redo; whatever sits in the primary's
// current online group when it dies is gone. Expected shape: loss grows
// with the redo file size (a bigger unarchived window), and the group count
// barely matters.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Figure 7: lost transactions in the stand-by database",
               "Vieira & Madeira, DSN 2002, Figure 7 / Section 5.3");

  const SimDuration inject_at =
      quick_mode() ? 150 * kSecond : 600 * kSecond;

  struct Cell {
    std::uint32_t file_mb;
    std::uint32_t groups;
  };
  const std::vector<Cell> grid = {
      {1, 2}, {1, 3}, {1, 6}, {10, 2}, {10, 3},
      {10, 6}, {40, 2}, {40, 3}, {40, 6},
  };

  BenchRun run("figure7");
  std::vector<std::size_t> handles;
  // The queued options keep the config's `const char*` name alive, so the
  // generated names need storage that outlives the enqueue loop.
  std::vector<std::string> names;
  names.reserve(grid.size());
  for (const Cell& cell : grid) {
    names.push_back("F" + std::to_string(cell.file_mb) + "G" +
                    std::to_string(cell.groups) + "T1");
    RecoveryConfigSpec config{names.back().c_str(), cell.file_mb, cell.groups,
                              60};
    ExperimentOptions opts = paper_options(config);
    opts.with_standby = true;
    opts.fault = make_fault(faults::FaultType::kShutdownAbort, inject_at);
    handles.push_back(run.add(names.back(), std::move(opts)));
  }

  TablePrinter table({"Redo file size", "Groups", "Lost committed txns",
                      "Failover time", "Violations"});
  std::size_t next = 0;
  for (const Cell& cell : grid) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({std::to_string(cell.file_mb) + " MB",
                   std::to_string(cell.groups),
                   std::to_string(result.lost_committed),
                   recovery_cell(result),
                   std::to_string(result.integrity_violations)});
  }
  table.print();
  std::printf(
      "\nPaper conclusion reproduced when: losses scale with the redo file\n"
      "size (the unarchived window) and are nearly independent of the group\n"
      "count — the reason the paper recommends small redo files for\n"
      "stand-by configurations.\n");
  run.finish();
  return 0;
}
