// Fleet faultload: the paper's recovery/performance procedure generalised
// to a sharded deployment. Each run partitions the TPC-C warehouses across
// N instances (each one a full paper testbed with its own standby), drives
// the fleet-wide workload with cross-shard transactions under presumed-
// abort 2PC, injects one coordinated failure scenario, and lets the
// FailoverOrchestrator restore service.
//
// Reported per run: fleet tpmC, cross-shard traffic, detection delay,
// fleet recovery time, standby promotions, in-doubt branches resolved,
// per-shard lost transactions — and the benchmark's hard zero, cross-shard
// atomicity violations (a gtxn committed on one shard, aborted on
// another).
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "bench/bench_common.hpp"
#include "fleet/fleet_experiment.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

struct FleetRun {
  std::string label;
  fleet::FleetExperimentOptions opts;
};

struct FleetOutcome {
  std::string label;
  Result<fleet::FleetExperimentResult> result{
      Status{ErrorCode::kInternal, "not run"}};
  double wall_seconds = 0;
};

/// Same fan-out contract as ExperimentRunner: bounded pool, outcomes in
/// submission order, so the rendered table is byte-identical whatever
/// VDB_JOBS says.
std::vector<FleetOutcome> run_all(const std::vector<FleetRun>& batch,
                                  unsigned jobs) {
  std::vector<FleetOutcome> outcomes(batch.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= batch.size()) return;
      const auto started = std::chrono::steady_clock::now();
      fleet::FleetExperiment experiment(batch[i].opts);
      outcomes[i].label = batch[i].label;
      outcomes[i].result = experiment.run();
      outcomes[i].wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
    }
  };
  std::vector<std::thread> pool;
  const unsigned n =
      std::min<unsigned>(jobs, static_cast<unsigned>(batch.size()));
  for (unsigned t = 0; t + 1 < n; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  return outcomes;
}

std::string lost_cell(const std::vector<std::uint64_t>& lost_per_shard) {
  std::string out;
  for (std::size_t i = 0; i < lost_per_shard.size(); ++i) {
    if (i != 0) out += "/";
    out += std::to_string(lost_per_shard[i]);
  }
  return out;
}

}  // namespace

int main() {
  print_header(
      "Fleet faultload: sharded deployment under coordinated failures",
      "extension of Vieira & Madeira, DSN 2002, to an N-shard fleet");

  struct ScenarioRow {
    std::string name;
    std::optional<faults::FleetScenario> scenario;
  };
  std::vector<ScenarioRow> scenarios;
  scenarios.push_back({"fault-free", std::nullopt});
  for (const faults::FleetScenarioInfo& info : faults::fleet_scenarios()) {
    scenarios.push_back({info.name, info.scenario});
  }

  std::vector<FleetRun> batch;
  for (const std::uint32_t shards : {2u, 3u}) {
    for (const ScenarioRow& row : scenarios) {
      FleetRun run;
      run.label = std::to_string(shards) + " shards / " + row.name;
      run.opts.shards = shards;
      run.opts.scenario = row.scenario;
      run.opts.duration = bench_duration();
      run.opts.inject_at = injection_instants().front();
      run.opts.seed = 20020623;  // DSN 2002
      batch.push_back(std::move(run));
    }
  }

  const unsigned jobs = ExperimentRunner::default_jobs();
  const auto started = std::chrono::steady_clock::now();
  std::vector<FleetOutcome> outcomes = run_all(batch, jobs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  TablePrinter table({"shards", "scenario", "tpmC", "x-shard", "detect",
                      "recovery", "promoted", "in-doubt", "lost/shard",
                      "atomicity", "integrity"});
  bool atomicity_clean = true;
  double busy = 0;
  for (const FleetOutcome& o : outcomes) {
    if (!o.result.is_ok()) {
      std::fprintf(stderr, "FATAL: fleet experiment '%s' failed: %s\n",
                   o.label.c_str(),
                   o.result.status().to_string().c_str());
      return 1;
    }
    busy += o.wall_seconds;
    const fleet::FleetExperimentResult& r = o.result.value();
    for (const std::string& msg : r.integrity_messages) {
      std::fprintf(stderr, "[integrity] %s: %s\n", o.label.c_str(),
                   msg.c_str());
    }
    if (r.atomicity_violations != 0) atomicity_clean = false;
    std::string recovery = "-";
    if (r.fault_injected) {
      recovery = r.recovered
                     ? TablePrinter::num(to_seconds(r.recovery_time), 1) + "s"
                     : ">" + std::to_string(static_cast<unsigned>(
                                 to_seconds(r.recovery_time))) + "s";
    }
    table.add_row({std::to_string(r.shard_count),
                   o.label.substr(o.label.find("/ ") + 2),
                   TablePrinter::num(r.tpmc, 1),
                   std::to_string(r.cross_shard_committed),
                   r.fault_injected
                       ? TablePrinter::num(to_seconds(r.detection_delay), 1) +
                             "s"
                       : "-",
                   recovery, std::to_string(r.promotions),
                   std::to_string(r.in_doubt_resolved),
                   lost_cell(r.lost_per_shard),
                   std::to_string(r.atomicity_violations),
                   r.history_check_skipped
                       ? std::to_string(r.integrity_violations) + " (W-hist "
                                                                  "skipped)"
                       : std::to_string(r.integrity_violations)});
  }
  table.print();
  std::printf("\n--- wall clock ---\n");
  std::printf("experiments: %zu  jobs: %u (VDB_JOBS)\n", outcomes.size(),
              jobs);
  std::printf("wall %.2fs  serial-equivalent %.2fs  speedup %.2fx\n", wall,
              busy, wall > 0 ? busy / wall : 0.0);

  // Machine-readable drop for scripts/check_results.py.
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const char* path = "results/bench_fleet.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
  } else {
    using vdb::bench::detail::json_escape;
    using vdb::bench::detail::json_num;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fleet\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick_mode() ? "quick" : "full");
    std::fprintf(f, "  \"jobs\": %u,\n", jobs);
    std::fprintf(f, "  \"experiments\": %zu,\n", outcomes.size());
    std::fprintf(f, "  \"wall_seconds\": %s,\n", json_num(wall).c_str());
    std::fprintf(f, "  \"runs\": [");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const FleetOutcome& o = outcomes[i];
      const fleet::FleetExperimentResult& r = o.result.value();
      std::fprintf(f, "%s\n    {\"label\": \"%s\", \"ok\": true, ",
                   i == 0 ? "" : ",", json_escape(o.label).c_str());
      std::fprintf(
          f,
          "\"shard_count\": %u, \"tpmc\": %s, \"committed\": %llu, "
          "\"cross_shard_started\": %llu, \"cross_shard_committed\": %llu, "
          "\"fault_injected\": %s, \"recovered\": %s, "
          "\"detection_seconds\": %s, \"recovery_seconds\": %s, "
          "\"promotions\": %llu, \"in_doubt_resolved\": %llu, "
          "\"atomicity_violations\": %llu, \"lost_committed\": %llu, "
          "\"lost_per_shard\": [",
          r.shard_count, json_num(r.tpmc).c_str(),
          static_cast<unsigned long long>(r.committed),
          static_cast<unsigned long long>(r.cross_shard_started),
          static_cast<unsigned long long>(r.cross_shard_committed),
          r.fault_injected ? "true" : "false",
          r.recovered ? "true" : "false",
          json_num(to_seconds(r.detection_delay)).c_str(),
          json_num(to_seconds(r.recovery_time)).c_str(),
          static_cast<unsigned long long>(r.promotions),
          static_cast<unsigned long long>(r.in_doubt_resolved),
          static_cast<unsigned long long>(r.atomicity_violations),
          static_cast<unsigned long long>(r.lost_committed));
      for (std::size_t s = 0; s < r.lost_per_shard.size(); ++s) {
        std::fprintf(f, "%s%llu", s == 0 ? "" : ", ",
                     static_cast<unsigned long long>(r.lost_per_shard[s]));
      }
      std::fprintf(f,
                   "], \"integrity_violations\": %u, "
                   "\"history_check_skipped\": %s, \"wall_seconds\": %s}",
                   r.integrity_violations,
                   r.history_check_skipped ? "true" : "false",
                   json_num(o.wall_seconds).c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }

  if (!atomicity_clean) {
    std::fprintf(stderr,
                 "FATAL: cross-shard atomicity violated — see table\n");
    return 1;
  }
  return 0;
}
