// Microbenchmarks (google-benchmark): real CPU cost of the hot paths that
// every simulated experiment exercises millions of times. These guard the
// wall-clock budget of the paper-reproduction suite.
#include <benchmark/benchmark.h>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "index/bplus_tree.hpp"
#include "sim/host.hpp"
#include "storage/buffer_cache.hpp"
#include "storage/page.hpp"
#include "tests/test_env.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_loader.hpp"
#include "tpcc/tpcc_txns.hpp"
#include "wal/log_record.hpp"

namespace {

using namespace vdb;

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(256)->Arg(8192);

void BM_PageSlotWrite(benchmark::State& state) {
  storage::Page page;
  page.format(TableId{1}, 96);
  std::vector<std::uint8_t> payload(80, 0x42);
  std::uint16_t slot = 0;
  for (auto _ : state) {
    page.set_slot(slot, payload);
    slot = static_cast<std::uint16_t>((slot + 1) % page.capacity());
  }
}
BENCHMARK(BM_PageSlotWrite);

void BM_PageChecksum(benchmark::State& state) {
  storage::Page page;
  page.format(TableId{1}, 96);
  for (auto _ : state) {
    page.update_checksum();
    benchmark::DoNotOptimize(page.verify_checksum());
  }
}
BENCHMARK(BM_PageChecksum);

void BM_BTreeInsertErase(benchmark::State& state) {
  index::BPlusTree<std::uint64_t, int> tree;
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    tree.insert(i, 0);
    if (i > 1000) tree.erase(i - 1000);
    ++i;
  }
}
BENCHMARK(BM_BTreeInsertErase);

void BM_BTreeLookup(benchmark::State& state) {
  index::BPlusTree<std::uint64_t, int> tree;
  for (std::uint64_t i = 0; i < 100000; ++i) tree.insert(i, 1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find(static_cast<std::uint64_t>(rng.uniform(0, 99999))));
  }
}
BENCHMARK(BM_BTreeLookup);

/// Backing store that serves pages from memory with zero simulated cost:
/// isolates the BufferCache bookkeeping (hash lookup, LRU, pin counts) that
/// every tpcc_txns page access pays.
class NullPageStore : public storage::PageStore {
 public:
  Status load_page(PageId, storage::Page* out, sim::IoMode) override {
    out->format(TableId{1}, 96);
    return Status::ok();
  }
  Status store_page(PageId, storage::Page&, sim::IoMode, bool) override {
    return Status::ok();
  }
};

void BM_BufferCacheFetchSame(benchmark::State& state) {
  NullPageStore store;
  storage::BufferCache cache(&store, 2048, [](Lsn) {});
  const PageId id{FileId{0}, 7};
  (void)cache.fetch(id);  // warm
  for (auto _ : state) {
    auto ref = cache.fetch(id);
    benchmark::DoNotOptimize(ref.value().page());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheFetchSame);

void BM_BufferCacheFetchSpread(benchmark::State& state) {
  NullPageStore store;
  storage::BufferCache cache(&store, 2048, [](Lsn) {});
  for (std::uint32_t b = 0; b < 1024; ++b) {
    (void)cache.fetch(PageId{FileId{0}, b});  // warm
  }
  std::uint32_t block = 0;
  for (auto _ : state) {
    auto ref = cache.fetch(PageId{FileId{0}, block});
    benchmark::DoNotOptimize(ref.value().page());
    block = (block + 1) % 1024;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheFetchSpread);

void BM_BufferCacheCheckpointSweep(benchmark::State& state) {
  NullPageStore store;
  sim::VirtualClock clock;
  storage::BufferCache cache(&store, 4096, [](Lsn) {});
  // Resident set of 4096 pages, 256 of them dirty per checkpoint — the
  // shape of an incremental-checkpoint sweep mid-run.
  for (std::uint32_t b = 0; b < 4096; ++b) {
    (void)cache.fetch(PageId{FileId{0}, b});
  }
  Rng rng(17);
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      const PageId id{FileId{0},
                      static_cast<std::uint32_t>(rng.uniform(0, 4095))};
      auto ref = cache.fetch(id);
      cache.mark_dirty(id, clock.now());
    }
    benchmark::DoNotOptimize(cache.checkpoint().pages_written);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BufferCacheCheckpointSweep);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kUpdate;
  rec.txn = TxnId{42};
  rec.lsn = 1;
  rec.dml.table = TableId{3};
  rec.dml.rid = RowId{PageId{FileId{0}, 10}, 5};
  rec.dml.before.assign(300, 7);
  rec.dml.after = rec.dml.before;
  rec.dml.after[120] = 9;
  // Steady state of the zero-copy pipeline: the arena is reused across
  // iterations (clear keeps capacity) and the decoder works in place, so
  // after warm-up neither direction allocates.
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    wal::frame_record(rec, &buf);
    int count = 0;
    (void)wal::parse_records(buf, [&](const wal::LogRecord&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_LogRecordEncodeDecode);

void BM_RedoApplyPlanReplay(benchmark::State& state) {
  // Phase-two replay cost in isolation: stage a batch of DML records
  // spread across the table's pages, then drain the partitioned plan
  // (fetch + guard + apply + mark_dirty). Single-worker by construction —
  // the simulator is single-threaded per instance — so this tracks the
  // per-record apply cost the parallel workers each pay.
  testing::SimEnv env;
  testing::SmallDb db(env, testing::small_db_config());
  std::vector<std::uint8_t> payload(48, 1);
  for (int i = 0; i < 512; ++i) {
    auto txn = db.db->begin();
    (void)db.db->insert(txn.value(), db.table, payload);
    (void)db.db->commit(txn.value());
  }
  std::vector<RowId> rids;
  (void)db.db->scan(db.table, [&](RowId rid, std::span<const std::uint8_t>) {
    rids.push_back(rid);
    return true;
  });

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kUpdate;
  rec.txn = TxnId{9001};
  rec.dml.table = db.table;
  rec.dml.before = payload;
  rec.dml.after = payload;
  rec.dml.after[0] = 2;
  Lsn lsn = Lsn{1} << 40;  // above anything the workload wrote
  db.db->set_recovering(true);
  for (auto _ : state) {
    engine::RedoApplyPlan plan = db.db->make_replay_plan();
    for (const RowId& rid : rids) {
      rec.lsn = lsn++;
      rec.dml.rid = rid;
      plan.stage(rec);
    }
    auto stats = plan.drain();
    VDB_CHECK(stats.is_ok());
    benchmark::DoNotOptimize(stats.value().applied);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rids.size()));
}
BENCHMARK(BM_RedoApplyPlanReplay);

void BM_InstanceRecoveryReplay(benchmark::State& state) {
  // End-to-end instance recovery: a workload of committed single-row
  // transactions past the last checkpoint, SHUTDOWN ABORT, then startup()
  // on a fresh incarnation — scan, staged parallel apply, loser rollback,
  // and the post-recovery checkpoint. The crashed state is rebuilt outside
  // the timed region.
  std::vector<std::uint8_t> payload(48, 1);
  for (auto _ : state) {
    state.PauseTiming();
    auto env = std::make_unique<testing::SimEnv>();
    auto db = std::make_unique<testing::SmallDb>(*env);
    for (int i = 0; i < 256; ++i) {
      auto txn = db->db->begin();
      (void)db->db->insert(txn.value(), db->table, payload);
      (void)db->db->commit(txn.value());
    }
    VDB_CHECK(db->db->shutdown_abort().is_ok());
    auto next = std::make_unique<engine::Database>(
        &env->host, &env->sched, testing::small_db_config());
    state.ResumeTiming();

    VDB_CHECK(next->startup().is_ok());

    state.PauseTiming();
    next.reset();
    db.reset();
    env.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InstanceRecoveryReplay);

// Crashed state for the early-open benchmarks: committed inserts flushed
// by a checkpoint, then updates over those (now on-disk) pages so the
// restart leaves a genuine per-page redo backlog staged behind the open.
struct EarlyOpenScenario {
  std::unique_ptr<testing::SimEnv> env;
  std::unique_ptr<testing::SmallDb> db;
  std::unique_ptr<engine::Database> next;

  explicit EarlyOpenScenario(const engine::DatabaseConfig& cfg) {
    std::vector<std::uint8_t> payload(48, 1);
    std::vector<std::uint8_t> changed(48, 2);
    env = std::make_unique<testing::SimEnv>();
    db = std::make_unique<testing::SmallDb>(*env, cfg);
    std::vector<RowId> rids;
    for (int i = 0; i < 256; ++i) {
      auto txn = db->db->begin();
      auto rid = db->db->insert(txn.value(), db->table, payload);
      VDB_CHECK(rid.is_ok());
      rids.push_back(rid.value());
      (void)db->db->commit(txn.value());
    }
    VDB_CHECK(db->db->checkpoint_now().is_ok());
    for (const RowId& rid : rids) {
      auto txn = db->db->begin();
      (void)db->db->update(txn.value(), db->table, rid, changed);
      (void)db->db->commit(txn.value());
    }
    VDB_CHECK(db->db->shutdown_abort().is_ok());
    next = std::make_unique<engine::Database>(&env->host, &env->sched, cfg);
  }
};

void BM_EarlyOpenAnalysis(benchmark::State& state) {
  // Early-open restart (M3): the timed region is startup() alone — log
  // analysis, per-page run staging, loser check, object rebuild, and the
  // early open. The redo backlog stays staged behind the open; draining a
  // page of it is BM_OnDemandPageRecover's subject.
  engine::DatabaseConfig cfg = testing::small_db_config();
  cfg.restart_mode = engine::RestartMode::kM3OnDemand;
  for (auto _ : state) {
    state.PauseTiming();
    auto scenario = std::make_unique<EarlyOpenScenario>(cfg);
    state.ResumeTiming();

    VDB_CHECK(scenario->next->startup().is_ok());

    state.PauseTiming();
    VDB_CHECK(scenario->next->complete_restart_recovery().is_ok());
    scenario.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EarlyOpenAnalysis);

void BM_OnDemandPageRecover(benchmark::State& state) {
  // Single-page on-demand roll-forward behind an early open: the fetch-
  // gate hit, one retained-run drain (fetch + LSN guard + apply +
  // mark_dirty), and the coordinator's wait-event/tracer bookkeeping.
  engine::DatabaseConfig cfg = testing::small_db_config();
  cfg.restart_mode = engine::RestartMode::kM3OnDemand;
  std::int64_t pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto scenario = std::make_unique<EarlyOpenScenario>(cfg);
    VDB_CHECK(scenario->next->startup().is_ok());
    engine::RestartCoordinator* rc = scenario->next->restart_coordinator();
    VDB_CHECK(rc != nullptr && rc->has_pending());
    const std::vector<PageId> pending = rc->pending_pages();
    state.ResumeTiming();

    for (PageId pid : pending) {
      VDB_CHECK(rc->recover_page(pid).is_ok());
    }

    state.PauseTiming();
    pages += static_cast<std::int64_t>(pending.size());
    VDB_CHECK(scenario->next->complete_restart_recovery().is_ok());
    scenario.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(pages);
}
BENCHMARK(BM_OnDemandPageRecover);

void BM_CustomerRowCodec(benchmark::State& state) {
  tpcc::CustomerRow row;
  row.c_first = "FIRSTNAMEFIRSTNA";
  row.c_last = "BARBARBAR";
  row.c_data = std::string(450, 'd');
  for (auto _ : state) {
    const auto bytes = tpcc::to_bytes(row);
    benchmark::DoNotOptimize(tpcc::from_bytes<tpcc::CustomerRow>(bytes));
  }
}
BENCHMARK(BM_CustomerRowCodec);

void BM_EngineInsertCommit(benchmark::State& state) {
  testing::SimEnv env;
  testing::SmallDb db(env, testing::small_db_config());
  std::vector<std::uint8_t> payload(48, 1);
  for (auto _ : state) {
    auto txn = db.db->begin();
    (void)db.db->insert(txn.value(), db.table, payload);
    (void)db.db->commit(txn.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineInsertCommit);

void BM_TpccNewOrder(benchmark::State& state) {
  testing::SimEnv env;
  engine::DatabaseConfig cfg = testing::small_db_config();
  cfg.redo.file_size_bytes = 16 * 1024 * 1024;
  cfg.storage.cache_pages = 2048;
  auto db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  VDB_CHECK(db->create().is_ok());
  VDB_CHECK(db->create_tablespace("TPCC", {{"/data/t1.dbf", 512},
                                           {"/data/t2.dbf", 512}})
                .is_ok());
  auto user = db->create_user("TPCC", false);
  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 100;
  scale.items = 1000;
  scale.initial_orders_per_district = 100;
  tpcc::TpccDb tdb(scale);
  VDB_CHECK(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
  VDB_CHECK(tdb.attach(db.get()).is_ok());
  tpcc::Loader loader(&tdb, 7);
  VDB_CHECK(loader.load().is_ok());
  tpcc::TpccRandom random(Rng{3}, scale);
  tpcc::TpccTxns txns(&tdb, &random);

  for (auto _ : state) {
    auto outcome = txns.new_order(1);
    VDB_CHECK(outcome.is_ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpccNewOrder);

}  // namespace

BENCHMARK_MAIN();
