// Table 3: the sixteen recovery configurations and the number of (full)
// checkpoints each produces over a 20-minute TPC-C run.
//
// The paper's "# CKPT per experiment" column counts log-switch checkpoints:
// it is driven by redo volume / file size, which is why F1* configurations
// land in the hundreds while F400* see one. The incremental-checkpoint
// column is ours, showing the log_checkpoint_timeout activity that the
// paper's text credits for F400G3T1's short recovery.
#include <array>

#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Table 3: recovery configurations under test",
               "Vieira & Madeira, DSN 2002, Table 3");

  BenchRun run("table3");
  std::vector<std::size_t> handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    handles.push_back(run.add(config.name, paper_options(config)));
  }
  // Second section, enqueued up front so the whole matrix shares one
  // thread-pool fan-out: per-configuration crash recovery, decomposed into
  // the phase spans of the recorded trace (V$RECOVERY_PROGRESS). Spans
  // tile the trace, so restore+redo+undo+open+resume reproduces the
  // headline recovery time to the simulated microsecond.
  std::vector<std::size_t> crash_handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    ExperimentOptions opts = paper_options(config);
    opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                            injection_instants().front());
    crash_handles.push_back(
        run.add(std::string(config.name) + " crash", std::move(opts)));
  }
  // Third section: the restart-mode study. The same crash is replayed under
  // the early-open (M2), on-demand (M3) and mixed (M4) restart schemes on a
  // representative slice of the matrix; the M1 baseline rows are the crash
  // runs above. Quick mode keeps a single heavy-backlog configuration.
  const std::vector<std::string> mode_config_names =
      quick_mode() ? std::vector<std::string>{"F400G3T10"}
                   : std::vector<std::string>{"F400G3T10", "F100G3T1",
                                              "F40G3T10", "F1G2T1"};
  const engine::RestartMode kEarlyModes[] = {engine::RestartMode::kM2EarlyOpen,
                                             engine::RestartMode::kM3OnDemand,
                                             engine::RestartMode::kM4Mixed};
  // mode_handles[config][mode] with mode index 0 = M1 (baseline reuse).
  std::vector<std::array<std::size_t, 4>> mode_handles;
  for (const std::string& name : mode_config_names) {
    const RecoveryConfigSpec* spec = find_config(name);
    VDB_CHECK_MSG(spec != nullptr, "unknown restart-mode config");
    std::array<std::size_t, 4> row{};
    if (paper_options(*spec).restart_mode ==
        engine::RestartMode::kM1Traditional) {
      const auto all = table3_configs();
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (name == all[i].name) row[0] = crash_handles[i];
      }
    } else {
      // VDB_RESTART_MODE redirected the ambient crash runs to an early
      // mode, so the baseline must be a dedicated, explicitly-M1 run — the
      // vs-M1 column and the shape check are meaningless otherwise.
      ExperimentOptions opts = paper_options(*spec);
      opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                              injection_instants().front());
      opts.restart_mode = engine::RestartMode::kM1Traditional;
      row[0] = run.add(std::string(spec->name) + " crash m1_traditional",
                       std::move(opts));
    }
    std::size_t slot = 1;
    for (engine::RestartMode mode : kEarlyModes) {
      ExperimentOptions opts = paper_options(*spec);
      opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                              injection_instants().front());
      opts.restart_mode = mode;
      row[slot++] = run.add(
          std::string(spec->name) + " crash " + engine::to_string(mode),
          std::move(opts));
    }
    mode_handles.push_back(row);
  }

  TablePrinter table({"Config", "File Size", "Redo Groups", "Ckpt Timeout",
                      "# CKPT per Experiment", "# Incr. CKPT", "tpmC",
                      "Redo MB"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({config.name,
                   std::to_string(config.file_mb) + " MB",
                   std::to_string(config.groups),
                   std::to_string(config.timeout_sec) + " sec",
                   std::to_string(result.full_checkpoints),
                   std::to_string(result.incremental_checkpoints),
                   TablePrinter::num(result.tpmc, 0),
                   TablePrinter::num(
                       static_cast<double>(result.redo_bytes) / (1 << 20),
                       0)});
  }
  table.print();
  std::printf(
      "\nShape checks (paper): checkpoint count ~ redo volume / file size;\n"
      "F400* ~1-2 checkpoints, F1* in the hundreds. The incremental-\n"
      "checkpoint column is the timeout activity behind the paper's fast\n"
      "F400G3T1/F100G3T1 recoveries.\n");

  TablePrinter phases({"Config", "Recovery", "Detect", "Restore", "Redo",
                       "Undo", "Open", "OnDemand", "Resume",
                       "Sum-Headline"});
  next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ExperimentResult& result = run.get(crash_handles[next++]);
    SimDuration phase_sum = 0;
    std::array<SimDuration, obs::kRecoveryPhaseCount> by_phase{};
    for (std::size_t k = 0; k < result.recovery_phases.size(); ++k) {
      by_phase[k] = result.recovery_phases[k].second;
      if (k != static_cast<std::size_t>(obs::RecoveryPhase::kDetection)) {
        phase_sum += by_phase[k];
      }
    }
    auto cell = [&](obs::RecoveryPhase p) {
      return TablePrinter::num(
                 to_seconds(by_phase[static_cast<std::size_t>(p)]), 2) + "s";
    };
    const long long drift =
        static_cast<long long>(phase_sum) -
        static_cast<long long>(result.recovery_time);
    phases.add_row({config.name, recovery_cell(result),
                    cell(obs::RecoveryPhase::kDetection),
                    cell(obs::RecoveryPhase::kRestore),
                    cell(obs::RecoveryPhase::kRedo),
                    cell(obs::RecoveryPhase::kUndo),
                    cell(obs::RecoveryPhase::kOpen),
                    cell(obs::RecoveryPhase::kOnDemand),
                    cell(obs::RecoveryPhase::kResume),
                    std::to_string(drift) + " us"});
  }
  phases.print();
  std::printf(
      "\nPhase spans tile the recovery trace: restore+redo+undo+open+\n"
      "on_demand+resume must equal the headline recovery time\n"
      "(Sum-Headline column = 0 us, within one simulated tick).\n");

  // Restart-mode study: open time (crash -> database open) versus first-
  // commit time (crash -> service restored, the paper's end-user recovery
  // measure) per restart scheme, plus where each mode did its redo work.
  TablePrinter modes({"Config", "Mode", "Open", "First Commit", "vs M1",
                      "OnDemand Pg", "Background Pg", "Retries", "Lost",
                      "tpmC"});
  bool shape_ok = true;
  for (std::size_t c = 0; c < mode_config_names.size(); ++c) {
    const ExperimentResult& m1 = run.get(mode_handles[c][0]);
    SimDuration best_early = m1.first_commit_time;
    for (std::size_t m = 0; m < 4; ++m) {
      const ExperimentResult& result = run.get(mode_handles[c][m]);
      const double vs_m1 =
          m1.first_commit_time == 0
              ? 0.0
              : 100.0 * (static_cast<double>(result.first_commit_time) /
                             static_cast<double>(m1.first_commit_time) -
                         1.0);
      if (m >= 2) best_early = std::min(best_early, result.first_commit_time);
      modes.add_row(
          {mode_config_names[c], result.restart_mode,
           TablePrinter::num(to_seconds(result.open_time), 2) + "s",
           TablePrinter::num(to_seconds(result.first_commit_time), 2) + "s",
           m == 0 ? "-" : TablePrinter::num(vs_m1, 1) + "%",
           std::to_string(
               result.metrics.counter("pages recovered on demand")),
           std::to_string(
               result.metrics.counter("pages recovered background")),
           std::to_string(result.recovery_retries),
           std::to_string(result.lost_committed),
           TablePrinter::num(result.tpmc, 0)});
    }
    if (static_cast<double>(best_early) >
        0.7 * static_cast<double>(m1.first_commit_time)) {
      shape_ok = false;
    }
  }
  modes.print();
  std::printf(
      "\nShape check: on-demand restart (M3/M4) restores service before the\n"
      "redo backlog is drained, so its first-commit time must undercut the\n"
      "traditional M1 restart by >=30%% on every configuration above: %s\n",
      shape_ok ? "OK" : "VIOLATED");
  run.finish();
  return 0;
}
