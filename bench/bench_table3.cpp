// Table 3: the sixteen recovery configurations and the number of (full)
// checkpoints each produces over a 20-minute TPC-C run.
//
// The paper's "# CKPT per experiment" column counts log-switch checkpoints:
// it is driven by redo volume / file size, which is why F1* configurations
// land in the hundreds while F400* see one. The incremental-checkpoint
// column is ours, showing the log_checkpoint_timeout activity that the
// paper's text credits for F400G3T1's short recovery.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Table 3: recovery configurations under test",
               "Vieira & Madeira, DSN 2002, Table 3");

  BenchRun run("table3");
  std::vector<std::size_t> handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    handles.push_back(run.add(config.name, paper_options(config)));
  }

  TablePrinter table({"Config", "File Size", "Redo Groups", "Ckpt Timeout",
                      "# CKPT per Experiment", "# Incr. CKPT", "tpmC",
                      "Redo MB"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({config.name,
                   std::to_string(config.file_mb) + " MB",
                   std::to_string(config.groups),
                   std::to_string(config.timeout_sec) + " sec",
                   std::to_string(result.full_checkpoints),
                   std::to_string(result.incremental_checkpoints),
                   TablePrinter::num(result.tpmc, 0),
                   TablePrinter::num(
                       static_cast<double>(result.redo_bytes) / (1 << 20),
                       0)});
  }
  table.print();
  std::printf(
      "\nShape checks (paper): checkpoint count ~ redo volume / file size;\n"
      "F400* ~1-2 checkpoints, F1* in the hundreds. The incremental-\n"
      "checkpoint column is the timeout activity behind the paper's fast\n"
      "F400G3T1/F100G3T1 recoveries.\n");
  run.finish();
  return 0;
}
