// Table 3: the sixteen recovery configurations and the number of (full)
// checkpoints each produces over a 20-minute TPC-C run.
//
// The paper's "# CKPT per experiment" column counts log-switch checkpoints:
// it is driven by redo volume / file size, which is why F1* configurations
// land in the hundreds while F400* see one. The incremental-checkpoint
// column is ours, showing the log_checkpoint_timeout activity that the
// paper's text credits for F400G3T1's short recovery.
#include <array>

#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  print_header("Table 3: recovery configurations under test",
               "Vieira & Madeira, DSN 2002, Table 3");

  BenchRun run("table3");
  std::vector<std::size_t> handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    handles.push_back(run.add(config.name, paper_options(config)));
  }
  // Second section, enqueued up front so the whole matrix shares one
  // thread-pool fan-out: per-configuration crash recovery, decomposed into
  // the phase spans of the recorded trace (V$RECOVERY_PROGRESS). Spans
  // tile the trace, so restore+redo+undo+open+resume reproduces the
  // headline recovery time to the simulated microsecond.
  std::vector<std::size_t> crash_handles;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    ExperimentOptions opts = paper_options(config);
    opts.fault = make_fault(faults::FaultType::kShutdownAbort,
                            injection_instants().front());
    crash_handles.push_back(
        run.add(std::string(config.name) + " crash", std::move(opts)));
  }

  TablePrinter table({"Config", "File Size", "Redo Groups", "Ckpt Timeout",
                      "# CKPT per Experiment", "# Incr. CKPT", "tpmC",
                      "Redo MB"});
  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ExperimentResult& result = run.get(handles[next++]);
    table.add_row({config.name,
                   std::to_string(config.file_mb) + " MB",
                   std::to_string(config.groups),
                   std::to_string(config.timeout_sec) + " sec",
                   std::to_string(result.full_checkpoints),
                   std::to_string(result.incremental_checkpoints),
                   TablePrinter::num(result.tpmc, 0),
                   TablePrinter::num(
                       static_cast<double>(result.redo_bytes) / (1 << 20),
                       0)});
  }
  table.print();
  std::printf(
      "\nShape checks (paper): checkpoint count ~ redo volume / file size;\n"
      "F400* ~1-2 checkpoints, F1* in the hundreds. The incremental-\n"
      "checkpoint column is the timeout activity behind the paper's fast\n"
      "F400G3T1/F100G3T1 recoveries.\n");

  TablePrinter phases({"Config", "Recovery", "Detect", "Restore", "Redo",
                       "Undo", "Open", "Resume", "Sum-Headline"});
  next = 0;
  for (const RecoveryConfigSpec& config : table3_configs()) {
    const ExperimentResult& result = run.get(crash_handles[next++]);
    SimDuration phase_sum = 0;
    std::array<SimDuration, obs::kRecoveryPhaseCount> by_phase{};
    for (std::size_t k = 0; k < result.recovery_phases.size(); ++k) {
      by_phase[k] = result.recovery_phases[k].second;
      if (k != static_cast<std::size_t>(obs::RecoveryPhase::kDetection)) {
        phase_sum += by_phase[k];
      }
    }
    auto cell = [&](obs::RecoveryPhase p) {
      return TablePrinter::num(
                 to_seconds(by_phase[static_cast<std::size_t>(p)]), 2) + "s";
    };
    const long long drift =
        static_cast<long long>(phase_sum) -
        static_cast<long long>(result.recovery_time);
    phases.add_row({config.name, recovery_cell(result),
                    cell(obs::RecoveryPhase::kDetection),
                    cell(obs::RecoveryPhase::kRestore),
                    cell(obs::RecoveryPhase::kRedo),
                    cell(obs::RecoveryPhase::kUndo),
                    cell(obs::RecoveryPhase::kOpen),
                    cell(obs::RecoveryPhase::kResume),
                    std::to_string(drift) + " us"});
  }
  phases.print();
  std::printf(
      "\nPhase spans tile the recovery trace: restore+redo+undo+open+resume\n"
      "must equal the headline recovery time (Sum-Headline column = 0 us,\n"
      "within one simulated tick).\n");
  run.finish();
  return 0;
}
