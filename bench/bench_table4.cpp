// Table 4: recovery time for the faults requiring INCOMPLETE recovery —
// "delete user's object" (DROP TABLE) and "delete tablespace" — across the
// eight archive-capable configurations and the three injection instants.
//
// Expected shapes:
//  - recovery time grows with the injection instant (more archived redo to
//    restore through);
//  - small redo/archive files are dramatically worse (per-file overhead ×
//    hundreds of files) — the paper's ">600 s" cells for F1* at 600 s;
//  - a small number of committed transactions is lost (the point-in-time
//    tail), never any integrity violation.
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

/// Handles for one fault section: per archive config, per injection instant.
std::vector<std::vector<std::size_t>> enqueue_fault(BenchRun& run,
                                                    faults::FaultType type,
                                                    const char* label) {
  std::vector<std::vector<std::size_t>> rows;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    std::vector<std::size_t> row;
    for (SimDuration at : injection_instants()) {
      ExperimentOptions opts = paper_options(config);
      opts.archive_mode = true;
      opts.fault = make_fault(type, at);
      row.push_back(run.add(std::string(config.name) + "+" + label,
                            std::move(opts)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_fault(BenchRun& run,
                 const std::vector<std::vector<std::size_t>>& rows,
                 const char* title) {
  std::printf("-- %s --\n", title);
  std::vector<std::string> headers{"Config"};
  for (SimDuration at : injection_instants()) {
    headers.push_back("Inject " +
                      std::to_string(static_cast<unsigned>(to_seconds(at))) +
                      "s");
  }
  headers.push_back("Lost (total)");
  headers.push_back("Violations");
  TablePrinter table(headers);

  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    std::vector<std::string> row{config.name};
    std::uint64_t lost = 0;
    std::uint32_t violations = 0;
    for (std::size_t handle : rows[next]) {
      const ExperimentResult& result = run.get(handle);
      row.push_back(recovery_cell(result));
      lost += result.lost_committed;
      violations += result.integrity_violations;
    }
    next += 1;
    row.push_back(std::to_string(lost));
    row.push_back(std::to_string(violations));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 4: recovery time, faults with incomplete recovery",
               "Vieira & Madeira, DSN 2002, Table 4 / Section 5.2");
  BenchRun run("table4");
  const auto drop_table =
      enqueue_fault(run, faults::FaultType::kDeleteUserObject, "drop-table");
  const auto drop_ts =
      enqueue_fault(run, faults::FaultType::kDeleteTablespace, "drop-ts");
  print_fault(run, drop_table, "Delete user's object");
  print_fault(run, drop_ts, "Delete tablespace");
  std::printf(
      "Paper conclusion reproduced when: times grow with the injection\n"
      "instant, 1 MB-file configurations are the slowest (many archive\n"
      "files), committed-transaction loss is small and constant, and no\n"
      "integrity violations occur.\n");
  run.finish();
  return 0;
}
