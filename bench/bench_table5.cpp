// Table 5: recovery time for the faults with COMPLETE recovery — shutdown
// abort, delete datafile, set datafile offline, set tablespace offline —
// across the eight archive-capable configurations and three injection
// instants. Complete recovery never loses a committed transaction.
//
// Expected shapes:
//  - shutdown abort: falls with checkpoint/write-out rate, flat across
//    injection instants (instance recovery replays one checkpoint window);
//  - delete datafile: grows with injection instant (archived redo since the
//    backup) and with small archive files;
//  - set datafile offline: small, shrinks with checkpoint rate;
//  - set tablespace offline: ~1 second always (OFFLINE NORMAL needs no
//    recovery).
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

void run_fault(faults::FaultType type, const char* title) {
  std::printf("-- %s --\n", title);
  std::vector<std::string> headers{"Config"};
  for (SimDuration at : injection_instants()) {
    headers.push_back("Inject " +
                      std::to_string(static_cast<unsigned>(to_seconds(at))) +
                      "s");
  }
  headers.push_back("Lost (total)");
  headers.push_back("Violations");
  TablePrinter table(headers);

  for (const RecoveryConfigSpec& config : archive_configs()) {
    std::vector<std::string> row{config.name};
    std::uint64_t lost = 0;
    std::uint32_t violations = 0;
    for (SimDuration at : injection_instants()) {
      ExperimentOptions opts = paper_options(config);
      opts.archive_mode = true;
      opts.fault = make_fault(type, at);
      const ExperimentResult result = run_or_die(opts, config.name);
      row.push_back(recovery_cell(result));
      lost += result.lost_committed;
      violations += result.integrity_violations;
    }
    row.push_back(std::to_string(lost));
    row.push_back(std::to_string(violations));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 5: recovery time, faults with complete recovery",
               "Vieira & Madeira, DSN 2002, Table 5 / Section 5.2");
  run_fault(faults::FaultType::kShutdownAbort, "Shutdown abort");
  run_fault(faults::FaultType::kDeleteDatafile, "Delete datafile");
  run_fault(faults::FaultType::kSetDatafileOffline, "Set datafile offline");
  run_fault(faults::FaultType::kSetTablespaceOffline,
            "Set tablespace offline");
  std::printf(
      "Paper conclusion reproduced when: every cell shows Lost = 0 and\n"
      "Violations = 0 (complete recovery), shutdown-abort times fall with\n"
      "checkpoint rate, delete-datafile times grow with the injection\n"
      "instant and with small archive files, and set-tablespace-offline is\n"
      "always about one second.\n");
  return 0;
}
