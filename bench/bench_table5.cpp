// Table 5: recovery time for the faults with COMPLETE recovery — shutdown
// abort, delete datafile, set datafile offline, set tablespace offline —
// across the eight archive-capable configurations and three injection
// instants. Complete recovery never loses a committed transaction.
//
// Expected shapes:
//  - shutdown abort: falls with checkpoint/write-out rate, flat across
//    injection instants (instance recovery replays one checkpoint window);
//  - delete datafile: grows with injection instant (archived redo since the
//    backup) and with small archive files;
//  - set datafile offline: small, shrinks with checkpoint rate;
//  - set tablespace offline: ~1 second always (OFFLINE NORMAL needs no
//    recovery).
#include "bench/bench_common.hpp"

using namespace vdb;
using namespace vdb::bench;

namespace {

/// Handles for one fault section: per archive config, per injection instant.
std::vector<std::vector<std::size_t>> enqueue_fault(BenchRun& run,
                                                    faults::FaultType type,
                                                    const char* label) {
  std::vector<std::vector<std::size_t>> rows;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    std::vector<std::size_t> row;
    for (SimDuration at : injection_instants()) {
      ExperimentOptions opts = paper_options(config);
      opts.archive_mode = true;
      opts.fault = make_fault(type, at);
      row.push_back(run.add(std::string(config.name) + "+" + label,
                            std::move(opts)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_fault(BenchRun& run,
                 const std::vector<std::vector<std::size_t>>& rows,
                 const char* title) {
  std::printf("-- %s --\n", title);
  std::vector<std::string> headers{"Config"};
  for (SimDuration at : injection_instants()) {
    headers.push_back("Inject " +
                      std::to_string(static_cast<unsigned>(to_seconds(at))) +
                      "s");
  }
  headers.push_back("Lost (total)");
  headers.push_back("Violations");
  TablePrinter table(headers);

  std::size_t next = 0;
  for (const RecoveryConfigSpec& config : archive_configs()) {
    std::vector<std::string> row{config.name};
    std::uint64_t lost = 0;
    std::uint32_t violations = 0;
    for (std::size_t handle : rows[next]) {
      const ExperimentResult& result = run.get(handle);
      row.push_back(recovery_cell(result));
      lost += result.lost_committed;
      violations += result.integrity_violations;
    }
    next += 1;
    row.push_back(std::to_string(lost));
    row.push_back(std::to_string(violations));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 5: recovery time, faults with complete recovery",
               "Vieira & Madeira, DSN 2002, Table 5 / Section 5.2");
  BenchRun run("table5");
  const auto crash =
      enqueue_fault(run, faults::FaultType::kShutdownAbort, "crash");
  const auto del_file =
      enqueue_fault(run, faults::FaultType::kDeleteDatafile, "del-datafile");
  const auto offline_file = enqueue_fault(
      run, faults::FaultType::kSetDatafileOffline, "offline-datafile");
  const auto offline_ts = enqueue_fault(
      run, faults::FaultType::kSetTablespaceOffline, "offline-ts");
  print_fault(run, crash, "Shutdown abort");
  print_fault(run, del_file, "Delete datafile");
  print_fault(run, offline_file, "Set datafile offline");
  print_fault(run, offline_ts, "Set tablespace offline");
  std::printf(
      "Paper conclusion reproduced when: every cell shows Lost = 0 and\n"
      "Violations = 0 (complete recovery), shutdown-abort times fall with\n"
      "checkpoint rate, delete-datafile times grow with the injection\n"
      "instant and with small archive files, and set-tablespace-offline is\n"
      "always about one second.\n");
  run.finish();
  return 0;
}
