// Tables 1 & 2: the operator-fault classification — the paper's taxonomy
// of DBA mistakes and its Oracle-8i instantiation with portability tags.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "common/table_printer.hpp"
#include "faults/classification.hpp"

using namespace vdb;

int main() {
  std::printf("\n=== Table 1: classes of DBMS operator faults ===\n\n");
  TablePrinter classes({"Class", "Description"});
  for (const auto& cls : faults::fault_classes()) {
    std::string desc = cls.description;
    if (desc.size() > 92) desc = desc.substr(0, 89) + "...";
    classes.add_row({cls.name, desc});
  }
  classes.print();

  std::printf(
      "\n=== Table 2: concrete operator-fault types (Oracle 8i "
      "instantiation) ===\n\n");
  TablePrinter types({"Class", "Type of operator fault", "Other DBMS",
                      "In faultload"});
  for (const auto& type : faults::fault_types()) {
    types.add_row({type.fault_class, type.name,
                   faults::to_string(type.portability),
                   type.injected_in_benchmark ? "yes (Section 4)" : ""});
  }
  types.print();

  std::printf(
      "\nThe six types marked 'yes' form the benchmark faultload, chosen for\n"
      "their ability to represent the other types' effects, diversity of\n"
      "impact, and diversity of required recovery (paper Section 4).\n");
  // No experiments behind these tables; finish() still drops the JSON so
  // every bench binary reports into results/ uniformly.
  vdb::bench::BenchRun run("tables12");
  run.finish();
  return 0;
}
