
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmark/CMakeFiles/vdb_benchmark.dir/DependInfo.cmake"
  "/root/repo/build/src/standby/CMakeFiles/vdb_standby.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/vdb_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/vdb_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/vdb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/vdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/vdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
