file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_twofault.dir/bench_extension_twofault.cpp.o"
  "CMakeFiles/bench_extension_twofault.dir/bench_extension_twofault.cpp.o.d"
  "bench_extension_twofault"
  "bench_extension_twofault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_twofault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
