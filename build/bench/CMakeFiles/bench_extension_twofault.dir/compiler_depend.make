# Empty compiler generated dependencies file for bench_extension_twofault.
# This may be replaced when dependencies are built.
