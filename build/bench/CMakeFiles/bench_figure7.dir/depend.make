# Empty dependencies file for bench_figure7.
# This may be replaced when dependencies are built.
