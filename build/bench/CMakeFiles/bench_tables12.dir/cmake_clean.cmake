file(REMOVE_RECURSE
  "CMakeFiles/bench_tables12.dir/bench_tables12.cpp.o"
  "CMakeFiles/bench_tables12.dir/bench_tables12.cpp.o.d"
  "bench_tables12"
  "bench_tables12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
