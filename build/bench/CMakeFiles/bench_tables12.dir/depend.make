# Empty dependencies file for bench_tables12.
# This may be replaced when dependencies are built.
