file(REMOVE_RECURSE
  "CMakeFiles/admin_shell_session.dir/admin_shell_session.cpp.o"
  "CMakeFiles/admin_shell_session.dir/admin_shell_session.cpp.o.d"
  "admin_shell_session"
  "admin_shell_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_shell_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
