# Empty compiler generated dependencies file for admin_shell_session.
# This may be replaced when dependencies are built.
