file(REMOVE_RECURSE
  "CMakeFiles/operator_fault_campaign.dir/operator_fault_campaign.cpp.o"
  "CMakeFiles/operator_fault_campaign.dir/operator_fault_campaign.cpp.o.d"
  "operator_fault_campaign"
  "operator_fault_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_fault_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
