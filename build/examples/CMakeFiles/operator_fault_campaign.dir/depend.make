# Empty dependencies file for operator_fault_campaign.
# This may be replaced when dependencies are built.
