file(REMOVE_RECURSE
  "CMakeFiles/standby_failover.dir/standby_failover.cpp.o"
  "CMakeFiles/standby_failover.dir/standby_failover.cpp.o.d"
  "standby_failover"
  "standby_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standby_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
