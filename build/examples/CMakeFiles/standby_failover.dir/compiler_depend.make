# Empty compiler generated dependencies file for standby_failover.
# This may be replaced when dependencies are built.
