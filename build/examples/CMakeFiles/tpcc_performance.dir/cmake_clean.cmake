file(REMOVE_RECURSE
  "CMakeFiles/tpcc_performance.dir/tpcc_performance.cpp.o"
  "CMakeFiles/tpcc_performance.dir/tpcc_performance.cpp.o.d"
  "tpcc_performance"
  "tpcc_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
