# Empty dependencies file for tpcc_performance.
# This may be replaced when dependencies are built.
