# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("storage")
subdirs("index")
subdirs("wal")
subdirs("txn")
subdirs("catalog")
subdirs("engine")
subdirs("recovery")
subdirs("standby")
subdirs("tpcc")
subdirs("faults")
subdirs("benchmark")
