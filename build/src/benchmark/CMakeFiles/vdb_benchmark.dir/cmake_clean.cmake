file(REMOVE_RECURSE
  "CMakeFiles/vdb_benchmark.dir/experiment.cpp.o"
  "CMakeFiles/vdb_benchmark.dir/experiment.cpp.o.d"
  "CMakeFiles/vdb_benchmark.dir/recovery_configs.cpp.o"
  "CMakeFiles/vdb_benchmark.dir/recovery_configs.cpp.o.d"
  "libvdb_benchmark.a"
  "libvdb_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
