file(REMOVE_RECURSE
  "libvdb_benchmark.a"
)
