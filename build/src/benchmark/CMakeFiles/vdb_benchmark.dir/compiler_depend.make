# Empty compiler generated dependencies file for vdb_benchmark.
# This may be replaced when dependencies are built.
