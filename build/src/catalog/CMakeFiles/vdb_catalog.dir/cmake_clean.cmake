file(REMOVE_RECURSE
  "CMakeFiles/vdb_catalog.dir/catalog.cpp.o"
  "CMakeFiles/vdb_catalog.dir/catalog.cpp.o.d"
  "libvdb_catalog.a"
  "libvdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
