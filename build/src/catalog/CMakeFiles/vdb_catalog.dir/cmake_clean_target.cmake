file(REMOVE_RECURSE
  "libvdb_catalog.a"
)
