file(REMOVE_RECURSE
  "CMakeFiles/vdb_common.dir/codec.cpp.o"
  "CMakeFiles/vdb_common.dir/codec.cpp.o.d"
  "CMakeFiles/vdb_common.dir/rng.cpp.o"
  "CMakeFiles/vdb_common.dir/rng.cpp.o.d"
  "CMakeFiles/vdb_common.dir/status.cpp.o"
  "CMakeFiles/vdb_common.dir/status.cpp.o.d"
  "CMakeFiles/vdb_common.dir/table_printer.cpp.o"
  "CMakeFiles/vdb_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/vdb_common.dir/types.cpp.o"
  "CMakeFiles/vdb_common.dir/types.cpp.o.d"
  "libvdb_common.a"
  "libvdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
