file(REMOVE_RECURSE
  "CMakeFiles/vdb_engine.dir/admin_shell.cpp.o"
  "CMakeFiles/vdb_engine.dir/admin_shell.cpp.o.d"
  "CMakeFiles/vdb_engine.dir/control_file.cpp.o"
  "CMakeFiles/vdb_engine.dir/control_file.cpp.o.d"
  "CMakeFiles/vdb_engine.dir/database.cpp.o"
  "CMakeFiles/vdb_engine.dir/database.cpp.o.d"
  "libvdb_engine.a"
  "libvdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
