file(REMOVE_RECURSE
  "libvdb_engine.a"
)
