# Empty compiler generated dependencies file for vdb_engine.
# This may be replaced when dependencies are built.
