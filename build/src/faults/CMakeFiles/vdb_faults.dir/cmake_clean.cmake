file(REMOVE_RECURSE
  "CMakeFiles/vdb_faults.dir/classification.cpp.o"
  "CMakeFiles/vdb_faults.dir/classification.cpp.o.d"
  "CMakeFiles/vdb_faults.dir/extended_faults.cpp.o"
  "CMakeFiles/vdb_faults.dir/extended_faults.cpp.o.d"
  "CMakeFiles/vdb_faults.dir/fault_injector.cpp.o"
  "CMakeFiles/vdb_faults.dir/fault_injector.cpp.o.d"
  "libvdb_faults.a"
  "libvdb_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
