file(REMOVE_RECURSE
  "libvdb_faults.a"
)
