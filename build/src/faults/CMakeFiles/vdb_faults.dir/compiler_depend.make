# Empty compiler generated dependencies file for vdb_faults.
# This may be replaced when dependencies are built.
