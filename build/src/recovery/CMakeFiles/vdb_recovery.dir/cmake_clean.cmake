file(REMOVE_RECURSE
  "CMakeFiles/vdb_recovery.dir/backup.cpp.o"
  "CMakeFiles/vdb_recovery.dir/backup.cpp.o.d"
  "CMakeFiles/vdb_recovery.dir/recovery_manager.cpp.o"
  "CMakeFiles/vdb_recovery.dir/recovery_manager.cpp.o.d"
  "libvdb_recovery.a"
  "libvdb_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
