file(REMOVE_RECURSE
  "libvdb_recovery.a"
)
