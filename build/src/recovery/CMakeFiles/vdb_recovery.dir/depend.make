# Empty dependencies file for vdb_recovery.
# This may be replaced when dependencies are built.
