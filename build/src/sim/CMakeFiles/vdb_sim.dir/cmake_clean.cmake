file(REMOVE_RECURSE
  "CMakeFiles/vdb_sim.dir/disk.cpp.o"
  "CMakeFiles/vdb_sim.dir/disk.cpp.o.d"
  "CMakeFiles/vdb_sim.dir/filesystem.cpp.o"
  "CMakeFiles/vdb_sim.dir/filesystem.cpp.o.d"
  "CMakeFiles/vdb_sim.dir/network.cpp.o"
  "CMakeFiles/vdb_sim.dir/network.cpp.o.d"
  "CMakeFiles/vdb_sim.dir/scheduler.cpp.o"
  "CMakeFiles/vdb_sim.dir/scheduler.cpp.o.d"
  "libvdb_sim.a"
  "libvdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
