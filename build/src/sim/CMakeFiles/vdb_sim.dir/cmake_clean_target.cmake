file(REMOVE_RECURSE
  "libvdb_sim.a"
)
