file(REMOVE_RECURSE
  "CMakeFiles/vdb_standby.dir/standby.cpp.o"
  "CMakeFiles/vdb_standby.dir/standby.cpp.o.d"
  "libvdb_standby.a"
  "libvdb_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
