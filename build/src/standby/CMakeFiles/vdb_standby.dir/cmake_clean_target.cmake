file(REMOVE_RECURSE
  "libvdb_standby.a"
)
