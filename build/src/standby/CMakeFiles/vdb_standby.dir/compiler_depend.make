# Empty compiler generated dependencies file for vdb_standby.
# This may be replaced when dependencies are built.
