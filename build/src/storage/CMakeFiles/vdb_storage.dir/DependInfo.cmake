
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_cache.cpp" "src/storage/CMakeFiles/vdb_storage.dir/buffer_cache.cpp.o" "gcc" "src/storage/CMakeFiles/vdb_storage.dir/buffer_cache.cpp.o.d"
  "/root/repo/src/storage/page.cpp" "src/storage/CMakeFiles/vdb_storage.dir/page.cpp.o" "gcc" "src/storage/CMakeFiles/vdb_storage.dir/page.cpp.o.d"
  "/root/repo/src/storage/storage_manager.cpp" "src/storage/CMakeFiles/vdb_storage.dir/storage_manager.cpp.o" "gcc" "src/storage/CMakeFiles/vdb_storage.dir/storage_manager.cpp.o.d"
  "/root/repo/src/storage/table_heap.cpp" "src/storage/CMakeFiles/vdb_storage.dir/table_heap.cpp.o" "gcc" "src/storage/CMakeFiles/vdb_storage.dir/table_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
