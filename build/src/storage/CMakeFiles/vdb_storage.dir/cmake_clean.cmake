file(REMOVE_RECURSE
  "CMakeFiles/vdb_storage.dir/buffer_cache.cpp.o"
  "CMakeFiles/vdb_storage.dir/buffer_cache.cpp.o.d"
  "CMakeFiles/vdb_storage.dir/page.cpp.o"
  "CMakeFiles/vdb_storage.dir/page.cpp.o.d"
  "CMakeFiles/vdb_storage.dir/storage_manager.cpp.o"
  "CMakeFiles/vdb_storage.dir/storage_manager.cpp.o.d"
  "CMakeFiles/vdb_storage.dir/table_heap.cpp.o"
  "CMakeFiles/vdb_storage.dir/table_heap.cpp.o.d"
  "libvdb_storage.a"
  "libvdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
