file(REMOVE_RECURSE
  "libvdb_storage.a"
)
