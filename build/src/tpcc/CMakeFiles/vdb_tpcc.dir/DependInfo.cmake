
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpcc/consistency.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/consistency.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/consistency.cpp.o.d"
  "/root/repo/src/tpcc/schema.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/schema.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/schema.cpp.o.d"
  "/root/repo/src/tpcc/tpcc_db.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_db.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_db.cpp.o.d"
  "/root/repo/src/tpcc/tpcc_driver.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_driver.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_driver.cpp.o.d"
  "/root/repo/src/tpcc/tpcc_loader.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_loader.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_loader.cpp.o.d"
  "/root/repo/src/tpcc/tpcc_random.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_random.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_random.cpp.o.d"
  "/root/repo/src/tpcc/tpcc_txns.cpp" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_txns.cpp.o" "gcc" "src/tpcc/CMakeFiles/vdb_tpcc.dir/tpcc_txns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/vdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/vdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/vdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
