file(REMOVE_RECURSE
  "CMakeFiles/vdb_tpcc.dir/consistency.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/consistency.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/schema.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/schema.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/tpcc_db.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/tpcc_db.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/tpcc_driver.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/tpcc_driver.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/tpcc_loader.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/tpcc_loader.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/tpcc_random.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/tpcc_random.cpp.o.d"
  "CMakeFiles/vdb_tpcc.dir/tpcc_txns.cpp.o"
  "CMakeFiles/vdb_tpcc.dir/tpcc_txns.cpp.o.d"
  "libvdb_tpcc.a"
  "libvdb_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
