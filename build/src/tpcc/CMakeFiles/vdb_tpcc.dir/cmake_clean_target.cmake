file(REMOVE_RECURSE
  "libvdb_tpcc.a"
)
