# Empty compiler generated dependencies file for vdb_tpcc.
# This may be replaced when dependencies are built.
