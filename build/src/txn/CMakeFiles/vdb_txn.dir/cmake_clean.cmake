file(REMOVE_RECURSE
  "CMakeFiles/vdb_txn.dir/lock_manager.cpp.o"
  "CMakeFiles/vdb_txn.dir/lock_manager.cpp.o.d"
  "CMakeFiles/vdb_txn.dir/txn_manager.cpp.o"
  "CMakeFiles/vdb_txn.dir/txn_manager.cpp.o.d"
  "libvdb_txn.a"
  "libvdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
