file(REMOVE_RECURSE
  "libvdb_txn.a"
)
