# Empty compiler generated dependencies file for vdb_txn.
# This may be replaced when dependencies are built.
