
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wal/archiver.cpp" "src/wal/CMakeFiles/vdb_wal.dir/archiver.cpp.o" "gcc" "src/wal/CMakeFiles/vdb_wal.dir/archiver.cpp.o.d"
  "/root/repo/src/wal/log_record.cpp" "src/wal/CMakeFiles/vdb_wal.dir/log_record.cpp.o" "gcc" "src/wal/CMakeFiles/vdb_wal.dir/log_record.cpp.o.d"
  "/root/repo/src/wal/redo_log.cpp" "src/wal/CMakeFiles/vdb_wal.dir/redo_log.cpp.o" "gcc" "src/wal/CMakeFiles/vdb_wal.dir/redo_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
