file(REMOVE_RECURSE
  "CMakeFiles/vdb_wal.dir/archiver.cpp.o"
  "CMakeFiles/vdb_wal.dir/archiver.cpp.o.d"
  "CMakeFiles/vdb_wal.dir/log_record.cpp.o"
  "CMakeFiles/vdb_wal.dir/log_record.cpp.o.d"
  "CMakeFiles/vdb_wal.dir/redo_log.cpp.o"
  "CMakeFiles/vdb_wal.dir/redo_log.cpp.o.d"
  "libvdb_wal.a"
  "libvdb_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdb_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
