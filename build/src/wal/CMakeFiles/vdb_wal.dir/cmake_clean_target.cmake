file(REMOVE_RECURSE
  "libvdb_wal.a"
)
