# Empty compiler generated dependencies file for vdb_wal.
# This may be replaced when dependencies are built.
