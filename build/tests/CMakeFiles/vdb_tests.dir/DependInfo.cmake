
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/admin_shell_test.cpp" "tests/CMakeFiles/vdb_tests.dir/admin_shell_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/admin_shell_test.cpp.o.d"
  "/root/repo/tests/btree_test.cpp" "tests/CMakeFiles/vdb_tests.dir/btree_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/btree_test.cpp.o.d"
  "/root/repo/tests/buffer_cache_test.cpp" "tests/CMakeFiles/vdb_tests.dir/buffer_cache_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/buffer_cache_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/vdb_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/checkpoint_snapshot_test.cpp" "tests/CMakeFiles/vdb_tests.dir/checkpoint_snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/checkpoint_snapshot_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/vdb_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/vdb_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/experiment_test.cpp" "tests/CMakeFiles/vdb_tests.dir/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/extended_faults_test.cpp" "tests/CMakeFiles/vdb_tests.dir/extended_faults_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/extended_faults_test.cpp.o.d"
  "/root/repo/tests/faults_test.cpp" "tests/CMakeFiles/vdb_tests.dir/faults_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/faults_test.cpp.o.d"
  "/root/repo/tests/latent_experiment_test.cpp" "tests/CMakeFiles/vdb_tests.dir/latent_experiment_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/latent_experiment_test.cpp.o.d"
  "/root/repo/tests/page_test.cpp" "tests/CMakeFiles/vdb_tests.dir/page_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/page_test.cpp.o.d"
  "/root/repo/tests/property_misc_test.cpp" "tests/CMakeFiles/vdb_tests.dir/property_misc_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/property_misc_test.cpp.o.d"
  "/root/repo/tests/recovery_sweep_test.cpp" "tests/CMakeFiles/vdb_tests.dir/recovery_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/recovery_sweep_test.cpp.o.d"
  "/root/repo/tests/recovery_test.cpp" "tests/CMakeFiles/vdb_tests.dir/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/recovery_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/vdb_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/standby_faults_test.cpp" "tests/CMakeFiles/vdb_tests.dir/standby_faults_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/standby_faults_test.cpp.o.d"
  "/root/repo/tests/standby_test.cpp" "tests/CMakeFiles/vdb_tests.dir/standby_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/standby_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/vdb_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/tpcc_test.cpp" "tests/CMakeFiles/vdb_tests.dir/tpcc_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/tpcc_test.cpp.o.d"
  "/root/repo/tests/txn_test.cpp" "tests/CMakeFiles/vdb_tests.dir/txn_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/txn_test.cpp.o.d"
  "/root/repo/tests/wal_test.cpp" "tests/CMakeFiles/vdb_tests.dir/wal_test.cpp.o" "gcc" "tests/CMakeFiles/vdb_tests.dir/wal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmark/CMakeFiles/vdb_benchmark.dir/DependInfo.cmake"
  "/root/repo/build/src/standby/CMakeFiles/vdb_standby.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/vdb_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/vdb_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/vdb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/vdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/vdb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
