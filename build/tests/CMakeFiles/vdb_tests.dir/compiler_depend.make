# Empty compiler generated dependencies file for vdb_tests.
# This may be replaced when dependencies are built.
