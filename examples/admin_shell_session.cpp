// An administrator session, script-driven — the surface the paper's
// fault-injection tooling uses. The same script language produces both the
// fault ("rm the datafile") and, later, the diagnosis commands.
//
// Build & run:  cmake --build build && ./build/examples/admin_shell_session
#include <cstdio>

#include "engine/admin_shell.hpp"
#include "engine/database.hpp"
#include "faults/fault_injector.hpp"
#include "sim/host.hpp"

using namespace vdb;

int main() {
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);
  sim::Host host("demo", &clock);
  host.add_disk("/data");
  host.add_disk("/redo");
  host.add_disk("/arch");
  host.add_disk("/backup");

  engine::DatabaseConfig cfg;
  auto db = std::make_unique<engine::Database>(&host, &sched, cfg);
  VDB_CHECK(db->create().is_ok());
  VDB_CHECK(db->create_user("APP", false).is_ok());
  VDB_CHECK(db->create_tablespace("USERS", {{"/data/users01.dbf", 64}})
                .is_ok());

  engine::AdminShell shell(db.get());
  auto run = [&](const std::string& command) {
    std::printf("SQL> %s\n", command.c_str());
    auto result = shell.execute(command);
    if (result.is_ok()) {
      std::printf("%s\n", result.value().c_str());
    } else {
      std::printf("ERROR: %s\n", result.status().to_string().c_str());
    }
  };

  // A day in the life of an administrator.
  run("CREATE TABLE accounts TABLESPACE USERS SLOTSIZE 64 OWNER APP");
  run("SHOW TABLES");
  run("SHOW DATAFILES");
  run("ARCHIVE LOG LIST");
  run("CHECKPOINT");
  run("SHOW RESTART MODE");
  run("ALTER DATABASE SET RESTART MODE m3");
  run("SHOW RESTART MODE");

  // The operator fault, as the script the paper's injector would run:
  faults::FaultSpec fault;
  fault.type = faults::FaultType::kSetTablespaceOffline;
  fault.tablespace = "USERS";
  auto script = faults::FaultInjector::script_for(*db, fault);
  VDB_CHECK(script.is_ok());
  std::printf("\n-- injected operator-fault script --\n");
  run(script.value());
  run("SHOW TABLESPACES");

  // ...and the recovery procedure.
  std::printf("\n-- recovery procedure --\n");
  run("ALTER TABLESPACE USERS ONLINE");
  run("SHOW TABLESPACES");

  // The V$ views answer "where did the time go" for the session above.
  std::printf("\n-- performance views --\n");
  run("V$SYSSTAT");
  run("SELECT * FROM V$SYSTEM_EVENT");
  run("V$RECOVERY_PROGRESS");

  // Mistakes are answered with errors, not damage:
  std::printf("\n-- typos --\n");
  run("DROP TABLE ghosts");
  run("ALTER TABLESPACE USERS SIDEWAYS");
  return 0;
}
