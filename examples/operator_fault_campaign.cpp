// Operator-fault campaign: the dependability benchmark end to end.
//
// Runs one experiment per faultload type (paper §4) on a single recovery
// configuration and prints the dependability report: recovery time, lost
// committed transactions, and integrity violations — the paper's three
// recoverability measures.
//
// Build & run:  cmake --build build && ./build/examples/operator_fault_campaign
#include <cstdio>

#include "benchmark/experiment.hpp"
#include "common/table_printer.hpp"

using namespace vdb;
using namespace vdb::bench;

int main() {
  const faults::FaultType faultload[] = {
      faults::FaultType::kShutdownAbort,
      faults::FaultType::kDeleteDatafile,
      faults::FaultType::kDeleteTablespace,
      faults::FaultType::kSetDatafileOffline,
      faults::FaultType::kSetTablespaceOffline,
      faults::FaultType::kDeleteUserObject,
  };

  std::printf("Operator-fault campaign: config F10G3T1, ARCHIVELOG on,\n"
              "fault injected 150s into a 6-minute TPC-C run.\n\n");

  TablePrinter report({"Operator fault", "Recovery", "Recovery time",
                       "Lost committed", "Integrity violations", "tpmC"});
  for (faults::FaultType type : faultload) {
    ExperimentOptions opts;
    opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
    opts.archive_mode = true;
    opts.duration = 6 * kMinute;
    faults::FaultSpec fault;
    fault.type = type;
    fault.inject_at = 150 * kSecond;
    opts.fault = fault;

    Experiment experiment(opts);
    auto result = experiment.run();
    if (!result.is_ok()) {
      std::printf("%s: experiment failed: %s\n", to_string(type),
                  result.status().to_string().c_str());
      return 1;
    }
    const ExperimentResult& r = result.value();
    report.add_row(
        {to_string(type),
         r.recovery_complete ? "complete" : "incomplete",
         r.recovered ? format_duration(r.recovery_time) : "not in window",
         std::to_string(r.lost_committed),
         std::to_string(r.integrity_violations),
         TablePrinter::num(r.tpmc, 0)});
  }
  report.print();

  std::printf(
      "\nReading the report like the paper does:\n"
      " - complete-recovery faults lose nothing;\n"
      " - incomplete recovery (dropped objects) loses only the short tail\n"
      "   between the fault and its detection;\n"
      " - and no operator fault causes an integrity violation.\n");
  return 0;
}
