// Quickstart: create a database, run transactions, crash it with a
// SHUTDOWN ABORT, and watch instance recovery bring every committed change
// back.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "engine/database.hpp"
#include "sim/host.hpp"
#include "sim/scheduler.hpp"

using namespace vdb;

namespace {

std::vector<std::uint8_t> row_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

int main() {
  // 1. A simulated machine: virtual clock, four disks, a filesystem.
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);
  sim::Host host("demo", &clock);
  host.add_disk("/data");
  host.add_disk("/redo");
  host.add_disk("/arch");
  host.add_disk("/backup");

  // 2. A database configured like a sensible small OLTP install.
  engine::DatabaseConfig cfg;
  cfg.redo.file_size_bytes = 4 * 1024 * 1024;
  cfg.redo.groups = 3;
  cfg.checkpoint_timeout = 60 * kSecond;

  auto db = std::make_unique<engine::Database>(&host, &sched, cfg);
  VDB_CHECK(db->create().is_ok());
  VDB_CHECK(db->create_tablespace("USERS", {{"/data/users01.dbf", 256}})
                .is_ok());
  auto user = db->create_user("APP", false);
  VDB_CHECK(user.is_ok());
  auto table = db->create_table("accounts", "USERS", 64, user.value());
  VDB_CHECK(table.is_ok());

  // 3. Some committed transactions...
  std::vector<RowId> rows;
  for (int i = 0; i < 100; ++i) {
    auto txn = db->begin();
    VDB_CHECK(txn.is_ok());
    auto rid = db->insert(txn.value(), table.value(),
                          row_bytes("account-" + std::to_string(i)));
    VDB_CHECK(rid.is_ok());
    rows.push_back(rid.value());
    VDB_CHECK(db->commit(txn.value()).is_ok());
  }

  // ...and one in-flight transaction that will never commit.
  auto doomed = db->begin();
  VDB_CHECK(doomed.is_ok());
  VDB_CHECK(db->insert(doomed.value(), table.value(),
                       row_bytes("uncommitted"))
                .is_ok());

  std::printf("before crash: %llu rows committed, clock=%s\n",
              static_cast<unsigned long long>(rows.size()),
              format_duration(clock.now()).c_str());

  // 4. The operator fault: SHUTDOWN ABORT. Cache and log buffer vanish.
  VDB_CHECK(db->shutdown_abort().is_ok());

  // 5. Next incarnation: startup runs instance recovery (redo + undo).
  auto db2 = std::make_unique<engine::Database>(&host, &sched, cfg);
  auto up = db2->startup();
  if (!up.is_ok()) {
    std::printf("startup failed: %s\n", up.to_string().c_str());
    return 1;
  }

  // 6. Every committed row is back; the uncommitted one was rolled back.
  std::uint64_t found = 0;
  VDB_CHECK(db2->scan(table.value(),
                      [&](RowId, std::span<const std::uint8_t> row) {
                        const std::string value(row.begin(), row.end());
                        VDB_CHECK(value != "uncommitted");
                        found += 1;
                        return true;
                      })
                .is_ok());

  std::printf("after recovery: %llu rows survive, clock=%s\n",
              static_cast<unsigned long long>(found),
              format_duration(clock.now()).c_str());
  VDB_CHECK(found == rows.size());
  std::printf("quickstart OK\n");
  return 0;
}
