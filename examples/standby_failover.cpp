// Stand-by database failover, assembled by hand from the public API:
// two hosts, a network link, archive shipping, a primary crash, and an
// activation — showing exactly which committed transactions survive.
//
// Build & run:  cmake --build build && ./build/examples/standby_failover
#include <cstdio>

#include "recovery/backup.hpp"
#include "sim/network.hpp"
#include "standby/standby.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_driver.hpp"
#include "tpcc/tpcc_loader.hpp"

using namespace vdb;

namespace {

void add_disks(sim::Host& host) {
  host.add_disk("/data");
  host.add_disk("/redo");
  host.add_disk("/arch");
  host.add_disk("/backup");
}

}  // namespace

int main() {
  // Two machines sharing one virtual clock, joined by a network link —
  // the paper's testbed.
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);
  sim::Host primary_host("primary", &clock);
  sim::Host standby_host("standby", &clock);
  add_disks(primary_host);
  add_disks(standby_host);
  sim::NetworkLink link;

  engine::DatabaseConfig cfg;
  cfg.redo.file_size_bytes = 1 * 1024 * 1024;  // small: little exposed redo
  cfg.redo.groups = 3;
  cfg.redo.archive_mode = true;  // a standby requires ARCHIVELOG
  cfg.checkpoint_timeout = 60 * kSecond;

  // Primary with a loaded TPC-C database.
  auto primary = std::make_unique<engine::Database>(&primary_host, &sched,
                                                    cfg);
  VDB_CHECK(primary->create().is_ok());
  VDB_CHECK(primary->create_tablespace("TPCC", {{"/data/tpcc01.dbf", 512},
                                                {"/data/tpcc02.dbf", 512}})
                .is_ok());
  auto user = primary->create_user("TPCC", false);
  VDB_CHECK(user.is_ok());

  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 100;
  scale.items = 1000;
  scale.initial_orders_per_district = 100;
  tpcc::TpccDb tdb(scale);
  VDB_CHECK(tdb.create_schema(*primary, "TPCC", user.value()).is_ok());
  VDB_CHECK(tdb.attach(primary.get()).is_ok());
  tpcc::Loader loader(&tdb, 2002);
  VDB_CHECK(loader.load().is_ok());

  // Instantiate the standby from a backup and wire archive shipping.
  recovery::BackupManager backups(&primary_host.fs(), "/backup");
  standby::StandbyConfig scfg;
  scfg.db = cfg;
  standby::StandbyDatabase standby(&standby_host, &sched, scfg, &link);
  VDB_CHECK(standby.instantiate_from(*primary, backups).is_ok());
  primary->archiver().on_archived = [&](const std::string& path,
                                        std::uint64_t seq, SimTime done_at) {
    standby.on_primary_archive(primary_host.fs(), path, seq, done_at);
  };

  // Run the workload, then pull the plug on the primary.
  tpcc::Driver driver(&tdb, &sched, tpcc::DriverConfig{2002});
  const SimTime start = clock.now();
  VDB_CHECK(driver.run_until(start + 3 * kMinute).is_ok());
  std::printf("primary processed %llu commits; standby applied %llu archives\n",
              static_cast<unsigned long long>(driver.stats().committed),
              static_cast<unsigned long long>(standby.archives_applied()));

  VDB_CHECK(primary->shutdown_abort().is_ok());
  std::printf("primary crashed at t=%s\n",
              format_duration(clock.now() - start).c_str());

  // Failover: clients reattach to the standby.
  VDB_CHECK(tdb.attach(&standby.db()).is_ok());
  const SimTime failover_start = clock.now();
  auto activation = standby.activate();
  VDB_CHECK(activation.is_ok());
  std::printf("standby active after %s; applied up to LSN %llu\n",
              format_duration(clock.now() - failover_start).c_str(),
              static_cast<unsigned long long>(
                  activation.value().recovered_to));

  const std::uint64_t lost =
      driver.count_lost(activation.value().recovered_to, clock.now());
  std::printf("committed transactions lost on failover: %llu "
              "(the primary's unarchived redo tail)\n",
              static_cast<unsigned long long>(lost));

  // The surviving state passes every TPC-C consistency condition.
  tpcc::ConsistencyChecker checker(&tdb);
  auto report = checker.run_all();
  VDB_CHECK(report.is_ok());
  std::printf("consistency: %u checks, %u violations\n",
              report.value().checks_run, report.value().violations);

  // And the new primary takes transactions.
  VDB_CHECK(driver.run_until(clock.now() + 30 * kSecond).is_ok());
  std::printf("workload resumed on the standby: %llu total commits\n",
              static_cast<unsigned long long>(driver.stats().committed));
  return report.value().violations == 0 ? 0 : 1;
}
