// Pure TPC-C performance run: the per-interval throughput series the
// paper's performance figures are built from, including the cold-cache
// ramp-up over the first intervals.
//
// Build & run:  cmake --build build && ./build/examples/tpcc_performance
#include <cstdio>

#include "benchmark/experiment.hpp"
#include "recovery/backup.hpp"
#include "tpcc/tpcc_driver.hpp"
#include "tpcc/tpcc_loader.hpp"

using namespace vdb;
using namespace vdb::bench;

int main(int argc, char** argv) {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F40G3T10", 40, 3, 600};
  opts.archive_mode = argc > 1 && std::string(argv[1]) == "--archive";
  opts.duration = 10 * kMinute;

  std::printf("TPC-C run: config %s, archive %s, %u warehouses, %s\n\n",
              opts.config.name, opts.archive_mode ? "on" : "off",
              opts.scale.warehouses,
              format_duration(opts.duration).c_str());

  Experiment experiment(opts);
  auto result = experiment.run();
  if (!result.is_ok()) {
    std::printf("experiment failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  const ExperimentResult& r = result.value();

  std::printf("throughput series (New-Order commits per %s interval):\n",
              format_duration(r.series_interval).c_str());
  for (size_t i = 0; i < r.series.size(); ++i) {
    const double tpmc = static_cast<double>(r.series[i]) * 60.0 /
                        to_seconds(r.series_interval);
    std::printf("  t=%4us  %5u txns  %7.1f tpmC  |%s\n",
                static_cast<unsigned>(i * to_seconds(r.series_interval)),
                r.series[i], tpmc,
                std::string(static_cast<size_t>(tpmc / 25), '#').c_str());
  }

  std::printf("\noverall: %.1f tpmC (%llu commits, %llu business rollbacks, "
              "%llu checkpoints, %llu log switches)\n",
              r.tpmc, static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.intentional_rollbacks),
              static_cast<unsigned long long>(r.full_checkpoints),
              static_cast<unsigned long long>(r.log_switches));
  std::printf("integrity: %u checks, %u violations\n", r.integrity_checks,
              r.integrity_violations);

  // Response-time report (TPC-C clause 5.5 style), from a direct run.
  {
    sim::VirtualClock clock;
    sim::Scheduler sched(&clock);
    sim::Host host("rt", &clock);
    host.add_disk("/data");
    host.add_disk("/redo");
    host.add_disk("/arch");
    host.add_disk("/backup");
    engine::DatabaseConfig cfg;
    auto db = std::make_unique<engine::Database>(&host, &sched, cfg);
    VDB_CHECK(db->create().is_ok());
    VDB_CHECK(db->create_tablespace("TPCC", {{"/data/t1.dbf", 512},
                                             {"/data/t2.dbf", 512}})
                  .is_ok());
    auto user = db->create_user("TPCC", false);
    tpcc::TpccDb tdb(opts.scale);
    VDB_CHECK(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
    VDB_CHECK(tdb.attach(db.get()).is_ok());
    tpcc::Loader loader(&tdb, 77);
    VDB_CHECK(loader.load().is_ok());
    tpcc::Driver driver(&tdb, &sched, tpcc::DriverConfig{77});
    VDB_CHECK(driver.run_until(clock.now() + 2 * kMinute).is_ok());

    std::printf("\nresponse times (mean / 90th percentile):\n");
    for (tpcc::TxnType type :
         {tpcc::TxnType::kNewOrder, tpcc::TxnType::kPayment,
          tpcc::TxnType::kOrderStatus, tpcc::TxnType::kDelivery,
          tpcc::TxnType::kStockLevel}) {
      std::printf("  %-12s %8s / %8s\n", tpcc::to_string(type),
                  format_duration(driver.mean_response(type)).c_str(),
                  format_duration(
                      driver.response_percentile(type, 0.9)).c_str());
    }
  }
  return 0;
}
