#!/usr/bin/env bash
# Smoke-runs every bench binary in quick mode on a 2-worker pool and checks
# that each one exits cleanly AND drops its machine-readable JSON into
# results/. Wired as a ctest entry so tier-1 catches runner regressions
# (pool wedges, collection-order bugs, missing JSON).
#
# Usage: bench_smoke.sh [bench-binary-dir] [results-out-dir]
#   bench-binary-dir defaults to ./build/bench relative to the repo root.
#   When results-out-dir is given, the results/*.json drops are copied
#   there before the scratch dir is removed (CI uploads them as artifacts
#   and validates them with scripts/check_results.py).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_dir="${1:-$repo_root/build/bench}"
results_out="${2:-}"

if [ ! -d "$bench_dir" ]; then
  echo "bench_smoke: no such bench dir: $bench_dir" >&2
  exit 1
fi
# Absolutize before the cd into the scratch dir below.
bench_dir="$(cd "$bench_dir" && pwd)"

if [ -n "$results_out" ]; then
  mkdir -p "$results_out"
  results_out="$(cd "$results_out" && pwd)"
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

export VDB_QUICK=1
export VDB_JOBS=2

benches="tables12 table3 figure4 figure5 table4 table5 figure6 figure7 \
ablation extension_twofault corruption fleet cc"

failed=0
for name in $benches; do
  bin="$bench_dir/bench_$name"
  if [ ! -x "$bin" ]; then
    echo "bench_smoke: FAIL bench_$name (binary missing: $bin)"
    failed=1
    continue
  fi
  echo "bench_smoke: running bench_$name ..."
  if ! "$bin" > "bench_$name.out" 2>&1; then
    echo "bench_smoke: FAIL bench_$name (non-zero exit)"
    tail -20 "bench_$name.out"
    failed=1
    continue
  fi
  if [ ! -s "results/bench_$name.json" ]; then
    echo "bench_smoke: FAIL bench_$name (missing results/bench_$name.json)"
    failed=1
    continue
  fi
  echo "bench_smoke: OK   bench_$name"
done

# Restart-mode smoke: the table3 matrix again under the on-demand (M3)
# restart scheme, driving the early-open engine path (lazy page recovery,
# trickle sweeper, commit_lsn-clamped checkpoints) through every
# configuration. Runs in its own scratch subdir so the plain pass's JSON
# stays the canonical bench_table3 artifact; the m3 drop is copied out
# under its own name for check_results.py.
echo "bench_smoke: running bench_table3 (VDB_RESTART_MODE=m3) ..."
mkdir -p m3_smoke
if ! (cd m3_smoke && VDB_RESTART_MODE=m3 "$bench_dir/bench_table3" \
    > ../bench_table3_m3.out 2>&1); then
  echo "bench_smoke: FAIL bench_table3 m3 (non-zero exit)"
  tail -20 bench_table3_m3.out
  failed=1
elif [ ! -s m3_smoke/results/bench_table3.json ]; then
  echo "bench_smoke: FAIL bench_table3 m3 (missing JSON drop)"
  failed=1
else
  mkdir -p results
  cp m3_smoke/results/bench_table3.json results/bench_table3_m3.json
  echo "bench_smoke: OK   bench_table3 m3"
fi

# bench_micro is google-benchmark: emit its JSON via the native flag.
micro="$bench_dir/bench_micro"
if [ ! -x "$micro" ]; then
  echo "bench_smoke: FAIL bench_micro (binary missing: $micro)"
  failed=1
else
  echo "bench_smoke: running bench_micro ..."
  mkdir -p results
  if ! "$micro" --benchmark_min_time=0.05 \
      --benchmark_out=results/bench_micro.json \
      --benchmark_out_format=json > bench_micro.out 2>&1; then
    echo "bench_smoke: FAIL bench_micro (non-zero exit)"
    tail -20 bench_micro.out
    failed=1
  elif [ ! -s results/bench_micro.json ]; then
    echo "bench_smoke: FAIL bench_micro (missing results/bench_micro.json)"
    failed=1
  else
    echo "bench_smoke: OK   bench_micro"
  fi
fi

if [ -n "$results_out" ] && [ -d results ]; then
  cp results/bench_*.json "$results_out"/ 2>/dev/null || true
  echo "bench_smoke: results copied to $results_out"
fi

if [ "$failed" -ne 0 ]; then
  echo "bench_smoke: FAILED"
  exit 1
fi
echo "bench_smoke: all bench binaries passed"
