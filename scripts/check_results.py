#!/usr/bin/env python3
"""Validate the machine-readable bench output in a results/ directory.

Checks, per results/bench_*.json file:
  - the file parses as JSON;
  - bench_micro.json (google-benchmark native schema) has a non-empty
    "benchmarks" array;
  - every other file is a BenchRun drop: a "runs" array where every
    successful run carries a "metrics" statistics snapshot with the
    expected top-level sections;
  - recovered fault runs decompose: the non-detection entries of
    "recovery_phase_us" sum to "recovery_seconds" (the phase spans tile
    the recovery trace, so the match is exact up to the JSON float
    rounding of the headline);
  - bench_fleet.json (sharded-fleet faultload schema) has per-run
    shard_count >= 2, integer promotions / in_doubt_resolved counters, a
    per-shard lost-transaction vector of matching length, and — the hard
    invariant — zero cross-shard atomicity violations;
  - bench_cc.json (concurrency-control study) additionally has a valid
    cc_protocol, workers >= 1, non-negative abort / retry counters, and
    — since workers=1 never engages the coordinator — tpmC > 0 with zero
    aborts on every single-worker row.

Exit status 0 = all files pass; 1 = any check failed or no files found.

Usage: check_results.py [results-dir]   (default: ./results)
"""

import json
import pathlib
import sys

METRIC_SECTIONS = ("counters", "gauges", "wait_events", "histograms",
                   "recovery")
RESTART_MODES = ("m1_traditional", "m2_early_open", "m3_on_demand",
                 "m4_mixed")
# recovery_seconds is printed with 6 significant digits, so a 600 s
# headline carries up to 5e-4 s of rounding; one simulated tick is 1e-6 s.
HEADLINE_TOLERANCE_SECONDS = 1e-3


def check_micro(path: pathlib.Path, doc: dict) -> list[str]:
    errors = []
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append(f"{path}: no benchmarks recorded")
    return errors


def check_fleet(path: pathlib.Path, doc: dict) -> list[str]:
    errors = []
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return [f"{path}: no runs array"]
    for run in runs:
        label = run.get("label", "<unlabelled>")
        if not run.get("ok", False):
            errors.append(f"{path}: run '{label}' not ok: "
                          f"{run.get('error', 'unknown error')}")
            continue
        shard_count = run.get("shard_count")
        if not isinstance(shard_count, int) or shard_count < 2:
            errors.append(f"{path}: run '{label}' shard_count "
                          f"{shard_count!r} is not an integer >= 2")
        for field in ("promotions", "in_doubt_resolved",
                      "atomicity_violations", "lost_committed"):
            value = run.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"{path}: run '{label}' {field} {value!r} is "
                              f"not a non-negative integer")
        # The benchmark's hard zero: a gtxn must never commit on one shard
        # and abort on another, whatever the faultload did.
        if run.get("atomicity_violations") != 0:
            errors.append(f"{path}: run '{label}' reports "
                          f"{run.get('atomicity_violations')!r} cross-shard "
                          "atomicity violations (must be 0)")
        lost = run.get("lost_per_shard")
        if not isinstance(lost, list) or (isinstance(shard_count, int)
                                          and len(lost) != shard_count):
            errors.append(f"{path}: run '{label}' lost_per_shard "
                          f"{lost!r} does not cover every shard")
        if run.get("fault_injected") and not run.get("recovered"):
            errors.append(f"{path}: run '{label}' injected a fault but the "
                          "fleet never recovered")
    return errors


def check_bench_run(path: pathlib.Path, doc: dict) -> list[str]:
    errors = []
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return [f"{path}: no runs array"]
    if not runs:
        # Some benches (e.g. tables12 in quick mode) drive the workload
        # directly rather than through the experiment runner; an empty
        # runs array is fine as long as the header agrees.
        if doc.get("experiments") != 0:
            return [f"{path}: runs empty but header declares "
                    f"{doc.get('experiments')!r} experiments"]
        return []
    for run in runs:
        label = run.get("label", "<unlabelled>")
        if not run.get("ok", False):
            # Harness failures abort the bench before JSON is written, but
            # be defensive: a recorded failure is a check failure too.
            errors.append(f"{path}: run '{label}' not ok: "
                          f"{run.get('error', 'unknown error')}")
            continue
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{path}: run '{label}' missing metrics snapshot")
            continue
        for section in METRIC_SECTIONS:
            if section not in metrics:
                errors.append(f"{path}: run '{label}' metrics missing "
                              f"'{section}'")
        # Restart-mode study fields ride on every row: the configured mode
        # and the open / first-commit split of the recovery time.
        if run.get("restart_mode") not in RESTART_MODES:
            errors.append(f"{path}: run '{label}' restart_mode "
                          f"{run.get('restart_mode')!r} not one of "
                          f"{RESTART_MODES}")
        for field in ("open_time_us", "first_commit_us"):
            value = run.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"{path}: run '{label}' {field} "
                              f"{value!r} is not a non-negative integer")
        if (isinstance(run.get("open_time_us"), int)
                and isinstance(run.get("first_commit_us"), int)
                and run["open_time_us"] > run["first_commit_us"]):
            errors.append(f"{path}: run '{label}' opens after its first "
                          f"commit ({run['open_time_us']} > "
                          f"{run['first_commit_us']} us)")
        if not run.get("fault_injected") or not run.get("recovered"):
            continue
        phases = run.get("recovery_phase_us")
        headline = float(run.get("recovery_seconds", 0.0))
        if not isinstance(phases, dict) or not phases:
            # A fault absorbed without a recovery procedure (e.g. transient
            # I/O glitches retried away) has nothing to decompose.
            if headline <= HEADLINE_TOLERANCE_SECONDS:
                continue
            errors.append(f"{path}: recovered run '{label}' has no "
                          "recovery_phase_us decomposition")
            continue
        phase_sum = sum(v for k, v in phases.items() if k != "detection")
        if abs(phase_sum / 1e6 - headline) > HEADLINE_TOLERANCE_SECONDS:
            errors.append(
                f"{path}: run '{label}' phase spans sum to "
                f"{phase_sum / 1e6:.6f}s but recovery_seconds is "
                f"{headline:.6f}s")
    return errors


def check_cc(path: pathlib.Path, doc: dict) -> list[str]:
    """bench_cc.json: the generic BenchRun checks plus the concurrency
    fields the coordinator study reports on every row."""
    errors = check_bench_run(path, doc)
    for run in doc.get("runs") or []:
        label = run.get("label", "<unlabelled>")
        if not run.get("ok", False):
            continue  # already reported by check_bench_run
        if run.get("cc_protocol") not in ("2pl", "occ"):
            errors.append(f"{path}: run '{label}' cc_protocol "
                          f"{run.get('cc_protocol')!r} not one of "
                          "('2pl', 'occ')")
        workers = run.get("workers")
        if not isinstance(workers, int) or workers < 1:
            errors.append(f"{path}: run '{label}' workers {workers!r} is "
                          "not an integer >= 1")
        for field in ("aborts", "retries", "wait_die_aborts",
                      "occ_validate_fails", "cc_lock_waits"):
            value = run.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"{path}: run '{label}' {field} {value!r} is "
                              f"not a non-negative integer")
        # workers=1 never engages the coordinator: the run is the serial
        # driver bit for bit, so it must make progress and never abort.
        if workers == 1:
            if not (isinstance(run.get("tpmc"), (int, float))
                    and run["tpmc"] > 0):
                errors.append(f"{path}: run '{label}' at workers=1 reports "
                              f"tpmc {run.get('tpmc')!r} (must be > 0)")
            if run.get("aborts") != 0:
                errors.append(f"{path}: run '{label}' at workers=1 reports "
                              f"{run.get('aborts')!r} aborts (must be 0)")
    return errors


def main() -> int:
    results_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    files = sorted(results_dir.glob("bench_*.json"))
    if not files:
        print(f"check_results: no bench_*.json files in {results_dir}",
              file=sys.stderr)
        return 1

    errors = []
    for path in files:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: unreadable or invalid JSON: {exc}")
            continue
        if path.name == "bench_micro.json":
            errors.extend(check_micro(path, doc))
        elif path.name == "bench_fleet.json":
            errors.extend(check_fleet(path, doc))
        elif path.name == "bench_cc.json":
            errors.extend(check_cc(path, doc))
        else:
            errors.extend(check_bench_run(path, doc))
        print(f"check_results: checked {path}")

    for message in errors:
        print(f"check_results: FAIL {message}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_results: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
