#!/usr/bin/env bash
# Shared CI dependency install step — every workflow job sources the same
# package list instead of copy-pasting its own apt-get invocation.
#
# Usage: ci_install_deps.sh [extra-packages...]
set -eu

sudo apt-get update
sudo apt-get install -y --no-install-recommends \
  cmake ninja-build ccache libgtest-dev libbenchmark-dev "$@"
