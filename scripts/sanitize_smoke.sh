#!/usr/bin/env bash
# Builds the tree under a sanitizer (-DVDB_SANITIZE=...) in a throwaway
# build dir and runs the unit-test suite under it. The redo pipeline's
# arena reuse and the parallel replay workers are exactly the code most
# worth running under ASan/TSan, so this is the quick gate to run after
# touching src/wal or src/engine/replay_plan.*.
#
# Usage: sanitize_smoke.sh [address|thread] [extra ctest args...]
#   Default sanitizer: address. Build dir: ./build-san-<sanitizer>.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
san="${1:-address}"
shift || true

case "$san" in
  address|thread) ;;
  *)
    echo "sanitize_smoke: sanitizer must be 'address' or 'thread', got: $san" >&2
    exit 1
    ;;
esac

build_dir="$repo_root/build-san-$san"

cmake -B "$build_dir" -S "$repo_root" -DVDB_SANITIZE="$san" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

# bench_smoke re-runs every bench binary — far too slow under a sanitizer;
# the unit and integration tests already exercise the same code paths.
cd "$build_dir"
ctest --output-on-failure -E bench_smoke "$@"
