#include "benchmark/experiment.hpp"

#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/database.hpp"
#include "recovery/backup.hpp"
#include "recovery/recovery_manager.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "standby/standby.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_driver.hpp"
#include "tpcc/tpcc_loader.hpp"

namespace vdb::bench {

namespace {

void add_standard_disks(sim::Host& host) {
  // The paper's testbed: four disks per server. Data, online redo, archive
  // destination, and backup area each get their own device.
  host.add_disk("/data");
  host.add_disk("/redo");
  host.add_disk("/arch");
  host.add_disk("/backup");
}

engine::DatabaseConfig make_db_config(const ExperimentOptions& opts) {
  engine::DatabaseConfig cfg;
  cfg.name = "tpcc";
  cfg.redo.file_size_bytes =
      static_cast<std::uint64_t>(opts.config.file_mb) * 1024 * 1024;
  cfg.redo.groups = opts.config.groups;
  cfg.redo.archive_mode = opts.archive_mode || opts.with_standby;
  cfg.checkpoint_timeout =
      static_cast<SimDuration>(opts.config.timeout_sec) * kSecond;
  cfg.storage.cache_pages = opts.cache_pages;
  cfg.restart_mode = opts.restart_mode;
  cfg.early_open_stall = opts.early_open_stall;
  cfg.cc_protocol = opts.cc_protocol;
  return cfg;
}

}  // namespace

Result<ExperimentResult> Experiment::run() {
  sim::VirtualClock clock;
  sim::Scheduler sched(&clock);
  sim::Host primary("primary", &clock);
  add_standard_disks(primary);

  // The experiment owns the statistics area so counters, wait events and
  // the recovery trace survive crash-restart incarnation swaps (each
  // restart builds a new Database that registers into the same registry).
  // A configured standby shares it too: its engine merges into the same
  // counters, and stand-by activation extends the same recovery trace.
  auto stats_area = std::make_unique<obs::Observability>();
  engine::DatabaseConfig cfg = make_db_config(opts_);
  cfg.obs = stats_area.get();
  auto db = std::make_unique<engine::Database>(&primary, &sched, cfg);
  VDB_RETURN_IF_ERROR(db->create());

  // TPCC tablespace spread over the data disk's files.
  std::vector<std::pair<std::string, std::uint32_t>> files;
  for (std::uint32_t i = 0; i < opts_.datafiles; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "/data/tpcc%02u.dbf", i + 1);
    files.emplace_back(buf, opts_.datafile_blocks);
  }
  auto ts = db->create_tablespace("TPCC", files);
  if (!ts.is_ok()) return ts.status();
  auto user = db->create_user("TPCC", /*is_dba=*/false);
  if (!user.is_ok()) return user.status();

  tpcc::TpccDb tdb(opts_.scale);
  VDB_RETURN_IF_ERROR(tdb.create_schema(*db, "TPCC", user.value()));
  VDB_RETURN_IF_ERROR(tdb.attach(db.get()));
  tpcc::Loader loader(&tdb, opts_.seed ^ 0x10ad5eedull);
  auto load = loader.load();
  if (!load.is_ok()) return load.status();

  recovery::BackupManager backups(&primary.fs(), "/backup");
  recovery::RecoveryManager rm(&primary, &sched, &backups);

  std::unique_ptr<sim::Host> standby_host;
  std::unique_ptr<sim::NetworkLink> link;
  std::unique_ptr<standby::StandbyDatabase> sb;
  if (opts_.with_standby) {
    standby_host = std::make_unique<sim::Host>("standby", &clock);
    add_standard_disks(*standby_host);
    link = std::make_unique<sim::NetworkLink>();
    standby::StandbyConfig scfg;
    scfg.db = cfg;
    sb = std::make_unique<standby::StandbyDatabase>(standby_host.get(),
                                                    &sched, scfg, link.get());
    VDB_RETURN_IF_ERROR(sb->instantiate_from(*db, backups));
    db->archiver().on_archived = [&](const std::string& path,
                                     std::uint64_t seq, SimTime done_at) {
      sb->on_primary_archive(primary.fs(), path, seq, done_at);
    };
  } else {
    auto backup = backups.take_backup(*db);
    if (!backup.is_ok()) return backup.status();
  }

  tpcc::DriverConfig dcfg;
  dcfg.seed = opts_.seed;
  dcfg.workers = opts_.workers;
  dcfg.cc_protocol = opts_.cc_protocol;
  tpcc::Driver driver(&tdb, &sched, dcfg);

  const SimTime start = clock.now();
  const SimTime end = start + opts_.duration;
  ExperimentResult result;
  result.workload_start = start;
  result.restart_mode = engine::to_string(opts_.restart_mode);

  const Lsn redo_start_lsn = db->redo().next_lsn();
  auto accumulate_engine = [&](engine::Database& d) {
    result.full_checkpoints += d.stats().full_checkpoints;
    result.incremental_checkpoints += d.stats().incremental_checkpoints;
    result.log_switches += d.redo().switch_count();
    result.log_stall_time += d.redo().stall_time();
    result.io_retries += d.storage().retry_stats().retries;
    result.io_retry_exhausted += d.storage().retry_stats().exhausted;
  };

  // Shared recovery epilogue: account lost transactions and resume the
  // workload, timing recovery to the first post-procedure commit.
  auto finish_recovery = [&](bool procedure_ok, SimTime recovery_start,
                             Lsn recovered_to,
                             SimTime failure_time) -> Status {
    // The recovery procedure proper is over: the database is open for
    // service (or the procedure failed). Everything from here to the first
    // post-recovery commit belongs to the resume phase; the span is left
    // OPEN (entered, not exited) so early-open restart modes can interleave
    // on_demand spans into it while the workload runs.
    obs::RecoveryTracer& tracer = stats_area->tracer();
    const SimTime open_at = clock.now();
    if (tracer.active()) {
      tracer.enter(obs::RecoveryPhase::kResume, open_at);
    }
    if (procedure_ok) {
      result.open_time = open_at > recovery_start ? open_at - recovery_start
                                                  : 0;
    } else {
      result.open_time = end > recovery_start ? end - recovery_start : 0;
    }
    if (!procedure_ok) {
      // Nothing was recovered: every committed write transaction is lost.
      recovered_to = 0;
      result.recovery_complete = false;
    }
    result.lost_committed = driver.count_lost(recovered_to, failure_time);

    if (procedure_ok) {
      // "Recovery time" ends when transaction processing is reestablished
      // from the end-user's point of view: the first commit after the
      // procedure started.
      const size_t commits_before = driver.commits().size();
      Status resume = driver.run_until(end);
      if (driver.commits().size() > commits_before) {
        result.recovered = true;
        const SimTime first_commit =
            driver.commits()[commits_before].commit_time;
        result.recovery_time = first_commit - recovery_start;
        result.first_commit_time = result.recovery_time;
        if (tracer.active()) tracer.finish(first_commit);
      } else {
        // Out of experiment window before service came back — the
        // paper's ">600 s" cells.
        result.recovered = false;
        result.recovery_time =
            end > recovery_start ? end - recovery_start : 0;
        result.first_commit_time = result.recovery_time;
        if (tracer.active()) tracer.finish(clock.now());
      }
      if (!resume.is_ok() && clock.now() < end) {
        return make_error(resume.code(), "post-recovery workload failed: " +
                                             resume.message());
      }
    } else {
      result.recovered = false;
      result.recovery_time = end > recovery_start ? end - recovery_start : 0;
      result.first_commit_time = result.recovery_time;
      if (tracer.active()) tracer.finish(clock.now());
    }
    return Status::ok();
  };

  // Opens the recovery trace at the instant the failure surfaced to the
  // end-user; the detection span then runs exactly until the procedure
  // starts, so later phases tile [recovery_start, first commit].
  auto begin_trace = [&](const char* label, SimTime failure_time) {
    obs::RecoveryTracer& tracer = stats_area->tracer();
    tracer.start(label, failure_time);
    tracer.enter(obs::RecoveryPhase::kDetection, failure_time);
  };

  // DBVERIFY + BLOCKRECOVER: scan every live datafile and repair each bad
  // block from the backup + redo chain, with the datafile kept online.
  auto repair_corrupt_blocks = [&](engine::Database& d) -> Status {
    std::vector<PageId> bad;
    for (const auto& file : d.storage().files()) {
      if (file.dropped || file.status == storage::FileStatus::kMissing) {
        continue;
      }
      auto report = d.storage().verify_file(file.id);
      if (!report.is_ok()) return report.status();
      for (const auto& block : report.value().bad) bad.push_back(block.page);
    }
    result.bad_blocks_found += bad.size();
    for (PageId pid : bad) {
      auto rep = rm.recover_block(d, pid);
      if (!rep.is_ok()) return rep.status();
      result.blocks_repaired += rep.value().blocks_restored;
      result.archives_read += rep.value().archives_read;
    }
    return Status::ok();
  };

  if (!opts_.fault.has_value() && !opts_.storage_fault.has_value()) {
    Status st = driver.run_until(end);
    if (!st.is_ok()) {
      return make_error(st.code(),
                        "workload failed without fault: " + st.message());
    }
  } else if (opts_.storage_fault.has_value()) {
    const faults::ExtendedFaultSpec& sfault = *opts_.storage_fault;
    const SimTime fault_time = start + opts_.storage_inject_at;
    Status pre = driver.run_until(fault_time);
    if (!pre.is_ok()) {
      return make_error(pre.code(),
                        "pre-fault workload failed: " + pre.message());
    }

    faults::ExtendedFaultInjector injector(&backups);
    VDB_RETURN_IF_ERROR(injector.inject(*db, sfault));
    result.fault_injected = true;
    result.fault_time = clock.now();

    if (sfault.type == faults::ExtendedFaultType::kSilentPageCorruption) {
      // The cached copy would mask the on-disk damage; evict it so the next
      // reference takes a fetch miss and trips verify-on-read.
      if (injector.last_target_page().valid()) {
        db->storage().cache().discard_page(injector.last_target_page());
      }
    } else if (sfault.type == faults::ExtendedFaultType::kTornPageWrite) {
      // Make the armed tear fire (the checkpoint sweep writes the file),
      // then crash: the classic torn-page-at-power-loss scenario.
      (void)db->checkpoint_now();
      (void)db->shutdown_abort();
    }

    Status failure = driver.run_until(end);
    if (failure.is_ok()) {
      // The fault never surfaced — transient errors fully absorbed by the
      // bounded retry, or the torn write landed on unchanged bytes.
      result.recovered = true;
    } else {
      const SimTime failure_time = clock.now();
      result.detection_delay = opts_.detection_time;
      begin_trace("storage recovery", failure_time);
      clock.advance_by(opts_.detection_time);
      const SimTime recovery_start = clock.now();
      stats_area->tracer().enter(obs::RecoveryPhase::kRestore, recovery_start);

      Lsn recovered_to = std::numeric_limits<Lsn>::max();  // complete
      bool procedure_ok = true;

      switch (sfault.type) {
        case faults::ExtendedFaultType::kSilentPageCorruption: {
          // Online repair: the datafile stays online; only the bad block is
          // restored from backup and rolled forward.
          Status repair = repair_corrupt_blocks(*db);
          if (!repair.is_ok()) procedure_ok = false;
          break;
        }
        case faults::ExtendedFaultType::kTornPageWrite: {
          accumulate_engine(*db);
          auto fresh =
              std::make_unique<engine::Database>(&primary, &sched, cfg);
          fresh->set_on_mounted(
              [&](engine::Database& d) { (void)tdb.attach(&d); });
          // Instance recovery replays from the tearing checkpoint onward,
          // which never revisits the torn block — repair it from the
          // backup before the rebuild scan reads it.
          fresh->set_post_recovery_hook(
              [&](engine::Database& d) { return repair_corrupt_blocks(d); });
          Status up = fresh->startup();
          if (!up.is_ok()) {
            procedure_ok = false;
          } else {
            db = std::move(fresh);
          }
          break;
        }
        case faults::ExtendedFaultType::kTransientIoErrors: {
          // Retry budget exhausted inside the glitch window: wait out the
          // rest of the window, then resume — nothing on disk is damaged.
          const SimTime window_end = result.fault_time + sfault.error_window;
          if (clock.now() < window_end) {
            clock.advance_by(window_end - clock.now());
          }
          break;
        }
        default:
          procedure_ok = false;
          break;
      }

      VDB_RETURN_IF_ERROR(finish_recovery(procedure_ok, recovery_start,
                                          recovered_to, failure_time));
    }
  } else {
    const faults::FaultSpec& fault = *opts_.fault;
    const SimTime fault_time = start + fault.inject_at;

    if (opts_.latent_fault.has_value()) {
      const SimTime latent_time =
          std::min(start + opts_.latent_inject_at, fault_time);
      Status pre = driver.run_until(latent_time);
      if (!pre.is_ok()) {
        return make_error(pre.code(),
                          "pre-latent workload failed: " + pre.message());
      }
      faults::ExtendedFaultInjector latent_injector(&backups);
      VDB_RETURN_IF_ERROR(latent_injector.inject(*db, *opts_.latent_fault));
    }

    Status st = driver.run_until(fault_time);
    if (!st.is_ok()) {
      return make_error(st.code(), "pre-fault workload failed: " + st.message());
    }

    faults::FaultInjector injector;
    // Resolve the datafile target before the fault destroys metadata.
    FileId target_file = FileId::invalid();
    if (fault.type == faults::FaultType::kDeleteDatafile ||
        fault.type == faults::FaultType::kSetDatafileOffline) {
      auto fid = faults::FaultInjector::target_datafile(*db, fault);
      if (!fid.is_ok()) return fid.status();
      target_file = fid.value();
    }
    VDB_RETURN_IF_ERROR(injector.inject(*db, fault));
    result.fault_injected = true;
    result.fault_time = clock.now();

    // Run on: the failure surfaces at the end-user when a transaction hits
    // the damage.
    Status failure = driver.run_until(end);
    if (failure.is_ok()) {
      // The fault never became user-visible within the window (does not
      // happen for the six benchmark faults, but keep the accounting sane).
      result.recovered = true;
    } else {
      const SimTime failure_time = clock.now();
      result.detection_delay = opts_.detection_time;
      begin_trace(opts_.with_standby ? "standby activation"
                                     : "operator fault recovery",
                  failure_time);
      clock.advance_by(opts_.detection_time);
      const SimTime recovery_start = clock.now();
      stats_area->tracer().enter(obs::RecoveryPhase::kRestore, recovery_start);

      Lsn recovered_to = std::numeric_limits<Lsn>::max();  // complete
      bool procedure_ok = true;

      if (opts_.with_standby) {
        // Fail over to the stand-by, whatever the fault was (§5.3). The
        // broken primary is powered off.
        if (db->is_open()) (void)db->shutdown_abort();
        VDB_RETURN_IF_ERROR(tdb.attach(&sb->db()));
        auto act = sb->activate();
        if (!act.is_ok()) {
          procedure_ok = false;
        } else {
          recovered_to = act.value().recovered_to;
          result.recovery_complete = false;  // unarchived tail is lost
          result.archives_read = act.value().archives_applied;
        }
      } else {
        switch (faults::recovery_kind(fault.type)) {
          case faults::RecoveryKind::kInstanceRestart: {
            accumulate_engine(*db);
            auto fresh =
                std::make_unique<engine::Database>(&primary, &sched, cfg);
            fresh->set_on_mounted(
                [&](engine::Database& d) { (void)tdb.attach(&d); });
            Status up = fresh->startup();
            if (!up.is_ok()) {
              procedure_ok = false;
            } else {
              db = std::move(fresh);
            }
            break;
          }
          case faults::RecoveryKind::kMediaRecovery: {
            auto rep = rm.recover_datafile(*db, target_file);
            if (rep.is_ok()) {
              result.archives_read = rep.value().archives_read;
            } else if (rep.code() == ErrorCode::kUnrecoverable) {
              // §5.1: without a usable redo chain the only option is going
              // back to the last backup — losing everything since.
              accumulate_engine(*db);
              if (db->is_open()) (void)db->shutdown_abort();
              auto pit = rm.restore_to_backup(
                  cfg, [&](engine::Database& d) { (void)tdb.attach(&d); });
              if (!pit.is_ok()) {
                procedure_ok = false;
              } else {
                db = std::move(pit.value().db);
                recovered_to = pit.value().report.recovered_to;
                result.recovery_complete = false;
              }
            } else {
              procedure_ok = false;
            }
            break;
          }
          case faults::RecoveryKind::kDatafileRollForward: {
            auto rep = rm.recover_datafile_online(*db, target_file);
            if (!rep.is_ok()) procedure_ok = false;
            break;
          }
          case faults::RecoveryKind::kTablespaceOnline: {
            // The DBA types one ALTER TABLESPACE ... ONLINE. No restore
            // happens; re-enter at the same instant so the zero-length
            // restore span is dropped and the command is an open phase.
            stats_area->tracer().enter(obs::RecoveryPhase::kOpen,
                                       recovery_start);
            clock.advance_by(800 * kMillisecond);
            Status online = db->alter_tablespace_online(fault.tablespace);
            if (!online.is_ok()) procedure_ok = false;
            break;
          }
          case faults::RecoveryKind::kPointInTime: {
            accumulate_engine(*db);
            if (db->is_open()) (void)db->shutdown_abort();
            auto stop =
                fault.type == faults::FaultType::kDeleteTablespace
                    ? recovery::stop_before_drop_tablespace(fault.tablespace)
                    : recovery::stop_before_drop_table(fault.table);
            auto pit = rm.point_in_time_recover(
                cfg, stop, [&](engine::Database& d) { (void)tdb.attach(&d); });
            if (!pit.is_ok()) {
              procedure_ok = false;
            } else {
              db = std::move(pit.value().db);
              recovered_to = pit.value().report.recovered_to;
              result.archives_read = pit.value().report.archives_read;
              result.recovery_complete = false;
            }
            break;
          }
        }
      }

      VDB_RETURN_IF_ERROR(finish_recovery(procedure_ok, recovery_start,
                                          recovered_to, failure_time));
    }
  }

  // Collect measures.
  engine::Database* final_db =
      (opts_.with_standby && sb->active()) ? &sb->db() : db.get();
  if (final_db == db.get()) {
    accumulate_engine(*db);
  } else {
    accumulate_engine(*db);
    // The activated standby's own engine stats are not part of the primary
    // configuration under test.
  }
  result.redo_bytes = db->redo().next_lsn() - redo_start_lsn;
  for (const auto& disk : primary.disks()) {
    result.transient_errors += disk->stats().transient_errors;
  }

  result.tpmc = driver.tpmc(start, end);
  result.tpm_total = driver.tpm_total(start, end);
  result.committed = driver.stats().committed;
  result.intentional_rollbacks = driver.stats().intentional_rollbacks;
  result.failed_attempts = driver.stats().failed_attempts;
  result.recovery_retries = driver.stats().recovery_retries;
  result.series = driver.series();
  result.series_interval = driver.series_interval();
  result.cc_protocol = txn::to_string(opts_.cc_protocol);
  result.workers = driver.workers();
  result.cc_retries = driver.stats().cc_retries;
  const txn::CcStats ccs = driver.cc_stats();
  result.cc_aborts = ccs.aborts;
  result.wait_die_aborts = ccs.wait_die_aborts;
  result.occ_validate_fails = ccs.occ_validate_fails;
  result.cc_lock_waits = ccs.lock_waits;

  if (final_db->is_open()) {
    // Early-open restart: drain any redo still pending so the consistency
    // check (and any state comparison the caller runs) sees the fully
    // converged end state.
    VDB_RETURN_IF_ERROR(final_db->complete_restart_recovery());
    tpcc::ConsistencyChecker checker(&tdb);
    auto report = checker.run_all();
    if (!report.is_ok()) return report.status();
    result.integrity_checks = report.value().checks_run;
    result.integrity_violations = report.value().violations;
    result.integrity_messages = report.value().messages;
  }

  const obs::RecoveryTrace* trace = stats_area->tracer().latest();
  if (trace != nullptr) {
    for (size_t k = 0; k < obs::kRecoveryPhaseCount; ++k) {
      const auto phase = static_cast<obs::RecoveryPhase>(k);
      result.recovery_phases.emplace_back(obs::to_string(phase),
                                          trace->phase_time(phase));
    }
  }
  result.metrics = stats_area->snapshot();
  return result;
}

}  // namespace vdb::bench
