// The dependability-benchmark experiment runner — the paper's core
// contribution, as an executable harness.
//
// One experiment = the paper's §4 procedure: build the environment (two
// hosts, four disks each, network link), create and populate the TPC-C
// database under a given recovery configuration, take the reference backup
// (and instantiate the stand-by when configured), run the TPC-C workload
// for 20 simulated minutes, optionally inject one operator fault at its
// trigger instant, detect the failure from the driver's (end-user's) point
// of view, wait the fixed detection time, run the fault's recovery
// procedure, and resume the workload.
//
// Measures (all end-user view, per the paper):
//  - performance: tpmC and the per-interval throughput series;
//  - recovery time: recovery-procedure start → first post-recovery commit;
//  - lost transactions: committed before the failure, commit LSN above
//    what recovery salvaged;
//  - integrity violations: TPC-C consistency conditions on the recovered
//    data.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "benchmark/recovery_configs.hpp"
#include "common/status.hpp"
#include "engine/db_config.hpp"
#include "faults/extended_faults.hpp"
#include "faults/fault_injector.hpp"
#include "obs/observability.hpp"
#include "tpcc/tpcc_random.hpp"

namespace vdb::bench {

struct ExperimentOptions {
  RecoveryConfigSpec config{"F40G3T10", 40, 3, 600};
  bool archive_mode = false;
  bool with_standby = false;
  std::optional<faults::FaultSpec> fault;
  /// Optional latent first fault (extension: the paper's two-fault
  /// experiments). Injected at `latent_inject_at`; typically invisible
  /// until `fault` needs the mechanism it broke.
  std::optional<faults::ExtendedFaultSpec> latent_fault;
  SimDuration latent_inject_at = 60 * kSecond;
  /// Optional storage fault (silent page corruption, torn page write,
  /// transient I/O errors), injected at `storage_inject_at`. Mutually
  /// exclusive with `fault`. Detection happens through verify-on-read;
  /// repair through online block media recovery (no full-file restore).
  std::optional<faults::ExtendedFaultSpec> storage_fault;
  SimDuration storage_inject_at = 300 * kSecond;
  SimDuration duration = 20 * kMinute;
  /// Fixed operator detection time before the recovery procedure starts
  /// (the paper's "typical detection time"; excluded from recovery time).
  SimDuration detection_time = 10 * kSecond;
  tpcc::TpccScale scale{};
  std::uint64_t seed = 12345;
  std::uint32_t datafiles = 2;
  std::uint32_t datafile_blocks = 512;  // initial size; files autoextend
  /// Buffer cache frames (the SGA sizing knob; ablation target).
  std::uint32_t cache_pages = 2048;
  /// Instance-restart scheme (M1 traditional … M4 mixed; see RestartMode).
  /// Affects crash-recovery experiments only: early modes open the
  /// database right after log analysis and recover pages on demand / in
  /// the background.
  engine::RestartMode restart_mode = engine::RestartMode::kM1Traditional;
  /// M2: stall on pending pages instead of rejecting with
  /// kRecoveryRequired.
  bool early_open_stall = false;
  /// Terminal emulators driving the engine concurrently. 1 = the original
  /// serial closed loop (no coordinator; byte-identical results regardless
  /// of cc_protocol); >1 routes the workload through the transaction
  /// coordinator with `cc_protocol` mediating conflicts.
  unsigned workers = 1;
  txn::CcProtocol cc_protocol = txn::CcProtocol::k2pl;
};

struct ExperimentResult {
  // Performance.
  double tpmc = 0;       // New-Order commits per minute over the run
  double tpm_total = 0;  // all commits per minute
  std::uint64_t committed = 0;
  std::uint64_t intentional_rollbacks = 0;
  std::uint64_t failed_attempts = 0;
  std::vector<std::uint32_t> series;  // New-Order commits per interval
  SimDuration series_interval = 0;

  // Engine behaviour.
  std::uint64_t full_checkpoints = 0;  // Table 3's "# CKPT per experiment"
  std::uint64_t incremental_checkpoints = 0;
  std::uint64_t log_switches = 0;
  SimDuration log_stall_time = 0;
  std::uint64_t redo_bytes = 0;  // charged redo volume generated

  // Recovery measures.
  bool fault_injected = false;
  bool recovered = false;           // service restored within the window
  bool recovery_complete = true;    // false = incomplete (lossy) recovery
  SimDuration recovery_time = 0;    // procedure start → first commit
  SimDuration detection_delay = 0;  // failure surfaced → procedure start
  /// Restart-mode study (per-mode Table 3 matrix): the configured mode as
  /// a string, procedure start → database open for service, and procedure
  /// start → first post-recovery commit. For M1 open_time ≈ the full
  /// redo+undo time; early modes open far sooner and pay the difference
  /// as on-demand/background page recovery afterwards.
  std::string restart_mode = "m1_traditional";
  SimDuration open_time = 0;
  SimDuration first_commit_time = 0;
  /// Transactions bounced by the M2 early-open gate and retried.
  std::uint64_t recovery_retries = 0;
  std::uint64_t lost_committed = 0;
  std::uint64_t archives_read = 0;

  // Storage-fault measures.
  std::uint64_t io_retries = 0;          // transient errors absorbed by retry
  std::uint64_t io_retry_exhausted = 0;  // operations that ran out of budget
  std::uint64_t transient_errors = 0;    // device-level failures (DiskStats)
  std::uint64_t bad_blocks_found = 0;    // verify-scan hits
  std::uint64_t blocks_repaired = 0;     // online block media recovery

  // Integrity.
  std::uint32_t integrity_checks = 0;
  std::uint32_t integrity_violations = 0;
  /// Violation details, collected (not printed) so concurrent experiments
  /// never interleave diagnostics; the bench prints them at collection.
  std::vector<std::string> integrity_messages;

  SimTime workload_start = 0;
  SimTime fault_time = 0;

  // Concurrency control (workers > 1; zeros for the serial driver).
  std::string cc_protocol = "2pl";
  unsigned workers = 1;
  std::uint64_t cc_aborts = 0;     // protocol-initiated aborts, all causes
  std::uint64_t cc_retries = 0;    // attempts resubmitted after such aborts
  std::uint64_t wait_die_aborts = 0;
  std::uint64_t occ_validate_fails = 0;
  std::uint64_t cc_lock_waits = 0;

  // Observability (the V$-style statistics area, serialized with every
  // bench JSON row). `recovery_phases` aggregates the recorded recovery
  // trace per phase, in phase order, zeros included; because spans tile
  // the trace, the non-detection entries sum to recovery_time to the
  // simulated tick.
  obs::MetricsSnapshot metrics;
  std::vector<std::pair<std::string, SimDuration>> recovery_phases;
};

class Experiment {
 public:
  explicit Experiment(ExperimentOptions opts) : opts_(std::move(opts)) {}

  /// Builds the whole environment, runs the experiment, returns measures.
  /// An error return means the *benchmark harness* failed (not the system
  /// under test) — unrecoverable faults are reported in the result.
  Result<ExperimentResult> run();

 private:
  ExperimentOptions opts_;
};

}  // namespace vdb::bench
