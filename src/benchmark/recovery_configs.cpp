#include "benchmark/recovery_configs.hpp"

#include <cstring>

namespace vdb::bench {

namespace {

constexpr RecoveryConfigSpec kConfigs[] = {
    {"F400G3T20", 400, 3, 1200},
    {"F400G3T10", 400, 3, 600},
    {"F400G3T5", 400, 3, 300},
    {"F400G3T1", 400, 3, 60},
    {"F100G3T20", 100, 3, 1200},
    {"F100G3T10", 100, 3, 600},
    {"F100G3T5", 100, 3, 300},
    {"F100G3T1", 100, 3, 60},
    {"F40G3T10", 40, 3, 600},
    {"F40G3T5", 40, 3, 300},
    {"F40G3T1", 40, 3, 60},
    {"F10G3T5", 10, 3, 300},
    {"F10G3T1", 10, 3, 60},
    {"F1G6T1", 1, 6, 60},
    {"F1G3T1", 1, 3, 60},
    {"F1G2T1", 1, 2, 60},
};

}  // namespace

std::span<const RecoveryConfigSpec> table3_configs() { return kConfigs; }

std::span<const RecoveryConfigSpec> archive_configs() {
  // F40G3T10 .. F1G2T1 — the last eight entries.
  return std::span<const RecoveryConfigSpec>(kConfigs).subspan(8);
}

const RecoveryConfigSpec* find_config(const std::string& name) {
  for (const auto& cfg : kConfigs) {
    if (name == cfg.name) return &cfg;
  }
  return nullptr;
}

}  // namespace vdb::bench
