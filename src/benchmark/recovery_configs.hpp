// The paper's Table 3: the sixteen recovery configurations under test.
//
// Names encode the knobs: F<file MB>G<groups>T<timeout minutes>. The redo
// file size and group count shape log switching (and therefore the
// log-switch checkpoint count), the timeout shapes incremental
// checkpointing — together they span the performance/recovery trade-off
// space the paper explores.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/types.hpp"

namespace vdb::bench {

struct RecoveryConfigSpec {
  const char* name;
  std::uint32_t file_mb;
  std::uint32_t groups;
  std::uint32_t timeout_sec;
};

/// All sixteen configurations of Table 3, in the paper's order.
std::span<const RecoveryConfigSpec> table3_configs();

/// The eight configurations used for the archive-log and stand-by
/// experiments (§5.2: F40G3T10 … F1G2T1 — larger files would not archive
/// within a 20-minute run).
std::span<const RecoveryConfigSpec> archive_configs();

const RecoveryConfigSpec* find_config(const std::string& name);

}  // namespace vdb::bench
