#include "benchmark/runner.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/parallel.hpp"

namespace vdb::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

unsigned ExperimentRunner::default_jobs() { return vdb::default_jobs(); }

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : default_jobs()) {}

std::vector<ExperimentOutcome> ExperimentRunner::run_all(
    const std::vector<LabelledExperiment>& batch) {
  const std::size_t n = batch.size();
  // Slots are written once each by exactly one worker, so the vector needs
  // no lock — only parallel_for's queue cursor is shared.
  std::vector<std::optional<ExperimentOutcome>> slots(n);

  const auto batch_start = std::chrono::steady_clock::now();
  parallel_for(n, jobs_, [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    Experiment exp(batch[i].options);
    Result<ExperimentResult> result = exp.run();
    slots[i].emplace(ExperimentOutcome{batch[i].label, std::move(result),
                                       seconds_since(start)});
  });

  timing_ = RunnerTiming{};
  timing_.experiments = n;
  timing_.jobs =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, n > 0 ? n : 1));
  timing_.wall_seconds = seconds_since(batch_start);

  std::vector<ExperimentOutcome> out;
  out.reserve(n);
  for (std::optional<ExperimentOutcome>& slot : slots) {
    VDB_CHECK(slot.has_value());
    timing_.busy_seconds += slot->wall_seconds;
    timing_.max_experiment_seconds =
        std::max(timing_.max_experiment_seconds, slot->wall_seconds);
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace vdb::bench
