#include "benchmark/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>

namespace vdb::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

unsigned ExperimentRunner::default_jobs() {
  if (const char* env = std::getenv("VDB_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
    return 1;  // malformed or <= 0: be conservative, stay serial
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : default_jobs()) {}

std::vector<ExperimentOutcome> ExperimentRunner::run_all(
    const std::vector<LabelledExperiment>& batch) {
  const std::size_t n = batch.size();
  // Slots are written once each by exactly one worker, so the vector needs
  // no lock — only the queue cursor is shared.
  std::vector<std::optional<ExperimentOutcome>> slots(n);
  std::atomic<std::size_t> cursor{0};

  const auto batch_start = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const auto start = std::chrono::steady_clock::now();
      Experiment exp(batch[i].options);
      Result<ExperimentResult> result = exp.run();
      slots[i].emplace(ExperimentOutcome{batch[i].label, std::move(result),
                                         seconds_since(start)});
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, n > 0 ? n : 1));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  timing_ = RunnerTiming{};
  timing_.experiments = n;
  timing_.jobs = workers;
  timing_.wall_seconds = seconds_since(batch_start);

  std::vector<ExperimentOutcome> out;
  out.reserve(n);
  for (std::optional<ExperimentOutcome>& slot : slots) {
    VDB_CHECK(slot.has_value());
    timing_.busy_seconds += slot->wall_seconds;
    timing_.max_experiment_seconds =
        std::max(timing_.max_experiment_seconds, slot->wall_seconds);
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace vdb::bench
