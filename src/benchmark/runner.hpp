// Parallel experiment runner: fans a batch of independent experiments
// across a bounded pool of worker threads.
//
// The paper's results are a large matrix of isolated runs — 16 recovery
// configurations × 3 injection instants × several fault types — and each
// `Experiment` builds its own simulated hosts, disks, filesystem, and
// scheduler, sharing no mutable state with any other. That makes the
// matrix embarrassingly parallel: the runner executes experiments on
// `jobs` workers (default: hardware_concurrency, overridable via the
// VDB_JOBS environment variable) and hands the outcomes back in
// submission order, so every table or figure built from them is
// byte-identical to a serial run. Determinism inside one experiment comes
// from its seed; ordering is the only cross-experiment property to
// preserve.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "benchmark/experiment.hpp"
#include "common/status.hpp"

namespace vdb::bench {

/// One unit of work: an experiment plus the label the bench uses in its
/// tables and error messages.
struct LabelledExperiment {
  std::string label;
  ExperimentOptions options;
};

/// Per-experiment outcome. `result` carries the harness Status on failure
/// (the pool keeps draining the queue either way).
struct ExperimentOutcome {
  std::string label;
  Result<ExperimentResult> result;
  double wall_seconds = 0;  // real (host) wall-clock of this single run
};

/// Aggregate wall-clock accounting for one run_all() call.
struct RunnerTiming {
  std::size_t experiments = 0;
  unsigned jobs = 1;
  double wall_seconds = 0;            // batch start → last completion
  double busy_seconds = 0;            // sum of per-experiment wall times
  double max_experiment_seconds = 0;  // longest single run (the critical path)
  /// Effective parallel speedup over running the same batch serially.
  double speedup() const {
    return wall_seconds > 0 ? busy_seconds / wall_seconds : 0.0;
  }
};

class ExperimentRunner {
 public:
  /// jobs == 0 resolves to VDB_JOBS, falling back to hardware_concurrency.
  explicit ExperimentRunner(unsigned jobs = 0);

  /// Executes the whole batch, blocking until every experiment finished.
  /// Outcomes are returned in submission order.
  std::vector<ExperimentOutcome> run_all(
      const std::vector<LabelledExperiment>& batch);

  unsigned jobs() const { return jobs_; }
  /// Timing of the most recent run_all() call.
  const RunnerTiming& last_timing() const { return timing_; }

  /// VDB_JOBS if set (clamped to >= 1), else hardware_concurrency.
  static unsigned default_jobs();

 private:
  unsigned jobs_;
  RunnerTiming timing_;
};

}  // namespace vdb::bench
