#include "catalog/catalog.hpp"

#include <algorithm>

namespace vdb::catalog {

Result<UserId> Catalog::create_user(const std::string& name, bool is_dba) {
  for (const auto& [id, user] : users_) {
    if (user.name == name) {
      return make_error(ErrorCode::kAlreadyExists, "user " + name);
    }
  }
  UserDef user;
  user.id = UserId{next_user_id_++};
  user.name = name;
  user.is_dba = is_dba;
  const UserId id = user.id;
  users_[id.value] = std::move(user);
  return id;
}

Status Catalog::drop_user(const std::string& name) {
  for (auto it = users_.begin(); it != users_.end(); ++it) {
    if (it->second.name == name) {
      users_.erase(it);
      return Status::ok();
    }
  }
  return make_error(ErrorCode::kNotFound, "user " + name);
}

Result<const UserDef*> Catalog::find_user(const std::string& name) const {
  for (const auto& [id, user] : users_) {
    if (user.name == name) return &user;
  }
  return make_error(ErrorCode::kNotFound, "user " + name);
}

Result<TableId> Catalog::create_table(const std::string& name,
                                      TablespaceId ts,
                                      std::uint16_t slot_size, UserId owner,
                                      std::vector<ColumnDef> columns) {
  auto existing = find_table(name);
  if (existing.is_ok()) {
    return make_error(ErrorCode::kAlreadyExists, "table " + name);
  }
  TableDef def;
  def.id = TableId{next_table_id_++};
  def.name = name;
  def.tablespace = ts;
  def.slot_size = slot_size;
  def.owner = owner;
  def.columns = std::move(columns);
  const TableId id = def.id;
  tables_[id.value] = std::move(def);
  return id;
}

Status Catalog::create_table_with_id(TableId id, const std::string& name,
                                     TablespaceId ts, std::uint16_t slot_size,
                                     UserId owner) {
  if (tables_.contains(id.value)) {
    return make_error(ErrorCode::kAlreadyExists, "table id in use");
  }
  TableDef def;
  def.id = id;
  def.name = name;
  def.tablespace = ts;
  def.slot_size = slot_size;
  def.owner = owner;
  tables_[id.value] = std::move(def);
  next_table_id_ = std::max(next_table_id_, id.value + 1);
  return Status::ok();
}

Status Catalog::drop_table(TableId id) {
  if (tables_.erase(id.value) == 0) {
    return make_error(ErrorCode::kNotFound, "no such table");
  }
  return Status::ok();
}

Status Catalog::set_logging(TableId id, bool logging) {
  auto it = tables_.find(id.value);
  if (it == tables_.end()) {
    return make_error(ErrorCode::kNotFound, "no such table");
  }
  it->second.logging = logging;
  return Status::ok();
}

Result<const TableDef*> Catalog::find_table(const std::string& name) const {
  for (const auto& [id, table] : tables_) {
    if (table.name == name) return &table;
  }
  return make_error(ErrorCode::kNotFound, "table " + name);
}

Result<const TableDef*> Catalog::find_table(TableId id) const {
  auto it = tables_.find(id.value);
  if (it == tables_.end()) {
    return make_error(ErrorCode::kNotFound, "no such table");
  }
  return &it->second;
}

std::vector<const TableDef*> Catalog::tables() const {
  std::vector<const TableDef*> out;
  out.reserve(tables_.size());
  for (const auto& [id, table] : tables_) out.push_back(&table);
  std::sort(out.begin(), out.end(), [](const TableDef* a, const TableDef* b) {
    return a->id.value < b->id.value;
  });
  return out;
}

std::vector<const TableDef*> Catalog::tables_in(TablespaceId ts) const {
  std::vector<const TableDef*> out;
  for (const TableDef* table : tables()) {
    if (table->tablespace == ts) out.push_back(table);
  }
  return out;
}

std::vector<const UserDef*> Catalog::users() const {
  std::vector<const UserDef*> out;
  out.reserve(users_.size());
  for (const auto& [id, user] : users_) out.push_back(&user);
  std::sort(out.begin(), out.end(), [](const UserDef* a, const UserDef* b) {
    return a->id.value < b->id.value;
  });
  return out;
}

void Catalog::encode(Encoder& enc) const {
  enc.put_u32(next_table_id_);
  enc.put_u32(next_user_id_);
  const auto all_users = users();
  enc.put_u32(static_cast<std::uint32_t>(all_users.size()));
  for (const UserDef* user : all_users) {
    enc.put_u32(user->id.value);
    enc.put_string(user->name);
    enc.put_u8(user->is_dba ? 1 : 0);
    enc.put_u32(static_cast<std::uint32_t>(user->quotas.size()));
    for (const auto& [ts, quota] : user->quotas) {
      enc.put_u32(ts.value);
      enc.put_u32(quota);
    }
  }
  const auto all_tables = tables();
  enc.put_u32(static_cast<std::uint32_t>(all_tables.size()));
  for (const TableDef* table : all_tables) {
    enc.put_u32(table->id.value);
    enc.put_string(table->name);
    enc.put_u32(table->tablespace.value);
    enc.put_u16(table->slot_size);
    enc.put_u32(table->owner.value);
    enc.put_u8(table->logging ? 1 : 0);
    enc.put_u32(static_cast<std::uint32_t>(table->columns.size()));
    for (const ColumnDef& col : table->columns) {
      enc.put_string(col.name);
      enc.put_u8(static_cast<std::uint8_t>(col.type));
    }
  }
}

Result<Catalog> Catalog::decode(Decoder& dec) {
  Catalog cat;
  auto next_table = dec.get_u32();
  auto next_user = dec.get_u32();
  auto user_count = dec.get_u32();
  if (!next_table.is_ok() || !next_user.is_ok() || !user_count.is_ok()) {
    return Status{ErrorCode::kCorruption, "bad catalog header"};
  }
  cat.next_table_id_ = next_table.value();
  cat.next_user_id_ = next_user.value();
  for (std::uint32_t i = 0; i < user_count.value(); ++i) {
    UserDef user;
    auto id = dec.get_u32();
    auto name = dec.get_string();
    auto dba = dec.get_u8();
    auto quota_count = dec.get_u32();
    if (!id.is_ok() || !name.is_ok() || !dba.is_ok() || !quota_count.is_ok()) {
      return Status{ErrorCode::kCorruption, "bad user entry"};
    }
    user.id = UserId{id.value()};
    user.name = std::move(name).value();
    user.is_dba = dba.value() != 0;
    for (std::uint32_t q = 0; q < quota_count.value(); ++q) {
      auto ts = dec.get_u32();
      auto quota = dec.get_u32();
      if (!ts.is_ok() || !quota.is_ok()) {
        return Status{ErrorCode::kCorruption, "bad quota entry"};
      }
      user.quotas[TablespaceId{ts.value()}] = quota.value();
    }
    cat.users_[user.id.value] = std::move(user);
  }
  auto table_count = dec.get_u32();
  if (!table_count.is_ok()) {
    return Status{ErrorCode::kCorruption, "bad table count"};
  }
  for (std::uint32_t i = 0; i < table_count.value(); ++i) {
    TableDef table;
    auto id = dec.get_u32();
    auto name = dec.get_string();
    auto ts = dec.get_u32();
    auto slot = dec.get_u16();
    auto owner = dec.get_u32();
    auto logging = dec.get_u8();
    auto col_count = dec.get_u32();
    if (!id.is_ok() || !name.is_ok() || !ts.is_ok() || !slot.is_ok() ||
        !owner.is_ok() || !logging.is_ok() || !col_count.is_ok()) {
      return Status{ErrorCode::kCorruption, "bad table entry"};
    }
    table.id = TableId{id.value()};
    table.name = std::move(name).value();
    table.tablespace = TablespaceId{ts.value()};
    table.slot_size = slot.value();
    table.owner = UserId{owner.value()};
    table.logging = logging.value() != 0;
    for (std::uint32_t c = 0; c < col_count.value(); ++c) {
      auto col_name = dec.get_string();
      auto col_type = dec.get_u8();
      if (!col_name.is_ok() || !col_type.is_ok()) {
        return Status{ErrorCode::kCorruption, "bad column entry"};
      }
      table.columns.push_back(ColumnDef{
          std::move(col_name).value(),
          static_cast<ColumnType>(col_type.value())});
    }
    cat.tables_[table.id.value] = std::move(table);
  }
  return cat;
}

void Catalog::clear() {
  tables_.clear();
  users_.clear();
  next_table_id_ = 1;
  next_user_id_ = 1;
}

}  // namespace vdb::catalog
