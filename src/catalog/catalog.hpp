// System catalog: users, tables, and their storage attributes.
//
// The catalog is snapshotted into the control file at every checkpoint and
// kept current across crashes by replaying DDL redo records — the moral
// equivalent of Oracle's data dictionary. Object ownership matters to the
// faultload: "delete any user's database object" and "delete a database
// user" are catalogued operator-fault types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::catalog {

enum class ColumnType : std::uint8_t { kInt = 1, kDouble = 2, kString = 3 };

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

struct TableDef {
  TableId id{};
  std::string name;
  TablespaceId tablespace{};
  std::uint16_t slot_size = 0;  // max serialized row size
  UserId owner{};
  std::vector<ColumnDef> columns;
  /// NOLOGGING tables skip redo for bulk loads (the paper's "set the
  /// NOLOGGING option in tables" fault type; also how the TPC-C loader
  /// populates before the initial backup).
  bool logging = true;
};

struct UserDef {
  UserId id{};
  std::string name;
  bool is_dba = false;
  /// Space quota in blocks per tablespace (0 entry = unlimited).
  std::unordered_map<TablespaceId, std::uint32_t> quotas;
};

class Catalog {
 public:
  Result<UserId> create_user(const std::string& name, bool is_dba);
  Status drop_user(const std::string& name);
  Result<const UserDef*> find_user(const std::string& name) const;

  Result<TableId> create_table(const std::string& name, TablespaceId ts,
                               std::uint16_t slot_size, UserId owner,
                               std::vector<ColumnDef> columns = {});

  /// Re-creates a table under a specific id (DDL replay).
  Status create_table_with_id(TableId id, const std::string& name,
                              TablespaceId ts, std::uint16_t slot_size,
                              UserId owner);

  Status drop_table(TableId id);
  Status set_logging(TableId id, bool logging);

  Result<const TableDef*> find_table(const std::string& name) const;
  Result<const TableDef*> find_table(TableId id) const;
  std::vector<const TableDef*> tables() const;
  std::vector<const TableDef*> tables_in(TablespaceId ts) const;
  std::vector<const UserDef*> users() const;

  void encode(Encoder& enc) const;
  static Result<Catalog> decode(Decoder& dec);

  void clear();

 private:
  std::uint32_t next_table_id_ = 1;
  std::uint32_t next_user_id_ = 1;
  std::unordered_map<std::uint32_t, TableDef> tables_;
  std::unordered_map<std::uint32_t, UserDef> users_;
};

}  // namespace vdb::catalog
