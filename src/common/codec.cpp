#include "common/codec.hpp"

#include <array>

namespace vdb {

Result<std::vector<std::uint8_t>> Decoder::get_bytes() {
  auto len = get_u32();
  if (!len.is_ok()) return len.status();
  if (remaining() < len.value()) {
    return Status{ErrorCode::kCorruption, "decoder: truncated blob"};
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_) +
                                    len.value());
  pos_ += len.value();
  return out;
}

Result<std::string> Decoder::get_string() {
  auto len = get_u32();
  if (!len.is_ok()) return len.status();
  if (remaining() < len.value()) {
    return Status{ErrorCode::kCorruption, "decoder: truncated blob"};
  }
  // Build the string straight from the input span — no intermediate
  // byte-vector copy.
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  len.value());
  pos_ += len.value();
  return out;
}

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table, and
// table[k] advances a byte through k additional zero bytes, letting the hot
// loop fold 8 input bytes per iteration with 8 independent lookups. Same
// polynomial, same checksums — only the stride changes.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    tables[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFF];
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto kTables = make_crc_tables();
  const auto& t = kTables;
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace vdb
