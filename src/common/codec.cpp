#include "common/codec.hpp"

#include <array>

namespace vdb {

Result<std::vector<std::uint8_t>> Decoder::get_bytes() {
  auto len = get_u32();
  if (!len.is_ok()) return len.status();
  if (remaining() < len.value()) {
    return Status{ErrorCode::kCorruption, "decoder: truncated blob"};
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_) +
                                    len.value());
  pos_ += len.value();
  return out;
}

Result<std::string> Decoder::get_string() {
  auto len = get_u32();
  if (!len.is_ok()) return len.status();
  if (remaining() < len.value()) {
    return Status{ErrorCode::kCorruption, "decoder: truncated blob"};
  }
  // Build the string straight from the input span — no intermediate
  // byte-vector copy.
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  len.value());
  pos_ += len.value();
  return out;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto kTable = make_crc_table();
  std::uint32_t crc = ~seed;
  for (std::uint8_t b : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ b) & 0xFF];
  }
  return ~crc;
}

}  // namespace vdb
