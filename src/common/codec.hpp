// Byte-level serialization helpers.
//
// Redo records, page rows, and backup metadata are serialized with these
// little-endian codecs. Encoding must be deterministic: recovery compares
// replayed state byte-for-byte against the pre-crash database in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace vdb {

/// Appends fixed-width little-endian primitives and length-prefixed blobs to
/// a growing byte vector.
class Encoder {
 public:
  explicit Encoder(std::vector<std::uint8_t>* out) : out_(out) {}

  /// Pre-sizes the output for `n` further bytes. Callers that know the
  /// payload size (record framing, row codecs) reserve once up front
  /// instead of growing the vector a field at a time.
  void reserve(size_t n) { out_->reserve(out_->size() + n); }

  void put_u8(std::uint8_t v) { out_->push_back(v); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof(v)); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_double(double v) { put_raw(&v, sizeof(v)); }

  /// u32 length prefix + bytes.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    put_u32(static_cast<std::uint32_t>(bytes.size()));
    put_raw(bytes.data(), bytes.size());
  }

  void put_string(std::string_view s) {
    put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

 private:
  void put_raw(const void* p, size_t n) {
    if (n == 0) return;
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }

  std::vector<std::uint8_t>* out_;
};

/// Reads back what Encoder wrote. All getters fail with kCorruption on
/// truncated input rather than reading out of bounds.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> get_u8() { return get_fixed<std::uint8_t>(); }
  Result<std::uint16_t> get_u16() { return get_fixed<std::uint16_t>(); }
  Result<std::uint32_t> get_u32() { return get_fixed<std::uint32_t>(); }
  Result<std::uint64_t> get_u64() { return get_fixed<std::uint64_t>(); }
  Result<std::int64_t> get_i64() { return get_fixed<std::int64_t>(); }
  Result<double> get_double() { return get_fixed<double>(); }

  Result<std::vector<std::uint8_t>> get_bytes();
  Result<std::string> get_string();

  /// Zero-copy variant of get_bytes: returns a span into the underlying
  /// buffer instead of materializing a vector. The view is only valid while
  /// the decoded buffer outlives it — callers that retain the data past the
  /// buffer's lifetime must copy (see get_bytes).
  Result<std::span<const std::uint8_t>> get_view() {
    auto len = get_u32();
    if (!len.is_ok()) return len.status();
    if (remaining() < len.value()) {
      return Status{ErrorCode::kCorruption, "decoder: truncated bytes"};
    }
    std::span<const std::uint8_t> view = data_.subspan(pos_, len.value());
    pos_ += len.value();
    return view;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> get_fixed() {
    if (remaining() < sizeof(T)) {
      return Status{ErrorCode::kCorruption, "decoder: truncated input"};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  size_t pos_{0};
};

/// CRC32 (Castagnoli polynomial, table-driven). Used for page checksums and
/// redo-record integrity.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

}  // namespace vdb
