#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace vdb {

unsigned default_jobs() {
  if (const char* env = std::getenv("VDB_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
    return 1;  // malformed or <= 0: be conservative, stay serial
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned resolve_jobs(unsigned jobs) {
  return jobs > 0 ? jobs : default_jobs();
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(resolve_jobs(jobs), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace vdb
