// Shared bounded-worker parallelism primitive.
//
// Both the benchmark harness (fanning independent experiments across a
// pool) and the engine's recovery replay (applying disjoint page partitions
// concurrently) need the same thing: run fn(0..n) on up to `jobs` threads,
// block until done, never reorder observable results. Workers claim indexes
// from an atomic cursor, so the only cross-thread state is the cursor —
// callers guarantee fn is safe for distinct indexes.
#pragma once

#include <cstddef>
#include <functional>

namespace vdb {

/// VDB_JOBS if set (clamped to >= 1), else hardware_concurrency. The single
/// knob controlling every thread pool in the system: the experiment matrix
/// fan-out and the in-engine parallel redo apply.
unsigned default_jobs();

/// 0 resolves to default_jobs(), anything else passes through.
unsigned resolve_jobs(unsigned jobs);

/// Invokes fn(i) for every i in [0, n), using up to `jobs` worker threads
/// (jobs == 0 resolves via default_jobs()). Runs inline on the calling
/// thread when jobs or n is <= 1, so serial configurations pay no thread
/// overhead and behave identically to a plain loop. Blocks until every
/// index completed. fn must tolerate concurrent invocation for distinct
/// indexes; exceptions must not escape fn.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vdb
