#include "common/rng.hpp"

namespace vdb {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64, used to expand a single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  VDB_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

std::int64_t Rng::nurand(std::int64_t a, std::int64_t x, std::int64_t y,
                         std::int64_t c) {
  return (((uniform(0, a) | uniform(x, y)) + c) % (y - x + 1)) + x;
}

std::string Rng::alnum_string(int min_len, int max_len) {
  static constexpr char kChars[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  const auto len = uniform(min_len, max_len);
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (std::int64_t i = 0; i < len; ++i) {
    out.push_back(kChars[uniform(0, 61)]);
  }
  return out;
}

std::string Rng::digit_string(int min_len, int max_len) {
  const auto len = uniform(min_len, max_len);
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (std::int64_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('0' + uniform(0, 9)));
  }
  return out;
}

Rng Rng::split() { return Rng{next()}; }

}  // namespace vdb
