// Deterministic pseudo-random number generation.
//
// Every random decision in the simulator and the TPC-C driver flows from a
// seeded Rng so that experiments are exactly repeatable — a methodological
// requirement of the benchmark (the paper injects faults at fixed instants
// precisely to make runs reproducible).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace vdb {

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6).
  std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y,
                      std::int64_t c);

  /// Random alphanumeric string with length uniform in [min_len, max_len].
  std::string alnum_string(int min_len, int max_len);

  /// Random numeric string with length uniform in [min_len, max_len].
  std::string digit_string(int min_len, int max_len);

  /// Splits off an independent stream (for per-terminal generators).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace vdb
