#include "common/status.hpp"

namespace vdb {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfSpace: return "OutOfSpace";
    case ErrorCode::kOffline: return "Offline";
    case ErrorCode::kMediaFailure: return "MediaFailure";
    case ErrorCode::kLockTimeout: return "LockTimeout";
    case ErrorCode::kDeadlock: return "Deadlock";
    case ErrorCode::kTxnAborted: return "TxnAborted";
    case ErrorCode::kNotOpen: return "NotOpen";
    case ErrorCode::kCorruption: return "Corruption";
    case ErrorCode::kTransientIo: return "TransientIo";
    case ErrorCode::kRecoveryRequired: return "RecoveryRequired";
    case ErrorCode::kUnrecoverable: return "Unrecoverable";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = vdb::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& extra) {
  std::fprintf(stderr, "VDB_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace vdb
