// Status / Result: recoverable-error handling for database operations.
//
// Database operations fail for reasons the caller must handle (file missing,
// tablespace offline, lock timeout, media failure). Those paths return
// Status / Result<T>. Programming errors (violated preconditions) use
// VDB_CHECK which aborts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace vdb {

/// Machine-readable error category. Mirrors the classes of failure a real
/// DBMS surfaces to administrators and applications.
enum class ErrorCode {
  kOk = 0,
  kNotFound,          // object/file/row does not exist
  kAlreadyExists,     // duplicate object
  kInvalidArgument,   // malformed request
  kOutOfSpace,        // tablespace / rollback segment exhausted
  kOffline,           // tablespace or datafile offline
  kMediaFailure,      // datafile missing/corrupt at the storage layer
  kLockTimeout,       // could not acquire a lock
  kDeadlock,          // wait-die abort
  kTxnAborted,        // transaction was rolled back
  kNotOpen,           // instance not in OPEN state
  kCorruption,        // checksum mismatch / torn page
  kTransientIo,       // device I/O failed transiently (retryable)
  kRecoveryRequired,  // datafile needs media recovery before use
  kUnrecoverable,     // recovery impossible with available logs/backups
  kInternal,          // invariant violation detected at runtime
};

const char* to_string(ErrorCode code);

/// Value-semantic status word: either OK or (code, message).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "kMediaFailure: datafile 3 missing".
  std::string to_string() const;

 private:
  ErrorCode code_{ErrorCode::kOk};
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status{code, std::move(message)};
}

/// Either a T or a Status explaining why there is no T.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT

  bool is_ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return is_ok(); }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  /// OK status if a value is held, the stored error otherwise.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(storage_);
  }

  ErrorCode code() const {
    return is_ok() ? ErrorCode::kOk : std::get<Status>(storage_).code();
  }

 private:
  std::variant<T, Status> storage_;
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra);

}  // namespace vdb

/// Aborts on violated invariants (programming errors, not runtime errors).
#define VDB_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::vdb::check_failed(__FILE__, __LINE__, #expr, {});      \
    }                                                          \
  } while (0)

#define VDB_CHECK_MSG(expr, msg)                               \
  do {                                                         \
    if (!(expr)) {                                             \
      ::vdb::check_failed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                          \
  } while (0)

/// Propagates a non-OK Status out of the current function.
#define VDB_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::vdb::Status _st = (expr);            \
    if (!_st.is_ok()) return _st;          \
  } while (0)

#define VDB_CONCAT_INNER(a, b) a##b
#define VDB_CONCAT(a, b) VDB_CONCAT_INNER(a, b)

#define VDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.is_ok()) return tmp.status();          \
  lhs = std::move(tmp).value()

/// Unwraps a Result into `lhs`, propagating its Status on error.
#define VDB_ASSIGN_OR_RETURN(lhs, expr) \
  VDB_ASSIGN_OR_RETURN_IMPL(VDB_CONCAT(_vdb_res_, __LINE__), lhs, expr)
