#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>

namespace vdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += " ";
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += cell;
      out.append(widths[c] - cell.size(), ' ');
      out += " |";
    }
    out += "\n";
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::print(FILE* out) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string TablePrinter::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace vdb
