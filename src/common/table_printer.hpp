// Fixed-width text tables for benchmark reports.
//
// The bench binaries print the same rows the paper's tables and figures
// report; this helper keeps the layout consistent and readable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells beyond the header count are dropped, missing cells
  /// are blank.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, column-width auto-sizing.
  std::string to_string() const;

  /// Convenience: renders to stdout.
  void print(FILE* out = stdout) const;

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdb
