#include "common/types.hpp"

#include <cstdio>

namespace vdb {

std::string to_string(PageId id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "file%u:blk%u", id.file.value, id.block);
  return buf;
}

std::string to_string(RowId id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "file%u:blk%u:slot%u", id.page.file.value,
                id.page.block, id.slot);
  return buf;
}

std::string format_duration(SimDuration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(d));
  return buf;
}

}  // namespace vdb
