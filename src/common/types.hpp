// Core strong types shared by every subsystem.
//
// All identifiers are distinct struct wrappers so that a FileId cannot be
// passed where a TablespaceId is expected. Simulated time is an integral
// count of microseconds on the virtual clock (see sim/virtual_clock.hpp).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vdb {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in simulated microseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;

/// Converts simulated microseconds to floating-point seconds (for reports).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts floating-point seconds to simulated microseconds.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

namespace detail {

/// CRTP-free strong integral id. `Tag` makes each instantiation unique.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;

  /// Sentinel meaning "no object".
  static constexpr StrongId invalid() { return StrongId{static_cast<Rep>(-1)}; }
  constexpr bool valid() const { return value != static_cast<Rep>(-1); }
};

}  // namespace detail

struct FileIdTag {};
struct TablespaceIdTag {};
struct TableIdTag {};
struct TxnIdTag {};
struct UserIdTag {};
struct SegmentIdTag {};
struct DiskIdTag {};

/// Identifies one datafile within a database.
using FileId = detail::StrongId<FileIdTag>;
/// Identifies one tablespace within a database.
using TablespaceId = detail::StrongId<TablespaceIdTag>;
/// Identifies one table (catalog object).
using TableId = detail::StrongId<TableIdTag>;
/// Identifies one transaction. Monotonically increasing.
using TxnId = detail::StrongId<TxnIdTag, std::uint64_t>;
/// Identifies a database user (schema owner).
using UserId = detail::StrongId<UserIdTag>;
/// Identifies a segment (one per table heap or rollback segment).
using SegmentId = detail::StrongId<SegmentIdTag>;
/// Identifies one simulated disk device.
using DiskId = detail::StrongId<DiskIdTag>;

/// Log sequence number: byte offset in the logical redo stream. Strictly
/// increasing over the life of a database; never reset by log switches.
using Lsn = std::uint64_t;
constexpr Lsn kInvalidLsn = ~Lsn{0};

/// Physical address of a page: file + block index within the file.
struct PageId {
  FileId file{};
  std::uint32_t block{0};

  constexpr auto operator<=>(const PageId&) const = default;
  constexpr bool valid() const { return file.valid(); }
  static constexpr PageId invalid() { return PageId{FileId::invalid(), 0}; }
};

/// Physical address of a row: page + slot.
struct RowId {
  PageId page{};
  std::uint16_t slot{0};

  constexpr auto operator<=>(const RowId&) const = default;
  constexpr bool valid() const { return page.valid(); }
  static constexpr RowId invalid() { return RowId{PageId::invalid(), 0}; }
};

std::string to_string(PageId id);
std::string to_string(RowId id);

/// Formats a simulated duration as "12.345s" for reports.
std::string format_duration(SimDuration d);

}  // namespace vdb

namespace std {

template <typename Tag, typename Rep>
struct hash<vdb::detail::StrongId<Tag, Rep>> {
  size_t operator()(const vdb::detail::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

template <>
struct hash<vdb::PageId> {
  size_t operator()(const vdb::PageId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.file.value) << 32) | id.block);
  }
};

template <>
struct hash<vdb::RowId> {
  size_t operator()(const vdb::RowId& id) const noexcept {
    return std::hash<vdb::PageId>{}(id.page) * 1000003u + id.slot;
  }
};

}  // namespace std
