#include "engine/admin_shell.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace vdb::engine {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& command) {
  std::istringstream in(command);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status bad_syntax(const std::string& command) {
  return make_error(ErrorCode::kInvalidArgument,
                    "syntax error in: " + command);
}

Result<std::uint32_t> parse_u32(const std::string& token) {
  try {
    return static_cast<std::uint32_t>(std::stoul(token));
  } catch (...) {
    return Status{ErrorCode::kInvalidArgument, "not a number: " + token};
  }
}

Result<std::uint64_t> parse_u64(const std::string& token) {
  try {
    return static_cast<std::uint64_t>(std::stoull(token));
  } catch (...) {
    return Status{ErrorCode::kInvalidArgument, "not a number: " + token};
  }
}

}  // namespace

Result<std::string> AdminShell::execute(const std::string& command) {
  const auto tokens = tokenize(command);
  if (tokens.empty()) return std::string{};
  const std::string verb = upper(tokens[0]);

  if (verb == "SHUTDOWN") {
    if (tokens.size() > 1 && upper(tokens[1]) == "ABORT") {
      VDB_RETURN_IF_ERROR(db_->shutdown_abort());
      return std::string{"instance aborted"};
    }
    VDB_RETURN_IF_ERROR(db_->shutdown());
    return std::string{"instance shut down"};
  }

  if (verb == "CHECKPOINT") {
    VDB_RETURN_IF_ERROR(db_->checkpoint_now());
    return std::string{"checkpoint complete"};
  }

  if (verb == "CREATE" && tokens.size() >= 9 &&
      upper(tokens[1]) == "TABLE" && upper(tokens[3]) == "TABLESPACE" &&
      upper(tokens[5]) == "SLOTSIZE" && upper(tokens[7]) == "OWNER") {
    auto slot = parse_u32(tokens[6]);
    if (!slot.is_ok()) return slot.status();
    auto user = db_->cat().find_user(tokens[8]);
    if (!user.is_ok()) return user.status();
    auto table = db_->create_table(tokens[2], tokens[4],
                                   static_cast<std::uint16_t>(slot.value()),
                                   user.value()->id);
    if (!table.is_ok()) return table.status();
    return "table " + tokens[2] + " created";
  }

  if (verb == "DROP" && tokens.size() >= 3) {
    const std::string kind = upper(tokens[1]);
    if (kind == "TABLE") {
      VDB_RETURN_IF_ERROR(db_->drop_table(tokens[2]));
      return "table " + tokens[2] + " dropped";
    }
    if (kind == "TABLESPACE") {
      const bool including =
          tokens.size() >= 4 && upper(tokens[3]) == "INCLUDING";
      VDB_RETURN_IF_ERROR(db_->drop_tablespace(tokens[2], including));
      return "tablespace " + tokens[2] + " dropped";
    }
    return bad_syntax(command);
  }

  if (verb == "ALTER" && tokens.size() >= 3) {
    const std::string kind = upper(tokens[1]);
    if (kind == "TABLESPACE" && tokens.size() >= 4) {
      const std::string action = upper(tokens[3]);
      if (action == "ONLINE") {
        VDB_RETURN_IF_ERROR(db_->alter_tablespace_online(tokens[2]));
        return "tablespace " + tokens[2] + " online";
      }
      if (action == "OFFLINE") {
        VDB_RETURN_IF_ERROR(db_->alter_tablespace_offline(tokens[2]));
        return "tablespace " + tokens[2] + " offline";
      }
      if (action == "QUOTA" && tokens.size() >= 5) {
        auto blocks = parse_u32(tokens[4]);
        if (!blocks.is_ok()) return blocks.status();
        VDB_RETURN_IF_ERROR(
            db_->alter_tablespace_quota(tokens[2], blocks.value()));
        return "tablespace " + tokens[2] + " quota set";
      }
      return bad_syntax(command);
    }
    if (kind == "DATAFILE" && tokens.size() >= 4) {
      auto id = parse_u32(tokens[2]);
      if (!id.is_ok()) return id.status();
      const std::string action = upper(tokens[3]);
      if (action == "ONLINE") {
        VDB_RETURN_IF_ERROR(db_->alter_datafile_online(FileId{id.value()}));
        return "datafile " + tokens[2] + " online";
      }
      if (action == "OFFLINE") {
        VDB_RETURN_IF_ERROR(db_->alter_datafile_offline(FileId{id.value()}));
        return "datafile " + tokens[2] + " offline";
      }
      return bad_syntax(command);
    }
    if (kind == "DATABASE" && tokens.size() >= 6 &&
        upper(tokens[2]) == "SET" && upper(tokens[3]) == "RESTART" &&
        upper(tokens[4]) == "MODE") {
      RestartMode mode;
      std::string arg = tokens[5];
      std::transform(arg.begin(), arg.end(), arg.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (!parse_restart_mode(arg, &mode)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "unknown restart mode: " + tokens[5]);
      }
      db_->set_restart_mode(mode);
      return "restart mode set to " + std::string(to_string(mode)) +
             " (takes effect at next instance recovery)";
    }
    if (kind == "SYSTEM" && tokens.size() >= 5 && upper(tokens[2]) == "SET" &&
        upper(tokens[3]) == "CC") {
      txn::CcProtocol protocol;
      std::string arg = tokens[4];
      std::transform(arg.begin(), arg.end(), arg.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (!txn::parse_cc_protocol(arg, &protocol)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "unknown concurrency-control protocol: " + tokens[4]);
      }
      db_->set_cc_protocol(protocol);
      return "concurrency control set to " +
             std::string(txn::to_string(protocol)) +
             " (takes effect when a coordinator attaches)";
    }
    if (kind == "FLEET" && tokens.size() >= 4 &&
        upper(tokens[2]) == "FAILOVER") {
      if (!fleet_.failover) {
        return make_error(ErrorCode::kInvalidArgument,
                          "no fleet bound to this shell");
      }
      auto shard = parse_u32(tokens[3]);
      if (!shard.is_ok()) return shard.status();
      VDB_RETURN_IF_ERROR(fleet_.failover(shard.value()));
      return "shard " + tokens[3] + " failed over to its standby";
    }
    if (kind == "ROLLBACK" && tokens.size() >= 5 &&
        upper(tokens[2]) == "SEGMENT") {
      auto index = parse_u32(tokens[3]);
      if (!index.is_ok()) return index.status();
      const std::string action = upper(tokens[4]);
      if (action == "ONLINE") {
        VDB_RETURN_IF_ERROR(db_->alter_rollback_segment_online(index.value()));
        return std::string{"rollback segment online"};
      }
      if (action == "OFFLINE") {
        VDB_RETURN_IF_ERROR(
            db_->alter_rollback_segment_offline(index.value()));
        return std::string{"rollback segment offline"};
      }
      return bad_syntax(command);
    }
    return bad_syntax(command);
  }

  if (verb == "ARCHIVE" && tokens.size() >= 3 &&
      upper(tokens[1]) == "LOG" && upper(tokens[2]) == "LIST") {
    std::ostringstream out;
    out << "archive mode: "
        << (db_->config().redo.archive_mode ? "ARCHIVELOG" : "NOARCHIVELOG")
        << "\n";
    for (const auto& group : db_->redo().groups()) {
      out << "group " << group.index << " seq " << group.seq
          << (group.current ? " CURRENT" : group.archived ? " ARCHIVED"
                                                          : " PENDING")
          << "\n";
    }
    return out.str();
  }

  if (verb == "SHOW" && tokens.size() >= 2) {
    const std::string what = upper(tokens[1]);
    std::ostringstream out;
    if (what == "TABLES") {
      for (const auto* table : db_->cat().tables()) {
        out << table->name << " (id " << table->id.value << ", slot "
            << table->slot_size << ")\n";
      }
      return out.str();
    }
    if (what == "DATAFILES") {
      for (const auto& file : db_->storage().files()) {
        if (file.dropped) continue;
        out << file.id.value << " " << file.path << " " << file.blocks
            << " blocks " << storage::to_string(file.status) << "\n";
      }
      return out.str();
    }
    if (what == "RESTART" && tokens.size() >= 3 &&
        upper(tokens[2]) == "MODE") {
      out << "restart mode: " << to_string(db_->config().restart_mode);
      if (const RestartCoordinator* rc = db_->restart_coordinator()) {
        out << " (restart recovery pending: " << rc->pending_pages_count()
            << " pages)";
      }
      out << "\n";
      return out.str();
    }
    if (what == "CC") {
      out << "concurrency control: "
          << txn::to_string(db_->config().cc_protocol);
      if (const txn::ConcurrencyControl* cc = db_->concurrency_control()) {
        const txn::CcStats s = cc->stats();
        out << " (coordinator attached: " << txn::to_string(cc->protocol())
            << ")\n"
            << "txns begun=" << s.begun << " committed=" << s.committed
            << " aborted=" << s.aborts << "\n"
            << "wait_die_aborts=" << s.wait_die_aborts
            << " occ_validate_fails=" << s.occ_validate_fails
            << " lock_waits=" << s.lock_waits;
      } else {
        out << " (no coordinator attached; serial execution)";
      }
      out << "\n";
      return out.str();
    }
    if (what == "FLEET") {
      if (!fleet_.show) {
        return make_error(ErrorCode::kInvalidArgument,
                          "no fleet bound to this shell");
      }
      return fleet_.show();
    }
    if (what == "TABLESPACES") {
      for (const auto& ts : db_->storage().tablespaces()) {
        if (ts.dropped) continue;
        out << ts.name << " " << storage::to_string(ts.status) << " ("
            << ts.files.size() << " files)\n";
      }
      return out.str();
    }
    return bad_syntax(command);
  }

  if (verb == "VERIFY") {
    // DBVERIFY analogue: checksum every block of every live datafile.
    std::ostringstream out;
    std::uint64_t total_bad = 0;
    for (const auto& file : db_->storage().files()) {
      if (file.dropped || file.status == storage::FileStatus::kMissing) {
        continue;
      }
      auto report = db_->storage().verify_file(file.id);
      if (!report.is_ok()) return report.status();
      out << file.path << ": " << report.value().blocks_scanned
          << " blocks scanned, " << report.value().bad.size() << " bad\n";
      for (const auto& bad : report.value().bad) {
        out << "  block " << bad.page.block << " offset " << bad.offset
            << ": " << bad.error.to_string() << "\n";
      }
      total_bad += report.value().bad.size();
    }
    out << "verify: " << total_bad << " corrupt block(s)";
    return out.str();
  }

  // V$ dynamic performance views over the instance's statistics area.
  // Accepts both the bare view name and "SELECT * FROM V$...".
  std::string view;
  if (verb.rfind("V$", 0) == 0) {
    view = verb;
  } else if (verb == "SELECT") {
    for (const auto& token : tokens) {
      const std::string t = upper(token);
      if (t.rfind("V$", 0) == 0) view = t;
    }
    if (view.empty()) return bad_syntax(command);
  }
  if (view == "V$SYSSTAT") {
    std::ostringstream out;
    obs::MetricsRegistry& reg = db_->obs().registry();
    reg.for_each_counter([&](const std::string& name, const obs::Counter& c) {
      out << name << "  " << c.value() << "\n";
    });
    reg.for_each_gauge([&](const std::string& name, const obs::Gauge& g) {
      out << name << "  " << g.value() << "\n";
    });
    reg.for_each_histogram(
        [&](const std::string& name, const obs::Histogram& h) {
          if (h.count() == 0) return;
          out << name << "  count=" << h.count() << " mean_us=" << h.mean()
              << " p90_us=" << h.percentile(0.90) << "\n";
        });
    return out.str();
  }
  if (view == "V$SYSTEM_EVENT") {
    std::ostringstream out;
    const obs::WaitEventTable& waits = db_->obs().waits();
    for (size_t k = 0; k < static_cast<size_t>(obs::WaitEvent::kCount); ++k) {
      const auto event = static_cast<obs::WaitEvent>(k);
      if (waits.total_waits(event) == 0) continue;
      out << obs::to_string(event) << "  waits=" << waits.total_waits(event)
          << " time_us=" << waits.time_waited(event)
          << " max_us=" << waits.max_wait(event) << "\n";
    }
    return out.str();
  }
  if (view == "V$RECOVERY_PROGRESS") {
    std::ostringstream out;
    const obs::RecoveryTracer& tracer = db_->obs().tracer();
    auto print = [&](const obs::RecoveryTrace& trace, bool in_progress) {
      out << trace.label << " start_us=" << trace.start;
      if (in_progress) {
        out << " IN PROGRESS\n";
      } else {
        out << " total_us=" << trace.total() << "\n";
      }
      for (const auto& span : trace.spans) {
        out << "  " << obs::to_string(span.phase) << "  "
            << span.duration() << " us\n";
      }
    };
    for (const auto& trace : tracer.history()) print(trace, false);
    if (tracer.active()) print(*tracer.current(), true);
    // Early-open restart progress: how much redo is still pending and
    // where the drained pages were recovered (foreground vs sweeper).
    if (const RestartCoordinator* rc = db_->restart_coordinator()) {
      out << "restart mode " << to_string(rc->mode())
          << "  pages pending=" << rc->pending_pages_count()
          << " recovered_on_demand=" << rc->recovered_on_demand()
          << " recovered_background=" << rc->recovered_background() << "\n";
    }
    // Fleet failover procedures are traced on the fleet's statistics area,
    // not the shard instance's — append them when a fleet is bound.
    if (fleet_.recovery_rows) out << fleet_.recovery_rows();
    if (out.str().empty()) return std::string{"no recovery recorded\n"};
    return out.str();
  }
  if (!view.empty()) return bad_syntax(command);

  if (verb == "HOST" && tokens.size() >= 3) {
    const std::string op = upper(tokens[1]);
    if (op == "RM") {
      VDB_RETURN_IF_ERROR(db_->host().fs().remove(tokens[2]));
      return "removed " + tokens[2];
    }
    if (op == "CORRUPT") {
      VDB_RETURN_IF_ERROR(db_->host().fs().corrupt(tokens[2]));
      return "corrupted " + tokens[2];
    }
    if (op == "FLIPBITS" && tokens.size() >= 5) {
      auto offset = parse_u64(tokens[3]);
      if (!offset.is_ok()) return offset.status();
      auto len = parse_u64(tokens[4]);
      if (!len.is_ok()) return len.status();
      std::uint64_t seed = 1;
      if (tokens.size() >= 6) {
        auto parsed = parse_u64(tokens[5]);
        if (!parsed.is_ok()) return parsed.status();
        seed = parsed.value();
      }
      VDB_RETURN_IF_ERROR(db_->host().fs().flip_bits(tokens[2], offset.value(),
                                                     len.value(), seed));
      return "flipped bits in " + tokens[2];
    }
    return bad_syntax(command);
  }

  return bad_syntax(command);
}

Result<std::string> AdminShell::run_script(const std::string& script) {
  std::istringstream in(script);
  std::string line;
  std::string output;
  while (std::getline(in, line)) {
    // Trim leading whitespace.
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line.empty() || line[0] == '#' || line.rfind("--", 0) == 0) continue;
    auto result = execute(line);
    if (!result.is_ok()) return result.status();
    if (!result.value().empty()) {
      output += result.value();
      if (output.back() != '\n') output += '\n';
    }
  }
  return output;
}

}  // namespace vdb::engine
