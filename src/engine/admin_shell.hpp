// Administration shell: a textual command surface over the Database —
// the interface the paper's fault-injection scripts drive ("operator
// faults can be injected by using exactly the same means used in the
// field", §3; the original tools were Perl + SQL scripts).
//
// Supported commands (case-insensitive keywords):
//   SHUTDOWN [ABORT]
//   CHECKPOINT
//   CREATE TABLE <name> TABLESPACE <ts> SLOTSIZE <n> OWNER <user>
//   DROP TABLE <name>
//   DROP TABLESPACE <name> [INCLUDING CONTENTS AND DATAFILES]
//   ALTER TABLESPACE <name> {ONLINE | OFFLINE | QUOTA <blocks>}
//   ALTER DATAFILE <id> {ONLINE | OFFLINE}
//   ALTER ROLLBACK SEGMENT <n> {ONLINE | OFFLINE}
//   ARCHIVE LOG LIST
//   SHOW {TABLES | DATAFILES | TABLESPACES}
//   VERIFY                  -- DBVERIFY: checksum every datafile block
//   V$SYSSTAT               -- counters/gauges/histograms (also reachable
//   V$SYSTEM_EVENT             as SELECT * FROM V$<view>); wait events;
//   V$RECOVERY_PROGRESS        per-phase timings of recorded recoveries
//   HOST RM <path>          -- OS escape: delete a file
//   HOST CORRUPT <path>     -- OS escape: corrupt a file in place
//   HOST FLIPBITS <path> <offset> <len> [seed]
//                           -- OS escape: silently flip bits in place
//
// When the shell is bound to a sharded fleet (bind_fleet, wired by the
// fleet layer so the engine stays fleet-agnostic):
//   SHOW FLEET              -- per-shard role/state and 2PC registry audit
//   ALTER FLEET FAILOVER <shard>
//                           -- operator-initiated standby promotion
//   V$RECOVERY_PROGRESS additionally lists the fleet failover traces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.hpp"
#include "engine/database.hpp"

namespace vdb::engine {

class AdminShell {
 public:
  /// Optional binding to a sharded fleet. The engine cannot link against
  /// the fleet layer (it sits above the engine), so the fleet side supplies
  /// closures; unbound fleet commands fail with kFailedPrecondition.
  struct FleetHooks {
    /// SHOW FLEET body: shard roster, roles, registry audit.
    std::function<std::string()> show;
    /// ALTER FLEET FAILOVER <shard>: operator-initiated promotion.
    std::function<Status(std::uint32_t)> failover;
    /// Fleet-level failover traces appended to V$RECOVERY_PROGRESS.
    std::function<std::string()> recovery_rows;
  };

  explicit AdminShell(Database* db) : db_(db) {}

  void bind_fleet(FleetHooks hooks) { fleet_ = std::move(hooks); }

  /// Executes one command; returns its textual output.
  Result<std::string> execute(const std::string& command);

  /// Executes a multi-line script, stopping at the first failure.
  /// Lines that are empty or start with '#' or "--" are skipped.
  Result<std::string> run_script(const std::string& script);

 private:
  Database* db_;
  FleetHooks fleet_;
};

}  // namespace vdb::engine
