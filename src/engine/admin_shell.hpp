// Administration shell: a textual command surface over the Database —
// the interface the paper's fault-injection scripts drive ("operator
// faults can be injected by using exactly the same means used in the
// field", §3; the original tools were Perl + SQL scripts).
//
// Supported commands (case-insensitive keywords):
//   SHUTDOWN [ABORT]
//   CHECKPOINT
//   CREATE TABLE <name> TABLESPACE <ts> SLOTSIZE <n> OWNER <user>
//   DROP TABLE <name>
//   DROP TABLESPACE <name> [INCLUDING CONTENTS AND DATAFILES]
//   ALTER TABLESPACE <name> {ONLINE | OFFLINE | QUOTA <blocks>}
//   ALTER DATAFILE <id> {ONLINE | OFFLINE}
//   ALTER ROLLBACK SEGMENT <n> {ONLINE | OFFLINE}
//   ARCHIVE LOG LIST
//   SHOW {TABLES | DATAFILES | TABLESPACES}
//   VERIFY                  -- DBVERIFY: checksum every datafile block
//   V$SYSSTAT               -- counters/gauges/histograms (also reachable
//   V$SYSTEM_EVENT             as SELECT * FROM V$<view>); wait events;
//   V$RECOVERY_PROGRESS        per-phase timings of recorded recoveries
//   HOST RM <path>          -- OS escape: delete a file
//   HOST CORRUPT <path>     -- OS escape: corrupt a file in place
//   HOST FLIPBITS <path> <offset> <len> [seed]
//                           -- OS escape: silently flip bits in place
#pragma once

#include <string>

#include "common/status.hpp"
#include "engine/database.hpp"

namespace vdb::engine {

class AdminShell {
 public:
  explicit AdminShell(Database* db) : db_(db) {}

  /// Executes one command; returns its textual output.
  Result<std::string> execute(const std::string& command);

  /// Executes a multi-line script, stopping at the first failure.
  /// Lines that are empty or start with '#' or "--" are skipped.
  Result<std::string> run_script(const std::string& script);

 private:
  Database* db_;
};

}  // namespace vdb::engine
