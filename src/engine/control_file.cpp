#include "engine/control_file.hpp"

#include <cstdio>

namespace vdb::engine {

namespace {
constexpr std::uint32_t kControlMagic = 0x4354524C;  // "CTRL"
}

void ControlFileData::encode(Encoder& enc) const {
  enc.put_string(db_name);
  enc.put_u8(clean_shutdown ? 1 : 0);
  enc.put_u64(recovery_position);
  enc.put_u64(checkpoint_lsn);
  enc.put_u64(next_txn_id);
  enc.put_u64(last_archived_seq);
  enc.put_u8(archive_mode ? 1 : 0);

  enc.put_u32(static_cast<std::uint32_t>(tablespaces.size()));
  for (const auto& ts : tablespaces) {
    enc.put_u32(ts.id.value);
    enc.put_string(ts.name);
    enc.put_u8(static_cast<std::uint8_t>(ts.status));
    enc.put_u8(ts.autoextend ? 1 : 0);
    enc.put_u32(ts.max_blocks);
    enc.put_u8(ts.dropped ? 1 : 0);
  }
  enc.put_u32(static_cast<std::uint32_t>(datafiles.size()));
  for (const auto& f : datafiles) {
    enc.put_u32(f.id.value);
    enc.put_u32(f.tablespace.value);
    enc.put_string(f.path);
    enc.put_u32(f.blocks);
    enc.put_u32(f.high_water);
    enc.put_u8(static_cast<std::uint8_t>(f.status));
    enc.put_u64(f.recover_from);
    enc.put_u8(f.dropped ? 1 : 0);
  }
  catalog.encode(enc);
}

Result<ControlFileData> ControlFileData::decode(Decoder& dec) {
  ControlFileData data;
  auto name = dec.get_string();
  if (!name.is_ok()) return name.status();
  data.db_name = std::move(name).value();
  auto clean = dec.get_u8();
  auto rec_pos = dec.get_u64();
  auto ckpt = dec.get_u64();
  auto next_txn = dec.get_u64();
  auto arch_seq = dec.get_u64();
  auto arch_mode = dec.get_u8();
  auto ts_count = dec.get_u32();
  if (!clean.is_ok() || !rec_pos.is_ok() || !ckpt.is_ok() ||
      !next_txn.is_ok() || !arch_seq.is_ok() || !arch_mode.is_ok() ||
      !ts_count.is_ok()) {
    return Status{ErrorCode::kCorruption, "bad control header"};
  }
  data.clean_shutdown = clean.value() != 0;
  data.recovery_position = rec_pos.value();
  data.checkpoint_lsn = ckpt.value();
  data.next_txn_id = next_txn.value();
  data.last_archived_seq = arch_seq.value();
  data.archive_mode = arch_mode.value() != 0;

  for (std::uint32_t i = 0; i < ts_count.value(); ++i) {
    storage::TablespaceInfo ts;
    auto id = dec.get_u32();
    auto ts_name = dec.get_string();
    if (!ts_name.is_ok()) return ts_name.status();
    auto status = dec.get_u8();
    auto autoext = dec.get_u8();
    auto max_blocks = dec.get_u32();
    auto dropped = dec.get_u8();
    if (!id.is_ok() || !status.is_ok() || !autoext.is_ok() ||
        !max_blocks.is_ok() || !dropped.is_ok()) {
      return Status{ErrorCode::kCorruption, "bad tablespace entry"};
    }
    ts.id = TablespaceId{id.value()};
    ts.name = std::move(ts_name).value();
    ts.status = static_cast<storage::TablespaceStatus>(status.value());
    ts.autoextend = autoext.value() != 0;
    ts.max_blocks = max_blocks.value();
    ts.dropped = dropped.value() != 0;
    data.tablespaces.push_back(std::move(ts));
  }

  auto file_count = dec.get_u32();
  if (!file_count.is_ok()) return file_count.status();
  for (std::uint32_t i = 0; i < file_count.value(); ++i) {
    storage::DataFileInfo f;
    auto id = dec.get_u32();
    auto ts = dec.get_u32();
    auto path = dec.get_string();
    if (!path.is_ok()) return path.status();
    auto blocks = dec.get_u32();
    auto hwm = dec.get_u32();
    auto status = dec.get_u8();
    auto recover_from = dec.get_u64();
    auto dropped = dec.get_u8();
    if (!id.is_ok() || !ts.is_ok() || !blocks.is_ok() || !hwm.is_ok() ||
        !status.is_ok() || !recover_from.is_ok() || !dropped.is_ok()) {
      return Status{ErrorCode::kCorruption, "bad datafile entry"};
    }
    f.id = FileId{id.value()};
    f.tablespace = TablespaceId{ts.value()};
    f.path = std::move(path).value();
    f.blocks = blocks.value();
    f.high_water = hwm.value();
    f.status = static_cast<storage::FileStatus>(status.value());
    f.recover_from = recover_from.value();
    f.dropped = dropped.value() != 0;
    data.datafiles.push_back(std::move(f));
  }

  auto cat = catalog::Catalog::decode(dec);
  if (!cat.is_ok()) return cat.status();
  data.catalog = std::move(cat).value();
  return data;
}

Status ControlFile::write(sim::SimFs& fs, const std::vector<std::string>& paths,
                          const ControlFileData& data, sim::IoMode mode) {
  std::vector<std::uint8_t> body;
  Encoder enc(&body);
  data.encode(enc);

  std::vector<std::uint8_t> blob;
  Encoder header(&blob);
  header.put_u32(kControlMagic);
  header.put_u32(crc32c(body));
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  blob.insert(blob.end(), body.begin(), body.end());

  size_t written = 0;
  for (const std::string& path : paths) {
    if (!fs.exists(path)) {
      if (!fs.create(path).is_ok()) continue;  // mount gone
    }
    VDB_RETURN_IF_ERROR(fs.truncate(path, 0));
    Status st = fs.write(path, 0, blob, mode, /*sequential=*/true);
    if (st.is_ok()) written += 1;
  }
  if (written == 0) {
    return make_error(ErrorCode::kMediaFailure,
                      "no control file copy could be written");
  }
  return Status::ok();
}

Result<ControlFileData> ControlFile::read(
    sim::SimFs& fs, const std::vector<std::string>& paths) {
  Status last = make_error(ErrorCode::kNotFound, "no control file found");
  for (const std::string& path : paths) {
    if (!fs.exists(path)) continue;
    auto bytes = fs.read_all(path, sim::IoMode::kForeground);
    if (!bytes.is_ok()) {
      last = bytes.status();
      continue;
    }
    Decoder dec(bytes.value());
    auto magic = dec.get_u32();
    auto crc = dec.get_u32();
    auto len = dec.get_u32();
    if (!magic.is_ok() || !crc.is_ok() || !len.is_ok() ||
        magic.value() != kControlMagic || dec.remaining() < len.value()) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    " (offset 0: bad header, magic=%08x expected=%08x)",
                    magic.is_ok() ? magic.value() : 0u, kControlMagic);
      last = make_error(ErrorCode::kCorruption,
                        "bad control file: " + path + detail);
      continue;
    }
    std::span<const std::uint8_t> body{bytes.value().data() + 12,
                                       len.value()};
    const std::uint32_t actual = crc32c(body);
    if (actual != crc.value()) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    " (offset 12, %u bytes: expected crc32c=%08x actual=%08x)",
                    len.value(), crc.value(), actual);
      last = make_error(ErrorCode::kCorruption,
                        "control file checksum mismatch: " + path + detail);
      continue;
    }
    Decoder body_dec(body);
    auto data = ControlFileData::decode(body_dec);
    if (data.is_ok()) return data;
    last = data.status();
  }
  return last;
}

}  // namespace vdb::engine
