// Control file: the database's bootstrap metadata.
//
// Holds everything an instance needs to mount: datafile/tablespace
// inventory with statuses, checkpoint positions, the catalog snapshot, and
// id counters. Multiplexed across several paths (all written, first intact
// one read) — losing every copy is the catastrophic "delete a controlfile"
// operator fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/filesystem.hpp"
#include "storage/storage_manager.hpp"

namespace vdb::engine {

struct ControlFileData {
  std::string db_name;
  bool clean_shutdown = false;
  /// Instance recovery replays redo from here.
  Lsn recovery_position = 0;
  /// LSN of the most recent checkpoint record.
  Lsn checkpoint_lsn = 0;
  std::uint64_t next_txn_id = 1;
  std::uint64_t last_archived_seq = 0;
  bool archive_mode = false;
  std::vector<storage::TablespaceInfo> tablespaces;
  std::vector<storage::DataFileInfo> datafiles;
  catalog::Catalog catalog;

  void encode(Encoder& enc) const;
  static Result<ControlFileData> decode(Decoder& dec);
};

class ControlFile {
 public:
  /// Writes all copies. Copies that cannot be written (deleted mount) are
  /// skipped; fails only when no copy succeeds. Checkpoint-driven updates
  /// run as background I/O (the CKPT process's work, not the user's);
  /// mount-critical writes may choose foreground.
  static Status write(sim::SimFs& fs, const std::vector<std::string>& paths,
                      const ControlFileData& data,
                      sim::IoMode mode = sim::IoMode::kBackground);

  /// Reads the first intact copy.
  static Result<ControlFileData> read(sim::SimFs& fs,
                                      const std::vector<std::string>& paths);
};

}  // namespace vdb::engine
