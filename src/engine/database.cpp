#include "engine/database.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace vdb::engine {

const char* to_string(InstanceState s) {
  switch (s) {
    case InstanceState::kClosed: return "CLOSED";
    case InstanceState::kOpen: return "OPEN";
    case InstanceState::kCrashed: return "CRASHED";
    case InstanceState::kRecovering: return "RECOVERING";
  }
  return "?";
}

Database::Database(sim::Host* host, sim::Scheduler* scheduler,
                   DatabaseConfig cfg)
    : host_(host), scheduler_(scheduler), cfg_(std::move(cfg)),
      txns_(cfg_.rollback) {
  wal::RedoLog::Callbacks callbacks;
  callbacks.on_group_finalized = [this](const wal::RedoGroup& group) {
    on_group_finalized(group);
  };
  callbacks.force_checkpoint = [this] {
    // A log switch can only reuse a group once the recovery position moves
    // past it, and the position is clamped to the restart commit_lsn while
    // early-open redo is pending — so finish that replay first.
    (void)complete_restart_recovery();
    (void)full_checkpoint();
  };
  redo_ = std::make_unique<wal::RedoLog>(&host_->fs(), cfg_.redo,
                                         std::move(callbacks));
  archiver_ = std::make_unique<wal::Archiver>(&host_->fs(), redo_.get());
  storage_ = std::make_unique<storage::StorageManager>(
      &host_->fs(), cfg_.storage,
      [this](Lsn lsn) { (void)redo_->flush_to(lsn); });

  if (cfg_.obs != nullptr) {
    obs_ = cfg_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs_ = owned_obs_.get();
  }
  obs::MetricsRegistry& reg = obs_->registry();
  metrics_.commits = reg.counter("user commits");
  metrics_.rollbacks = reg.counter("user rollbacks");
  metrics_.full_checkpoints = reg.counter("checkpoints full");
  metrics_.incremental_checkpoints = reg.counter("checkpoints incremental");
  metrics_.instance_recoveries = reg.counter("instance recoveries");
  metrics_.recovery_records = reg.counter("recovery records replayed");
  metrics_.loser_txns = reg.counter("recovery loser txns rolled back");
  const sim::VirtualClock* clock = &scheduler_->clock();
  redo_->set_observability(obs_, clock);
  archiver_->set_observability(obs_);
  storage_->set_observability(obs_, clock);
}

Database::~Database() { cancel_background_tasks(); }

// --- lifecycle ---------------------------------------------------------------

Status Database::create() {
  VDB_CHECK_MSG(state_ == InstanceState::kClosed, "create on non-closed db");
  advance(cfg_.cost.instance_startup);
  VDB_RETURN_IF_ERROR(redo_->create());
  auto sys = catalog_.create_user("SYS", /*is_dba=*/true);
  if (!sys.is_ok()) return sys.status();
  state_ = InstanceState::kOpen;
  VDB_RETURN_IF_ERROR(write_control_file(/*clean=*/false));
  schedule_background_tasks();
  return Status::ok();
}

Status Database::startup() {
  VDB_CHECK_MSG(state_ == InstanceState::kClosed, "startup on non-closed db");
  const SimTime started_at = scheduler_->now();
  advance(cfg_.cost.instance_startup);

  auto control = ControlFile::read(host_->fs(), cfg_.control_files);
  if (!control.is_ok()) return control.status();
  const bool clean = control.value().clean_shutdown;

  // Phase tracing. When the harness already opened a trace (it timestamps
  // detection from the failure instant), this startup's phases tile into
  // it; an unclean startup with no trace in flight opens its own so plain
  // crash-recovery runs still get a V$RECOVERY_PROGRESS row. Entering
  // kRestore at started_at back-attributes the instance-start cost charged
  // above to the restore phase, and closes the harness's detection span at
  // the instant the procedure actually began.
  obs::RecoveryTracer& tr = obs_->tracer();
  const bool own_trace = !clean && !tr.active();
  if (own_trace) tr.start("instance recovery", started_at);
  obs::RecoveryTracer* tracer = tr.active() ? &tr : nullptr;
  if (tracer != nullptr) tracer->enter(obs::RecoveryPhase::kRestore, started_at);

  VDB_RETURN_IF_ERROR(mount_from_control(control.value()));
  VDB_RETURN_IF_ERROR(redo_->open_existing());

  if (!clean) {
    auto recovered = instance_recovery();
    if (!recovered.is_ok()) return recovered.status();
  }

  if (tracer != nullptr) {
    tracer->enter(obs::RecoveryPhase::kOpen, scheduler_->now());
  }
  if (post_recovery_hook_) VDB_RETURN_IF_ERROR(post_recovery_hook_(*this));

  if (on_mounted_) on_mounted_(*this);
  VDB_RETURN_IF_ERROR(rebuild_object_state());

  // Early-open restart: from here on any fetch of a page with pending redo
  // rolls it forward on the spot. Installed after the rebuild so the
  // rebuild's own scan (which patches pending pages via overlay) does not
  // trigger eager recovery.
  if (restart_ != nullptr) {
    storage_->set_fetch_gate(
        [this](PageId pid) { return restart_->on_fetch(pid); });
  }

  // Re-archive finalized groups the crashed instance had not copied yet.
  if (cfg_.redo.archive_mode) {
    for (const auto& group : redo_->groups()) {
      if (group.seq == 0 || group.current) continue;
      if (host_->fs().exists(redo_->archive_path(group.seq))) {
        (void)redo_->mark_archived(group.index, scheduler_->now());
        continue;
      }
      (void)archiver_->archive_group(group);
    }
    last_archived_seq_ =
        std::max(last_archived_seq_, archiver_->last_archived_seq());
  }

  state_ = InstanceState::kOpen;
  VDB_RETURN_IF_ERROR(write_control_file(/*clean=*/false));
  schedule_background_tasks();
  if (tracer != nullptr) {
    // A self-owned trace ends at open; a harness-owned one stays active so
    // the harness can extend it to the first post-recovery commit (resume).
    if (own_trace) {
      tracer->finish(scheduler_->now());
    } else {
      tracer->exit(scheduler_->now());
    }
  }
  return Status::ok();
}

Status Database::shutdown() {
  VDB_RETURN_IF_ERROR(ensure_open());
  cancel_background_tasks();
  VDB_RETURN_IF_ERROR(complete_restart_recovery());
  VDB_RETURN_IF_ERROR(full_checkpoint());
  advance(cfg_.cost.instance_shutdown);
  state_ = InstanceState::kClosed;
  return write_control_file(/*clean=*/true);
}

Status Database::shutdown_abort() {
  if (state_ != InstanceState::kOpen) {
    return make_error(ErrorCode::kNotOpen, "instance not running");
  }
  cancel_background_tasks();
  // The instance dies instantly: unflushed redo and all cached pages are
  // gone. Nothing is written anywhere — that is the whole point.
  redo_->discard_unflushed();
  storage_->cache().discard_all();
  txns_.clear();
  // Pending restart redo dies with the instance; the recovery position was
  // clamped below it at every checkpoint, so the next incarnation's scan
  // re-stages it from the log.
  storage_->set_fetch_gate(nullptr);
  restart_.reset();
  state_ = InstanceState::kCrashed;
  return Status::ok();
}

Status Database::mount_from_control(const ControlFileData& data) {
  catalog_ = data.catalog;
  txns_.restore_next_id(data.next_txn_id);
  last_archived_seq_ = data.last_archived_seq;
  redo_->note_recovery_position(data.recovery_position);
  for (const auto& ts : data.tablespaces) storage_->restore_tablespace(ts);
  for (const auto& file : data.datafiles) storage_->restore_datafile(file);
  return Status::ok();
}

Status Database::write_control_file(bool clean) {
  ControlFileData data;
  data.db_name = cfg_.name;
  data.clean_shutdown = clean;
  data.recovery_position = redo_->recovery_position();
  data.checkpoint_lsn = redo_->recovery_position();
  data.next_txn_id = txns_.next_id();
  data.last_archived_seq = last_archived_seq_;
  data.archive_mode = cfg_.redo.archive_mode;
  data.tablespaces = storage_->tablespaces();
  data.datafiles = storage_->files();
  data.catalog = catalog_;
  return ControlFile::write(host_->fs(), cfg_.control_files, data);
}

// --- checkpoints ---------------------------------------------------------------

Status Database::full_checkpoint() {
  obs::WaitScope wait(&obs_->waits(), &scheduler_->clock(),
                      obs::WaitEvent::kCheckpointWait);
  metrics_.full_checkpoints->inc();
  VDB_RETURN_IF_ERROR(redo_->flush());
  auto result = storage_->cache().checkpoint();
  VDB_RETURN_IF_ERROR(handle_store_failures(result.failures));

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kCheckpoint;
  rec.recovery_start_lsn = redo_->next_lsn();
  if (restart_ != nullptr && restart_->has_pending()) {
    // Early-open restart: records below commit_lsn are applied, records
    // above it may still be pending in the retained plan — a crash now must
    // re-scan from there, not from this checkpoint.
    rec.recovery_start_lsn =
        std::min(rec.recovery_start_lsn, restart_->commit_lsn());
  }
  rec.active_txns = txns_.snapshot_active();
  for (const auto& [gtxn, commit] : coord_decisions_) {
    rec.coord_decisions.push_back(wal::CoordDecision{gtxn, commit});
  }
  redo_->append(rec);
  VDB_RETURN_IF_ERROR(redo_->flush());
  redo_->note_recovery_position(rec.recovery_start_lsn);
  stats_.full_checkpoints += 1;
  return write_control_file(/*clean=*/false);
}

Status Database::incremental_checkpoint() {
  obs::WaitScope wait(&obs_->waits(), &scheduler_->clock(),
                      obs::WaitEvent::kCheckpointWait);
  metrics_.incremental_checkpoints->inc();
  VDB_RETURN_IF_ERROR(redo_->flush());
  const SimTime now = scheduler_->now();
  const SimTime cutoff =
      now >= cfg_.checkpoint_timeout ? now - cfg_.checkpoint_timeout : 0;
  auto result = storage_->cache().flush_aged(cutoff);
  VDB_RETURN_IF_ERROR(handle_store_failures(result.failures));

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kCheckpoint;
  const Lsn min_dirty = storage_->cache().min_dirty_rec_lsn();
  rec.recovery_start_lsn =
      min_dirty == kInvalidLsn ? redo_->next_lsn() : min_dirty;
  if (restart_ != nullptr && restart_->has_pending()) {
    rec.recovery_start_lsn =
        std::min(rec.recovery_start_lsn, restart_->commit_lsn());
  }
  rec.active_txns = txns_.snapshot_active();
  for (const auto& [gtxn, commit] : coord_decisions_) {
    rec.coord_decisions.push_back(wal::CoordDecision{gtxn, commit});
  }
  redo_->append(rec);
  VDB_RETURN_IF_ERROR(redo_->flush());
  redo_->note_recovery_position(rec.recovery_start_lsn);
  stats_.incremental_checkpoints += 1;
  return write_control_file(/*clean=*/false);
}

Status Database::alter_tablespace_quota(const std::string& name,
                                        std::uint32_t max_blocks) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->find_tablespace(name);
  if (!ts.is_ok()) return ts.status();
  VDB_RETURN_IF_ERROR(storage_->set_tablespace_quota(ts.value(), max_blocks));
  return write_control_file(/*clean=*/false);
}

Status Database::alter_rollback_segment_offline(std::uint32_t index) {
  VDB_RETURN_IF_ERROR(ensure_open());
  return txns_.set_segment_offline(index);
}

Status Database::alter_rollback_segment_online(std::uint32_t index) {
  VDB_RETURN_IF_ERROR(ensure_open());
  return txns_.set_segment_online(index);
}

Status Database::checkpoint_now() {
  VDB_RETURN_IF_ERROR(ensure_open());
  return full_checkpoint();
}

Status Database::handle_store_failures(
    const std::vector<std::pair<PageId, Status>>& failures) {
  for (const auto& [pid, st] : failures) {
    if (st.code() == ErrorCode::kMediaFailure ||
        st.code() == ErrorCode::kNotFound) {
      stats_.media_errors += 1;
      storage_->mark_missing(pid.file);
      // Their changes live in the redo stream; media recovery will restore
      // and roll the file forward. Keep the cache clean of zombie frames.
      storage_->cache().discard_file(pid.file);
    } else if (st.code() == ErrorCode::kOffline) {
      // Dirty buffers of freshly-offlined files were already discarded.
      storage_->cache().discard_file(pid.file);
    } else if (st.code() == ErrorCode::kTransientIo) {
      // Retry budget exhausted on a background write. The frame stayed
      // dirty; the next checkpoint sweep retries once the glitch passes.
    } else {
      return st;
    }
  }
  return Status::ok();
}

void Database::on_group_finalized(const wal::RedoGroup& group) {
  if (cfg_.redo.archive_mode) {
    Status st = archiver_->archive_group(group);
    if (st.is_ok()) {
      last_archived_seq_ =
          std::max(last_archived_seq_, archiver_->last_archived_seq());
    } else {
      stats_.media_errors += 1;
    }
  }
  // Oracle checkpoints at every log switch; this is the checkpoint the
  // paper's Table 3 counts per configuration.
  (void)full_checkpoint();
}

void Database::schedule_background_tasks() {
  if (cfg_.checkpoint_timeout > 0) {
    ckpt_timer_ = scheduler_->schedule_every(cfg_.checkpoint_timeout, [this] {
      if (state_ == InstanceState::kOpen) (void)incremental_checkpoint();
    });
  }
  if (restart_ != nullptr) schedule_restart_sweeper();
}

void Database::cancel_background_tasks() {
  ckpt_timer_.cancel();
  restart_timer_.cancel();
}

void Database::schedule_restart_sweeper() {
  // Mode defaults: M2 promises its backlog drains fast (access to pending
  // pages is rejected, so the sweeper is the only way forward); M3 leans on
  // on-demand recovery and only trickles; M4 sits in between. Explicit
  // config knobs override either half.
  SimDuration interval = 0;
  std::uint32_t batch = 0;
  switch (restart_->mode()) {
    case RestartMode::kM2EarlyOpen:
      interval = 50 * kMillisecond;
      batch = 64;
      break;
    case RestartMode::kM4Mixed:
      interval = 100 * kMillisecond;
      batch = 32;
      break;
    case RestartMode::kM3OnDemand:
    default:
      interval = 1 * kSecond;
      batch = 8;
      break;
  }
  if (cfg_.restart_sweep_interval > 0) interval = cfg_.restart_sweep_interval;
  if (cfg_.restart_sweep_batch > 0) batch = cfg_.restart_sweep_batch;
  restart_timer_ = scheduler_->schedule_every(
      interval, [this, batch] { restart_sweep_tick(batch); });
}

void Database::restart_sweep_tick(std::uint32_t batch) {
  if (restart_ == nullptr || state_ != InstanceState::kOpen) return;
  if (restart_->has_pending()) (void)restart_->sweep(batch);
  if (!restart_->has_pending()) {
    // Backlog drained: tear the coordinator down and checkpoint so the
    // replay window finally collapses to the live position.
    (void)complete_restart_recovery();
    (void)full_checkpoint();
  }
}

Status Database::complete_restart_recovery() {
  if (restart_ == nullptr) return Status::ok();
  VDB_RETURN_IF_ERROR(restart_->complete());
  storage_->set_fetch_gate(nullptr);
  restart_timer_.cancel();
  restart_.reset();
  return Status::ok();
}

// --- DDL / administration -------------------------------------------------------

Result<TablespaceId> Database::create_tablespace(
    const std::string& name,
    const std::vector<std::pair<std::string, std::uint32_t>>& files,
    bool autoextend, std::uint32_t max_blocks) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->create_tablespace(name, autoextend, max_blocks);
  if (!ts.is_ok()) return ts;
  for (const auto& [path, blocks] : files) {
    auto file = storage_->add_datafile(ts.value(), path, blocks);
    if (!file.is_ok()) return file.status();
  }
  // Tablespace layout changes live in the control file, not the redo
  // stream; a sensible administrator backs up afterwards.
  VDB_RETURN_IF_ERROR(write_control_file(/*clean=*/false));
  return ts;
}

Result<UserId> Database::create_user(const std::string& name, bool is_dba) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto user = catalog_.create_user(name, is_dba);
  if (!user.is_ok()) return user;
  VDB_RETURN_IF_ERROR(write_control_file(/*clean=*/false));
  return user;
}

Status Database::drop_user(const std::string& name) {
  VDB_RETURN_IF_ERROR(ensure_open());
  VDB_RETURN_IF_ERROR(catalog_.drop_user(name));
  return write_control_file(/*clean=*/false);
}

Result<TableId> Database::create_table(const std::string& name,
                                       const std::string& tablespace,
                                       std::uint16_t slot_size, UserId owner,
                                       std::vector<catalog::ColumnDef> columns) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->find_tablespace(tablespace);
  if (!ts.is_ok()) return ts.status();
  auto table =
      catalog_.create_table(name, ts.value(), slot_size, owner,
                            std::move(columns));
  if (!table.is_ok()) return table;

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kCreateTable;
  rec.name = name;
  rec.table_id = table.value();
  rec.tablespace_id = ts.value();
  rec.owner_user = owner;
  rec.ddl_slot_size = slot_size;
  redo_->append(rec);
  VDB_RETURN_IF_ERROR(redo_->flush());

  heaps_[table.value().value] = std::make_unique<storage::TableHeap>(
      storage_.get(), table.value(), ts.value(), slot_size);
  return table;
}

Status Database::drop_table(const std::string& name) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto def = catalog_.find_table(name);
  if (!def.is_ok()) return def.status();
  const TableId id = def.value()->id;

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kDropTable;
  rec.name = name;
  rec.table_id = id;
  redo_->append(rec);
  VDB_RETURN_IF_ERROR(redo_->flush());

  heaps_.erase(id.value);
  observers_.erase(id.value);
  return catalog_.drop_table(id);
}

Status Database::set_table_logging(const std::string& name, bool logging) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto def = catalog_.find_table(name);
  if (!def.is_ok()) return def.status();
  return catalog_.set_logging(def.value()->id, logging);
}

Status Database::drop_tablespace(const std::string& name, bool delete_files) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->find_tablespace(name);
  if (!ts.is_ok()) return ts.status();

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kDropTablespace;
  rec.name = name;
  rec.tablespace_id = ts.value();
  redo_->append(rec);
  VDB_RETURN_IF_ERROR(redo_->flush());

  for (const catalog::TableDef* table : catalog_.tables_in(ts.value())) {
    heaps_.erase(table->id.value);
    observers_.erase(table->id.value);
    (void)catalog_.drop_table(table->id);
  }
  VDB_RETURN_IF_ERROR(storage_->drop_tablespace(ts.value(), delete_files));
  return write_control_file(/*clean=*/false);
}

Status Database::alter_tablespace_offline(const std::string& name) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->find_tablespace(name);
  if (!ts.is_ok()) return ts.status();
  auto info = storage_->tablespace_info(ts.value());
  if (!info.is_ok()) return info.status();
  // OFFLINE NORMAL: checkpoint the tablespace's files first so that no
  // recovery is needed to bring it back — the reason the paper measures
  // ~1 second for this fault's recovery.
  for (FileId fid : info.value()->files) {
    auto result = storage_->cache().flush_file(fid);
    VDB_RETURN_IF_ERROR(handle_store_failures(result.failures));
    VDB_RETURN_IF_ERROR(storage_->set_datafile_offline(
        fid, redo_->recovery_position(), /*clean=*/true));
  }
  VDB_RETURN_IF_ERROR(
      storage_->set_tablespace_offline(ts.value(), redo_->recovery_position()));
  return write_control_file(/*clean=*/false);
}

Status Database::alter_tablespace_online(const std::string& name) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto ts = storage_->find_tablespace(name);
  if (!ts.is_ok()) return ts.status();
  VDB_RETURN_IF_ERROR(storage_->set_tablespace_online(ts.value()));
  return write_control_file(/*clean=*/false);
}

Status Database::alter_datafile_offline(FileId id) {
  VDB_RETURN_IF_ERROR(ensure_open());
  // OFFLINE IMMEDIATE: dirty buffers lost, redo needed to come back.
  VDB_RETURN_IF_ERROR(
      storage_->set_datafile_offline(id, redo_->recovery_position()));
  return write_control_file(/*clean=*/false);
}

Status Database::alter_datafile_online(FileId id) {
  VDB_RETURN_IF_ERROR(ensure_open());
  VDB_RETURN_IF_ERROR(storage_->set_datafile_online(id));
  return write_control_file(/*clean=*/false);
}

// --- transactions & DML -----------------------------------------------------------

Result<TxnId> Database::begin() {
  // Under a coordinator the latch also serializes TxnId allocation, which
  // doubles as the wait-die age: ids grow monotonically, smaller = older.
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  advance(cfg_.cost.cpu_per_txn);
  return txns_.begin();
}

Result<Lsn> Database::commit(TxnId txn) {
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  auto t = txns_.get(txn);
  if (!t.is_ok()) return t.status();

  // OCC commit-time validation, under the latch so no other commit's
  // publish can interleave: a failure surfaces as an error the worker
  // answers with rollback (undoing any in-place writes).
  if (cc_ != nullptr) VDB_RETURN_IF_ERROR(cc_->validate(txn));

  if (t.value()->undo.empty()) {
    // Read-only: nothing to make durable.
    VDB_RETURN_IF_ERROR(txns_.mark_committed(txn, 0));
    locks_.release_all(txn);
    if (cc_ != nullptr) cc_->end(txn, /*committed=*/true);
    stats_.commits += 1;
    metrics_.commits->inc();
    return Lsn{0};
  }

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kCommit;
  rec.txn = txn;
  const Lsn lsn = redo_->append(rec);
  // From here the transaction's fate is sealed in the log: checkpoints
  // taken during the flush below (log-switch checkpoints) must not snapshot
  // it as active.
  VDB_RETURN_IF_ERROR(txns_.mark_end_logged(txn));
  // Group commit: piggybacks on an already-durable or in-flight flush when
  // possible; otherwise the LGWR batch carries every co-buffered commit.
  {
    obs::WaitScope sync(&obs_->waits(), &scheduler_->clock(),
                        obs::WaitEvent::kLogFileSync);
    VDB_RETURN_IF_ERROR(redo_->commit_flush(lsn));
  }

  VDB_RETURN_IF_ERROR(txns_.mark_committed(txn, lsn));
  // Publish (bump the committed write set's versions for OCC validators)
  // and release CC locks before the latch drops: a transaction that
  // mediates one of these rows next must already see the new versions.
  if (cc_ != nullptr) {
    cc_->publish(txn);
    cc_->end(txn, /*committed=*/true);
  }
  locks_.release_all(txn);
  stats_.commits += 1;
  metrics_.commits->inc();
  return lsn;
}

Status Database::rollback(TxnId txn) {
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  auto t = txns_.get(txn);
  if (!t.is_ok()) return t.status();

  // Compensate in strict reverse order, logging CLRs so that replay after a
  // crash reproduces the rollback. A failure (media fault mid-rollback)
  // leaves the transaction in-doubt with `compensated` recording progress;
  // resolve_in_doubt_transactions() retries after the file is recovered.
  txn::Transaction* tr = t.value();
  while (tr->compensated < tr->undo.size()) {
    const wal::UndoOp& op = tr->undo[tr->undo.size() - 1 - tr->compensated];
    VDB_RETURN_IF_ERROR(apply_undo_op(txn, op, /*log_clr=*/true));
    tr->compensated += 1;
    advance(cfg_.cost.cpu_per_write_op);
  }
  if (!tr->undo.empty()) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kAbort;
    rec.txn = txn;
    redo_->append(rec);
    VDB_RETURN_IF_ERROR(txns_.mark_end_logged(txn));
  }
  VDB_RETURN_IF_ERROR(txns_.mark_aborted(txn));
  if (cc_ != nullptr) cc_->end(txn, /*committed=*/false);
  locks_.release_all(txn);
  stats_.aborts += 1;
  metrics_.rollbacks->inc();
  return Status::ok();
}

Status Database::resolve_in_doubt_transactions() {
  // Transactions stranded by a failed rollback (media fault mid-undo) are
  // finished once their files are readable again — Oracle's SMON dead-
  // transaction recovery. PREPAREd 2PC branches stay: only their
  // coordinator may decide them.
  std::vector<TxnId> in_doubt;
  in_doubt.reserve(txns_.active_count());
  for (const auto& snap : txns_.snapshot_active()) {
    if (snap.prepared) continue;
    in_doubt.push_back(snap.txn);
  }
  for (TxnId txn : in_doubt) {
    VDB_RETURN_IF_ERROR(rollback(txn));
  }
  return Status::ok();
}

Result<Lsn> Database::prepare(TxnId txn, std::uint64_t gtxn,
                              std::uint32_t coord_shard) {
  VDB_RETURN_IF_ERROR(ensure_open());
  auto t = txns_.get(txn);
  if (!t.is_ok()) return t.status();

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kTxnPrepare;
  rec.txn = txn;
  rec.gtxn = gtxn;
  rec.coord_shard = coord_shard;
  const Lsn lsn = redo_->append(rec);
  VDB_RETURN_IF_ERROR(txns_.mark_prepared(txn, gtxn, coord_shard, lsn));
  {
    obs::WaitScope sync(&obs_->waits(), &scheduler_->clock(),
                        obs::WaitEvent::kLogFileSync);
    VDB_RETURN_IF_ERROR(redo_->flush_to(lsn));
  }
  return lsn;
}

Result<Lsn> Database::log_coord_decision(std::uint64_t gtxn, bool commit) {
  VDB_RETURN_IF_ERROR(ensure_open());
  wal::LogRecord rec;
  rec.type = commit ? wal::LogRecordType::kCoordCommit
                    : wal::LogRecordType::kCoordAbort;
  rec.gtxn = gtxn;
  const Lsn lsn = redo_->append(rec);
  coord_decisions_[gtxn] = commit;
  {
    obs::WaitScope sync(&obs_->waits(), &scheduler_->clock(),
                        obs::WaitEvent::kLogFileSync);
    VDB_RETURN_IF_ERROR(redo_->flush_to(lsn));
  }
  return lsn;
}

std::optional<bool> Database::coord_decision(std::uint64_t gtxn) const {
  auto it = coord_decisions_.find(gtxn);
  if (it == coord_decisions_.end()) return std::nullopt;
  return it->second;
}

void Database::forget_decision(std::uint64_t gtxn) {
  coord_decisions_.erase(gtxn);
}

Result<Lsn> Database::resolve_prepared(std::uint64_t gtxn, bool commit) {
  // Branch still live in the transaction manager (coordinator and this
  // participant are both up): finish it like any runtime transaction.
  for (const auto& snap : txns_.snapshot_active()) {
    if (!snap.prepared || snap.gtxn != gtxn) continue;
    if (commit) return this->commit(snap.txn);
    // A prepared branch may be rolled back only on the coordinator's say-so,
    // which is exactly this call.
    auto t = txns_.get(snap.txn);
    if (t.is_ok()) t.value()->prepared = false;
    VDB_RETURN_IF_ERROR(rollback(snap.txn));
    return Lsn{0};
  }

  // Branch adopted from recovery: its redo is already applied; commit means
  // sealing the fate with a COMMIT record, abort means compensating the
  // saved undo images.
  auto it = in_doubt_.find(gtxn);
  if (it == in_doubt_.end()) return Lsn{0};  // already resolved elsewhere
  InDoubtBranch branch = std::move(it->second);
  in_doubt_.erase(it);
  if (commit) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kCommit;
    rec.txn = branch.txn;
    const Lsn lsn = redo_->append(rec);
    obs::WaitScope sync(&obs_->waits(), &scheduler_->clock(),
                        obs::WaitEvent::kLogFileSync);
    VDB_RETURN_IF_ERROR(redo_->commit_flush(lsn));
    stats_.commits += 1;
    metrics_.commits->inc();
    return lsn;
  }
  VDB_RETURN_IF_ERROR(undo_incomplete_txn(branch.txn, branch.ops, branch.clrs));
  VDB_RETURN_IF_ERROR(redo_->flush());
  stats_.aborts += 1;
  metrics_.rollbacks->inc();
  return Lsn{0};
}

Lsn Database::pseudo_lsn() const {
  // NOLOGGING changes stamp pages with an LSN strictly below any future
  // record so replay guards stay correct.
  const Lsn next = redo_->next_lsn();
  return next == 0 ? 0 : next - 1;
}

storage::TableHeap* Database::heap(TableId table) {
  auto it = heaps_.find(table.value);
  return it == heaps_.end() ? nullptr : it->second.get();
}

Result<RowId> Database::insert(TxnId txn, TableId table,
                               std::span<const std::uint8_t> row) {
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  auto def = catalog_.find_table(table);
  if (!def.is_ok()) return def.status();
  if (row.size() > def.value()->slot_size) {
    return make_error(ErrorCode::kInvalidArgument, "row exceeds slot size");
  }
  storage::TableHeap* h = heap(table);
  if (h == nullptr) {
    return make_error(ErrorCode::kInternal, "missing heap for table");
  }
  const bool logging = def.value()->logging;
  advance(cfg_.cost.cpu_per_write_op);

  auto slot = h->choose_insert_slot();
  if (!slot.is_ok()) return slot.status();
  const RowId rid = slot.value().rid;

  // Early-open restart gate, checked before anything is logged or recorded
  // for undo: a rejected insert must leave no trace.
  if (restart_ != nullptr) {
    VDB_RETURN_IF_ERROR(restart_->check_access(rid.page));
  }

  if (slot.value().needs_format) {
    Lsn lsn;
    if (logging) {
      wal::LogRecord fmt;
      fmt.type = wal::LogRecordType::kFormatPage;
      fmt.txn = txn;
      fmt.page = rid.page;
      fmt.format_owner = table;
      fmt.slot_size = def.value()->slot_size;
      lsn = redo_->append(fmt);
    } else {
      lsn = pseudo_lsn();
    }
    VDB_RETURN_IF_ERROR(storage_->apply_format(rid.page, table,
                                               def.value()->slot_size, lsn));
    h->adopt_page(rid.page);
  }

  if (cc_ != nullptr) {
    // The rid only exists now that the slot is chosen, so this mediation
    // runs under the latch — a would-wait must die (may_wait=false) to
    // keep the latch from deadlocking the round. Fresh slots are all but
    // uncontended, so the conversion is theoretical.
    VDB_RETURN_IF_ERROR(cc_->mediate(txn, txn::LockTarget::for_row(table, rid),
                                     txn::AccessMode::kWrite,
                                     /*may_wait=*/false));
  } else {
    VDB_RETURN_IF_ERROR(
        locks_.acquire(txn, txn::LockTarget::for_row(table, rid),
                       txn::LockMode::kExclusive));
  }

  wal::DmlChange change;
  change.table = table;
  change.rid = rid;
  change.after.assign(row.begin(), row.end());

  Lsn lsn;
  if (logging) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kInsert;
    rec.txn = txn;
    rec.dml = change;
    lsn = redo_->append(rec);
  } else {
    lsn = pseudo_lsn();
  }

  VDB_RETURN_IF_ERROR(txns_.record_op(
      txn, wal::UndoOp{lsn, wal::LogRecordType::kInsert, change}));
  VDB_RETURN_IF_ERROR(h->apply_insert(rid, row, lsn));
  stats_.rows_inserted += 1;
  notify(RowChange{RowChange::Kind::kInsert, table, rid, {}, row});
  return rid;
}

Status Database::update(TxnId txn, TableId table, RowId rid,
                        std::span<const std::uint8_t> row) {
  // Mediate *before* taking the latch: a blocked waiter must not hold the
  // latch its lock holder needs in order to commit and release.
  if (cc_ != nullptr) {
    VDB_RETURN_IF_ERROR(cc_->mediate(txn, txn::LockTarget::for_row(table, rid),
                                     txn::AccessMode::kWrite,
                                     /*may_wait=*/true));
  }
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  auto def = catalog_.find_table(table);
  if (!def.is_ok()) return def.status();
  if (row.size() > def.value()->slot_size) {
    return make_error(ErrorCode::kInvalidArgument, "row exceeds slot size");
  }
  storage::TableHeap* h = heap(table);
  if (h == nullptr) {
    return make_error(ErrorCode::kInternal, "missing heap for table");
  }
  advance(cfg_.cost.cpu_per_write_op);

  // Early-open restart gate: reject (M2) or roll the page forward before
  // any lock, log record, or undo entry exists for this operation.
  if (restart_ != nullptr) {
    VDB_RETURN_IF_ERROR(restart_->check_access(rid.page));
  }

  if (cc_ == nullptr) {
    VDB_RETURN_IF_ERROR(
        locks_.acquire(txn, txn::LockTarget::for_row(table, rid),
                       txn::LockMode::kExclusive));
  }

  auto before = h->read(rid);
  if (!before.is_ok()) return before.status();

  wal::DmlChange change;
  change.table = table;
  change.rid = rid;
  change.before = before.value();
  change.after.assign(row.begin(), row.end());

  Lsn lsn;
  if (def.value()->logging) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kUpdate;
    rec.txn = txn;
    rec.dml = change;
    lsn = redo_->append(rec);
  } else {
    lsn = pseudo_lsn();
  }

  VDB_RETURN_IF_ERROR(txns_.record_op(
      txn, wal::UndoOp{lsn, wal::LogRecordType::kUpdate, change}));
  VDB_RETURN_IF_ERROR(h->apply_update(rid, row, lsn));
  stats_.rows_updated += 1;
  notify(RowChange{RowChange::Kind::kUpdate, table, rid, change.before, row});
  return Status::ok();
}

Status Database::erase(TxnId txn, TableId table, RowId rid) {
  if (cc_ != nullptr) {
    VDB_RETURN_IF_ERROR(cc_->mediate(txn, txn::LockTarget::for_row(table, rid),
                                     txn::AccessMode::kWrite,
                                     /*may_wait=*/true));
  }
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  auto def = catalog_.find_table(table);
  if (!def.is_ok()) return def.status();
  storage::TableHeap* h = heap(table);
  if (h == nullptr) {
    return make_error(ErrorCode::kInternal, "missing heap for table");
  }
  advance(cfg_.cost.cpu_per_write_op);

  if (restart_ != nullptr) {
    VDB_RETURN_IF_ERROR(restart_->check_access(rid.page));
  }

  if (cc_ == nullptr) {
    VDB_RETURN_IF_ERROR(
        locks_.acquire(txn, txn::LockTarget::for_row(table, rid),
                       txn::LockMode::kExclusive));
  }

  auto before = h->read(rid);
  if (!before.is_ok()) return before.status();

  wal::DmlChange change;
  change.table = table;
  change.rid = rid;
  change.before = before.value();

  Lsn lsn;
  if (def.value()->logging) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kDelete;
    rec.txn = txn;
    rec.dml = change;
    lsn = redo_->append(rec);
  } else {
    lsn = pseudo_lsn();
  }

  VDB_RETURN_IF_ERROR(txns_.record_op(
      txn, wal::UndoOp{lsn, wal::LogRecordType::kDelete, change}));
  VDB_RETURN_IF_ERROR(h->apply_delete(rid, lsn));
  stats_.rows_deleted += 1;
  notify(RowChange{RowChange::Kind::kDelete, table, rid, change.before, {}});
  return Status::ok();
}

Result<std::vector<std::uint8_t>> Database::read(TxnId txn, TableId table,
                                                 RowId rid) {
  if (cc_ != nullptr) {
    VDB_RETURN_IF_ERROR(cc_->mediate(txn, txn::LockTarget::for_row(table, rid),
                                     txn::AccessMode::kRead,
                                     /*may_wait=*/true));
  }
  auto guard = coord_guard();
  VDB_RETURN_IF_ERROR(ensure_open());
  storage::TableHeap* h = heap(table);
  if (h == nullptr) {
    return make_error(ErrorCode::kInternal, "missing heap for table");
  }
  advance(cfg_.cost.cpu_per_read_op);
  if (restart_ != nullptr) {
    VDB_RETURN_IF_ERROR(restart_->check_access(rid.page));
  }
  if (cc_ == nullptr) {
    VDB_RETURN_IF_ERROR(locks_.acquire(
        txn, txn::LockTarget::for_row(table, rid), txn::LockMode::kShared));
  }
  stats_.rows_read += 1;
  return h->read(rid);
}

Status Database::scan(
    TableId table,
    const std::function<bool(RowId, std::span<const std::uint8_t>)>& fn) {
  storage::TableHeap* h = heap(table);
  if (h == nullptr) {
    return make_error(ErrorCode::kInternal, "missing heap for table");
  }
  return h->scan(fn);
}

Result<TableId> Database::table_id(const std::string& name) const {
  auto def = catalog_.find_table(name);
  if (!def.is_ok()) return def.status();
  return def.value()->id;
}

void Database::register_observer(TableId table, RowObserver observer) {
  observers_[table.value].push_back(std::move(observer));
}

void Database::notify(const RowChange& change) {
  if (state_ != InstanceState::kOpen) return;
  auto it = observers_.find(change.table.value);
  if (it == observers_.end()) return;
  for (const auto& observer : it->second) observer(change);
}

Status Database::apply_undo_op(TxnId txn, const wal::UndoOp& op,
                               bool log_clr) {
  // NOLOGGING tables get no compensation records either: their forward
  // changes never reached the redo stream.
  if (log_clr) {
    auto def = catalog_.find_table(op.change.table);
    if (def.is_ok() && !def.value()->logging) log_clr = false;
  }
  // Build the compensating record.
  wal::LogRecord clr;
  clr.txn = txn;
  clr.is_clr = true;
  clr.dml.table = op.change.table;
  clr.dml.rid = op.change.rid;
  switch (op.op) {
    case wal::LogRecordType::kInsert:
      clr.type = wal::LogRecordType::kDelete;
      clr.dml.before = op.change.after;
      break;
    case wal::LogRecordType::kUpdate:
      clr.type = wal::LogRecordType::kUpdate;
      clr.dml.before = op.change.after;
      clr.dml.after = op.change.before;
      break;
    case wal::LogRecordType::kDelete:
      clr.type = wal::LogRecordType::kInsert;
      clr.dml.after = op.change.before;
      break;
    default:
      return make_error(ErrorCode::kInternal, "bad undo op type");
  }
  // Probe the target page before logging: the compensation record must not
  // enter the redo stream unless it can actually be applied now (a CLR for
  // an unapplied change would corrupt replay).
  {
    auto probe = storage_->fetch(clr.dml.rid.page);
    if (!probe.is_ok()) return probe.status();
  }

  Lsn lsn = pseudo_lsn();
  if (log_clr) lsn = redo_->append(clr);

  if (state_ == InstanceState::kOpen) {
    // Runtime rollback: go through the heap so free-slot bookkeeping and
    // application observers stay consistent.
    storage::TableHeap* h = heap(clr.dml.table);
    if (h == nullptr) {
      return make_error(ErrorCode::kInternal, "missing heap in rollback");
    }
    switch (clr.type) {
      case wal::LogRecordType::kDelete:
        VDB_RETURN_IF_ERROR(h->apply_delete(clr.dml.rid, lsn));
        notify(RowChange{RowChange::Kind::kDelete, clr.dml.table, clr.dml.rid,
                         clr.dml.before, {}});
        break;
      case wal::LogRecordType::kUpdate:
        VDB_RETURN_IF_ERROR(
            h->apply_update(clr.dml.rid, clr.dml.after, lsn));
        notify(RowChange{RowChange::Kind::kUpdate, clr.dml.table, clr.dml.rid,
                         clr.dml.before, clr.dml.after});
        break;
      case wal::LogRecordType::kInsert:
        VDB_RETURN_IF_ERROR(
            h->apply_insert(clr.dml.rid, clr.dml.after, lsn));
        notify(RowChange{RowChange::Kind::kInsert, clr.dml.table, clr.dml.rid,
                         {}, clr.dml.after});
        break;
      default:
        break;
    }
    return Status::ok();
  }
  // Recovery-time undo: raw page application.
  clr.lsn = lsn;
  return apply_record(clr);
}

// --- recovery ----------------------------------------------------------------------

void Database::set_recovering(bool on) {
  storage_->set_recovery_mode(on);
  if (on) {
    if (state_ != InstanceState::kRecovering) pre_recovery_state_ = state_;
    state_ = InstanceState::kRecovering;
  } else if (state_ == InstanceState::kRecovering) {
    // An open instance resumes service (online media recovery); anything
    // else lands closed and is opened explicitly by its driver.
    state_ = pre_recovery_state_ == InstanceState::kOpen
                 ? InstanceState::kOpen
                 : InstanceState::kClosed;
  }
}

Status Database::apply_record(const wal::LogRecord& rec) {
  using wal::LogRecordType;
  switch (rec.type) {
    case LogRecordType::kFormatPage: {
      auto ref = storage_->fetch(rec.page);
      if (ref.is_ok() && ref.value()->formatted() &&
          ref.value()->lsn() >= rec.lsn) {
        // Already formatted at or past this point; still make sure the
        // allocation high-water mark covers it.
        storage_->set_high_water(rec.page.file, rec.page.block + 1);
        return Status::ok();
      }
      if (!ref.is_ok() && ref.code() != ErrorCode::kOffline) {
        // Unreadable page (e.g. file shorter than target block): let
        // apply_format extend and format it.
      }
      return storage_->apply_format(rec.page, rec.format_owner, rec.slot_size,
                                    rec.lsn);
    }
    case LogRecordType::kInsert:
    case LogRecordType::kUpdate: {
      auto ref = storage_->fetch(rec.dml.rid.page);
      if (!ref.is_ok()) return ref.status();
      if (!ref.value()->formatted()) {
        // The page was formatted while its table ran NOLOGGING, so no
        // FORMAT record exists. Format it implicitly; rows the unlogged
        // phase put here are gone — the documented NOLOGGING trade-off.
        auto def = catalog_.find_table(rec.dml.table);
        if (!def.is_ok()) return def.status();
        VDB_RETURN_IF_ERROR(storage_->apply_format(
            rec.dml.rid.page, rec.dml.table, def.value()->slot_size, 0));
        ref = storage_->fetch(rec.dml.rid.page);
        if (!ref.is_ok()) return ref.status();
      }
      if (rec.lsn <= ref.value()->lsn()) return Status::ok();  // idempotent
      ref.value()->set_slot(rec.dml.rid.slot, rec.dml.after);
      ref.value()->set_lsn(rec.lsn);
      storage_->mark_dirty(rec.dml.rid.page);
      return Status::ok();
    }
    case LogRecordType::kDelete: {
      auto ref = storage_->fetch(rec.dml.rid.page);
      if (!ref.is_ok()) return ref.status();
      if (rec.lsn <= ref.value()->lsn()) return Status::ok();
      ref.value()->clear_slot(rec.dml.rid.slot);
      ref.value()->set_lsn(rec.lsn);
      storage_->mark_dirty(rec.dml.rid.page);
      return Status::ok();
    }
    case LogRecordType::kCreateTable: {
      Status st = catalog_.create_table_with_id(
          rec.table_id, rec.name, rec.tablespace_id, rec.ddl_slot_size,
          rec.owner_user);
      if (!st.is_ok() && st.code() != ErrorCode::kAlreadyExists) return st;
      return Status::ok();
    }
    case LogRecordType::kDropTable: {
      Status st = catalog_.drop_table(rec.table_id);
      if (!st.is_ok() && st.code() != ErrorCode::kNotFound) return st;
      return Status::ok();
    }
    case LogRecordType::kDropTablespace: {
      for (const catalog::TableDef* table :
           catalog_.tables_in(rec.tablespace_id)) {
        (void)catalog_.drop_table(table->id);
      }
      auto info = storage_->tablespace_info(rec.tablespace_id);
      if (info.is_ok()) {
        (void)storage_->drop_tablespace(rec.tablespace_id,
                                        /*delete_files=*/false);
      }
      return Status::ok();
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpoint:
    case LogRecordType::kTxnPrepare:
    case LogRecordType::kCoordCommit:
    case LogRecordType::kCoordAbort:
      return Status::ok();  // bookkeeping handled by the replay driver
  }
  return make_error(ErrorCode::kInternal, "unhandled record type");
}

RedoApplyPlan Database::make_replay_plan(
    std::function<void(Lsn, const Status&)> on_skip,
    std::function<void(std::uint64_t)> charge_apply) {
  RedoApplyPlan::Hooks hooks;
  hooks.storage = storage_.get();
  hooks.serial_apply = [this](const wal::LogRecord& rec) {
    return apply_record(rec);
  };
  hooks.on_skip = std::move(on_skip);
  hooks.jobs = cfg_.replay_jobs;
  hooks.obs = obs_;
  hooks.charge_apply = std::move(charge_apply);
  return RedoApplyPlan(std::move(hooks));
}

Result<Lsn> Database::instance_recovery() {
  set_recovering(true);
  metrics_.instance_recoveries->inc();
  obs::RecoveryTracer* tracer =
      obs_->tracer().active() ? &obs_->tracer() : nullptr;
  if (tracer != nullptr) {
    tracer->enter(obs::RecoveryPhase::kRedo, scheduler_->now());
  }

  struct LoserTrack {
    std::vector<wal::UndoOp> ops;
    std::uint32_t clrs = 0;
    /// PREPAREd 2PC branch: not a loser — it goes to the in-doubt table.
    bool prepared = false;
    std::uint64_t gtxn = 0;
    std::uint32_t coord_shard = 0;
  };
  std::map<std::uint64_t, LoserTrack> live;  // ordered for determinism
  // Transactions whose end record was already replayed. A checkpoint taken
  // *during* a commit's log flush can snapshot the committing transaction
  // as active even though its COMMIT record precedes the checkpoint record;
  // an ended transaction must never re-enter the loser set.
  std::set<std::uint64_t> ended;
  const Lsn start = redo_->recovery_position();
  Lsn recovered_to = start;
  std::uint64_t max_txn = 0;
  std::uint64_t records = 0;
  std::uint64_t skipped = 0;
  Status inner = Status::ok();

  // Two-phase replay: the scan below does the serial bookkeeping (loser
  // tracking, clock charges) and stages page records; the plan applies them
  // partitioned by page across workers at each drain point.
  //
  // Early-open modes (M2-M4) split the per-record cost: the scan charges
  // only the analysis share, and the plan charges the apply share when a
  // run actually drains — at a DDL barrier, on demand after open, or from
  // the background sweeper. A fully drained early restart has consumed
  // exactly the CPU an M1 restart did.
  const bool early = cfg_.restart_mode != RestartMode::kM1Traditional;
  std::function<void(std::uint64_t)> charge_apply;
  if (early) {
    charge_apply = [this](std::uint64_t n) {
      advance(cfg_.cost.cpu_per_redo_apply * n);
    };
  }
  auto plan_owner = std::make_unique<RedoApplyPlan>(make_replay_plan(
      [&](Lsn lsn, const Status& st) {
        skipped += 1;
        if (skipped <= 8) {
          std::fprintf(stderr,
                       "[instance-recovery] skipped record lsn=%llu: %s\n",
                       static_cast<unsigned long long>(lsn),
                       st.to_string().c_str());
        }
      },
      std::move(charge_apply)));
  RedoApplyPlan& plan = *plan_owner;

  Status read_st = redo_->read_online(start, [&](const wal::LogRecord& rec) {
    records += 1;
    advance(early ? cfg_.cost.cpu_per_analysis_record
                  : cfg_.cost.cpu_per_replay_record);
    recovered_to = std::max(recovered_to, rec.lsn);
    if (rec.txn.valid() && rec.txn.value > max_txn) max_txn = rec.txn.value;

    switch (rec.type) {
      case wal::LogRecordType::kCheckpoint:
        // The snapshot supersedes anything collected so far for those
        // transactions (it includes all of their ops up to this record).
        for (const auto& snap : rec.active_txns) {
          if (ended.contains(snap.txn.value)) continue;
          LoserTrack track;
          track.ops = snap.ops;
          track.prepared = snap.prepared;
          track.gtxn = snap.gtxn;
          track.coord_shard = snap.coord_shard;
          live[snap.txn.value] = std::move(track);
        }
        for (const auto& d : rec.coord_decisions) {
          coord_decisions_[d.gtxn] = d.commit;
        }
        break;
      case wal::LogRecordType::kCommit:
      case wal::LogRecordType::kAbort:
        live.erase(rec.txn.value);
        ended.insert(rec.txn.value);
        break;
      case wal::LogRecordType::kTxnPrepare: {
        LoserTrack& track = live[rec.txn.value];
        track.prepared = true;
        track.gtxn = rec.gtxn;
        track.coord_shard = rec.coord_shard;
        break;
      }
      case wal::LogRecordType::kCoordCommit:
        coord_decisions_[rec.gtxn] = true;
        break;
      case wal::LogRecordType::kCoordAbort:
        coord_decisions_[rec.gtxn] = false;
        break;
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
      case wal::LogRecordType::kDelete: {
        plan.stage(rec);
        if (rec.is_clr) {
          live[rec.txn.value].clrs += 1;
        } else {
          live[rec.txn.value].ops.push_back(
              wal::UndoOp{rec.lsn, rec.type, rec.dml});
        }
        break;
      }
      case wal::LogRecordType::kFormatPage:
        plan.stage(rec);
        break;
      default: {
        // DDL: a serial barrier — staged changes on the affected objects
        // must land before the catalog/tablespace operation runs.
        auto stats = plan.drain();
        if (!stats.is_ok()) {
          inner = stats.status();
          return false;
        }
        Status st = apply_record(rec);
        if (!st.is_ok() && st.code() != ErrorCode::kMediaFailure &&
            st.code() != ErrorCode::kOffline &&
            st.code() != ErrorCode::kNotFound &&
            st.code() != ErrorCode::kCorruption) {
          inner = st;
          return false;
        }
        break;
      }
    }
    return true;
  });
  if (read_st.is_ok() && inner.is_ok() && !early) {
    // M1: the whole backlog drains before the database opens. Early modes
    // keep the plan staged — it moves into the restart coordinator below.
    auto stats = plan.drain();
    if (!stats.is_ok()) inner = stats.status();
  }
  if (!read_st.is_ok()) {
    set_recovering(false);
    return read_st;
  }
  if (!inner.is_ok()) {
    set_recovering(false);
    return inner;
  }
  metrics_.recovery_records->inc(records);

  // Roll back losers (transactions with no end record), newest first.
  if (tracer != nullptr) {
    tracer->enter(obs::RecoveryPhase::kUndo, scheduler_->now());
  }
  if (early) {
    // Undo probes and compensates on the loser pages directly, so those
    // pages must be current before rollback touches them — drain exactly
    // their runs now (charged via charge_apply) and leave the rest pending.
    for (const auto& [txn_id, track] : live) {
      for (const auto& op : track.ops) {
        auto stats = plan.drain_page(op.change.rid.page);
        if (!stats.is_ok()) {
          set_recovering(false);
          return stats.status();
        }
      }
    }
  }
  // PREPAREd branches are not losers: park them in the in-doubt table for
  // the coordinator (or its recovered decision record) to settle.
  for (auto it = live.begin(); it != live.end();) {
    if (!it->second.prepared) {
      ++it;
      continue;
    }
    InDoubtBranch branch;
    branch.txn = TxnId{it->first};
    branch.coord_shard = it->second.coord_shard;
    branch.ops = std::move(it->second.ops);
    branch.clrs = it->second.clrs;
    in_doubt_[it->second.gtxn] = std::move(branch);
    it = live.erase(it);
  }
  for (auto it = live.rbegin(); it != live.rend(); ++it) {
    if (it->second.ops.empty()) continue;
    metrics_.loser_txns->inc();
    VDB_RETURN_IF_ERROR(undo_incomplete_txn(TxnId{it->first}, it->second.ops,
                                            it->second.clrs));
  }
  VDB_RETURN_IF_ERROR(redo_->flush());
  txns_.restore_next_id(max_txn + 1);

  set_recovering(false);
  if (tracer != nullptr) {
    tracer->enter(obs::RecoveryPhase::kOpen, scheduler_->now());
  }
  if (early && plan.has_pending()) {
    // Early open: hand the staged backlog to the restart coordinator and
    // skip the checkpoint — the recovery position must stay below the
    // commit_lsn watermark until the last run drains (the sweeper's
    // completion checkpoint collapses the window then).
    restart_ = std::make_unique<RestartCoordinator>(
        cfg_.restart_mode, cfg_.early_open_stall, std::move(plan_owner),
        obs_, &scheduler_->clock());
    return recovered_to;
  }
  // Checkpoint so the replay window collapses; requires OPEN for the
  // statistics but state transitions are managed by startup(). Counts as
  // part of the open phase for tracing purposes.
  VDB_RETURN_IF_ERROR(full_checkpoint());
  return recovered_to;
}

Status Database::undo_incomplete_txn(TxnId txn,
                                     const std::vector<wal::UndoOp>& ops,
                                     std::uint64_t clrs_done) {
  const std::uint64_t remaining =
      ops.size() > clrs_done ? ops.size() - clrs_done : 0;
  for (std::uint64_t i = remaining; i > 0; --i) {
    VDB_RETURN_IF_ERROR(apply_undo_op(txn, ops[i - 1], /*log_clr=*/true));
    advance(cfg_.cost.cpu_per_replay_record);
  }
  wal::LogRecord abort_rec;
  abort_rec.type = wal::LogRecordType::kAbort;
  abort_rec.txn = txn;
  redo_->append(abort_rec);
  return Status::ok();
}

Status Database::open_after_external_recovery() {
  VDB_CHECK_MSG(state_ != InstanceState::kOpen,
                "open_after_external_recovery on open instance");
  set_recovering(false);
  state_ = InstanceState::kOpen;
  // Checkpoint FIRST: replayed changes live in the buffer cache, and the
  // rebuild below scans raw datafiles — they must be current on disk.
  Status st = full_checkpoint();
  if (!st.is_ok()) {
    state_ = InstanceState::kClosed;
    return st;
  }
  if (on_mounted_) on_mounted_(*this);
  st = rebuild_object_state();
  if (!st.is_ok()) {
    state_ = InstanceState::kClosed;
    return st;
  }
  schedule_background_tasks();
  return Status::ok();
}

Status Database::rebuild_object_state() {
  heaps_.clear();
  for (const catalog::TableDef* def : catalog_.tables()) {
    heaps_[def->id.value] = std::make_unique<storage::TableHeap>(
        storage_.get(), def->id, def->tablespace, def->slot_size);
  }
  const auto register_one = [&](PageId pid, const storage::Page& page) {
    auto it = heaps_.find(page.owner().value);
    if (it == heaps_.end()) return;  // dropped table: leaked pages
    it->second->register_page(pid, page.used_count() < page.capacity(),
                              page.used_count());
    if (rebuild_hook_) {
      for (std::uint16_t slot = 0; slot < page.capacity(); ++slot) {
        if (!page.slot_used(slot)) continue;
        auto payload = page.read_slot(slot);
        if (payload.is_ok()) {
          rebuild_hook_(page.owner(), RowId{pid, slot}, payload.value());
        }
      }
    }
  };
  // Early-open restart: the raw datafile images this scan reads predate the
  // redo still pending in the retained plan. Pages with a pending run are
  // registered from an overlay-patched copy (the physical apply stays
  // deferred); pending pages the scan never sees — freshly formatted past
  // the on-disk image, or NOLOGGING-implicit — are recovered eagerly below
  // and registered from the cache.
  std::unordered_map<PageId, bool> visited_pending;
  if (restart_ != nullptr) {
    for (PageId pid : restart_->pending_pages()) visited_pending[pid] = false;
  }
  for (const auto& file : storage_->files()) {
    if (file.dropped || file.status != storage::FileStatus::kOnline) continue;
    VDB_RETURN_IF_ERROR(storage_->scan_file(
        file.id, [&](std::uint32_t block, const storage::Page& page) {
          const PageId pid{file.id, block};
          auto pending = visited_pending.find(pid);
          if (pending != visited_pending.end()) {
            pending->second = true;
            storage::Page patched = page;
            restart_->overlay(pid, &patched);
            register_one(pid, patched);
            return;
          }
          register_one(pid, page);
        }));
  }
  if (restart_ != nullptr) {
    bool drained_any = false;
    for (PageId pid : restart_->pending_pages()) {
      auto pending = visited_pending.find(pid);
      if (pending != visited_pending.end() && pending->second) continue;
      VDB_RETURN_IF_ERROR(restart_->recover_page(pid));
      drained_any = true;
      auto ref = storage_->fetch(pid);
      if (!ref.is_ok()) continue;  // skipped run (offline/missing file)
      if (!ref.value().page()->formatted()) continue;
      register_one(pid, *ref.value().page());
    }
    // recover_page hands the tracer back to the resume phase; the rebuild
    // runs inside the open phase, so restore that attribution for the rest
    // of startup.
    if (drained_any && obs_->tracer().active()) {
      obs_->tracer().enter(obs::RecoveryPhase::kOpen, scheduler_->now());
    }
  }
  return Status::ok();
}

Status Database::ensure_open() const {
  if (state_ == InstanceState::kOpen) return Status::ok();
  return make_error(ErrorCode::kNotOpen,
                    std::string("instance is ") + to_string(state_));
}

}  // namespace vdb::engine
