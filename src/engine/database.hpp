// Database: the engine facade tying storage, WAL, transactions, catalog and
// background processes together — one object per instance incarnation.
//
// Lifecycle mirrors Oracle: create() builds a brand-new database; startup()
// mounts from the control file and runs instance recovery when the previous
// incarnation did not shut down cleanly; shutdown() is clean;
// shutdown_abort() is the operator fault — the instance dies on the spot,
// losing its caches and unflushed log buffer. After a crash the *next*
// incarnation is a fresh Database constructed over the same host.
//
// Redo discipline: every change is logged before it is applied, forward
// processing and recovery replay share the same apply functions, commits
// force the log, and checkpoints (full at log switches, incremental on the
// log_checkpoint_timeout timer) bound the replay window — the machinery
// whose tuning the paper benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/control_file.hpp"
#include "engine/db_config.hpp"
#include "engine/replay_plan.hpp"
#include "engine/restart.hpp"
#include "obs/observability.hpp"
#include "sim/host.hpp"
#include "sim/scheduler.hpp"
#include "storage/storage_manager.hpp"
#include "storage/table_heap.hpp"
#include "txn/lock_manager.hpp"
#include "txn/txn_manager.hpp"
#include "wal/archiver.hpp"
#include "wal/log_record.hpp"
#include "wal/redo_log.hpp"

namespace vdb::engine {

enum class InstanceState { kClosed, kOpen, kCrashed, kRecovering };

const char* to_string(InstanceState s);

struct EngineStats {
  std::uint64_t full_checkpoints = 0;  // log-switch/forced/manual checkpoints
  std::uint64_t incremental_checkpoints = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t rows_inserted = 0;
  std::uint64_t rows_updated = 0;
  std::uint64_t rows_deleted = 0;
  std::uint64_t rows_read = 0;
  std::uint64_t media_errors = 0;
};

/// Row-level change notification for derived state (application indexes).
/// Fired on forward DML and runtime rollback, not during recovery replay
/// (indexes are rebuilt wholesale after recovery).
struct RowChange {
  enum class Kind { kInsert, kUpdate, kDelete } kind;
  TableId table;
  RowId rid;
  std::span<const std::uint8_t> before;
  std::span<const std::uint8_t> after;
};
using RowObserver = std::function<void(const RowChange&)>;

/// Called for every live row during post-startup rebuild scans.
using RebuildRowHook =
    std::function<void(TableId, RowId, std::span<const std::uint8_t>)>;

class Database {
 public:
  Database(sim::Host* host, sim::Scheduler* scheduler, DatabaseConfig cfg);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- lifecycle ------------------------------------------------------------

  /// Builds a brand-new database: redo groups, control files, SYS user.
  Status create();

  /// Mounts from the control file, instance-recovers if the last shutdown
  /// was not clean, rebuilds object state, and opens.
  Status startup();

  /// Clean shutdown: checkpoint, control file marked clean.
  Status shutdown();

  /// SHUTDOWN ABORT — the operator fault. Caches and the unflushed log
  /// buffer are lost; active transactions will be rolled back by instance
  /// recovery at next startup.
  Status shutdown_abort();

  InstanceState state() const { return state_; }
  bool is_open() const { return state_ == InstanceState::kOpen; }

  // --- DDL / administration ---------------------------------------------------

  Result<TablespaceId> create_tablespace(
      const std::string& name,
      const std::vector<std::pair<std::string, std::uint32_t>>& files,
      bool autoextend = true, std::uint32_t max_blocks = 0);

  Result<UserId> create_user(const std::string& name, bool is_dba);
  Status drop_user(const std::string& name);

  Result<TableId> create_table(const std::string& name,
                               const std::string& tablespace,
                               std::uint16_t slot_size, UserId owner,
                               std::vector<catalog::ColumnDef> columns = {});
  Status drop_table(const std::string& name);
  Status set_table_logging(const std::string& name, bool logging);

  Status drop_tablespace(const std::string& name, bool delete_files);
  Status alter_tablespace_offline(const std::string& name);
  Status alter_tablespace_online(const std::string& name);
  Status alter_datafile_offline(FileId id);
  /// Brings a datafile online; fails with kRecoveryRequired until media
  /// recovery has rolled it forward.
  Status alter_datafile_online(FileId id);

  /// Changes a tablespace's block quota (recovery procedure for the
  /// "allow a tablespace to run out of space" operator fault).
  Status alter_tablespace_quota(const std::string& name,
                                std::uint32_t max_blocks);

  /// Rollback-segment administration (operator-fault surface).
  Status alter_rollback_segment_offline(std::uint32_t index);
  Status alter_rollback_segment_online(std::uint32_t index);

  /// Manual full checkpoint (also used by backup procedures).
  Status checkpoint_now();

  // --- transactions & DML -----------------------------------------------------

  Result<TxnId> begin();
  /// Commits; the returned LSN is the commit record's position (0 for
  /// read-only transactions). The driver stores it: a committed transaction
  /// is lost iff recovery later stops below this LSN.
  Result<Lsn> commit(TxnId txn);
  Status rollback(TxnId txn);

  /// Rolls back transactions stranded by a failed rollback once media
  /// recovery has made their files accessible again (SMON-style dead-
  /// transaction recovery). Prepared 2PC branches are left alone: their
  /// fate belongs to the coordinator (resolve_prepared).
  Status resolve_in_doubt_transactions();

  // --- two-phase commit (fleet) -----------------------------------------------

  /// One in-doubt 2PC branch surfaced by instance recovery or stand-by
  /// activation: PREPAREd, but no end record and no local decision.
  struct InDoubtBranch {
    TxnId txn{};
    std::uint32_t coord_shard = 0;
    std::vector<wal::UndoOp> ops;
    std::uint64_t clrs = 0;
  };

  /// Phase one: logs kTxnPrepare and forces it to disk. From here the
  /// branch cannot be rolled back unilaterally — recovery keeps it in
  /// doubt until the coordinator's decision is known.
  Result<Lsn> prepare(TxnId txn, std::uint64_t gtxn, std::uint32_t coord_shard);

  /// Coordinator decision record (kCoordCommit / kCoordAbort), forced to
  /// disk. After a commit decision returns, the global transaction is
  /// durably committed fleet-wide regardless of crashes.
  Result<Lsn> log_coord_decision(std::uint64_t gtxn, bool commit);

  /// The recovered/remembered outcome for a global transaction, if any
  /// survives in this instance's decision table (absence = presumed abort).
  std::optional<bool> coord_decision(std::uint64_t gtxn) const;

  /// Drops a decision once every participant acknowledged it (bounds the
  /// table; checkpoints stop carrying the entry).
  void forget_decision(std::uint64_t gtxn);

  /// In-doubt branches left behind by the last recovery, keyed by gtxn.
  const std::map<std::uint64_t, InDoubtBranch>& in_doubt_branches() const {
    return in_doubt_;
  }

  /// Resolves one branch to the coordinator's outcome: commit appends the
  /// branch's COMMIT record (its redo is already applied); abort compensates
  /// via the saved undo. Works both for branches still live in the
  /// transaction manager and for branches adopted from recovery. Returns
  /// the commit LSN (0 for abort / already-resolved branches).
  Result<Lsn> resolve_prepared(std::uint64_t gtxn, bool commit);

  /// Adopts an in-doubt branch discovered by an external replay driver
  /// (stand-by activation).
  void adopt_in_doubt(std::uint64_t gtxn, InDoubtBranch branch) {
    in_doubt_[gtxn] = std::move(branch);
  }

  /// Records a coordinator decision recovered by an external replay driver
  /// (no new log record — the decision is already durable upstream).
  void note_coord_decision(std::uint64_t gtxn, bool commit) {
    coord_decisions_[gtxn] = commit;
  }

  Result<RowId> insert(TxnId txn, TableId table,
                       std::span<const std::uint8_t> row);
  Status update(TxnId txn, TableId table, RowId rid,
                std::span<const std::uint8_t> row);
  Status erase(TxnId txn, TableId table, RowId rid);
  Result<std::vector<std::uint8_t>> read(TxnId txn, TableId table, RowId rid);

  /// Unlocked scan (loader, consistency checker, rebuild).
  Status scan(TableId table,
              const std::function<bool(RowId, std::span<const std::uint8_t>)>&
                  fn);

  Result<TableId> table_id(const std::string& name) const;

  // --- derived-state hooks ----------------------------------------------------

  void register_observer(TableId table, RowObserver observer);
  void set_rebuild_hook(RebuildRowHook hook) { rebuild_hook_ = std::move(hook); }

  /// Invoked once the catalog is available (after mount / instance
  /// recovery) and before object state is rebuilt — the place to register
  /// observers and the rebuild hook on a fresh incarnation.
  void set_on_mounted(std::function<void(Database&)> fn) {
    on_mounted_ = std::move(fn);
  }

  /// Invoked during startup() right after instance recovery and before
  /// object state is rebuilt — the window where block media recovery can
  /// repair pages that crash replay flagged corrupt (torn writes) before
  /// the rebuild scan reads them. A returned error aborts startup.
  void set_post_recovery_hook(std::function<Status(Database&)> fn) {
    post_recovery_hook_ = std::move(fn);
  }

  // --- recovery collaboration --------------------------------------------------

  /// Applies one redo record with page-LSN idempotency guards. DDL records
  /// are applied idempotently. Used by instance recovery, media recovery,
  /// and the stand-by's managed recovery.
  Status apply_record(const wal::LogRecord& rec);

  /// Builds a partitioned apply plan wired to this instance — the shared
  /// phase-two engine for every replay driver (instance recovery, media
  /// recovery, standby managed recovery). The driver scans the redo stream
  /// serially, stages records the plan wants(), drains at serial barriers
  /// (DDL) and at end of scan. `on_skip` fires for records skipped on
  /// missing/offline datafiles. Worker count comes from
  /// DatabaseConfig::replay_jobs (0 = VDB_JOBS).
  RedoApplyPlan make_replay_plan(
      std::function<void(Lsn, const Status&)> on_skip = nullptr,
      std::function<void(std::uint64_t)> charge_apply = nullptr);

  /// Rebuilds table heaps (and fires the rebuild hook) by scanning every
  /// online datafile once.
  Status rebuild_object_state();

  Status write_control_file(bool clean);

  /// Instance recovery (crash recovery): replay from the last checkpoint's
  /// recovery position, then roll back losers. Returns the LSN up to which
  /// the database state is current.
  Result<Lsn> instance_recovery();

  /// Rolls back one incomplete transaction discovered by a replay driver
  /// (instance recovery, stand-by activation): compensates the not-yet-
  /// compensated tail of `ops` (the last `clrs_done` were already undone)
  /// and writes the ABORT record.
  Status undo_incomplete_txn(TxnId txn, const std::vector<wal::UndoOp>& ops,
                             std::uint64_t clrs_done);

  /// Puts the engine in / out of recovery mode (offline files accessible).
  void set_recovering(bool on);

  // --- early-open restart modes (M2-M4) ----------------------------------------

  /// The live restart coordinator, non-null only while an early-open
  /// restart (RestartMode M2-M4) still has redo pending after the database
  /// opened. V$RECOVERY_PROGRESS reports its pending/recovered counts.
  RestartCoordinator* restart_coordinator() { return restart_.get(); }

  /// Drains every pending restart-recovery run and tears the coordinator
  /// down (fetch gate uninstalled, sweeper cancelled). No-op in M1 or once
  /// the sweeper already finished. Callers that need the replay window
  /// collapsed checkpoint afterwards.
  Status complete_restart_recovery();

  /// ALTER DATABASE SET RESTART MODE: takes effect at the next instance
  /// recovery (a restart already in progress keeps its mode).
  void set_restart_mode(RestartMode mode) { cfg_.restart_mode = mode; }

  // --- concurrent execution (transaction coordinator) ---------------------------

  /// Installs a concurrency-control delegate and switches the instance to
  /// concurrent mode: row-conflict mediation moves from the internal lock
  /// manager to the delegate, commits validate/publish through it, and
  /// every transaction entry point serializes behind the coordinator
  /// latch so worker threads can share the engine (redo arena staging,
  /// group commit, buffer cache). Passing nullptr uninstalls the delegate
  /// and returns to the serial fast path. The delegate must outlive its
  /// installation.
  void set_concurrency_control(txn::ConcurrencyControl* cc) {
    cc_ = cc;
    concurrent_ = (cc != nullptr);
  }
  txn::ConcurrencyControl* concurrency_control() const { return cc_; }

  /// ALTER SYSTEM SET CC: the protocol the next coordinator run uses.
  void set_cc_protocol(txn::CcProtocol p) { cfg_.cc_protocol = p; }

  /// Mounts from an externally supplied control-file snapshot (restore from
  /// backup, stand-by instantiation) without opening.
  Status mount_from_control(const ControlFileData& data);

  /// Finishes an externally driven recovery (point-in-time restore or
  /// stand-by activation): rebuilds object state, checkpoints, and opens.
  Status open_after_external_recovery();

  // --- component access ---------------------------------------------------------

  storage::StorageManager& storage() { return *storage_; }
  wal::RedoLog& redo() { return *redo_; }
  wal::Archiver& archiver() { return *archiver_; }
  txn::TxnManager& txns() { return txns_; }
  txn::LockManager& locks() { return locks_; }
  catalog::Catalog& cat() { return catalog_; }
  sim::Host& host() { return *host_; }
  sim::Scheduler& scheduler() { return *scheduler_; }
  sim::VirtualClock& clock() { return scheduler_->clock(); }
  const DatabaseConfig& config() const { return cfg_; }
  const EngineStats& stats() const { return stats_; }
  /// The statistics area this instance reports into — cfg.obs when the
  /// harness supplied one, else a private instance owned by this Database.
  obs::Observability& obs() { return *obs_; }
  const obs::Observability& obs() const { return *obs_; }
  storage::TableHeap* heap(TableId table);

 private:
  Status ensure_open() const;
  void advance(SimDuration d) { scheduler_->clock().advance_by(d); }

  /// Coordinator latch: held for the body of every transaction entry point
  /// while a ConcurrencyControl is installed; a no-op lock in serial mode.
  /// Recursive because commit -> group-commit flush -> log-switch
  /// checkpoint re-enters the engine on the same thread.
  std::unique_lock<std::recursive_mutex> coord_guard() {
    return concurrent_
               ? std::unique_lock<std::recursive_mutex>(coord_latch_)
               : std::unique_lock<std::recursive_mutex>();
  }

  /// Full checkpoint: flush log, write all dirty pages, emit checkpoint
  /// record, advance the recovery position, persist the control file.
  Status full_checkpoint();
  /// log_checkpoint_timeout tick: age-based dirty writes + checkpoint record
  /// with the min-dirty recovery position.
  Status incremental_checkpoint();
  void on_group_finalized(const wal::RedoGroup& group);
  void schedule_background_tasks();
  void cancel_background_tasks();
  void schedule_restart_sweeper();
  void restart_sweep_tick(std::uint32_t batch);

  Lsn pseudo_lsn() const;  // for NOLOGGING changes: below any future record
  void notify(const RowChange& change);
  Status apply_undo_op(TxnId txn, const wal::UndoOp& op, bool log_clr);
  Status handle_store_failures(
      const std::vector<std::pair<PageId, Status>>& failures);

  sim::Host* host_;
  sim::Scheduler* scheduler_;
  DatabaseConfig cfg_;
  InstanceState state_ = InstanceState::kClosed;

  // Declared before the components so it outlives every instrument pointer
  // they resolved (destruction runs in reverse declaration order).
  std::unique_ptr<obs::Observability> owned_obs_;
  obs::Observability* obs_ = nullptr;
  /// Instrument pointers resolved once at construction (hot-path rule).
  struct EngineMetrics {
    obs::Counter* commits = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* full_checkpoints = nullptr;
    obs::Counter* incremental_checkpoints = nullptr;
    obs::Counter* instance_recoveries = nullptr;
    obs::Counter* recovery_records = nullptr;
    obs::Counter* loser_txns = nullptr;
  } metrics_;

  std::unique_ptr<wal::RedoLog> redo_;
  std::unique_ptr<wal::Archiver> archiver_;
  std::unique_ptr<storage::StorageManager> storage_;
  txn::TxnManager txns_;
  txn::LockManager locks_;
  catalog::Catalog catalog_;
  std::unordered_map<std::uint32_t, std::unique_ptr<storage::TableHeap>>
      heaps_;
  std::unordered_map<std::uint32_t, std::vector<RowObserver>> observers_;
  RebuildRowHook rebuild_hook_;
  std::function<void(Database&)> on_mounted_;
  std::function<Status(Database&)> post_recovery_hook_;
  sim::EventHandle ckpt_timer_;
  /// Early-open restart state: set by instance_recovery in modes M2-M4
  /// while staged redo is still pending at open, torn down by
  /// complete_restart_recovery() once the last run drains.
  std::unique_ptr<RestartCoordinator> restart_;
  sim::EventHandle restart_timer_;
  EngineStats stats_;
  std::uint64_t last_archived_seq_ = 0;
  InstanceState pre_recovery_state_ = InstanceState::kClosed;
  /// 2PC state reconstructed by recovery (and maintained at runtime):
  /// in-doubt branches awaiting their coordinator's outcome, and this
  /// instance's own coordinator decision table. Ordered so checkpoint
  /// encoding is deterministic.
  std::map<std::uint64_t, InDoubtBranch> in_doubt_;
  std::map<std::uint64_t, bool> coord_decisions_;
  /// Concurrent-mode state (see set_concurrency_control).
  txn::ConcurrencyControl* cc_ = nullptr;
  bool concurrent_ = false;
  std::recursive_mutex coord_latch_;
};

}  // namespace vdb::engine
