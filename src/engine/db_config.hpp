// Database instance configuration.
//
// The recovery-related knobs (redo file size, group count, checkpoint
// timeout, archive mode) are exactly the paper's Table 3 configuration
// space; the cost model carries the calibrated service demands that map
// simulated work to virtual time.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "storage/storage_manager.hpp"
#include "txn/coordinator.hpp"
#include "txn/txn_manager.hpp"
#include "wal/redo_log.hpp"

namespace vdb::obs {
class Observability;
}

namespace vdb::engine {

/// Instance-restart scheme after a crash (the restart-mode trade-off study
/// layered on the paper's recovery/performance balance; cf. the Zero
/// storage manager's instant-restart work and Lomet & Tzoumas' logical
/// recovery):
///  - M1 runs full redo + undo before the database opens (traditional);
///  - M2 opens right after log analysis builds the per-page apply plan and
///    the commit_lsn watermark; access to a not-yet-recovered page is
///    rejected (or stalls behind `early_open_stall`) while an aggressive
///    background sweeper drains the plan;
///  - M3 opens the same way but recovers pages lazily: a fetch of a page
///    with pending redo triggers single-page roll-forward, charged to the
///    recovery_read_stall wait event, with only a trickle sweeper behind it;
///  - M4 mixes both: on-demand priority replay plus an eager background
///    sweeper.
/// All four converge to byte-identical state; only *when* each page's redo
/// is applied differs.
enum class RestartMode : std::uint8_t {
  kM1Traditional = 0,
  kM2EarlyOpen,
  kM3OnDemand,
  kM4Mixed,
};

inline const char* to_string(RestartMode m) {
  switch (m) {
    case RestartMode::kM1Traditional: return "m1_traditional";
    case RestartMode::kM2EarlyOpen: return "m2_early_open";
    case RestartMode::kM3OnDemand: return "m3_on_demand";
    case RestartMode::kM4Mixed: return "m4_mixed";
  }
  return "?";
}

/// Accepts both the short form ("m3") and the full name ("m3_on_demand").
inline bool parse_restart_mode(const std::string& s, RestartMode* out) {
  if (s == "m1" || s == "m1_traditional") *out = RestartMode::kM1Traditional;
  else if (s == "m2" || s == "m2_early_open") *out = RestartMode::kM2EarlyOpen;
  else if (s == "m3" || s == "m3_on_demand") *out = RestartMode::kM3OnDemand;
  else if (s == "m4" || s == "m4_mixed") *out = RestartMode::kM4Mixed;
  else return false;
  return true;
}

/// Service-demand model: how much virtual time each unit of engine work
/// consumes. Calibrated so the simulated instance lands in the same
/// operating regime as the paper's testbed (tens of transactions per
/// second, ~0.3-0.4 MB/s of redo).
struct CostModel {
  SimDuration cpu_per_txn = 2 * kMillisecond;       // begin/plan/commit path
  SimDuration cpu_per_write_op = 500 * kMicrosecond;  // per DML row change
  SimDuration cpu_per_read_op = 200 * kMicrosecond;   // per row fetch
  SimDuration cpu_per_replay_record = 20 * kMicrosecond;
  /// Early-open restart modes (M2-M4) split cpu_per_replay_record into the
  /// serial log-analysis share (loser tracking, plan staging — paid before
  /// the database opens) and the page-apply share (paid when a page's run
  /// actually drains, on demand or in the background). The two must sum to
  /// cpu_per_replay_record so a fully drained M2-M4 restart has consumed
  /// exactly the CPU an M1 restart did.
  SimDuration cpu_per_analysis_record = 3 * kMicrosecond;
  SimDuration cpu_per_redo_apply = 17 * kMicrosecond;
  /// Fixed cost to locate/open/validate one archived log during recovery.
  /// This is the term that makes many small archive files recover slowly
  /// (paper Tables 4-5).
  SimDuration archive_file_overhead = 600 * kMillisecond;
  /// Instance start (process creation, SGA allocation) and stop.
  SimDuration instance_startup = 6 * kSecond;
  SimDuration instance_shutdown = 2 * kSecond;
  /// Per-restored-file fixed cost during restore from backup.
  SimDuration restore_file_overhead = 2 * kSecond;
  /// Per-block fixed cost for online block media recovery (RMAN
  /// BLOCKRECOVER: locate the block in the backup set and validate it).
  SimDuration restore_block_overhead = 200 * kMillisecond;
};

struct DatabaseConfig {
  std::string name = "tpcc";
  std::string data_dir = "/data";
  std::string backup_dir = "/backup";
  /// Control files are multiplexed like Oracle's: all are written, the
  /// first intact one is read.
  std::vector<std::string> control_files = {"/data/control_01.ctl",
                                            "/redo/control_02.ctl"};
  wal::RedoLogConfig redo;
  /// log_checkpoint_timeout: maximum age of a dirty buffer before the
  /// incremental checkpoint writes it out. 0 disables the timer.
  SimDuration checkpoint_timeout = 300 * kSecond;
  storage::StorageParams storage;
  txn::RollbackSegmentConfig rollback;
  CostModel cost;
  /// Worker threads for the partitioned redo apply during replay
  /// (instance/media/standby recovery). 0 honors VDB_JOBS, falling back to
  /// the host's core count. Results are byte-identical at any setting; only
  /// wall-clock time changes.
  unsigned replay_jobs = 0;
  /// Instance-restart scheme after a crash (see RestartMode).
  RestartMode restart_mode = RestartMode::kM1Traditional;
  /// M2 only: stall on access to a not-yet-recovered page (recover it on
  /// the spot, charged to recovery_read_stall) instead of rejecting with
  /// kRecoveryRequired.
  bool early_open_stall = false;
  /// Concurrency-control protocol used when a transaction coordinator
  /// drives this instance with worker threads (SHOW CC / ALTER SYSTEM SET
  /// CC). The serial driver ignores it.
  txn::CcProtocol cc_protocol = txn::CcProtocol::k2pl;
  /// Background sweeper cadence for M2-M4. 0 picks the mode default:
  /// M2/M4 sweep aggressively (short interval, large batches), M3 trickles.
  SimDuration restart_sweep_interval = 0;
  std::uint32_t restart_sweep_batch = 0;
  /// Statistics area (V$SYSSTAT / V$SYSTEM_EVENT / V$RECOVERY_PROGRESS).
  /// Normally supplied by the experiment harness so metrics survive
  /// crash-restart incarnation swaps; a Database constructed with nullptr
  /// owns a private one instead.
  obs::Observability* obs = nullptr;
};

}  // namespace vdb::engine
