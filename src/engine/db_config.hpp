// Database instance configuration.
//
// The recovery-related knobs (redo file size, group count, checkpoint
// timeout, archive mode) are exactly the paper's Table 3 configuration
// space; the cost model carries the calibrated service demands that map
// simulated work to virtual time.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "storage/storage_manager.hpp"
#include "txn/txn_manager.hpp"
#include "wal/redo_log.hpp"

namespace vdb::obs {
class Observability;
}

namespace vdb::engine {

/// Service-demand model: how much virtual time each unit of engine work
/// consumes. Calibrated so the simulated instance lands in the same
/// operating regime as the paper's testbed (tens of transactions per
/// second, ~0.3-0.4 MB/s of redo).
struct CostModel {
  SimDuration cpu_per_txn = 2 * kMillisecond;       // begin/plan/commit path
  SimDuration cpu_per_write_op = 500 * kMicrosecond;  // per DML row change
  SimDuration cpu_per_read_op = 200 * kMicrosecond;   // per row fetch
  SimDuration cpu_per_replay_record = 20 * kMicrosecond;
  /// Fixed cost to locate/open/validate one archived log during recovery.
  /// This is the term that makes many small archive files recover slowly
  /// (paper Tables 4-5).
  SimDuration archive_file_overhead = 600 * kMillisecond;
  /// Instance start (process creation, SGA allocation) and stop.
  SimDuration instance_startup = 6 * kSecond;
  SimDuration instance_shutdown = 2 * kSecond;
  /// Per-restored-file fixed cost during restore from backup.
  SimDuration restore_file_overhead = 2 * kSecond;
  /// Per-block fixed cost for online block media recovery (RMAN
  /// BLOCKRECOVER: locate the block in the backup set and validate it).
  SimDuration restore_block_overhead = 200 * kMillisecond;
};

struct DatabaseConfig {
  std::string name = "tpcc";
  std::string data_dir = "/data";
  std::string backup_dir = "/backup";
  /// Control files are multiplexed like Oracle's: all are written, the
  /// first intact one is read.
  std::vector<std::string> control_files = {"/data/control_01.ctl",
                                            "/redo/control_02.ctl"};
  wal::RedoLogConfig redo;
  /// log_checkpoint_timeout: maximum age of a dirty buffer before the
  /// incremental checkpoint writes it out. 0 disables the timer.
  SimDuration checkpoint_timeout = 300 * kSecond;
  storage::StorageParams storage;
  txn::RollbackSegmentConfig rollback;
  CostModel cost;
  /// Worker threads for the partitioned redo apply during replay
  /// (instance/media/standby recovery). 0 honors VDB_JOBS, falling back to
  /// the host's core count. Results are byte-identical at any setting; only
  /// wall-clock time changes.
  unsigned replay_jobs = 0;
  /// Statistics area (V$SYSSTAT / V$SYSTEM_EVENT / V$RECOVERY_PROGRESS).
  /// Normally supplied by the experiment harness so metrics survive
  /// crash-restart incarnation swaps; a Database constructed with nullptr
  /// owns a private one instead.
  obs::Observability* obs = nullptr;
};

}  // namespace vdb::engine
