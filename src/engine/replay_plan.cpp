#include "engine/replay_plan.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace vdb::engine {

namespace {

bool skippable(ErrorCode code) {
  // Records touching deleted/offline/corrupt files are skipped; media
  // recovery (whole-file or per-block) brings those forward later (same set
  // every replay driver uses).
  return code == ErrorCode::kMediaFailure || code == ErrorCode::kOffline ||
         code == ErrorCode::kNotFound || code == ErrorCode::kCorruption;
}

}  // namespace

bool RedoApplyPlan::wants(wal::LogRecordType type) {
  switch (type) {
    case wal::LogRecordType::kInsert:
    case wal::LogRecordType::kUpdate:
    case wal::LogRecordType::kDelete:
    case wal::LogRecordType::kFormatPage:
      return true;
    default:
      return false;
  }
}

void RedoApplyPlan::stage(const wal::LogRecord& rec) {
  VDB_CHECK_MSG(wants(rec.type), "staging non-partitionable record");
  const std::size_t idx = staged_count_;
  if (idx < records_.size()) {
    records_[idx] = rec;  // copy-assign reuses the pooled entry's capacity
  } else {
    records_.push_back(rec);
  }
  staged_count_ += 1;

  const PageId page = rec.type == wal::LogRecordType::kFormatPage
                          ? rec.page
                          : rec.dml.rid.page;
  auto [it, inserted] = page_index_.try_emplace(page, runs_.size());
  if (inserted) {
    Run run;
    run.page = page;
    runs_.push_back(std::move(run));
    pending_runs_ += 1;
  }
  Run& run = runs_[it->second];
  run.items.push_back(idx);
  if (rec.type == wal::LogRecordType::kFormatPage) run.has_format = true;
}

Status RedoApplyPlan::apply_serially(Run& run, Stats* stats) {
  run.handled_serially = true;
  for (std::size_t idx : run.items) {
    const wal::LogRecord& rec = records_[idx];
    Status st = hooks_.serial_apply(rec);
    if (st.is_ok()) {
      stats->applied += 1;
      applied_counter_->inc();
      continue;
    }
    if (!skippable(st.code())) return st;
    stats->skipped += 1;
    skipped_counter_->inc();
    if (hooks_.on_skip) hooks_.on_skip(rec.lsn, st);
  }
  return Status::ok();
}

Status RedoApplyPlan::prepare_run(Run& run, Stats* stats) {
  // Runs containing a format record rebuild the page through the engine
  // (allocation high-water marks, file extension); runs on pages a
  // NOLOGGING table formatted need the engine's implicit-format fallback.
  // Both take the exact serial code path so semantics cannot drift.
  if (run.has_format) return apply_serially(run, stats);

  auto ref = hooks_.storage->fetch(run.page);
  if (!ref.is_ok()) {
    if (!skippable(ref.code())) return ref.status();
    run.skipped = true;
    for (std::size_t idx : run.items) {
      stats->skipped += 1;
      skipped_counter_->inc();
      if (hooks_.on_skip) hooks_.on_skip(records_[idx].lsn, ref.status());
    }
    return Status::ok();
  }
  if (!ref.value()->formatted()) return apply_serially(run, stats);
  run.ref = std::move(ref).value();
  return Status::ok();
}

void RedoApplyPlan::apply_run(Run& run) const {
  storage::Page* page = run.ref.page();
  for (std::size_t idx : run.items) {
    const wal::LogRecord& rec = records_[idx];
    // Guard-skipped records (change already on the page) count as applied,
    // matching the serial path where apply_record returns ok for them.
    // The counter update runs on the worker pool — one relaxed atomic add.
    run.applied += 1;
    applied_counter_->inc();
    if (rec.lsn <= page->lsn()) continue;
    switch (rec.type) {
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
        page->set_slot(rec.dml.rid.slot, rec.dml.after);
        break;
      case wal::LogRecordType::kDelete:
        page->clear_slot(rec.dml.rid.slot);
        break;
      default:
        break;  // unreachable: format runs were handled serially
    }
    page->set_lsn(rec.lsn);
    if (run.first_applied == kInvalidLsn) run.first_applied = rec.lsn;
  }
}

Result<RedoApplyPlan::Stats> RedoApplyPlan::drain() {
  if (pending_runs_ == 0) {
    reset();
    return Stats{};
  }
  std::vector<std::size_t> selected;
  selected.reserve(pending_runs_);
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    if (!runs_[r].done) selected.push_back(r);
  }
  return drain_runs(selected);
}

Result<RedoApplyPlan::Stats> RedoApplyPlan::drain_page(PageId pid) {
  auto it = page_index_.find(pid);
  if (it == page_index_.end()) return Stats{};
  return drain_runs({it->second});
}

Result<RedoApplyPlan::Stats> RedoApplyPlan::drain_some(std::size_t max_runs) {
  std::vector<std::size_t> selected;
  selected.reserve(std::min(max_runs, pending_runs_));
  for (std::size_t r = 0; r < runs_.size() && selected.size() < max_runs;
       ++r) {
    if (!runs_[r].done) selected.push_back(r);
  }
  if (selected.empty()) return Stats{};
  return drain_runs(selected);
}

std::vector<PageId> RedoApplyPlan::pending_pages() const {
  std::vector<PageId> pages;
  pages.reserve(pending_runs_);
  for (const Run& run : runs_) {
    if (!run.done) pages.push_back(run.page);
  }
  return pages;
}

Lsn RedoApplyPlan::low_water() const {
  Lsn low = kInvalidLsn;
  for (const Run& run : runs_) {
    if (run.done || run.items.empty()) continue;
    // Items are staged in LSN order, so the first is the run's lowest.
    low = std::min(low, records_[run.items.front()].lsn);
  }
  return low;
}

void RedoApplyPlan::overlay_page(PageId pid, storage::Page* copy) const {
  auto it = page_index_.find(pid);
  if (it == page_index_.end()) return;
  const Run& run = runs_[it->second];
  for (std::size_t idx : run.items) {
    const wal::LogRecord& rec = records_[idx];
    if (rec.lsn <= copy->lsn()) continue;
    switch (rec.type) {
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
        copy->set_slot(rec.dml.rid.slot, rec.dml.after);
        break;
      case wal::LogRecordType::kDelete:
        copy->clear_slot(rec.dml.rid.slot);
        break;
      default:
        // A format record with lsn above a formatted image cannot happen
        // (the image was flushed after the format applied); an unformatted
        // image never reaches the overlay (the scan skips it).
        continue;
    }
    copy->set_lsn(rec.lsn);
  }
}

Result<RedoApplyPlan::Stats> RedoApplyPlan::drain_runs(
    const std::vector<std::size_t>& selected) {
  Stats stats;
  if (selected.empty()) return stats;
  drains_counter_->inc();

  // Runs are processed in chunks small enough that every chunk's pages fit
  // pinned in the cache with room to spare (the serial-apply path inside
  // prepare fetches pages of its own). Chunk boundaries depend only on the
  // selected run set, never on the worker count.
  const std::uint32_t cache_cap = hooks_.storage->cache().capacity();
  const std::size_t max_pins =
      std::max<std::size_t>(1, std::min<std::size_t>(cache_cap / 2, 512));

  Status failure = Status::ok();
  for (std::size_t begin = 0; begin < selected.size() && failure.is_ok();
       begin += max_pins) {
    const std::size_t end = std::min(selected.size(), begin + max_pins);

    // Serial prepare: pin pages, route special runs through the engine,
    // and charge the apply share of the replay CPU in deterministic order.
    std::vector<std::size_t> parallel_runs;
    parallel_runs.reserve(end - begin);
    for (std::size_t s = begin; s < end; ++s) {
      Run& run = runs_[selected[s]];
      if (hooks_.charge_apply) hooks_.charge_apply(run.items.size());
      failure = prepare_run(run, &stats);
      if (!failure.is_ok()) break;
      if (run.ref.valid()) parallel_runs.push_back(selected[s]);
    }

    // Parallel apply: disjoint pinned pages, in-memory writes only.
    parallel_for(parallel_runs.size(), hooks_.jobs,
                 [&](std::size_t i) { apply_run(runs_[parallel_runs[i]]); });

    // Serial finalize: dirty-mark with the first applied LSN (a checkpoint
    // taken mid-recovery must know how far back this page's changes reach),
    // release pins, and fold stats in deterministic run order.
    for (std::size_t s = begin; s < end; ++s) {
      Run& run = runs_[selected[s]];
      if (run.ref.valid()) {
        if (run.first_applied != kInvalidLsn) {
          hooks_.storage->mark_dirty(run.page, run.first_applied);
        }
        stats.applied += run.applied;
        run.ref = storage::PageRef{};
      }
      run.done = true;
      page_index_.erase(run.page);
      pending_runs_ -= 1;
    }
  }

  if (pending_runs_ == 0) reset();

  if (!failure.is_ok()) return failure;
  return stats;
}

void RedoApplyPlan::reset() {
  // Record entries keep their capacity; run and index containers are
  // per-page (far fewer than per-record) so plain clears are cheap.
  staged_count_ = 0;
  runs_.clear();
  page_index_.clear();
  pending_runs_ = 0;
}

}  // namespace vdb::engine
