#include "engine/replay_plan.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace vdb::engine {

namespace {

bool skippable(ErrorCode code) {
  // Records touching deleted/offline/corrupt files are skipped; media
  // recovery (whole-file or per-block) brings those forward later (same set
  // every replay driver uses).
  return code == ErrorCode::kMediaFailure || code == ErrorCode::kOffline ||
         code == ErrorCode::kNotFound || code == ErrorCode::kCorruption;
}

}  // namespace

bool RedoApplyPlan::wants(wal::LogRecordType type) {
  switch (type) {
    case wal::LogRecordType::kInsert:
    case wal::LogRecordType::kUpdate:
    case wal::LogRecordType::kDelete:
    case wal::LogRecordType::kFormatPage:
      return true;
    default:
      return false;
  }
}

void RedoApplyPlan::stage(const wal::LogRecord& rec) {
  VDB_CHECK_MSG(wants(rec.type), "staging non-partitionable record");
  const std::size_t idx = staged_count_;
  if (idx < records_.size()) {
    records_[idx] = rec;  // copy-assign reuses the pooled entry's capacity
  } else {
    records_.push_back(rec);
  }
  staged_count_ += 1;

  const PageId page = rec.type == wal::LogRecordType::kFormatPage
                          ? rec.page
                          : rec.dml.rid.page;
  auto [it, inserted] = page_index_.try_emplace(page, runs_.size());
  if (inserted) {
    Run run;
    run.page = page;
    runs_.push_back(std::move(run));
  }
  Run& run = runs_[it->second];
  run.items.push_back(idx);
  if (rec.type == wal::LogRecordType::kFormatPage) run.has_format = true;
}

Status RedoApplyPlan::apply_serially(Run& run, Stats* stats) {
  run.handled_serially = true;
  for (std::size_t idx : run.items) {
    const wal::LogRecord& rec = records_[idx];
    Status st = hooks_.serial_apply(rec);
    if (st.is_ok()) {
      stats->applied += 1;
      applied_counter_->inc();
      continue;
    }
    if (!skippable(st.code())) return st;
    stats->skipped += 1;
    skipped_counter_->inc();
    if (hooks_.on_skip) hooks_.on_skip(rec.lsn, st);
  }
  return Status::ok();
}

Status RedoApplyPlan::prepare_run(Run& run, Stats* stats) {
  // Runs containing a format record rebuild the page through the engine
  // (allocation high-water marks, file extension); runs on pages a
  // NOLOGGING table formatted need the engine's implicit-format fallback.
  // Both take the exact serial code path so semantics cannot drift.
  if (run.has_format) return apply_serially(run, stats);

  auto ref = hooks_.storage->fetch(run.page);
  if (!ref.is_ok()) {
    if (!skippable(ref.code())) return ref.status();
    run.skipped = true;
    for (std::size_t idx : run.items) {
      stats->skipped += 1;
      skipped_counter_->inc();
      if (hooks_.on_skip) hooks_.on_skip(records_[idx].lsn, ref.status());
    }
    return Status::ok();
  }
  if (!ref.value()->formatted()) return apply_serially(run, stats);
  run.ref = std::move(ref).value();
  return Status::ok();
}

void RedoApplyPlan::apply_run(Run& run) const {
  storage::Page* page = run.ref.page();
  for (std::size_t idx : run.items) {
    const wal::LogRecord& rec = records_[idx];
    // Guard-skipped records (change already on the page) count as applied,
    // matching the serial path where apply_record returns ok for them.
    // The counter update runs on the worker pool — one relaxed atomic add.
    run.applied += 1;
    applied_counter_->inc();
    if (rec.lsn <= page->lsn()) continue;
    switch (rec.type) {
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
        page->set_slot(rec.dml.rid.slot, rec.dml.after);
        break;
      case wal::LogRecordType::kDelete:
        page->clear_slot(rec.dml.rid.slot);
        break;
      default:
        break;  // unreachable: format runs were handled serially
    }
    page->set_lsn(rec.lsn);
    if (run.first_applied == kInvalidLsn) run.first_applied = rec.lsn;
  }
}

Result<RedoApplyPlan::Stats> RedoApplyPlan::drain() {
  Stats stats;
  if (staged_count_ == 0) return stats;
  drains_counter_->inc();

  // Runs are processed in chunks small enough that every chunk's pages fit
  // pinned in the cache with room to spare (the serial-apply path inside
  // prepare fetches pages of its own). Chunk boundaries depend only on the
  // staged record set, never on the worker count.
  const std::uint32_t cache_cap = hooks_.storage->cache().capacity();
  const std::size_t max_pins =
      std::max<std::size_t>(1, std::min<std::size_t>(cache_cap / 2, 512));

  Status failure = Status::ok();
  for (std::size_t begin = 0; begin < runs_.size() && failure.is_ok();
       begin += max_pins) {
    const std::size_t end = std::min(runs_.size(), begin + max_pins);

    // Serial prepare: pin pages, route special runs through the engine.
    std::vector<std::size_t> parallel_runs;
    parallel_runs.reserve(end - begin);
    for (std::size_t r = begin; r < end; ++r) {
      failure = prepare_run(runs_[r], &stats);
      if (!failure.is_ok()) break;
      if (runs_[r].ref.valid()) parallel_runs.push_back(r);
    }

    // Parallel apply: disjoint pinned pages, in-memory writes only.
    parallel_for(parallel_runs.size(), hooks_.jobs,
                 [&](std::size_t i) { apply_run(runs_[parallel_runs[i]]); });

    // Serial finalize: dirty-mark with the first applied LSN (a checkpoint
    // taken mid-recovery must know how far back this page's changes reach),
    // release pins, and fold stats in deterministic run order.
    for (std::size_t r = begin; r < end; ++r) {
      Run& run = runs_[r];
      if (!run.ref.valid()) continue;
      if (run.first_applied != kInvalidLsn) {
        hooks_.storage->mark_dirty(run.page, run.first_applied);
      }
      stats.applied += run.applied;
      run.ref = storage::PageRef{};
    }
  }

  // Reset for the next cycle. Record entries keep their capacity; run and
  // index containers are per-page (far fewer than per-record) so plain
  // clears are cheap.
  staged_count_ = 0;
  runs_.clear();
  page_index_.clear();

  if (!failure.is_ok()) return failure;
  return stats;
}

}  // namespace vdb::engine
