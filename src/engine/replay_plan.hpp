// Partitioned redo apply plan: the shared second phase of every replay
// driver (instance recovery, media recovery, standby managed recovery).
//
// Replay is two-phase. Phase one — the driver's scan — walks the redo
// stream in LSN order doing the bookkeeping only a serial pass can do
// (loser-transaction tracking, stop-before positions, simulated-clock
// charges) and stages every page-targeted record here. Phase two — drain()
// — groups the staged records into per-page runs and applies the runs on a
// worker pool (honoring VDB_JOBS via common/parallel): runs touch disjoint
// pages, and within a run records apply in LSN order, so the result is
// byte-identical to the serial pass at any job count.
//
// Runs that need engine machinery — page-format records, pages formatted by
// a NOLOGGING table (no format record exists) — are applied serially
// through the driver-supplied apply callback during the prepare step; the
// parallel phase touches only pinned, formatted pages with pure in-memory
// slot writes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"
#include "storage/storage_manager.hpp"
#include "wal/log_record.hpp"

namespace vdb::engine {

class RedoApplyPlan {
 public:
  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t skipped = 0;  // records on missing/offline files
  };

  struct Hooks {
    storage::StorageManager* storage = nullptr;
    /// Full engine-level apply (Database::apply_record): used for format
    /// records and runs whose page the fast path cannot handle.
    std::function<Status(const wal::LogRecord&)> serial_apply;
    /// Invoked (serially, in staging order per page) for every record
    /// skipped because its datafile is gone or offline. Optional.
    std::function<void(Lsn, const Status&)> on_skip;
    /// Worker count for the apply phase; 0 honors VDB_JOBS.
    unsigned jobs = 0;
    /// Statistics area; nullptr falls back to the process default. The
    /// "replay records applied" counter is updated from the worker pool
    /// (relaxed atomics — the ThreadSanitizer CI job covers this).
    obs::Observability* obs = nullptr;
  };

  explicit RedoApplyPlan(Hooks hooks) : hooks_(std::move(hooks)) {
    obs::MetricsRegistry& reg = obs::resolve(hooks_.obs)->registry();
    applied_counter_ = reg.counter("replay records applied");
    skipped_counter_ = reg.counter("replay records skipped");
    drains_counter_ = reg.counter("replay drains");
  }

  /// True for record types the plan partitions (DML + page format). The
  /// driver applies everything else itself — DDL and checkpoint records are
  /// serial barriers: drain() first, then apply the record.
  static bool wants(wal::LogRecordType type);

  /// Copies `rec` into the plan (safe with parse_records' reused scratch
  /// record). Must only be called with wants(rec.type) true.
  void stage(const wal::LogRecord& rec);

  std::size_t staged() const { return staged_count_; }
  bool empty() const { return staged_count_ == 0; }

  /// Applies every staged record and resets the plan. Record buffers are
  /// pooled across drain cycles, so steady-state staging does not allocate.
  Result<Stats> drain();

 private:
  struct Run {
    PageId page{PageId::invalid()};
    std::vector<std::size_t> items;  // indices into records_, LSN order
    bool has_format = false;
    // Filled during prepare/apply:
    storage::PageRef ref;
    bool handled_serially = false;
    bool skipped = false;
    Lsn first_applied = kInvalidLsn;
    std::uint64_t applied = 0;
  };

  Status prepare_run(Run& run, Stats* stats);
  Status apply_serially(Run& run, Stats* stats);
  void apply_run(Run& run) const;

  Hooks hooks_;
  /// Pooled record copies: staged_count_ live entries, the rest retain
  /// their heap capacity for the next cycle.
  std::vector<wal::LogRecord> records_;
  std::size_t staged_count_ = 0;
  std::vector<Run> runs_;  // first-touch (LSN) order — deterministic
  std::unordered_map<PageId, std::size_t> page_index_;
  obs::Counter* applied_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  obs::Counter* drains_counter_ = nullptr;
};

}  // namespace vdb::engine
