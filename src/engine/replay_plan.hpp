// Partitioned redo apply plan: the shared second phase of every replay
// driver (instance recovery, media recovery, standby managed recovery).
//
// Replay is two-phase. Phase one — the driver's scan — walks the redo
// stream in LSN order doing the bookkeeping only a serial pass can do
// (loser-transaction tracking, stop-before positions, simulated-clock
// charges) and stages every page-targeted record here. Phase two — drain()
// — groups the staged records into per-page runs and applies the runs on a
// worker pool (honoring VDB_JOBS via common/parallel): runs touch disjoint
// pages, and within a run records apply in LSN order, so the result is
// byte-identical to the serial pass at any job count.
//
// Runs that need engine machinery — page-format records, pages formatted by
// a NOLOGGING table (no format record exists) — are applied serially
// through the driver-supplied apply callback during the prepare step; the
// parallel phase touches only pinned, formatted pages with pure in-memory
// slot writes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"
#include "storage/storage_manager.hpp"
#include "wal/log_record.hpp"

namespace vdb::engine {

class RedoApplyPlan {
 public:
  struct Stats {
    std::uint64_t applied = 0;
    std::uint64_t skipped = 0;  // records on missing/offline files
  };

  struct Hooks {
    storage::StorageManager* storage = nullptr;
    /// Full engine-level apply (Database::apply_record): used for format
    /// records and runs whose page the fast path cannot handle.
    std::function<Status(const wal::LogRecord&)> serial_apply;
    /// Invoked (serially, in staging order per page) for every record
    /// skipped because its datafile is gone or offline. Optional.
    std::function<void(Lsn, const Status&)> on_skip;
    /// Worker count for the apply phase; 0 honors VDB_JOBS.
    unsigned jobs = 0;
    /// Statistics area; nullptr falls back to the process default. The
    /// "replay records applied" counter is updated from the worker pool
    /// (relaxed atomics — the ThreadSanitizer CI job covers this).
    obs::Observability* obs = nullptr;
    /// Serial per-run charge, invoked once per drained run with the run's
    /// record count. The instance-recovery driver uses it to charge the
    /// apply share of the replay CPU at drain time (early-open restart
    /// modes pay it on demand / in the background instead of up front).
    std::function<void(std::uint64_t)> charge_apply;
  };

  explicit RedoApplyPlan(Hooks hooks) : hooks_(std::move(hooks)) {
    obs::MetricsRegistry& reg = obs::resolve(hooks_.obs)->registry();
    applied_counter_ = reg.counter("replay records applied");
    skipped_counter_ = reg.counter("replay records skipped");
    drains_counter_ = reg.counter("replay drains");
  }

  /// True for record types the plan partitions (DML + page format). The
  /// driver applies everything else itself — DDL and checkpoint records are
  /// serial barriers: drain() first, then apply the record.
  static bool wants(wal::LogRecordType type);

  /// Copies `rec` into the plan (safe with parse_records' reused scratch
  /// record). Must only be called with wants(rec.type) true.
  void stage(const wal::LogRecord& rec);

  std::size_t staged() const { return staged_count_; }
  bool empty() const { return staged_count_ == 0; }

  /// Applies every staged record and resets the plan. Record buffers are
  /// pooled across drain cycles, so steady-state staging does not allocate.
  Result<Stats> drain();

  // --- retained-run mode (early-open / on-demand restart) -----------------
  //
  // Instead of one big drain, the restart coordinator keeps the staged
  // plan alive across the database open and drains runs piecemeal: a
  // single page on a user fetch (drain_page), a batch per background
  // sweeper tick (drain_some). The plan fully resets only once the last
  // run has drained.

  /// Drains just the run for `pid` (no-op when none is pending).
  Result<Stats> drain_page(PageId pid);

  /// Drains up to `max_runs` pending runs in staging order.
  Result<Stats> drain_some(std::size_t max_runs);

  bool has_pending() const { return pending_runs_ > 0; }
  std::size_t pending_runs() const { return pending_runs_; }
  bool page_pending(PageId pid) const {
    return page_index_.contains(pid);
  }
  /// Pending pages in staging (first-touch LSN) order — deterministic.
  std::vector<PageId> pending_pages() const;

  /// commit_lsn watermark: the lowest LSN of any record still pending.
  /// Every record below it has been applied, so checkpoints taken while
  /// runs are pending must not advance the recovery position past it.
  /// kInvalidLsn when nothing is pending.
  Lsn low_water() const;

  /// Applies the pending run for `pid` to `copy` (LSN-guarded slot writes,
  /// format records skipped — an on-disk formatted image is already past
  /// its format LSN). No charges, counters, or dirty marks: this patches a
  /// scanned page image for analysis-informed rebuild while the physical
  /// apply stays deferred.
  void overlay_page(PageId pid, storage::Page* copy) const;

 private:
  struct Run {
    PageId page{PageId::invalid()};
    std::vector<std::size_t> items;  // indices into records_, LSN order
    bool has_format = false;
    bool done = false;  // drained in retained-run mode
    // Filled during prepare/apply:
    storage::PageRef ref;
    bool handled_serially = false;
    bool skipped = false;
    Lsn first_applied = kInvalidLsn;
    std::uint64_t applied = 0;
  };

  Status prepare_run(Run& run, Stats* stats);
  Status apply_serially(Run& run, Stats* stats);
  void apply_run(Run& run) const;
  /// Shared drain engine: applies the listed runs (chunked so pinned pages
  /// fit in the cache), marks them done, and fully resets once no run is
  /// left pending.
  Result<Stats> drain_runs(const std::vector<std::size_t>& selected);
  void reset();

  Hooks hooks_;
  /// Pooled record copies: staged_count_ live entries, the rest retain
  /// their heap capacity for the next cycle.
  std::vector<wal::LogRecord> records_;
  std::size_t staged_count_ = 0;
  std::vector<Run> runs_;  // first-touch (LSN) order — deterministic
  std::size_t pending_runs_ = 0;  // staged runs not yet drained
  std::unordered_map<PageId, std::size_t> page_index_;
  obs::Counter* applied_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  obs::Counter* drains_counter_ = nullptr;
};

}  // namespace vdb::engine
