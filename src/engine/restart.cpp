#include "engine/restart.hpp"

namespace vdb::engine {

RestartCoordinator::RestartCoordinator(RestartMode mode, bool stall_on_access,
                                       std::unique_ptr<RedoApplyPlan> plan,
                                       obs::Observability* obs,
                                       const sim::VirtualClock* clock)
    : mode_(mode), stall_on_access_(stall_on_access), plan_(std::move(plan)),
      obs_(obs::resolve(obs)), clock_(clock) {
  obs::MetricsRegistry& reg = obs_->registry();
  on_demand_counter_ = reg.counter("pages recovered on demand");
  background_counter_ = reg.counter("pages recovered background");
}

Status RestartCoordinator::on_fetch(PageId pid) {
  if (in_drain_) return Status::ok();
  if (!page_pending(pid)) return Status::ok();
  return recover_page(pid);
}

Status RestartCoordinator::check_access(PageId pid) {
  if (!page_pending(pid)) return Status::ok();
  if (mode_ == RestartMode::kM2EarlyOpen && !stall_on_access_) {
    return make_error(ErrorCode::kRecoveryRequired,
                      "page awaits restart recovery (M2 early-open)");
  }
  // Stall variant and M3/M4: recover the page right here so the DML that
  // follows sees current content without ever reaching the fetch gate
  // mid-operation.
  return recover_page(pid);
}

Status RestartCoordinator::traced_drain(obs::WaitEvent event,
                                        const std::function<Status()>& fn) {
  obs::WaitScope wait(&obs_->waits(), clock_, event);
  obs::RecoveryTracer& tracer = obs_->tracer();
  // Only juggle phases inside a trace someone else opened: enter() would
  // auto-start a fresh trace otherwise, and a sweeper tick long after the
  // measured recovery must not fabricate V$RECOVERY_PROGRESS rows. The
  // harness keeps its resume span open across the measured window, so
  // closing our on_demand span by re-entering resume keeps spans tiling.
  const bool traced = tracer.active();
  if (traced) tracer.enter(obs::RecoveryPhase::kOnDemand, clock_->now());
  in_drain_ = true;
  Status st = fn();
  in_drain_ = false;
  if (traced) tracer.enter(obs::RecoveryPhase::kResume, clock_->now());
  return st;
}

Status RestartCoordinator::recover_page(PageId pid) {
  if (!page_pending(pid)) return Status::ok();
  VDB_RETURN_IF_ERROR(
      traced_drain(obs::WaitEvent::kRecoveryReadStall,
                   [&] { return plan_->drain_page(pid).status(); }));
  on_demand_count_ += 1;
  on_demand_counter_->inc();
  return Status::ok();
}

Status RestartCoordinator::sweep(std::size_t max_runs) {
  if (!has_pending() || max_runs == 0) return Status::ok();
  const std::size_t before = plan_->pending_runs();
  // Background work: no foreground stall to charge, so no wait event — the
  // sweeper's clock advances surface as on_demand phase time only.
  obs::RecoveryTracer& tracer = obs_->tracer();
  const bool traced = tracer.active();
  if (traced) tracer.enter(obs::RecoveryPhase::kOnDemand, clock_->now());
  in_drain_ = true;
  Status st = plan_->drain_some(max_runs).status();
  in_drain_ = false;
  if (traced) tracer.enter(obs::RecoveryPhase::kResume, clock_->now());
  const std::size_t drained = before - plan_->pending_runs();
  background_count_ += drained;
  background_counter_->inc(drained);
  return st;
}

Status RestartCoordinator::complete() {
  if (!has_pending()) return Status::ok();
  return sweep(plan_->pending_runs());
}

}  // namespace vdb::engine
