// Restart coordinator: the post-open half of the early-open restart modes
// (RestartMode M2-M4).
//
// Instance recovery in an early-open mode stops after the serial log
// analysis: losers are identified and rolled back, but the bulk of the
// redo stays staged in a retained RedoApplyPlan. The database opens, and
// this coordinator owns the plan from then on:
//
//  - a storage-level fetch gate routes any access to a page with pending
//    redo through recover_page(), which drains just that page's run —
//    single-page roll-forward charged to the recovery_read_stall wait
//    event and traced as the on_demand recovery phase;
//  - a background sweeper (Database timer) calls sweep() to drain pending
//    runs in staging order, aggressively for M2/M4, as a trickle for M3;
//  - M2 additionally rejects *user* DML on pending pages with
//    kRecoveryRequired via check_access() (or stalls, recovering on the
//    spot, when DatabaseConfig::early_open_stall is set) — internal
//    fetches always recover on demand instead, because engine machinery
//    (undo probes, allocator slot search) cannot tolerate rejection;
//  - commit_lsn() is the watermark checkpoints must not advance the
//    recovery position past while runs are pending: every record below it
//    has been applied, nothing above it is guaranteed to be.
//
// The coordinator never runs inside its own drains: prepare_run fetches
// pages through the same StorageManager the gate is installed on, so
// in_drain_ turns the gate into a pass-through for the duration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/db_config.hpp"
#include "engine/replay_plan.hpp"
#include "obs/observability.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::engine {

class RestartCoordinator {
 public:
  RestartCoordinator(RestartMode mode, bool stall_on_access,
                     std::unique_ptr<RedoApplyPlan> plan,
                     obs::Observability* obs, const sim::VirtualClock* clock);

  RestartMode mode() const { return mode_; }

  bool has_pending() const { return plan_ != nullptr && plan_->has_pending(); }
  std::size_t pending_pages_count() const {
    return plan_ != nullptr ? plan_->pending_runs() : 0;
  }
  bool page_pending(PageId pid) const {
    return plan_ != nullptr && plan_->page_pending(pid);
  }
  std::vector<PageId> pending_pages() const {
    return plan_ != nullptr ? plan_->pending_pages() : std::vector<PageId>{};
  }

  /// Checkpoint clamp: lowest LSN of any still-pending record
  /// (kInvalidLsn when nothing is pending).
  Lsn commit_lsn() const {
    return plan_ != nullptr ? plan_->low_water() : kInvalidLsn;
  }

  std::uint64_t recovered_on_demand() const { return on_demand_count_; }
  std::uint64_t recovered_background() const { return background_count_; }

  /// Storage fetch gate: pass-through unless the page has pending redo, in
  /// which case the page is recovered on the spot (all early modes — the
  /// storage level never rejects).
  Status on_fetch(PageId pid);

  /// Engine-level user-DML gate. M2 without early_open_stall rejects
  /// pending pages with kRecoveryRequired; every other mode defers to the
  /// storage gate (which recovers on demand).
  Status check_access(PageId pid);

  /// Single-page roll-forward: drains the page's pending run, charging the
  /// stall to recovery_read_stall and tracing it as the on_demand phase.
  /// No-op when the page has no pending redo.
  Status recover_page(PageId pid);

  /// Background sweeper tick: drains up to `max_runs` pending runs in
  /// staging order.
  Status sweep(std::size_t max_runs);

  /// Drains everything still pending (counted as background work). The
  /// caller checkpoints afterwards; this only finishes the replay.
  Status complete();

  /// Patches a scanned page image with the page's pending redo (rebuild
  /// overlay; see RedoApplyPlan::overlay_page).
  void overlay(PageId pid, storage::Page* copy) const {
    if (plan_ != nullptr) plan_->overlay_page(pid, copy);
  }

 private:
  /// Wraps a drain in wait accounting + on_demand phase tracing + the
  /// reentrancy guard. `fn` runs with in_drain_ set.
  Status traced_drain(obs::WaitEvent event,
                      const std::function<Status()>& fn);

  RestartMode mode_;
  bool stall_on_access_;
  std::unique_ptr<RedoApplyPlan> plan_;
  obs::Observability* obs_;
  const sim::VirtualClock* clock_;
  bool in_drain_ = false;
  std::uint64_t on_demand_count_ = 0;
  std::uint64_t background_count_ = 0;
  obs::Counter* on_demand_counter_ = nullptr;
  obs::Counter* background_counter_ = nullptr;
};

}  // namespace vdb::engine
