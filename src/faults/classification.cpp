#include "faults/classification.hpp"

namespace vdb::faults {

const char* to_string(Portability p) {
  switch (p) {
    case Portability::kYes: return "Yes";
    case Portability::kEquivalent: return "Equivalent";
    case Portability::kOracleSpecific: return "Oracle";
  }
  return "?";
}

namespace {

constexpr FaultClassInfo kClasses[] = {
    {"Memory & processes admin.",
     "Mistakes in the administration of processes and memory structures: "
     "wrong memory-allocation or process-initialization parameters, "
     "accidental database shutdown causing loss of service."},
    {"Security management",
     "Mistakes in the attribution of passwords, access privileges, and disk "
     "space to users; effects are hard to detect."},
    {"Storage admin.",
     "Mistakes in the administration of physical and logical storage: "
     "removal or corruption of database files, incorrect distribution of "
     "files over disks, letting storage structures run out of space."},
    {"Database object admin.",
     "Errors in the management of user objects: removal of a table or "
     "index, incorrect object configuration, incorrect use of optimization "
     "structures."},
    {"Recovery mechanisms admin.",
     "Mistakes in the configuration and administration of recovery "
     "mechanisms: missing backups, removal or corruption of a log file, "
     "missing archive logs."},
};

constexpr FaultTypeInfo kTypes[] = {
    // Memory & processes administration
    {"Memory & processes", "Making a database instance shutdown",
     Portability::kYes, true},
    {"Memory & processes", "Removing or corrupting the initialization file",
     Portability::kYes, false},
    {"Memory & processes", "Incorrect configuration of the SGA parameters",
     Portability::kYes, false},
    {"Memory & processes", "Incorrect config. max. number of user sessions",
     Portability::kYes, false},
    {"Memory & processes", "Killing a user session", Portability::kYes,
     false},
    // Security management
    {"Security", "Database access level faults (passwords)",
     Portability::kYes, false},
    {"Security", "Incorrect attrib. of system and object privileges",
     Portability::kEquivalent, false},
    {"Security", "Attribution of incorrect disk quotas to users",
     Portability::kEquivalent, false},
    {"Security", "Attribution of incorrect profiles to users",
     Portability::kEquivalent, false},
    {"Security", "Incorrect attribution of tablespaces to users",
     Portability::kOracleSpecific, false},
    // Storage administration
    {"Storage", "Delete a controlfile, tablespace or rollback seg.",
     Portability::kOracleSpecific, true},
    {"Storage", "Delete a datafile", Portability::kEquivalent, true},
    {"Storage", "Incorrect distribution of datafiles through disks",
     Portability::kYes, false},
    {"Storage", "Insufficient number of rollback segments",
     Portability::kOracleSpecific, false},
    {"Storage", "Set a tablespace offline", Portability::kOracleSpecific,
     true},
    {"Storage", "Set a datafile offline", Portability::kEquivalent, true},
    {"Storage", "Set a rollback segment offline",
     Portability::kOracleSpecific, false},
    {"Storage", "Allow a tablespace to run out of space",
     Portability::kOracleSpecific, false},
    {"Storage", "Allow a rollback segment to run out of space",
     Portability::kOracleSpecific, false},
    // Database object administration
    {"Object admin.", "Delete a database user", Portability::kYes, false},
    {"Object admin.", "Delete any user's database object", Portability::kYes,
     true},
    {"Object admin.", "Incorrect config. object's storage parameters",
     Portability::kEquivalent, false},
    {"Object admin.", "Set the NOLOGGING option in tables",
     Portability::kOracleSpecific, false},
    {"Object admin.", "Incorrect use of optimization structures",
     Portability::kYes, false},
    // Recovery mechanisms administration
    {"Recovery admin.", "Delete a redo log file or group",
     Portability::kEquivalent, false},
    {"Recovery admin.", "Store all redo log group members in same disk",
     Portability::kEquivalent, false},
    {"Recovery admin.", "Insufficient redo log groups to support archive",
     Portability::kEquivalent, false},
    {"Recovery admin.", "Inexistence of archive logs",
     Portability::kEquivalent, false},
    {"Recovery admin.", "Delete a archive log file", Portability::kEquivalent,
     false},
    {"Recovery admin.", "Store archive files in the same disk as data files",
     Portability::kEquivalent, false},
    {"Recovery admin.", "Backups missing to allow recovery",
     Portability::kEquivalent, false},
};

constexpr FleetScenarioInfo kFleetScenarios[] = {
    {FleetScenario::kSingleShardCrash, "single-shard crash",
     "One shard's primary instance is shut down abort; the rest of the "
     "fleet keeps serving its warehouses.",
     "Health-check detects the dead shard, promotes its standby, re-routes "
     "the driver; unarchived redo is lost on that shard only."},
    {FleetScenario::kCoordinatorCrashMid2pc, "coordinator crash mid-2PC",
     "The shard coordinating a cross-shard transaction dies between "
     "PREPARE and the decision reaching every participant.",
     "Promote the coordinator's standby, then resolve in-doubt branches "
     "from the recovered decision table (no surviving decision record = "
     "presumed abort); every participant must reach the same outcome."},
    {FleetScenario::kPromotionWithRedoLoss, "promotion with redo loss",
     "A shard dies with committed redo still in its current, unarchived "
     "online group — the standby never received that window.",
     "Promote the standby anyway; commits above the last shipped archive "
     "are counted as that shard's lost transactions (paper §5.3)."},
    {FleetScenario::kCascadingDoubleFailure, "cascading double failure",
     "A second shard dies while the fleet is still recovering the first.",
     "The orchestrator serialises the failovers: each dead shard is "
     "detected, promoted and re-routed in turn before service resumes."},
};

}  // namespace

std::span<const FaultClassInfo> fault_classes() { return kClasses; }
std::span<const FaultTypeInfo> fault_types() { return kTypes; }

std::span<const FleetScenarioInfo> fleet_scenarios() {
  return kFleetScenarios;
}

const FleetScenarioInfo& fleet_scenario_info(FleetScenario s) {
  return kFleetScenarios[static_cast<std::size_t>(s)];
}

}  // namespace vdb::faults
