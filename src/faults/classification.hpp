// Operator-fault classification for DBMS (the paper's Tables 1 and 2).
//
// The class taxonomy is general to any DBMS; the concrete types are the
// Oracle 8i instantiation with the paper's portability assessment. The six
// types marked injectable are the benchmark faultload (§4): chosen for
// their ability to represent other types' effects, diversity of impact,
// and diversity of required recovery.
#pragma once

#include <cstddef>
#include <span>

namespace vdb::faults {

/// Table 1: classes of DBMS operator faults.
struct FaultClassInfo {
  const char* name;
  const char* description;
};

/// Portability of a concrete fault type to non-Oracle DBMS (Table 2).
enum class Portability { kYes, kEquivalent, kOracleSpecific };
const char* to_string(Portability p);

/// Table 2: concrete operator-fault types for an Oracle-8i-style DBMS.
struct FaultTypeInfo {
  const char* fault_class;
  const char* name;
  Portability portability;
  /// Part of the benchmark faultload (§4 selects six types).
  bool injected_in_benchmark;
};

std::span<const FaultClassInfo> fault_classes();
std::span<const FaultTypeInfo> fault_types();

/// Fleet-level fault scenarios (multi-instance generalisation of the
/// faultload): coordinated failures across a sharded deployment, each with
/// the recovery the orchestrator is expected to drive.
enum class FleetScenario {
  kSingleShardCrash = 0,
  kCoordinatorCrashMid2pc,
  kPromotionWithRedoLoss,
  kCascadingDoubleFailure,
};
constexpr std::size_t kFleetScenarioCount = 4;

struct FleetScenarioInfo {
  FleetScenario scenario;
  const char* name;
  const char* description;
  /// What the orchestrator must do to restore fleet service.
  const char* expected_recovery;
};

std::span<const FleetScenarioInfo> fleet_scenarios();
const FleetScenarioInfo& fleet_scenario_info(FleetScenario s);

}  // namespace vdb::faults
