#include "faults/extended_faults.hpp"

#include "faults/fault_injector.hpp"

namespace vdb::faults {

const char* to_string(ExtendedFaultType t) {
  switch (t) {
    case ExtendedFaultType::kCorruptDatafile: return "Corrupt datafile";
    case ExtendedFaultType::kDeleteRedoMember:
      return "Delete redo log member";
    case ExtendedFaultType::kDeleteArchiveLog: return "Delete archive log";
    case ExtendedFaultType::kDestroyBackups: return "Backups missing";
    case ExtendedFaultType::kCorruptControlFile:
      return "Corrupt control file copy";
    case ExtendedFaultType::kTablespaceOutOfSpace:
      return "Tablespace out of space";
    case ExtendedFaultType::kRollbackSegmentOffline:
      return "Rollback segment offline";
    case ExtendedFaultType::kKillUserSession: return "Kill user session";
    case ExtendedFaultType::kSilentPageCorruption:
      return "Silent page corruption";
    case ExtendedFaultType::kTornPageWrite: return "Torn page write";
    case ExtendedFaultType::kTransientIoErrors:
      return "Transient I/O errors";
  }
  return "?";
}

bool is_latent(ExtendedFaultType t) {
  switch (t) {
    case ExtendedFaultType::kDeleteArchiveLog:
    case ExtendedFaultType::kDestroyBackups:
    case ExtendedFaultType::kCorruptControlFile:
    case ExtendedFaultType::kDeleteRedoMember:
    case ExtendedFaultType::kSilentPageCorruption:
    case ExtendedFaultType::kTornPageWrite:
      return true;
    default:
      return false;
  }
}

Status ExtendedFaultInjector::inject(engine::Database& db,
                                     const ExtendedFaultSpec& spec) {
  sim::SimFs& fs = db.host().fs();
  switch (spec.type) {
    case ExtendedFaultType::kCorruptDatafile: {
      FaultSpec target;
      target.tablespace = spec.tablespace;
      target.datafile_index = spec.datafile_index;
      auto fid = FaultInjector::target_datafile(db, target);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      return fs.corrupt(info.value()->path);
    }

    case ExtendedFaultType::kDeleteRedoMember: {
      const std::string path =
          db.redo().member_path(spec.redo_group, spec.redo_member);
      return fs.remove(path);
    }

    case ExtendedFaultType::kDeleteArchiveLog: {
      const auto archives =
          fs.list(db.config().redo.archive_dir + "/arch_");
      if (archives.empty()) {
        return make_error(ErrorCode::kNotFound, "no archived logs yet");
      }
      const size_t pick =
          spec.archive_seq < archives.size() ? spec.archive_seq : 0;
      return fs.remove(archives[pick]);
    }

    case ExtendedFaultType::kDestroyBackups:
      return backups_->destroy_backups();

    case ExtendedFaultType::kCorruptControlFile: {
      if (db.config().control_files.empty()) {
        return make_error(ErrorCode::kNotFound, "no control files");
      }
      return fs.corrupt(db.config().control_files.front());
    }

    case ExtendedFaultType::kTablespaceOutOfSpace:
      return db.alter_tablespace_quota(spec.tablespace, spec.quota_blocks);

    case ExtendedFaultType::kRollbackSegmentOffline:
      return db.alter_rollback_segment_offline(spec.rollback_segment);

    case ExtendedFaultType::kKillUserSession:
      // The session's in-flight transaction evaporates; with the driver
      // between transactions this is a pure availability blip, which is
      // why the paper groups it under memory & process administration.
      return Status::ok();

    case ExtendedFaultType::kSilentPageCorruption: {
      FaultSpec target;
      target.tablespace = spec.tablespace;
      target.datafile_index = spec.datafile_index;
      auto fid = FaultInjector::target_datafile(db, target);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      const std::uint32_t block =
          info.value()->high_water > 0
              ? spec.page_block % info.value()->high_water
              : spec.page_block;
      last_target_page_ = PageId{fid.value(), block};
      // Mangle bytes past the page header so the damage lands in live
      // content; the stored CRC no longer matches and the next fetch miss
      // flags the block.
      return fs.flip_bits(
          info.value()->path,
          static_cast<std::uint64_t>(block) * storage::Page::kSize + 64,
          spec.flip_bytes, spec.rng_seed);
    }

    case ExtendedFaultType::kTornPageWrite: {
      FaultSpec target;
      target.tablespace = spec.tablespace;
      target.datafile_index = spec.datafile_index;
      auto fid = FaultInjector::target_datafile(db, target);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      return fs.tear_next_write(info.value()->path, spec.torn_keep_bytes);
    }

    case ExtendedFaultType::kTransientIoErrors: {
      FaultSpec target;
      target.tablespace = spec.tablespace;
      target.datafile_index = spec.datafile_index;
      auto fid = FaultInjector::target_datafile(db, target);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      fs.inject_transient_errors(info.value()->path,
                                 fs.clock().now() + spec.error_window,
                                 spec.error_probability, spec.rng_seed);
      return Status::ok();
    }
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown extended fault");
}

}  // namespace vdb::faults
