// Extended faultload: the operator-fault types the paper catalogues in
// Table 2 but excludes from its §4 campaign — most of them *latent* faults
// against the recovery mechanisms themselves, which "would require two
// consecutive faults to affect the system in other visible ways".
//
// This module makes those two-fault experiments possible:
//   latent fault (here) + benchmark fault (fault_injector.hpp) =
//   the paper's proposed follow-up campaign.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "engine/database.hpp"
#include "recovery/backup.hpp"

namespace vdb::faults {

/// Table 2 types beyond the six benchmark faults.
enum class ExtendedFaultType : std::uint8_t {
  /// Storage admin: corrupt a datafile in place (failed block writes by a
  /// misbehaving tool). Surfaces as checksum errors; needs media recovery.
  kCorruptDatafile = 0,
  /// Recovery admin: delete one member file of a redo group. Harmless when
  /// the group is multiplexed; fatal for single-member groups.
  kDeleteRedoMember,
  /// Recovery admin: delete an archived log — LATENT: breaks the redo
  /// chain needed by a later media/point-in-time recovery.
  kDeleteArchiveLog,
  /// Recovery admin: destroy all backups — LATENT: later restore fails.
  kDestroyBackups,
  /// Recovery admin / storage: corrupt one control-file copy — latent
  /// until the next mount (multiplexing saves it).
  kCorruptControlFile,
  /// Storage admin: choke the tablespace quota ("allow a tablespace to run
  /// out of space"); inserts start failing once the space is consumed.
  kTablespaceOutOfSpace,
  /// Storage admin: set a rollback segment offline; capacity shrinks.
  kRollbackSegmentOffline,
  /// Memory & processes: kill a user session (transient; the affected
  /// transaction aborts and the terminal reconnects).
  kKillUserSession,
  /// Storage hardware: silently flip bits inside one page of a datafile —
  /// LATENT: reads keep succeeding until the block checksum is verified on
  /// the next fetch miss. Repairable by online block media recovery.
  kSilentPageCorruption,
  /// Storage hardware: the next page write persists only a sector prefix
  /// (write torn by a crash) — LATENT until the block is read back.
  kTornPageWrite,
  /// Storage hardware: a window of probabilistic transient I/O errors on
  /// the datafile (cabling/controller glitch). Absorbed by the bounded
  /// retry policy when below its budget.
  kTransientIoErrors,
};
constexpr size_t kExtendedFaultTypeCount = 11;
const char* to_string(ExtendedFaultType t);

/// Faults that are latent: they have no user-visible effect until a second
/// fault activates the broken mechanism.
bool is_latent(ExtendedFaultType t);

struct ExtendedFaultSpec {
  ExtendedFaultType type = ExtendedFaultType::kDeleteArchiveLog;
  std::string tablespace = "TPCC";
  std::uint32_t datafile_index = 0;
  std::uint32_t redo_group = 0;
  std::uint32_t redo_member = 0;
  std::uint32_t rollback_segment = 0;
  /// kDeleteArchiveLog: which archived sequence to destroy (0 = oldest).
  std::uint64_t archive_seq = 0;
  /// kTablespaceOutOfSpace: the quota the careless operator leaves in
  /// place, in blocks.
  std::uint32_t quota_blocks = 1;
  /// kSilentPageCorruption: block of the target datafile to damage (capped
  /// to the file's formatted blocks).
  std::uint32_t page_block = 0;
  /// kSilentPageCorruption: how many bytes of the page get mangled.
  std::uint64_t flip_bytes = 16;
  /// kTornPageWrite: how much of the page write hits the platter.
  std::uint64_t torn_keep_bytes = 512;
  /// kTransientIoErrors: window length and per-I/O failure probability.
  SimDuration error_window = 30 * kSecond;
  double error_probability = 0.2;
  /// Seed for the storage faults' random draws (reproducible runs).
  std::uint64_t rng_seed = 0xB10CFA17;
};

class ExtendedFaultInjector {
 public:
  explicit ExtendedFaultInjector(recovery::BackupManager* backups)
      : backups_(backups) {}

  /// Executes the wrong operation through the same surfaces an operator
  /// uses. Latent faults return OK and leave no immediate trace.
  Status inject(engine::Database& db, const ExtendedFaultSpec& spec);

  /// Page targeted by the last kSilentPageCorruption injection (invalid for
  /// other types) — lets a harness evict the cached copy to model the cache
  /// pressure that exposes the damage.
  PageId last_target_page() const { return last_target_page_; }

 private:
  recovery::BackupManager* backups_;
  PageId last_target_page_ = PageId::invalid();
};

}  // namespace vdb::faults
