#include "faults/fault_injector.hpp"

namespace vdb::faults {

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::kShutdownAbort: return "Shutdown abort";
    case FaultType::kDeleteDatafile: return "Delete datafile";
    case FaultType::kDeleteTablespace: return "Delete tablespace";
    case FaultType::kSetDatafileOffline: return "Set datafile offline";
    case FaultType::kSetTablespaceOffline: return "Set tablespace offline";
    case FaultType::kDeleteUserObject: return "Delete user's object";
  }
  return "?";
}

RecoveryKind recovery_kind(FaultType t) {
  switch (t) {
    case FaultType::kShutdownAbort: return RecoveryKind::kInstanceRestart;
    case FaultType::kDeleteDatafile: return RecoveryKind::kMediaRecovery;
    case FaultType::kDeleteTablespace: return RecoveryKind::kPointInTime;
    case FaultType::kSetDatafileOffline:
      return RecoveryKind::kDatafileRollForward;
    case FaultType::kSetTablespaceOffline:
      return RecoveryKind::kTablespaceOnline;
    case FaultType::kDeleteUserObject: return RecoveryKind::kPointInTime;
  }
  return RecoveryKind::kInstanceRestart;
}

bool incomplete_recovery(FaultType t) {
  return recovery_kind(t) == RecoveryKind::kPointInTime;
}

Result<FileId> FaultInjector::target_datafile(engine::Database& db,
                                              const FaultSpec& spec) {
  auto ts = db.storage().find_tablespace(spec.tablespace);
  if (!ts.is_ok()) return ts.status();
  auto info = db.storage().tablespace_info(ts.value());
  if (!info.is_ok()) return info.status();
  if (spec.datafile_index >= info.value()->files.size()) {
    return make_error(ErrorCode::kInvalidArgument, "datafile index OOB");
  }
  return info.value()->files[spec.datafile_index];
}

Result<std::string> FaultInjector::script_for(engine::Database& db,
                                              const FaultSpec& spec) {
  switch (spec.type) {
    case FaultType::kShutdownAbort:
      return std::string{"SHUTDOWN ABORT"};
    case FaultType::kDeleteDatafile: {
      auto fid = target_datafile(db, spec);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      return "HOST RM " + info.value()->path;
    }
    case FaultType::kDeleteTablespace:
      return "DROP TABLESPACE " + spec.tablespace +
             " INCLUDING CONTENTS AND DATAFILES";
    case FaultType::kSetDatafileOffline: {
      auto fid = target_datafile(db, spec);
      if (!fid.is_ok()) return fid.status();
      return "ALTER DATAFILE " + std::to_string(fid.value().value) +
             " OFFLINE";
    }
    case FaultType::kSetTablespaceOffline:
      return "ALTER TABLESPACE " + spec.tablespace + " OFFLINE";
    case FaultType::kDeleteUserObject:
      return "DROP TABLE " + spec.table;
  }
  return Status{ErrorCode::kInvalidArgument, "unknown fault type"};
}

Status FaultInjector::inject(engine::Database& db, const FaultSpec& spec) {
  injected_ += 1;
  switch (spec.type) {
    case FaultType::kShutdownAbort:
      // The operator types SHUTDOWN ABORT at the wrong console.
      return db.shutdown_abort();

    case FaultType::kDeleteDatafile: {
      // An OS-level `rm` on a live datafile.
      auto fid = target_datafile(db, spec);
      if (!fid.is_ok()) return fid.status();
      auto info = db.storage().file_info(fid.value());
      if (!info.is_ok()) return info.status();
      return db.host().fs().remove(info.value()->path);
    }

    case FaultType::kDeleteTablespace:
      // DROP TABLESPACE ... INCLUDING CONTENTS AND DATAFILES.
      return db.drop_tablespace(spec.tablespace, /*delete_files=*/true);

    case FaultType::kSetDatafileOffline: {
      auto fid = target_datafile(db, spec);
      if (!fid.is_ok()) return fid.status();
      return db.alter_datafile_offline(fid.value());
    }

    case FaultType::kSetTablespaceOffline:
      return db.alter_tablespace_offline(spec.tablespace);

    case FaultType::kDeleteUserObject:
      // DROP TABLE on another user's table.
      return db.drop_table(spec.table);
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown fault type");
}

}  // namespace vdb::faults
