// Operator-fault injector.
//
// Reproduces — not emulates — administrator mistakes: every fault executes
// through exactly the interface a real operator would use (the engine's
// administration API or a filesystem remove), following the paper's
// methodology (§3.2). The injector also knows, per fault type, which
// recovery procedure a competent DBA would start after the (fixed)
// detection time.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/database.hpp"

namespace vdb::faults {

/// The benchmark faultload: the six types selected in §4.
enum class FaultType : std::uint8_t {
  kShutdownAbort = 0,
  kDeleteDatafile,
  kDeleteTablespace,
  kSetDatafileOffline,
  kSetTablespaceOffline,
  kDeleteUserObject,
};
constexpr size_t kFaultTypeCount = 6;
const char* to_string(FaultType t);

/// Which recovery procedure the fault requires.
enum class RecoveryKind : std::uint8_t {
  kInstanceRestart,    // crash recovery on startup
  kMediaRecovery,      // restore file + roll forward (complete)
  kPointInTime,        // full restore + stop before DDL (incomplete)
  kDatafileRollForward,  // online redo roll of offline file (complete)
  kTablespaceOnline,   // ALTER TABLESPACE ... ONLINE (complete, ~1 s)
};
RecoveryKind recovery_kind(FaultType t);

/// Faults whose recovery is incomplete (loses committed transactions).
bool incomplete_recovery(FaultType t);

struct FaultSpec {
  FaultType type = FaultType::kShutdownAbort;
  /// Trigger instant, relative to workload start (paper: 150/300/600 s).
  SimDuration inject_at = 300 * kSecond;
  /// Target tablespace (storage faults) — default the TPC-C tablespace.
  std::string tablespace = "TPCC";
  /// Target table (delete user's object).
  std::string table = "history";
  /// Which datafile of the tablespace (datafile faults).
  std::uint32_t datafile_index = 0;
};

class FaultInjector {
 public:
  /// Executes the wrong operation immediately. Returns the fault's own
  /// status (a fault can "fail" only if its target does not exist).
  Status inject(engine::Database& db, const FaultSpec& spec);

  /// Resolves the FileId a datafile fault targets.
  static Result<FileId> target_datafile(engine::Database& db,
                                        const FaultSpec& spec);

  /// The admin-shell script a careless operator would type to produce this
  /// fault — injecting via AdminShell::run_script(script_for(...)) has the
  /// same effect as inject(), which the tests verify. This mirrors the
  /// paper's methodology: faults are Perl/SQL scripts of real commands.
  static Result<std::string> script_for(engine::Database& db,
                                        const FaultSpec& spec);

  std::uint64_t injected_count() const { return injected_; }

 private:
  std::uint64_t injected_ = 0;
};

}  // namespace vdb::faults
