#include "fleet/fleet.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "tpcc/tpcc_loader.hpp"

namespace vdb::fleet {

BranchRecord* GlobalTxn::branch(std::uint32_t shard) {
  for (BranchRecord& b : branches) {
    if (b.shard == shard) return &b;
  }
  return nullptr;
}

bool GlobalTxn::settled() const {
  for (const BranchRecord& b : branches) {
    if (b.outcome == '?') return false;
  }
  return true;
}

GlobalTxn& TwoPhaseRegistry::open(std::uint32_t coord,
                                  const std::vector<std::uint32_t>& shards) {
  GlobalTxn g;
  g.gtxn = next_gtxn_++;
  g.coord = coord;
  for (std::uint32_t s : shards) g.branches.push_back(BranchRecord{s});
  auto [it, inserted] = txns_.emplace(g.gtxn, std::move(g));
  (void)inserted;
  return it->second;
}

GlobalTxn* TwoPhaseRegistry::find(std::uint64_t gtxn) {
  auto it = txns_.find(gtxn);
  return it == txns_.end() ? nullptr : &it->second;
}

std::uint64_t TwoPhaseRegistry::atomicity_violations() const {
  std::uint64_t violations = 0;
  for (const auto& [gtxn, g] : txns_) {
    bool committed = false;
    bool aborted = false;
    for (const BranchRecord& b : g.branches) {
      if (b.outcome == 'C') committed = true;
      if (b.outcome == 'A') aborted = true;
    }
    if (committed && aborted) violations += 1;
  }
  return violations;
}

namespace {

void add_standard_disks(sim::Host& host) {
  host.add_disk("/data");
  host.add_disk("/redo");
  host.add_disk("/arch");
  host.add_disk("/backup");
}

}  // namespace

Fleet::Fleet(FleetConfig cfg)
    : cfg_(std::move(cfg)), sched_(&clock_) {
  if (cfg_.scale.warehouses < cfg_.shards * 2) {
    // Default fleet sizing: two warehouses per shard keeps every shard a
    // multi-warehouse TPC-C system (remote cases exist within a shard too).
    cfg_.scale.warehouses = cfg_.shards * 2;
  }
}

std::uint32_t Fleet::shard_of(std::uint32_t warehouse) const {
  // Knuth multiplicative hash: static, directory-free, stable across
  // restarts. Warehouse ids are 1-based and dense, so small fleets stay
  // balanced.
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(warehouse) * 2654435761ull) % cfg_.shards);
}

engine::Database& Fleet::active_db(std::uint32_t i) {
  Shard& s = *shards_[i];
  return s.promoted ? s.standby->db() : *s.db;
}

Status Fleet::setup() {
  if (cfg_.shards < 2) {
    return Status{ErrorCode::kInvalidArgument, "fleet needs >= 2 shards"};
  }
  shards_.clear();
  for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[i]->index = i;
  }
  for (std::uint32_t w = 1; w <= cfg_.scale.warehouses; ++w) {
    shards_[shard_of(w)]->warehouses.push_back(w);
  }
  for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
    if (shards_[i]->warehouses.empty()) {
      return Status{ErrorCode::kInvalidArgument,
                    "warehouse hash left shard " + std::to_string(i) +
                        " empty; raise scale.warehouses"};
    }
    VDB_RETURN_IF_ERROR(setup_shard(i));
  }
  return Status::ok();
}

Status Fleet::setup_shard(std::uint32_t i) {
  Shard& s = *shards_[i];
  const std::string tag = "shard" + std::to_string(i);
  s.primary_host = std::make_unique<sim::Host>(tag, &clock_);
  add_standard_disks(*s.primary_host);
  s.obs = std::make_unique<obs::Observability>();

  engine::DatabaseConfig cfg;
  cfg.name = "tpcc-" + tag;
  cfg.redo.file_size_bytes =
      static_cast<std::uint64_t>(cfg_.redo_file_mb) * 1024 * 1024;
  cfg.redo.groups = cfg_.redo_groups;
  cfg.redo.archive_mode = true;  // standby shipping needs archives
  cfg.checkpoint_timeout = cfg_.checkpoint_timeout;
  cfg.storage.cache_pages = cfg_.cache_pages;
  cfg.obs = s.obs.get();
  s.cfg = cfg;

  s.db = std::make_unique<engine::Database>(s.primary_host.get(), &sched_,
                                            s.cfg);
  VDB_RETURN_IF_ERROR(s.db->create());

  std::vector<std::pair<std::string, std::uint32_t>> files;
  for (std::uint32_t f = 0; f < cfg_.datafiles; ++f) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "/data/tpcc%02u.dbf", f + 1);
    files.emplace_back(buf, cfg_.datafile_blocks);
  }
  auto ts = s.db->create_tablespace("TPCC", files);
  if (!ts.is_ok()) return ts.status();
  auto user = s.db->create_user("TPCC", /*is_dba=*/false);
  if (!user.is_ok()) return user.status();

  s.tdb = std::make_unique<tpcc::TpccDb>(cfg_.scale);
  VDB_RETURN_IF_ERROR(s.tdb->create_schema(*s.db, "TPCC", user.value()));
  VDB_RETURN_IF_ERROR(s.tdb->attach(s.db.get()));

  // Warehouse-subset population: this shard's warehouses plus the full
  // (replicated) item catalog. Per-shard seed keeps loads independent.
  tpcc::Loader loader(s.tdb.get(),
                      cfg_.seed ^ 0x10ad5eedull ^
                          (0x9e3779b97f4a7c15ull * (i + 1)));
  auto load = loader.load_warehouses(s.warehouses);
  if (!load.is_ok()) return load.status();

  s.backups = std::make_unique<recovery::BackupManager>(
      &s.primary_host->fs(), "/backup");

  s.standby_host = std::make_unique<sim::Host>(tag + "-standby", &clock_);
  add_standard_disks(*s.standby_host);
  s.link = std::make_unique<sim::NetworkLink>();
  standby::StandbyConfig scfg;
  scfg.db = s.cfg;
  s.standby = std::make_unique<standby::StandbyDatabase>(
      s.standby_host.get(), &sched_, scfg, s.link.get());
  VDB_RETURN_IF_ERROR(s.standby->instantiate_from(*s.db, *s.backups));
  wire_shipping(s);
  return Status::ok();
}

void Fleet::wire_shipping(Shard& s) {
  sim::SimFs* primary_fs = &s.primary_host->fs();
  standby::StandbyDatabase* sb = s.standby.get();
  s.db->archiver().on_archived = [primary_fs, sb](const std::string& path,
                                                  std::uint64_t seq,
                                                  SimTime done_at) {
    sb->on_primary_archive(*primary_fs, path, seq, done_at);
  };
}

Status Fleet::restart_shard(std::uint32_t i) {
  Shard& s = *shards_[i];
  if (s.promoted) {
    return Status{ErrorCode::kInvalidArgument,
                  "shard failed over; the promoted standby is the instance"};
  }
  if (s.db->is_open()) return Status::ok();  // nothing to do
  // A crashed incarnation never comes back — a fresh instance mounts the
  // surviving files and instance-recovers from the redo stream.
  s.db = std::make_unique<engine::Database>(s.primary_host.get(), &sched_,
                                            s.cfg);
  VDB_RETURN_IF_ERROR(s.db->startup());
  VDB_RETURN_IF_ERROR(s.tdb->attach(s.db.get()));
  wire_shipping(s);
  s.failed_at = 0;
  return Status::ok();
}

Status Fleet::kill_shard(std::uint32_t i) {
  Shard& s = *shards_[i];
  engine::Database& db = active_db(i);
  if (!db.is_open()) return Status::ok();  // already down
  s.failed_at = clock_.now();
  return db.shutdown_abort();
}

Result<standby::ActivationReport> Fleet::promote(std::uint32_t i) {
  Shard& s = *shards_[i];
  if (s.promoted) {
    return Status{ErrorCode::kInvalidArgument,
                  "shard already failed over; no second standby"};
  }
  if (s.db->is_open()) (void)s.db->shutdown_abort();
  auto act = s.standby->activate();
  if (!act.is_ok()) return act.status();
  VDB_RETURN_IF_ERROR(s.tdb->attach(&s.standby->db()));
  s.promoted = true;
  s.recovered_to = act.value().recovered_to;
  return act;
}

bool Fleet::healthy() const {
  for (const auto& s : shards_) {
    const engine::Database& db =
        s->promoted ? s->standby->db() : *s->db;
    if (!db.is_open()) return false;
  }
  return true;
}

}  // namespace vdb::fleet
