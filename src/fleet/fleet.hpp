// A fleet of database shards: TPC-C warehouses partitioned across N
// independent instances, each with its own hosts, redo stream, and
// archive-shipped standby.
//
// Partitioning is a static multiplicative hash of the warehouse id, so
// routing never needs a directory and stays identical across restarts.
// Single-warehouse transactions run entirely on their home shard;
// cross-shard New-Order (remote stock) and Payment (remote customer) run
// under presumed-abort two-phase commit — the PREPARE and the
// coordinator's decision are ordinary redo records, so each branch's fate
// is reconstructible by instance recovery or standby activation alone.
//
// The fleet also owns the TwoPhaseRegistry: the benchmark's ground truth
// of every distributed transaction (participants, durable decision, the
// outcome each shard applied). The registry is measurement apparatus, not
// a recovery mechanism — recovery uses only what is in the redo streams.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "engine/database.hpp"
#include "obs/observability.hpp"
#include "recovery/backup.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/virtual_clock.hpp"
#include "standby/standby.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_random.hpp"

namespace vdb::fleet {

struct FleetConfig {
  std::uint32_t shards = 2;
  /// TPC-C scale for the whole fleet; scale.warehouses spread over shards.
  tpcc::TpccScale scale{};
  std::uint64_t seed = 12345;
  /// Per-shard recovery configuration (each shard is one paper testbed).
  std::uint32_t redo_file_mb = 40;
  std::uint32_t redo_groups = 3;
  SimDuration checkpoint_timeout = 600 * kSecond;
  std::uint32_t datafiles = 2;
  std::uint32_t datafile_blocks = 512;
  std::uint32_t cache_pages = 2048;
};

/// One branch of a distributed transaction, as the benchmark observed it.
struct BranchRecord {
  std::uint32_t shard = 0;
  Lsn prepare_lsn = 0;
  Lsn end_lsn = 0;
  /// 'C' committed, 'A' aborted, 'L' wiped by unarchived-redo loss on
  /// standby promotion (the branch never became durable there), '?' not
  /// yet settled (in doubt).
  char outcome = '?';
};

struct GlobalTxn {
  std::uint64_t gtxn = 0;
  std::uint32_t coord = 0;
  /// Coordinator durably logged a decision (as the client-side saw it).
  bool decided = false;
  bool decision = false;
  /// Every branch outcome is known; nothing left for the orchestrator.
  bool finished = false;
  std::vector<BranchRecord> branches;

  BranchRecord* branch(std::uint32_t shard);
  bool settled() const;
};

/// Fleet-global record of two-phase transactions: who participated, what
/// was decided, what each shard applied. The atomicity audit — no gtxn may
/// commit on one shard and abort on another — reads this after every
/// experiment.
class TwoPhaseRegistry {
 public:
  GlobalTxn& open(std::uint32_t coord,
                  const std::vector<std::uint32_t>& shards);
  GlobalTxn* find(std::uint64_t gtxn);
  std::map<std::uint64_t, GlobalTxn>& txns() { return txns_; }
  const std::map<std::uint64_t, GlobalTxn>& txns() const { return txns_; }

  std::uint64_t cross_shard_txns() const { return next_gtxn_ - 1; }
  /// gtxns with both a committed and an aborted branch ('L' excluded).
  std::uint64_t atomicity_violations() const;

 private:
  std::uint64_t next_gtxn_ = 1;
  std::map<std::uint64_t, GlobalTxn> txns_;
};

/// One shard: a primary host + instance, its standby fed over a network
/// link, and the TPC-C access paths bound to whichever incarnation is
/// active. The statistics area is per shard and survives promotion.
struct Shard {
  std::uint32_t index = 0;
  std::vector<std::uint32_t> warehouses;
  std::unique_ptr<sim::Host> primary_host;
  std::unique_ptr<sim::Host> standby_host;
  std::unique_ptr<sim::NetworkLink> link;
  std::unique_ptr<obs::Observability> obs;
  engine::DatabaseConfig cfg;
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<tpcc::TpccDb> tdb;
  std::unique_ptr<recovery::BackupManager> backups;
  std::unique_ptr<standby::StandbyDatabase> standby;
  bool promoted = false;
  /// After promotion: the activation watermark — primary commits above it
  /// were in the unarchived online group and are lost.
  Lsn recovered_to = 0;
  SimTime failed_at = 0;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig cfg);

  /// Builds every shard: hosts, instance, TPC-C schema, warehouse-subset
  /// load, standby instantiation and archive-shipping wiring.
  Status setup();

  /// Static partition map: multiplicative hash of the warehouse id.
  std::uint32_t shard_of(std::uint32_t warehouse) const;

  std::uint32_t size() const { return cfg_.shards; }
  Shard& shard(std::uint32_t i) { return *shards_[i]; }
  const Shard& shard(std::uint32_t i) const { return *shards_[i]; }

  /// The shard's serving instance: the promoted standby when failed over,
  /// else the original primary.
  engine::Database& active_db(std::uint32_t i);
  tpcc::TpccDb& tdb(std::uint32_t i) { return *shards_[i]->tdb; }

  /// Kills a shard's serving instance (SHUTDOWN ABORT) — the fleet
  /// faultload's crash primitive.
  Status kill_shard(std::uint32_t i);

  /// Restarts a crashed (not failed-over) shard in place: a fresh
  /// incarnation on the primary host, instance recovery from its own redo.
  /// The standby keeps trailing the restarted primary's archives.
  Status restart_shard(std::uint32_t i);

  /// Activates the shard's standby and re-binds the access paths to it.
  /// The report's recovered_to is kept on the shard for lost accounting.
  Result<standby::ActivationReport> promote(std::uint32_t i);

  /// Every shard's serving instance is open.
  bool healthy() const;

  sim::VirtualClock& clock() { return clock_; }
  sim::Scheduler& scheduler() { return sched_; }
  /// Inter-shard message link (2PC round trips charge transfer time here).
  sim::NetworkLink& interconnect() { return interconnect_; }
  TwoPhaseRegistry& registry() { return registry_; }
  const FleetConfig& config() const { return cfg_; }
  const tpcc::TpccScale& scale() const { return cfg_.scale; }

 private:
  Status setup_shard(std::uint32_t i);
  /// (Re-)points the primary's archiver at the shard's standby.
  void wire_shipping(Shard& s);

  FleetConfig cfg_;
  sim::VirtualClock clock_;
  sim::Scheduler sched_;
  sim::NetworkLink interconnect_;
  TwoPhaseRegistry registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vdb::fleet
