#include "fleet/fleet_admin.hpp"

#include <sstream>
#include <string>

namespace vdb::fleet {

namespace {

std::string show_fleet(Fleet& fleet, FailoverOrchestrator& orchestrator) {
  std::ostringstream out;
  out << "fleet: " << fleet.size() << " shards, "
      << fleet.scale().warehouses << " warehouses\n";
  for (std::uint32_t i = 0; i < fleet.size(); ++i) {
    const Shard& s = fleet.shard(i);
    engine::Database& db = fleet.active_db(i);
    out << "shard " << i << "  role="
        << (s.promoted ? "promoted-standby" : "primary") << "  state="
        << (db.is_open() ? "OPEN" : "DOWN") << "  warehouses=[";
    for (size_t k = 0; k < s.warehouses.size(); ++k) {
      if (k != 0) out << ",";
      out << s.warehouses[k];
    }
    out << "]  flushed_lsn=" << db.redo().flushed_lsn();
    if (s.promoted) {
      out << "  recovered_to=" << s.recovered_to
          << "  failed_at_us=" << s.failed_at;
    }
    out << "\n";
  }
  const TwoPhaseRegistry& registry = fleet.registry();
  out << "2pc: cross_shard_txns=" << registry.cross_shard_txns()
      << " atomicity_violations=" << registry.atomicity_violations() << "\n";
  out << "orchestrator: probes=" << orchestrator.probes()
      << " promotions=" << orchestrator.promotions()
      << " in_doubt_resolved=" << orchestrator.in_doubt_resolved() << "\n";
  return out.str();
}

std::string recovery_rows(const obs::Observability& fleet_obs) {
  std::ostringstream out;
  const obs::RecoveryTracer& tracer = fleet_obs.tracer();
  auto print = [&](const obs::RecoveryTrace& trace, bool in_progress) {
    out << trace.label << " start_us=" << trace.start;
    if (in_progress) {
      out << " IN PROGRESS\n";
    } else {
      out << " total_us=" << trace.total() << "\n";
    }
    for (const auto& span : trace.spans) {
      out << "  " << obs::to_string(span.phase) << "  " << span.duration()
          << " us\n";
    }
  };
  for (const auto& trace : tracer.history()) print(trace, false);
  if (tracer.active()) print(*tracer.current(), true);
  return out.str();
}

}  // namespace

engine::AdminShell::FleetHooks make_admin_hooks(
    Fleet* fleet, FailoverOrchestrator* orchestrator,
    obs::Observability* fleet_obs) {
  engine::AdminShell::FleetHooks hooks;
  hooks.show = [fleet, orchestrator] {
    return show_fleet(*fleet, *orchestrator);
  };
  hooks.failover = [fleet, orchestrator](std::uint32_t shard) -> Status {
    if (shard >= fleet->size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "no such shard: " + std::to_string(shard));
    }
    return orchestrator->force_failover(shard);
  };
  hooks.recovery_rows = [fleet_obs] { return recovery_rows(*fleet_obs); };
  return hooks;
}

}  // namespace vdb::fleet
