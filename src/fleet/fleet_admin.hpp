// Binds the engine's administration shell to a fleet.
//
// The AdminShell lives in the engine layer and cannot link against the
// fleet (the fleet sits above the engine), so the fleet commands — SHOW
// FLEET, ALTER FLEET FAILOVER <shard>, the failover rows appended to
// V$RECOVERY_PROGRESS — are supplied as closures. This translation unit
// builds those closures; the caller hands them to AdminShell::bind_fleet.
#pragma once

#include "engine/admin_shell.hpp"
#include "fleet/orchestrator.hpp"
#include "obs/observability.hpp"

namespace vdb::fleet {

/// Builds the shell hooks over a fleet, its orchestrator, and the fleet's
/// statistics area (where failover procedures are traced). All three must
/// outlive any shell the hooks are bound to.
engine::AdminShell::FleetHooks make_admin_hooks(
    Fleet* fleet, FailoverOrchestrator* orchestrator,
    obs::Observability* fleet_obs);

}  // namespace vdb::fleet
