#include "fleet/fleet_driver.hpp"

#include <algorithm>
#include <string>

namespace vdb::fleet {

FleetDriver::FleetDriver(Fleet* fleet, obs::Observability* fleet_obs,
                         FleetDriverConfig cfg)
    : fleet_(fleet), obs_(obs::resolve(fleet_obs)), cfg_(cfg),
      series_origin_(fleet->clock().now()),
      random_(Rng{cfg.seed}, fleet->scale()), txns_(fleet, &random_) {
  size_t i = 0;
  for (int k = 0; k < 10; ++k) deck_[i++] = tpcc::TxnType::kNewOrder;
  for (int k = 0; k < 10; ++k) deck_[i++] = tpcc::TxnType::kPayment;
  deck_[i++] = tpcc::TxnType::kOrderStatus;
  deck_[i++] = tpcc::TxnType::kDelivery;
  deck_[i++] = tpcc::TxnType::kStockLevel;
  Rng& rng = random_.rng();
  for (size_t k = deck_.size(); k > 1; --k) {
    std::swap(deck_[k - 1], deck_[static_cast<size_t>(rng.uniform(
                                0, static_cast<std::int64_t>(k) - 1))]);
  }
}

tpcc::TxnType FleetDriver::pick_type() {
  if (deck_pos_ >= deck_.size()) {
    deck_pos_ = 0;
    Rng& rng = random_.rng();
    for (size_t k = deck_.size(); k > 1; --k) {
      std::swap(deck_[k - 1], deck_[static_cast<size_t>(rng.uniform(
                                  0, static_cast<std::int64_t>(k) - 1))]);
    }
  }
  return deck_[deck_pos_++];
}

Status FleetDriver::run_until(SimTime until) {
  sim::VirtualClock& clock = fleet_->clock();
  sim::Scheduler& sched = fleet_->scheduler();
  obs::MetricsRegistry& registry = obs_->registry();
  for (size_t k = 0; k < tpcc::kTxnTypes; ++k) {
    latency_hist_[k] = registry.histogram(
        std::string("client response ") +
        tpcc::to_string(static_cast<tpcc::TxnType>(k)));
  }
  while (clock.now() < until) {
    sched.run_due();
    if (clock.now() >= until) break;

    const tpcc::TxnType type = pick_type();
    const std::uint32_t w = random_.warehouse_id();
    const SimTime begin = clock.now();
    auto outcome = txns_.run(type, w);
    if (!outcome.is_ok()) {
      const ErrorCode code = outcome.code();
      if (code == ErrorCode::kDeadlock || code == ErrorCode::kLockTimeout) {
        stats_.lock_retries += 1;
        continue;
      }
      if (code == ErrorCode::kRecoveryRequired) {
        stats_.recovery_retries += 1;
        continue;
      }
      stats_.failed_attempts += 1;
      return outcome.status();
    }
    if (outcome.value().intentional_rollback) {
      stats_.intentional_rollbacks += 1;
      continue;
    }
    if (outcome.value().committed) {
      stats_.committed += 1;
      stats_.committed_by_type[static_cast<size_t>(type)] += 1;
      if (outcome.value().cross_shard) stats_.cross_shard_committed += 1;
      FleetCommitRecord record;
      record.type = type;
      record.commit_time = clock.now();
      record.response_time = clock.now() - begin;
      record.cross_shard = outcome.value().cross_shard;
      record.branches = outcome.value().branches;
      latency_hist_[static_cast<size_t>(type)]->record(record.response_time);
      if (type == tpcc::TxnType::kNewOrder) {
        const size_t bucket = static_cast<size_t>(
            (clock.now() - series_origin_) / cfg_.report_interval);
        if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
        series_[bucket] += 1;
      }
      commits_.push_back(std::move(record));
    }
  }
  return Status::ok();
}

double FleetDriver::tpmc(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const FleetCommitRecord& record : commits_) {
    if (record.type == tpcc::TxnType::kNewOrder &&
        record.commit_time >= from && record.commit_time < to) {
      count += 1;
    }
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

double FleetDriver::tpm_total(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const FleetCommitRecord& record : commits_) {
    if (record.commit_time >= from && record.commit_time < to) count += 1;
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

std::uint64_t FleetDriver::count_lost(std::uint32_t shard, Lsn recovered_to,
                                      SimTime before) const {
  std::uint64_t lost = 0;
  for (const FleetCommitRecord& record : commits_) {
    if (record.commit_time >= before) continue;
    for (const auto& [s, lsn] : record.branches) {
      if (s == shard && lsn != 0 && lsn > recovered_to) {
        lost += 1;
        break;
      }
    }
  }
  return lost;
}

}  // namespace vdb::fleet
