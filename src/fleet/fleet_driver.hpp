// Closed-loop TPC-C driver over the whole fleet.
//
// Mirrors tpcc::Driver — same 23-card deck, same input draws, same
// end-user failure detection — but routes each interaction to the home
// warehouse's shard through FleetTxns, and keeps per-branch durability
// watermarks so lost transactions can be accounted per shard after a
// promotion (a committed interaction is lost on shard s iff one of its
// branches' commit LSNs lies above what s's recovery salvaged).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_txns.hpp"
#include "obs/metrics.hpp"

namespace vdb::fleet {

struct FleetDriverConfig {
  std::uint64_t seed = 42;
  SimDuration report_interval = 30 * kSecond;
};

struct FleetCommitRecord {
  tpcc::TxnType type = tpcc::TxnType::kNewOrder;
  SimTime commit_time = 0;
  SimDuration response_time = 0;
  bool cross_shard = false;
  /// (shard, branch commit LSN) per touched shard; empty branch list means
  /// read-only work with nothing to lose.
  std::vector<std::pair<std::uint32_t, Lsn>> branches;
};

struct FleetDriverStats {
  std::uint64_t committed = 0;
  std::array<std::uint64_t, tpcc::kTxnTypes> committed_by_type{};
  std::uint64_t cross_shard_committed = 0;
  std::uint64_t intentional_rollbacks = 0;
  std::uint64_t lock_retries = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t recovery_retries = 0;
};

class FleetDriver {
 public:
  FleetDriver(Fleet* fleet, obs::Observability* fleet_obs,
              FleetDriverConfig cfg);

  /// Runs the closed loop until `until`; an error return is the end-user
  /// view of a fault activating (the failure instant is clock.now()).
  Status run_until(SimTime until);

  FleetTxns& txns() { return txns_; }
  const FleetDriverStats& stats() const { return stats_; }
  const std::vector<FleetCommitRecord>& commits() const { return commits_; }

  double tpmc(SimTime from, SimTime to) const;
  double tpm_total(SimTime from, SimTime to) const;
  const std::vector<std::uint32_t>& series() const { return series_; }
  SimDuration series_interval() const { return cfg_.report_interval; }

  /// Committed-before-`before` interactions whose branch on `shard` sits
  /// above `recovered_to` — the transactions that shard's failover lost.
  std::uint64_t count_lost(std::uint32_t shard, Lsn recovered_to,
                           SimTime before) const;

 private:
  tpcc::TxnType pick_type();

  Fleet* fleet_;
  obs::Observability* obs_;
  FleetDriverConfig cfg_;
  SimTime series_origin_ = 0;
  tpcc::TpccRandom random_;
  FleetTxns txns_;
  std::array<tpcc::TxnType, 23> deck_{};
  size_t deck_pos_ = 0;
  FleetDriverStats stats_;
  std::vector<FleetCommitRecord> commits_;
  std::vector<std::uint32_t> series_;
  std::array<obs::Histogram*, tpcc::kTxnTypes> latency_hist_{};
};

}  // namespace vdb::fleet
