#include "fleet/fleet_experiment.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <utility>

#include "fleet/fleet_driver.hpp"
#include "tpcc/consistency.hpp"
#include "tpcc/schema.hpp"

namespace vdb::fleet {

namespace {

constexpr double kMoneyEps = 0.02;
bool money_eq(double a, double b) { return std::fabs(a - b) < kMoneyEps; }

/// Appends `from`'s rows into `into` with every name prefixed — the
/// per-shard V$SYSSTAT view inside one fleet snapshot.
void merge_prefixed(obs::MetricsSnapshot* into,
                    const obs::MetricsSnapshot& from,
                    const std::string& prefix) {
  for (const auto& [name, value] : from.counters) {
    into->counters.emplace_back(prefix + name, value);
  }
  for (const auto& [name, value] : from.gauges) {
    into->gauges.emplace_back(prefix + name, value);
  }
  for (const obs::WaitEventRow& row : from.wait_events) {
    obs::WaitEventRow copy = row;
    copy.event = prefix + row.event;
    into->wait_events.push_back(std::move(copy));
  }
  for (const obs::HistogramRow& row : from.histograms) {
    obs::HistogramRow copy = row;
    copy.name = prefix + row.name;
    into->histograms.push_back(std::move(copy));
  }
  for (const obs::TraceRow& row : from.recovery) {
    obs::TraceRow copy = row;
    copy.label = prefix + row.label;
    into->recovery.push_back(std::move(copy));
  }
}

}  // namespace

Result<FleetExperimentResult> FleetExperiment::run() {
  FleetConfig fcfg = opts_.fleet;
  fcfg.shards = opts_.shards;
  fcfg.seed = opts_.seed;
  Fleet fleet(fcfg);
  VDB_RETURN_IF_ERROR(fleet.setup());
  sim::VirtualClock& clock = fleet.clock();

  obs::Observability fleet_obs;
  FleetDriverConfig dcfg;
  dcfg.seed = opts_.seed;
  FleetDriver driver(&fleet, &fleet_obs, dcfg);
  FailoverOrchestrator orchestrator(&fleet, opts_.orchestrator, &fleet_obs);
  orchestrator.start();

  const SimTime start = clock.now();
  const SimTime end = start + opts_.duration;
  FleetExperimentResult result;
  result.shard_count = fleet.size();
  result.workload_start = start;
  result.lost_per_shard.assign(fleet.size(), 0);

  SimTime crash_at = 0;
  auto killer = [&](std::uint32_t shard) {
    if (crash_at == 0) crash_at = clock.now();
    (void)fleet.kill_shard(shard);
  };

  Status failure = Status::ok();
  if (!opts_.scenario.has_value()) {
    failure = driver.run_until(end);
    if (!failure.is_ok()) {
      return make_error(failure.code(),
                        "workload failed without fault: " + failure.message());
    }
  } else {
    const SimTime fault_time = start + opts_.inject_at;
    Status pre = driver.run_until(fault_time);
    if (!pre.is_ok()) {
      return make_error(pre.code(),
                        "pre-fault workload failed: " + pre.message());
    }

    switch (*opts_.scenario) {
      case faults::FleetScenario::kSingleShardCrash:
        // Crash with a cold redo window: a log switch just archived (and
        // shipped) the hot group, so promotion loses (almost) nothing —
        // the contrast case for kPromotionWithRedoLoss below.
        (void)fleet.active_db(0).redo().force_switch();
        killer(0);
        break;
      case faults::FleetScenario::kPromotionWithRedoLoss:
        // Crash mid-group: committed redo sits in the current, unarchived
        // online group the standby never received — promotion trades those
        // commits for availability (paper §5.3, shard-wise).
        killer(0);
        break;
      case faults::FleetScenario::kCoordinatorCrashMid2pc:
        // Armed at the exposed instant: all branches prepared, decision not
        // yet durable. The victim the hook receives is the coordinator of
        // whatever cross-shard transaction trips it first.
        driver.txns().arm_crash(CrashPoint::kAfterPrepares, killer);
        break;
      case faults::FleetScenario::kCascadingDoubleFailure:
        killer(0);
        fleet.scheduler().schedule_after(opts_.cascade_gap,
                                         [&] { killer(1); });
        break;
    }

    failure = driver.run_until(end);
  }

  result.fault_injected = crash_at != 0;
  if (result.fault_injected) {
    // Ride out the outage: probes miss, the retry ladder runs dry, the
    // orchestrator promotes and resolves; a cascading second death sends
    // the loop around again.
    while (clock.now() < end) {
      if (!orchestrator.await_fleet_healthy(end)) break;
      Status resume = driver.run_until(end);
      if (resume.is_ok()) break;
    }
  }
  orchestrator.stop();

  const auto& events = orchestrator.events();
  result.promotions = orchestrator.promotions();
  result.in_doubt_resolved = orchestrator.in_doubt_resolved();
  if (!events.empty()) {
    const SimTime procedure_start = events.front().declared_at;
    const SimTime restored = events.back().restored_at;
    result.detection_delay =
        procedure_start - events.front().failed_at;
    SimTime first_commit = 0;
    for (const FleetCommitRecord& record : driver.commits()) {
      if (record.commit_time >= restored) {
        first_commit = record.commit_time;
        break;
      }
    }
    obs::RecoveryTracer& tracer = fleet_obs.tracer();
    if (fleet.healthy() && first_commit != 0) {
      result.recovered = true;
      result.recovery_time = first_commit - procedure_start;
      if (tracer.active()) tracer.finish(first_commit);
    } else {
      result.recovered = false;
      result.recovery_time = end > procedure_start ? end - procedure_start
                                                   : 0;
      if (tracer.active()) tracer.finish(clock.now());
    }

    // Per-shard lost transactions: committed branches the promotion could
    // not salvage (redo still in the dead primary's unarchived group).
    for (const FailoverEvent& event : events) {
      const std::uint64_t lost = driver.count_lost(
          event.shard, event.recovered_to, event.failed_at);
      result.lost_per_shard[event.shard] += lost;
      result.lost_committed += lost;
    }
  } else if (result.fault_injected) {
    result.recovered = false;
    result.recovery_time = end > crash_at ? end - crash_at : 0;
  } else {
    result.recovered = true;
  }
  result.fault_time = crash_at;

  result.atomicity_violations = fleet.registry().atomicity_violations();
  result.cross_shard_started = driver.txns().cross_shard_started();
  result.remote_branches = driver.txns().remote_branches();

  result.tpmc = driver.tpmc(start, end);
  result.tpm_total = driver.tpm_total(start, end);
  result.committed = driver.stats().committed;
  result.cross_shard_committed = driver.stats().cross_shard_committed;
  result.intentional_rollbacks = driver.stats().intentional_rollbacks;
  result.failed_attempts = driver.stats().failed_attempts;
  result.series = driver.series();
  result.series_interval = driver.series_interval();

  // --- integrity -----------------------------------------------------------
  // Shard-local conditions first. Every loss is a whole transaction branch,
  // so the per-shard conditions hold even after a lossy promotion; only the
  // cross-shard history condition can go vacuous.
  if (fleet.healthy()) {
    for (std::uint32_t i = 0; i < fleet.size(); ++i) {
      tpcc::ConsistencyChecker checker(&fleet.tdb(i));
      tpcc::ConsistencyReport report;
      VDB_RETURN_IF_ERROR(checker.check_warehouse_ytd(&report));
      VDB_RETURN_IF_ERROR(checker.check_order_id_monotony(&report));
      VDB_RETURN_IF_ERROR(checker.check_new_order_contiguity(&report));
      VDB_RETURN_IF_ERROR(checker.check_order_line_counts(&report));
      VDB_RETURN_IF_ERROR(checker.check_delivery_flags(&report));
      VDB_RETURN_IF_ERROR(checker.check_customer_balance(&report));
      result.integrity_checks += report.checks_run;
      result.integrity_violations += report.violations;
      for (const std::string& message : report.messages) {
        result.integrity_messages.push_back(
            "shard" + std::to_string(i) + ": " + message);
      }
    }

    // A committed cross-shard transaction that survived on one shard but
    // was wiped with another's unarchived redo leaves the fleet-global
    // history condition legitimately violated — that is accounted data
    // loss (paper §5.3), not an integrity defect, so the check is skipped
    // (and says so) whenever such a split exists.
    bool cross_loss = false;
    std::map<std::uint32_t, std::pair<Lsn, SimTime>> promoted;
    for (const FailoverEvent& event : events) {
      promoted[event.shard] = {event.recovered_to, event.failed_at};
    }
    for (const FleetCommitRecord& record : driver.commits()) {
      if (record.branches.size() < 2) continue;
      bool lost = false;
      bool kept = false;
      for (const auto& [shard, lsn] : record.branches) {
        auto it = promoted.find(shard);
        if (it != promoted.end() && lsn > it->second.first &&
            record.commit_time < it->second.second) {
          lost = true;
        } else {
          kept = true;
        }
      }
      if (lost && kept) cross_loss = true;
    }
    for (const auto& [gtxn, g] : fleet.registry().txns()) {
      bool wiped = false;
      bool committed = false;
      for (const BranchRecord& b : g.branches) {
        if (b.outcome == 'L') wiped = true;
        if (b.outcome == 'C') committed = true;
      }
      if (wiped && committed) cross_loss = true;
    }

    if (cross_loss) {
      result.history_check_skipped = true;
      result.integrity_messages.push_back(
          "W-history check skipped: cross-shard transactions wiped by "
          "accounted redo loss on promotion");
    } else {
      result.integrity_checks += 1;
      std::map<std::uint32_t, double> history_sum;
      std::map<std::uint32_t, double> w_ytd;
      for (std::uint32_t i = 0; i < fleet.size(); ++i) {
        tpcc::TpccDb& tdb = fleet.tdb(i);
        VDB_RETURN_IF_ERROR(tdb.db().scan(
            tdb.table(tpcc::Tbl::kHistory),
            [&](RowId, std::span<const std::uint8_t> bytes) {
              auto row = tpcc::from_bytes<tpcc::HistoryRow>(bytes);
              history_sum[row.h_w_id] += row.h_amount;
              return true;
            }));
        VDB_RETURN_IF_ERROR(tdb.db().scan(
            tdb.table(tpcc::Tbl::kWarehouse),
            [&](RowId, std::span<const std::uint8_t> bytes) {
              auto row = tpcc::from_bytes<tpcc::WarehouseRow>(bytes);
              w_ytd[row.w_id] = row.w_ytd;
              return true;
            }));
      }
      const double initial_hist =
          10.0 * fleet.scale().districts_per_warehouse *
          fleet.scale().customers_per_district;
      for (const auto& [w, ytd] : w_ytd) {
        const double expected = 300000.0 + history_sum[w] - initial_hist;
        if (!money_eq(ytd, expected)) {
          result.integrity_violations += 1;
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "fleet W-history: warehouse %u ytd=%.2f, expected "
                        "%.2f (fleet-wide history)",
                        w, ytd, expected);
          result.integrity_messages.emplace_back(buf);
        }
      }
    }
  }

  const obs::RecoveryTrace* trace = fleet_obs.tracer().latest();
  if (trace != nullptr) {
    for (size_t k = 0; k < obs::kRecoveryPhaseCount; ++k) {
      const auto phase = static_cast<obs::RecoveryPhase>(k);
      result.recovery_phases.emplace_back(obs::to_string(phase),
                                          trace->phase_time(phase));
    }
  }
  result.metrics = fleet_obs.snapshot();
  for (std::uint32_t i = 0; i < fleet.size(); ++i) {
    merge_prefixed(&result.metrics, fleet.shard(i).obs->snapshot(),
                   "shard" + std::to_string(i) + " ");
  }
  return result;
}

}  // namespace vdb::fleet
