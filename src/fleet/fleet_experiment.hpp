// The fleet-level dependability experiment: the paper's §4 procedure
// generalised from one instance to a sharded deployment.
//
// One experiment = build an N-shard fleet (each shard a full paper
// testbed: primary host, standby host, network link), run the fleet-wide
// TPC-C workload, inject one fleet fault scenario, let the
// FailoverOrchestrator detect / promote / re-route / resolve in-doubt
// branches, resume, and measure:
//
//  - fleet recovery time: procedure start -> first commit after the fleet
//    is whole again (end-user view, cascading failures included);
//  - per-shard lost transactions: committed branches above what that
//    shard's promotion salvaged (paper §5.3 applied shard-wise);
//  - cross-shard atomicity violations: gtxns with a committed branch on
//    one shard and an aborted one on another — the benchmark's hard zero;
//  - integrity: shard-local TPC-C consistency conditions plus the one
//    genuinely cross-shard condition (warehouse YTD vs the fleet-wide
//    payment history), skipped with a note when accounted redo loss makes
//    it vacuous.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "faults/classification.hpp"
#include "fleet/fleet.hpp"
#include "fleet/orchestrator.hpp"
#include "obs/observability.hpp"

namespace vdb::fleet {

struct FleetExperimentOptions {
  std::uint32_t shards = 2;
  std::optional<faults::FleetScenario> scenario;
  SimDuration duration = 20 * kMinute;
  SimDuration inject_at = 5 * kMinute;
  /// Cascading scenario: delay between the first and the second kill.
  SimDuration cascade_gap = 20 * kSecond;
  std::uint64_t seed = 12345;
  /// Per-shard recovery configuration (fleet.shards/scale are overridden).
  FleetConfig fleet{};
  OrchestratorConfig orchestrator{};
};

struct FleetExperimentResult {
  std::uint32_t shard_count = 0;

  // Performance (fleet-wide, end-user view).
  double tpmc = 0;
  double tpm_total = 0;
  std::uint64_t committed = 0;
  std::uint64_t cross_shard_committed = 0;
  std::uint64_t intentional_rollbacks = 0;
  std::uint64_t failed_attempts = 0;
  std::vector<std::uint32_t> series;
  SimDuration series_interval = 0;

  // Two-phase commit traffic.
  std::uint64_t cross_shard_started = 0;
  std::uint64_t remote_branches = 0;

  // Recovery measures.
  bool fault_injected = false;
  bool recovered = false;
  SimDuration recovery_time = 0;
  SimDuration detection_delay = 0;
  std::uint64_t promotions = 0;
  std::uint64_t in_doubt_resolved = 0;
  std::uint64_t atomicity_violations = 0;
  std::vector<std::uint64_t> lost_per_shard;
  std::uint64_t lost_committed = 0;

  // Integrity.
  std::uint32_t integrity_checks = 0;
  std::uint32_t integrity_violations = 0;
  std::vector<std::string> integrity_messages;
  /// The cross-shard history check was skipped because accounted redo
  /// loss (lost transactions / wiped branches) makes it vacuous.
  bool history_check_skipped = false;

  SimTime workload_start = 0;
  SimTime fault_time = 0;

  /// Fleet statistics area plus every shard's, counters prefixed
  /// "shardN " (the per-shard V$SYSSTAT view).
  obs::MetricsSnapshot metrics;
  std::vector<std::pair<std::string, SimDuration>> recovery_phases;
};

class FleetExperiment {
 public:
  explicit FleetExperiment(FleetExperimentOptions opts)
      : opts_(std::move(opts)) {}

  /// Error return = the harness itself failed; faults the fleet failed to
  /// recover from are reported in the result instead.
  Result<FleetExperimentResult> run();

 private:
  FleetExperimentOptions opts_;
};

}  // namespace vdb::fleet
