#include "fleet/fleet_txns.hpp"

#include <cstdio>
#include <string>
#include <utility>

namespace vdb::fleet {

namespace {
/// 2PC message size on the inter-shard link (request + ack per round).
constexpr std::uint64_t kMessageBytes = 512;
}  // namespace

FleetTxns::FleetTxns(Fleet* fleet, tpcc::TpccRandom* random)
    : fleet_(fleet), random_(random) {
  for (std::uint32_t i = 0; i < fleet_->size(); ++i) {
    // Shard-local profiles share the fleet's one random stream, so the
    // input sequence is identical no matter how warehouses are spread.
    local_.push_back(
        std::make_unique<tpcc::TpccTxns>(&fleet_->tdb(i), random_));
  }
}

void FleetTxns::arm_crash(CrashPoint point,
                          std::function<void(std::uint32_t)> fire) {
  armed_ = point;
  fire_ = std::move(fire);
}

bool FleetTxns::fire_crash(CrashPoint point, std::uint32_t victim) {
  if (armed_ != point) return false;
  armed_ = CrashPoint::kNone;
  auto fire = std::move(fire_);
  fire_ = nullptr;
  if (fire) fire(victim);
  return true;
}

void FleetTxns::charge_round_trip() {
  sim::VirtualClock& clock = fleet_->clock();
  const SimTime done =
      fleet_->interconnect().transfer(clock.now(), 2 * kMessageBytes);
  if (done > clock.now()) clock.advance_to(done);
}

Result<FleetOutcome> FleetTxns::run(tpcc::TxnType type, std::uint32_t w) {
  switch (type) {
    case tpcc::TxnType::kNewOrder: return new_order(w);
    case tpcc::TxnType::kPayment: return payment(w);
    default: return delegate(type, w);
  }
}

Result<FleetOutcome> FleetTxns::delegate(tpcc::TxnType type,
                                         std::uint32_t w) {
  const std::uint32_t shard = fleet_->shard_of(w);
  auto outcome = local_[shard]->run(type, w);
  if (!outcome.is_ok()) return outcome.status();
  FleetOutcome out;
  out.type = outcome.value().type;
  out.committed = outcome.value().committed;
  out.intentional_rollback = outcome.value().intentional_rollback;
  out.commit_lsn = outcome.value().commit_lsn;
  if (out.committed) out.branches.emplace_back(shard, out.commit_lsn);
  return out;
}

Result<RowId> FleetTxns::select_customer(std::uint32_t cw,
                                         std::uint32_t cd) {
  tpcc::TpccDb& tdb = fleet_->tdb(fleet_->shard_of(cw));
  Rng& rng = random_->rng();
  if (rng.chance(0.60)) {
    const std::string last = random_->nurand_last_name();
    auto matches = tdb.customers_by_name(cw, cd, last);
    if (!matches.empty()) {
      return matches[matches.size() / 2].second;
    }
  }
  const std::uint32_t c = random_->nurand_customer_id();
  auto rid = tdb.customer_rid(cw, cd, c);
  if (!rid.has_value()) {
    return Status{ErrorCode::kNotFound, "customer missing from index"};
  }
  return *rid;
}

Result<TxnId> FleetTxns::branch_txn(std::map<std::uint32_t, TxnId>* branches,
                                    std::uint32_t shard) {
  auto it = branches->find(shard);
  if (it != branches->end()) return it->second;
  charge_round_trip();  // branch-open message to the foreign shard
  auto txn = fleet_->active_db(shard).begin();
  if (!txn.is_ok()) return txn.status();
  branches->emplace(shard, txn.value());
  return txn.value();
}

void FleetTxns::rollback_all(const std::map<std::uint32_t, TxnId>& branches) {
  for (const auto& [shard, txn] : branches) {
    (void)fleet_->active_db(shard).rollback(txn);
  }
}

void FleetTxns::abort_branches(
    GlobalTxn* g, const std::map<std::uint32_t, TxnId>& branches) {
  for (auto& [shard, txn] : branches) {
    BranchRecord* b = g->branch(shard);
    engine::Database& db = fleet_->active_db(shard);
    if (b->prepare_lsn != 0) {
      // Prepared branches roll back only on the coordinator's order —
      // which this is. A dead shard's branch stays in doubt; recovery
      // presumes abort when no decision record ever surfaces.
      if (db.is_open()) {
        if (db.resolve_prepared(g->gtxn, /*commit=*/false).is_ok()) {
          b->outcome = 'A';
        }
      }
      continue;
    }
    // Never prepared: a live shard rolls back now; a dead one has a plain
    // loser transaction that instance recovery will roll back.
    if (db.is_open()) (void)db.rollback(txn);
    b->outcome = 'A';
  }
  g->finished = g->settled();
}

Status FleetTxns::two_phase_commit(std::uint32_t home,
                                   std::map<std::uint32_t, TxnId>* branches,
                                   FleetOutcome* out) {
  std::vector<std::uint32_t> parts;
  for (const auto& [shard, txn] : *branches) parts.push_back(shard);
  GlobalTxn& g = fleet_->registry().open(home, parts);
  cross_shard_started_ += 1;
  remote_branches_ += parts.size() - 1;
  out->cross_shard = true;
  engine::Database& hdb = fleet_->active_db(home);

  if (fire_crash(CrashPoint::kBeforePrepare, home)) {
    // Nothing is prepared anywhere: every branch is a plain loser.
    abort_branches(&g, *branches);
    return Status{ErrorCode::kNotOpen, "coordinator lost before prepare"};
  }

  // Phase 1: participants prepare first, the coordinator's own branch
  // last (its prepare doubles as the point of no return for phase 2).
  bool first_participant = true;
  for (const auto& [shard, txn] : *branches) {
    if (shard == home) continue;
    if (first_participant) {
      first_participant = false;
      fire_crash(CrashPoint::kMidPrepare, shard);
    }
    charge_round_trip();
    auto p = fleet_->active_db(shard).prepare(txn, g.gtxn, home);
    if (!p.is_ok()) {
      // Unreachable participant: the coordinator decides abort. Presumed
      // abort needs no decision record — branches that never prepare roll
      // back on their own at recovery.
      abort_branches(&g, *branches);
      return p.status();
    }
    g.branch(shard)->prepare_lsn = p.value();
  }
  auto hp = hdb.prepare(branches->at(home), g.gtxn, home);
  if (!hp.is_ok()) {
    abort_branches(&g, *branches);
    return hp.status();
  }
  g.branch(home)->prepare_lsn = hp.value();

  if (fire_crash(CrashPoint::kAfterPrepares, home)) {
    // Undecided coordinator crash: every branch is in doubt until the
    // orchestrator resolves it — presumed abort, since no decision record
    // can ever surface from the coordinator's redo.
    return Status{ErrorCode::kNotOpen, "coordinator lost before decision"};
  }

  auto decision = hdb.log_coord_decision(g.gtxn, true);
  if (!decision.is_ok()) return decision.status();
  g.decided = true;
  g.decision = true;

  if (fire_crash(CrashPoint::kAfterDecision, home)) {
    // The COMMIT decision is durable in the coordinator's redo: recovery
    // must drive every prepared branch to commit.
    return Status{ErrorCode::kNotOpen, "coordinator lost after decision"};
  }

  // Phase 2: commit everywhere, coordinator first.
  auto hc = hdb.commit(branches->at(home));
  if (!hc.is_ok()) return hc.status();
  g.branch(home)->end_lsn = hc.value();
  g.branch(home)->outcome = 'C';
  out->commit_lsn = hc.value();
  out->branches.emplace_back(home, hc.value());
  for (const auto& [shard, txn] : *branches) {
    if (shard == home) continue;
    charge_round_trip();
    auto c = fleet_->active_db(shard).commit(txn);
    if (!c.is_ok()) continue;  // died post-decision: resolves at recovery
    g.branch(shard)->end_lsn = c.value();
    g.branch(shard)->outcome = 'C';
    out->branches.emplace_back(shard, c.value());
  }
  g.finished = g.settled();
  if (g.finished) hdb.forget_decision(g.gtxn);
  out->committed = true;
  return Status::ok();
}

Result<FleetOutcome> FleetTxns::new_order(std::uint32_t w) {
  const std::uint32_t home = fleet_->shard_of(w);
  engine::Database& hdb = fleet_->active_db(home);
  tpcc::TpccDb& htdb = fleet_->tdb(home);
  Rng& rng = random_->rng();
  const std::uint32_t d = random_->district_id();
  const SimTime now = fleet_->clock().now();

  std::map<std::uint32_t, TxnId> branches;
  auto txn_r = hdb.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();
  branches.emplace(home, txn);

  // Inputs (clause 2.4.1) — the same draws, in the same order, as the
  // single-instance profile.
  const auto ol_cnt = static_cast<std::uint8_t>(rng.uniform(5, 15));
  const bool rollback_last = rng.chance(0.01);
  struct Line {
    std::uint32_t i_id;
    std::uint32_t supply_w;
    std::uint8_t qty;
  };
  std::vector<Line> lines;
  bool all_local = true;
  for (std::uint8_t i = 0; i < ol_cnt; ++i) {
    Line line;
    line.i_id = random_->nurand_item_id();
    if (rollback_last && i + 1 == ol_cnt) line.i_id = 0;  // unused item id
    line.supply_w = w;
    if (random_->scale().warehouses > 1 && rng.chance(0.01)) {
      do {
        line.supply_w = random_->warehouse_id();
      } while (line.supply_w == w);
      all_local = false;
    }
    line.qty = static_cast<std::uint8_t>(rng.uniform(1, 10));
    lines.push_back(line);
  }

  auto fail = [&](Status original) -> Status {
    rollback_all(branches);
    return original;
  };

  auto w_rid = htdb.warehouse_rid(w);
  auto d_rid = htdb.district_rid(w, d);
  if (!w_rid || !d_rid) {
    return fail(Status{ErrorCode::kInternal, "missing w/d"});
  }
  auto wh = htdb.read_row<tpcc::WarehouseRow>(txn, tpcc::Tbl::kWarehouse,
                                              *w_rid);
  if (!wh.is_ok()) return fail(wh.status());
  auto dist =
      htdb.read_row<tpcc::DistrictRow>(txn, tpcc::Tbl::kDistrict, *d_rid);
  if (!dist.is_ok()) return fail(dist.status());

  const std::uint32_t o_id = dist.value().d_next_o_id;
  tpcc::DistrictRow new_dist = dist.value();
  new_dist.d_next_o_id += 1;
  Status st = htdb.update_row(txn, tpcc::Tbl::kDistrict, *d_rid, new_dist);
  if (!st.is_ok()) return fail(st);

  auto c_rid = select_customer(w, d);
  if (!c_rid.is_ok()) return fail(c_rid.status());
  auto cust = htdb.read_row<tpcc::CustomerRow>(txn, tpcc::Tbl::kCustomer,
                                               c_rid.value());
  if (!cust.is_ok()) return fail(cust.status());

  tpcc::OrderRow order;
  order.o_id = o_id;
  order.o_d_id = d;
  order.o_w_id = w;
  order.o_c_id = cust.value().c_id;
  order.o_entry_d = now;
  order.o_carrier_id = -1;
  order.o_ol_cnt = ol_cnt;
  order.o_all_local = all_local ? 1 : 0;
  auto o_ins = htdb.insert_row(txn, tpcc::Tbl::kOrder, order);
  if (!o_ins.is_ok()) return fail(o_ins.status());

  tpcc::NewOrderRow no;
  no.no_o_id = o_id;
  no.no_d_id = d;
  no.no_w_id = w;
  auto no_ins = htdb.insert_row(txn, tpcc::Tbl::kNewOrder, no);
  if (!no_ins.is_ok()) return fail(no_ins.status());

  std::uint8_t number = 0;
  for (const Line& line : lines) {
    number += 1;
    auto i_rid = htdb.item_rid(line.i_id);
    if (!i_rid.has_value()) {
      // Invalid item: business rollback (clause 2.4.2.3) — every branch.
      rollback_all(branches);
      FleetOutcome outcome;
      outcome.type = tpcc::TxnType::kNewOrder;
      outcome.intentional_rollback = true;
      return outcome;
    }
    auto item = htdb.read_row<tpcc::ItemRow>(txn, tpcc::Tbl::kItem, *i_rid);
    if (!item.is_ok()) return fail(item.status());

    // Stock lives with the supplying warehouse — possibly a foreign shard.
    const std::uint32_t sshard = fleet_->shard_of(line.supply_w);
    tpcc::TpccDb& stdb = fleet_->tdb(sshard);
    auto s_txn = branch_txn(&branches, sshard);
    if (!s_txn.is_ok()) return fail(s_txn.status());

    auto s_rid = stdb.stock_rid(line.supply_w, line.i_id);
    if (!s_rid.has_value()) {
      return fail(Status{ErrorCode::kInternal, "stock missing"});
    }
    auto stock = stdb.read_row<tpcc::StockRow>(s_txn.value(),
                                               tpcc::Tbl::kStock, *s_rid);
    if (!stock.is_ok()) return fail(stock.status());

    tpcc::StockRow new_stock = stock.value();
    if (new_stock.s_quantity >= line.qty + 10) {
      new_stock.s_quantity -= line.qty;
    } else {
      new_stock.s_quantity = new_stock.s_quantity - line.qty + 91;
    }
    new_stock.s_ytd += line.qty;
    new_stock.s_order_cnt += 1;
    if (line.supply_w != w) new_stock.s_remote_cnt += 1;
    st = stdb.update_row(s_txn.value(), tpcc::Tbl::kStock, *s_rid, new_stock);
    if (!st.is_ok()) return fail(st);

    tpcc::OrderLineRow ol;
    ol.ol_o_id = o_id;
    ol.ol_d_id = d;
    ol.ol_w_id = w;
    ol.ol_number = number;
    ol.ol_i_id = line.i_id;
    ol.ol_supply_w_id = line.supply_w;
    ol.ol_delivery_d = 0;
    ol.ol_quantity = line.qty;
    ol.ol_amount = line.qty * item.value().i_price;
    ol.ol_dist_info = stock.value().s_dist[(d - 1) % 10];
    auto ol_ins = htdb.insert_row(txn, tpcc::Tbl::kOrderLine, ol);
    if (!ol_ins.is_ok()) return fail(ol_ins.status());
  }

  FleetOutcome outcome;
  outcome.type = tpcc::TxnType::kNewOrder;
  if (branches.size() == 1) {
    auto commit = hdb.commit(txn);
    if (!commit.is_ok()) return fail(commit.status());
    outcome.committed = true;
    outcome.commit_lsn = commit.value();
    outcome.branches.emplace_back(home, commit.value());
    return outcome;
  }
  VDB_RETURN_IF_ERROR(two_phase_commit(home, &branches, &outcome));
  return outcome;
}

Result<FleetOutcome> FleetTxns::payment(std::uint32_t w) {
  const std::uint32_t home = fleet_->shard_of(w);
  engine::Database& hdb = fleet_->active_db(home);
  tpcc::TpccDb& htdb = fleet_->tdb(home);
  Rng& rng = random_->rng();
  const std::uint32_t d = random_->district_id();
  const double amount = static_cast<double>(rng.uniform(100, 500000)) / 100.0;
  const SimTime now = fleet_->clock().now();

  // 15% remote customers when multiple warehouses exist (clause 2.5.1.2);
  // the customer's warehouse decides the shard their branch runs on.
  std::uint32_t c_w = w;
  std::uint32_t c_d = d;
  if (random_->scale().warehouses > 1 && rng.chance(0.15)) {
    do {
      c_w = random_->warehouse_id();
    } while (c_w == w);
    c_d = random_->district_id();
  }
  const std::uint32_t cshard = fleet_->shard_of(c_w);

  std::map<std::uint32_t, TxnId> branches;
  auto txn_r = hdb.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();
  branches.emplace(home, txn);

  auto fail = [&](Status original) -> Status {
    rollback_all(branches);
    return original;
  };

  auto w_rid = htdb.warehouse_rid(w);
  auto d_rid = htdb.district_rid(w, d);
  if (!w_rid || !d_rid) {
    return fail(Status{ErrorCode::kInternal, "missing w/d"});
  }
  auto wh = htdb.read_row<tpcc::WarehouseRow>(txn, tpcc::Tbl::kWarehouse,
                                              *w_rid);
  if (!wh.is_ok()) return fail(wh.status());
  tpcc::WarehouseRow new_wh = wh.value();
  new_wh.w_ytd += amount;
  Status st = htdb.update_row(txn, tpcc::Tbl::kWarehouse, *w_rid, new_wh);
  if (!st.is_ok()) return fail(st);

  auto dist =
      htdb.read_row<tpcc::DistrictRow>(txn, tpcc::Tbl::kDistrict, *d_rid);
  if (!dist.is_ok()) return fail(dist.status());
  tpcc::DistrictRow new_dist = dist.value();
  new_dist.d_ytd += amount;
  st = htdb.update_row(txn, tpcc::Tbl::kDistrict, *d_rid, new_dist);
  if (!st.is_ok()) return fail(st);

  // Customer (and their payment history row) live on the customer's shard.
  tpcc::TpccDb& ctdb = fleet_->tdb(cshard);
  auto c_txn = branch_txn(&branches, cshard);
  if (!c_txn.is_ok()) return fail(c_txn.status());

  auto c_rid = select_customer(c_w, c_d);
  if (!c_rid.is_ok()) return fail(c_rid.status());
  auto cust = ctdb.read_row<tpcc::CustomerRow>(c_txn.value(),
                                               tpcc::Tbl::kCustomer,
                                               c_rid.value());
  if (!cust.is_ok()) return fail(cust.status());
  tpcc::CustomerRow new_cust = cust.value();
  new_cust.c_balance -= amount;
  new_cust.c_ytd_payment += amount;
  new_cust.c_payment_cnt += 1;
  if (new_cust.c_credit == "BC") {
    char info[64];
    std::snprintf(info, sizeof(info), "%u %u %u %u %u %.2f|",
                  new_cust.c_id, c_d, c_w, d, w, amount);
    new_cust.c_data = std::string(info) + new_cust.c_data;
    if (new_cust.c_data.size() > 500) new_cust.c_data.resize(500);
  }
  st = ctdb.update_row(c_txn.value(), tpcc::Tbl::kCustomer, c_rid.value(),
                       new_cust);
  if (!st.is_ok()) return fail(st);

  tpcc::HistoryRow hist;
  hist.h_c_id = new_cust.c_id;
  hist.h_c_d_id = c_d;
  hist.h_c_w_id = c_w;
  hist.h_d_id = d;
  hist.h_w_id = w;
  hist.h_date = now;
  hist.h_amount = amount;
  hist.h_data = wh.value().w_name + "    " + dist.value().d_name;
  auto h_ins = ctdb.insert_row(c_txn.value(), tpcc::Tbl::kHistory, hist);
  if (!h_ins.is_ok()) return fail(h_ins.status());

  FleetOutcome outcome;
  outcome.type = tpcc::TxnType::kPayment;
  if (branches.size() == 1) {
    auto commit = hdb.commit(txn);
    if (!commit.is_ok()) return fail(commit.status());
    outcome.committed = true;
    outcome.commit_lsn = commit.value();
    outcome.branches.emplace_back(home, commit.value());
    return outcome;
  }
  VDB_RETURN_IF_ERROR(two_phase_commit(home, &branches, &outcome));
  return outcome;
}

}  // namespace vdb::fleet
