// Fleet-aware TPC-C transaction profiles.
//
// Order-Status, Delivery, and Stock-Level touch only the home warehouse's
// rows and are delegated verbatim to the per-shard TpccTxns. New-Order and
// Payment mirror the single-instance profiles exactly — same inputs, same
// row mutations, same random stream — except that a remote stock line
// (clause 2.4.1's ~1%-per-line case) or a remote customer (clause
// 2.5.1.2's 15% case) landing on a foreign shard opens a branch there, and
// the whole interaction then commits by presumed-abort two-phase commit:
//
//   1. every branch PREPAREs (redo record + log force),
//   2. the coordinator (the home shard) force-logs its COMMIT decision,
//   3. branches commit; the coordinator forgets the decision.
//
// No decision record ever means abort — that presumption is what lets a
// crashed participant resolve a branch without talking to anyone when the
// coordinator provably never decided.
//
// Crash points let the faultload kill a shard at the protocol's four
// exposed instants; the armed hook receives the natural victim (the
// coordinator, or the participant about to prepare) and fires exactly
// once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "fleet/fleet.hpp"
#include "tpcc/tpcc_random.hpp"
#include "tpcc/tpcc_txns.hpp"

namespace vdb::fleet {

enum class CrashPoint {
  kNone = 0,
  kBeforePrepare,   // coordinator dies before any branch prepared
  kMidPrepare,      // the first participant dies before its own prepare
  kAfterPrepares,   // coordinator dies with all branches prepared, undecided
  kAfterDecision,   // coordinator dies with its COMMIT decision durable
};

struct FleetOutcome {
  tpcc::TxnType type = tpcc::TxnType::kNewOrder;
  bool committed = false;
  bool intentional_rollback = false;
  /// Home-shard commit LSN (0 for read-only work).
  Lsn commit_lsn = 0;
  bool cross_shard = false;
  /// Durability watermark per touched shard: the branch's commit LSN. A
  /// committed transaction is lost on shard s iff recovery there later
  /// stops below its entry.
  std::vector<std::pair<std::uint32_t, Lsn>> branches;
};

class FleetTxns {
 public:
  FleetTxns(Fleet* fleet, tpcc::TpccRandom* random);

  Result<FleetOutcome> run(tpcc::TxnType type, std::uint32_t w);

  /// Arms a one-shot crash at the given protocol instant. The hook gets
  /// the victim shard the faultload scenario wants dead (coordinator for
  /// every point except kMidPrepare, which hands over the participant).
  void arm_crash(CrashPoint point,
                 std::function<void(std::uint32_t shard)> fire);
  bool crash_armed() const { return armed_ != CrashPoint::kNone; }

  std::uint64_t cross_shard_started() const { return cross_shard_started_; }
  std::uint64_t remote_branches() const { return remote_branches_; }

 private:
  Result<FleetOutcome> new_order(std::uint32_t w);
  Result<FleetOutcome> payment(std::uint32_t w);
  Result<FleetOutcome> delegate(tpcc::TxnType type, std::uint32_t w);

  /// 60%/40% customer selection against the shard that owns warehouse cw.
  Result<RowId> select_customer(std::uint32_t cw, std::uint32_t cd);

  /// Lazily opens a branch transaction on `shard`.
  Result<TxnId> branch_txn(std::map<std::uint32_t, TxnId>* branches,
                           std::uint32_t shard);
  /// Rolls back every open branch (business rollback / pre-2PC failure).
  void rollback_all(const std::map<std::uint32_t, TxnId>& branches);

  /// True (and disarms) when `point` is armed; the hook has then run.
  bool fire_crash(CrashPoint point, std::uint32_t victim);
  /// One 2PC message round trip on the inter-shard link.
  void charge_round_trip();

  /// Presumed-abort commit across branches.size() >= 2 shards.
  Status two_phase_commit(std::uint32_t home,
                          std::map<std::uint32_t, TxnId>* branches,
                          FleetOutcome* out);
  /// Coordinator-side abort: prepared branches resolve on its order,
  /// unprepared ones roll back, dead shards resolve at their recovery.
  void abort_branches(GlobalTxn* g,
                      const std::map<std::uint32_t, TxnId>& branches);

  Fleet* fleet_;
  tpcc::TpccRandom* random_;
  std::vector<std::unique_ptr<tpcc::TpccTxns>> local_;
  CrashPoint armed_ = CrashPoint::kNone;
  std::function<void(std::uint32_t)> fire_;
  std::uint64_t cross_shard_started_ = 0;
  std::uint64_t remote_branches_ = 0;
};

}  // namespace vdb::fleet
