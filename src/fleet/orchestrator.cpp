#include "fleet/orchestrator.hpp"

#include <string>

namespace vdb::fleet {

FailoverOrchestrator::FailoverOrchestrator(Fleet* fleet,
                                           OrchestratorConfig cfg,
                                           obs::Observability* fleet_obs)
    : fleet_(fleet), cfg_(cfg), obs_(obs::resolve(fleet_obs)) {
  suspected_.assign(fleet_->size(), false);
}

void FailoverOrchestrator::start() {
  if (started_) return;
  started_ = true;
  probe_handle_ = fleet_->scheduler().schedule_every(
      cfg_.probe_interval, [this] { probe(); });
}

void FailoverOrchestrator::stop() {
  if (!started_) return;
  probe_handle_.cancel();
  started_ = false;
}

void FailoverOrchestrator::probe() {
  probes_ += 1;
  for (std::uint32_t i = 0; i < fleet_->size(); ++i) {
    if (suspected_[i]) continue;  // retry ladder already running
    if (fleet_->active_db(i).is_open()) continue;
    suspect(i, fleet_->clock().now());
  }
}

void FailoverOrchestrator::suspect(std::uint32_t shard, SimTime first_missed) {
  suspected_[shard] = true;
  retry(shard, 0, first_missed, cfg_.retry_backoff);
}

void FailoverOrchestrator::retry(std::uint32_t shard, std::uint32_t attempt,
                                 SimTime first_missed, SimDuration backoff) {
  if (attempt >= cfg_.probe_retries) {
    // Ladder exhausted: the shard is dead. Run the failover procedure.
    (void)fail_over(shard, first_missed);
    suspected_[shard] = false;
    return;
  }
  fleet_->scheduler().schedule_after(
      backoff, [this, shard, attempt, first_missed, backoff] {
        if (fleet_->active_db(shard).is_open()) {
          // Came back on its own (transient): stand down.
          suspected_[shard] = false;
          return;
        }
        retry(shard, attempt + 1, first_missed, backoff * 2);
      });
}

Status FailoverOrchestrator::force_failover(std::uint32_t shard) {
  if (shard >= fleet_->size()) {
    return Status{ErrorCode::kInvalidArgument, "no such shard"};
  }
  engine::Database& db = fleet_->active_db(shard);
  if (db.is_open()) VDB_RETURN_IF_ERROR(db.shutdown_abort());
  return fail_over(shard, fleet_->clock().now());
}

Status FailoverOrchestrator::fail_over(std::uint32_t shard,
                                       SimTime first_missed) {
  sim::VirtualClock& clock = fleet_->clock();
  obs::RecoveryTracer& tracer = obs_->tracer();
  const SimTime declared = clock.now();

  FailoverEvent event;
  event.shard = shard;
  event.failed_at = first_missed;
  event.declared_at = declared;

  // The detection span runs from the first missed probe to the death
  // verdict; a cascading failure starts a fresh trace (finishing the
  // previous one at this instant).
  tracer.start("fleet failover shard " + std::to_string(shard),
               first_missed);
  tracer.enter(obs::RecoveryPhase::kDetection, first_missed);

  tracer.enter(obs::RecoveryPhase::kPromote, declared);
  auto act = fleet_->promote(shard);
  if (!act.is_ok()) {
    tracer.exit(clock.now());
    return act.status();
  }
  event.recovered_to = act.value().recovered_to;
  event.archives_applied = act.value().archives_applied;
  promotions_ += 1;

  // Client redirection: the driver's routing table now points at the
  // promoted standby (Fleet::promote re-attached the access paths).
  tracer.enter(obs::RecoveryPhase::kReroute, clock.now());
  clock.advance_by(cfg_.reroute_cost);

  tracer.enter(obs::RecoveryPhase::kResolveInDoubt, clock.now());
  const std::uint64_t resolved_before = in_doubt_resolved_;
  resolve_in_doubt();
  event.in_doubt_resolved = in_doubt_resolved_ - resolved_before;

  event.restored_at = clock.now();
  obs_->waits().add_wait(obs::WaitEvent::kFailoverWait,
                         event.restored_at - event.failed_at);
  // Left open: the experiment closes the trace at the first post-recovery
  // commit, mirroring the single-instance harness.
  tracer.enter(obs::RecoveryPhase::kResume, event.restored_at);
  events_.push_back(event);
  return Status::ok();
}

void FailoverOrchestrator::resolve_in_doubt() {
  for (auto& [gtxn, g] : fleet_->registry().txns()) {
    if (g.finished || g.settled()) continue;
    engine::Database& cdb = fleet_->active_db(g.coord);
    // The verdict is the coordinator's alone; until its promotion (a
    // cascading failure may leave it dead longer) branches stay in doubt.
    if (!cdb.is_open()) continue;

    // Authoritative decision: the record in the coordinator's recovered
    // redo. The registry's memory of an un-surfaced decision is the
    // client-side view and deliberately ignored — a decision wiped with
    // the coordinator's unarchived redo was never distributed, so presumed
    // abort is the consistent verdict.
    auto durable = cdb.coord_decision(gtxn);
    const bool commit = durable.has_value() && *durable;
    if (!durable.has_value()) {
      // Force-log the abort so a second coordinator crash replays the
      // same verdict instead of re-deriving it.
      (void)cdb.log_coord_decision(gtxn, false);
    }

    bool all_settled = true;
    for (BranchRecord& b : g.branches) {
      if (b.outcome != '?') continue;
      engine::Database& db = fleet_->active_db(b.shard);
      if (!db.is_open()) {
        all_settled = false;
        continue;
      }
      const Shard& sh = fleet_->shard(b.shard);
      if (sh.promoted && b.prepare_lsn > sh.recovered_to) {
        // The PREPARE never reached the standby: the branch's effects do
        // not exist on the promoted shard. Data loss, not divergence.
        b.outcome = 'L';
        continue;
      }
      auto r = db.resolve_prepared(gtxn, commit);
      if (!r.is_ok()) {
        all_settled = false;
        continue;
      }
      b.outcome = commit ? 'C' : 'A';
      if (commit) b.end_lsn = r.value();
      in_doubt_resolved_ += 1;
    }
    if (all_settled) {
      g.finished = true;
      cdb.forget_decision(gtxn);
    }
  }
}

bool FailoverOrchestrator::await_fleet_healthy(SimTime deadline) {
  sim::Scheduler& sched = fleet_->scheduler();
  while (!fleet_->healthy() && fleet_->clock().now() < deadline) {
    const SimTime next = sched.next_event_time();
    if (next == sim::Scheduler::kNoEvent || next > deadline) break;
    sched.run_until(next);
  }
  return fleet_->healthy();
}

}  // namespace vdb::fleet
