// Fleet failover orchestrator.
//
// Health-checks every shard on the virtual clock. A missed probe starts a
// bounded-backoff retry ladder (a down instance may be a transient stall);
// only after the configured retries all miss is the shard declared dead.
// The procedure then runs exactly like an operator following the standby
// runbook, with each step a recovery-trace span on the fleet's statistics
// area:
//
//   detection      first missed probe -> declared dead
//   promote        standby activation (drain shipped redo, RESETLOGS)
//   reroute        the driver's connections re-pointed at the new primary
//   resolve_indoubt  prepared 2PC branches settled fleet-wide
//   resume         open -> first post-recovery commit (experiment closes it)
//
// In-doubt resolution follows presumed abort: the coordinator's recovered
// decision table is authoritative; no surviving COMMIT record means abort,
// and the orchestrator then force-logs the abort decision (kCoordAbort) so
// a second crash replays the same verdict. Branches whose PREPARE sat in
// the dead primary's unarchived redo never made it to the promoted standby
// — they are marked lost ('L'), the per-shard price of asynchronous
// shipping (paper §5.3), never an atomicity violation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "fleet/fleet.hpp"
#include "obs/observability.hpp"

namespace vdb::fleet {

struct OrchestratorConfig {
  SimDuration probe_interval = 2 * kSecond;
  /// Retries after the first missed probe before declaring death.
  std::uint32_t probe_retries = 3;
  /// First retry delay; doubles each miss (bounded by probe_retries).
  SimDuration retry_backoff = 2 * kSecond;
  /// Fixed client-redirection cost once the standby is open.
  SimDuration reroute_cost = 1 * kSecond;
};

struct FailoverEvent {
  std::uint32_t shard = 0;
  SimTime failed_at = 0;    // first missed probe
  SimTime declared_at = 0;  // retry ladder exhausted -> procedure starts
  SimTime restored_at = 0;  // shard serving again
  Lsn recovered_to = 0;
  std::uint64_t archives_applied = 0;
  std::uint64_t in_doubt_resolved = 0;
};

class FailoverOrchestrator {
 public:
  FailoverOrchestrator(Fleet* fleet, OrchestratorConfig cfg,
                       obs::Observability* fleet_obs);

  /// Starts the periodic health probes on the fleet scheduler.
  void start();
  void stop();

  /// Pumps scheduler events (probes, retries, promotions) until the fleet
  /// is healthy again or `deadline` passes. Returns whether it is healthy.
  bool await_fleet_healthy(SimTime deadline);

  /// Operator-initiated failover (ALTER FLEET FAILOVER <shard>): skips
  /// the probe ladder and runs the procedure immediately.
  Status force_failover(std::uint32_t shard);

  /// Settles every registry transaction with unresolved branches whose
  /// coordinator is reachable. Runs automatically after each promotion;
  /// callable standalone (SMON-style sweep).
  void resolve_in_doubt();

  const std::vector<FailoverEvent>& events() const { return events_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t in_doubt_resolved() const { return in_doubt_resolved_; }
  std::uint64_t probes() const { return probes_; }

 private:
  void probe();
  void suspect(std::uint32_t shard, SimTime first_missed);
  void retry(std::uint32_t shard, std::uint32_t attempt, SimTime first_missed,
             SimDuration backoff);
  Status fail_over(std::uint32_t shard, SimTime first_missed);

  Fleet* fleet_;
  OrchestratorConfig cfg_;
  obs::Observability* obs_;
  sim::EventHandle probe_handle_;
  std::vector<bool> suspected_;
  std::vector<FailoverEvent> events_;
  std::uint64_t promotions_ = 0;
  std::uint64_t in_doubt_resolved_ = 0;
  std::uint64_t probes_ = 0;
  bool started_ = false;
};

}  // namespace vdb::fleet
