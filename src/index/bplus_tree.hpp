// In-memory B+-tree with doubly linked leaves.
//
// Access paths for the catalog and the TPC-C tables. Indexes are volatile
// and rebuilt from table heaps when a database opens (a standard design for
// recoverable systems: the heap is the durable truth, the index is derived
// state). Unique keys only — composite keys carry a discriminator where the
// logical key is non-unique.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace vdb::index {

template <typename Key, typename Value, int Order = 64>
class BPlusTree {
  static_assert(Order >= 4, "Order must be at least 4");

 public:
  BPlusTree() = default;
  ~BPlusTree() { clear(); }
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts; returns false (no change) if the key already exists.
  bool insert(const Key& key, const Value& value) {
    if (root_ == nullptr) {
      auto* leaf = new Leaf();
      leaf->keys.push_back(key);
      leaf->values.push_back(value);
      root_ = leaf;
      first_leaf_ = last_leaf_ = leaf;
      size_ = 1;
      return true;
    }
    InsertResult result = insert_into(root_, key, value);
    if (!result.inserted) return false;
    if (result.split_node != nullptr) {
      auto* new_root = new Internal();
      new_root->keys.push_back(result.split_key);
      new_root->children.push_back(root_);
      new_root->children.push_back(result.split_node);
      root_ = new_root;
    }
    size_ += 1;
    return true;
  }

  /// Removes; returns false if the key was absent.
  bool erase(const Key& key) {
    if (root_ == nullptr) return false;
    if (!erase_from(root_, key)) return false;
    size_ -= 1;
    // Shrink the root when it decays.
    if (!root_->is_leaf) {
      auto* internal = static_cast<Internal*>(root_);
      if (internal->children.size() == 1) {
        root_ = internal->children[0];
        internal->children.clear();
        delete internal;
      }
    } else if (root_->is_leaf && static_cast<Leaf*>(root_)->keys.empty()) {
      delete root_;
      root_ = nullptr;
      first_leaf_ = last_leaf_ = nullptr;
    }
    return true;
  }

  const Value* find(const Key& key) const {
    const Leaf* leaf = find_leaf(key);
    if (leaf == nullptr) return nullptr;
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || key < *it) return nullptr;
    return &leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
  }

  Value* find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Visits entries with from <= key <= to in ascending order until `fn`
  /// returns false.
  template <typename Fn>
  void scan_range(const Key& from, const Key& to, Fn&& fn) const {
    const Leaf* leaf = find_leaf(from);
    if (leaf == nullptr) return;
    size_t i = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), from) -
        leaf->keys.begin());
    while (leaf != nullptr) {
      for (; i < leaf->keys.size(); ++i) {
        if (to < leaf->keys[i]) return;
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
      i = 0;
    }
  }

  /// Visits entries with from <= key <= to in DESCENDING order until `fn`
  /// returns false (e.g. "newest order of a customer").
  template <typename Fn>
  void scan_range_desc(const Key& from, const Key& to, Fn&& fn) const {
    // Find the last leaf/pos with key <= to.
    const Leaf* leaf = find_leaf(to);
    if (leaf == nullptr) {
      leaf = last_leaf_;
      if (leaf == nullptr) return;
    }
    auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), to);
    if (it == leaf->keys.begin()) {
      leaf = leaf->prev;
      if (leaf == nullptr) return;
      it = leaf->keys.end();
    }
    size_t i = static_cast<size_t>(it - leaf->keys.begin());
    while (leaf != nullptr) {
      while (i > 0) {
        --i;
        if (leaf->keys[i] < from) return;
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->prev;
      if (leaf != nullptr) i = leaf->keys.size();
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    destroy(root_);
    root_ = nullptr;
    first_leaf_ = last_leaf_ = nullptr;
    size_ = 0;
  }

  /// Structural invariants (for property tests): sorted keys, linked-leaf
  /// completeness, fanout bounds, consistent separator keys.
  bool validate() const {
    if (root_ == nullptr) return size_ == 0;
    size_t counted = 0;
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (size_t i = 1; i < leaf->keys.size(); ++i) {
        if (!(leaf->keys[i - 1] < leaf->keys[i])) return false;
      }
      if (leaf->next != nullptr) {
        if (leaf->next->prev != leaf) return false;
        if (!leaf->keys.empty() && !leaf->next->keys.empty() &&
            !(leaf->keys.back() < leaf->next->keys.front())) {
          return false;
        }
      }
      counted += leaf->keys.size();
    }
    return counted == size_;
  }

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<Key> keys;
    std::vector<Value> values;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };

  struct Internal final : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; keys[i] is the smallest key in
    // children[i + 1]'s subtree.
    std::vector<Key> keys;
    std::vector<Node*> children;
    ~Internal() override {
      for (Node* c : children) {
        if (c->is_leaf) {
          delete static_cast<Leaf*>(c);
        } else {
          delete static_cast<Internal*>(c);
        }
      }
    }
  };

  struct InsertResult {
    bool inserted = false;
    Node* split_node = nullptr;  // new right sibling, if a split happened
    Key split_key{};             // smallest key in split_node's subtree
  };

  InsertResult insert_into(Node* node, const Key& key, const Value& value) {
    if (node->is_leaf) {
      auto* leaf = static_cast<Leaf*>(node);
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
      if (it != leaf->keys.end() && !(key < *it)) return {};  // duplicate
      leaf->keys.insert(it, key);
      leaf->values.insert(leaf->values.begin() + static_cast<long>(pos),
                          value);
      InsertResult result;
      result.inserted = true;
      if (leaf->keys.size() > kMaxLeaf) {
        auto* right = new Leaf();
        const size_t mid = leaf->keys.size() / 2;
        right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                           leaf->keys.end());
        right->values.assign(leaf->values.begin() + static_cast<long>(mid),
                             leaf->values.end());
        leaf->keys.resize(mid);
        leaf->values.resize(mid);
        right->next = leaf->next;
        right->prev = leaf;
        if (leaf->next != nullptr) leaf->next->prev = right;
        leaf->next = right;
        if (last_leaf_ == leaf) last_leaf_ = right;
        result.split_node = right;
        result.split_key = right->keys.front();
      }
      return result;
    }

    auto* internal = static_cast<Internal*>(node);
    const size_t child_idx = child_index(internal, key);
    InsertResult child_result =
        insert_into(internal->children[child_idx], key, value);
    if (!child_result.inserted) return {};
    InsertResult result;
    result.inserted = true;
    if (child_result.split_node != nullptr) {
      internal->keys.insert(
          internal->keys.begin() + static_cast<long>(child_idx),
          child_result.split_key);
      internal->children.insert(
          internal->children.begin() + static_cast<long>(child_idx) + 1,
          child_result.split_node);
      if (internal->keys.size() > kMaxInternal) {
        auto* right = new Internal();
        const size_t mid = internal->keys.size() / 2;
        result.split_key = internal->keys[mid];
        right->keys.assign(internal->keys.begin() + static_cast<long>(mid) + 1,
                           internal->keys.end());
        right->children.assign(
            internal->children.begin() + static_cast<long>(mid) + 1,
            internal->children.end());
        internal->keys.resize(mid);
        internal->children.resize(mid + 1);
        result.split_node = right;
      }
    }
    return result;
  }

  bool erase_from(Node* node, const Key& key) {
    if (node->is_leaf) {
      auto* leaf = static_cast<Leaf*>(node);
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      if (it == leaf->keys.end() || key < *it) return false;
      const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
      leaf->keys.erase(it);
      leaf->values.erase(leaf->values.begin() + static_cast<long>(pos));
      return true;
    }
    auto* internal = static_cast<Internal*>(node);
    const size_t child_idx = child_index(internal, key);
    Node* child = internal->children[child_idx];
    if (!erase_from(child, key)) return false;
    rebalance_child(internal, child_idx);
    return true;
  }

  /// Repairs an underflowing child by borrowing from or merging with a
  /// sibling. Underflow threshold is a quarter of capacity — lazy deletion
  /// keeps the structure valid without aggressive merging.
  void rebalance_child(Internal* parent, size_t idx) {
    Node* child = parent->children[idx];
    const size_t child_size =
        child->is_leaf ? static_cast<Leaf*>(child)->keys.size()
                       : static_cast<Internal*>(child)->children.size();
    const size_t min_size = child->is_leaf ? kMaxLeaf / 4 : kMaxInternal / 4;
    if (child_size >= std::max<size_t>(1, min_size)) return;
    if (child_size > 0 && parent->children.size() == 1) return;

    // Merge with the left sibling when possible, otherwise the right one.
    if (child->is_leaf) {
      if (idx > 0) {
        merge_leaves(parent, idx - 1);
      } else if (idx + 1 < parent->children.size()) {
        merge_leaves(parent, idx);
      }
    } else {
      if (idx > 0) {
        merge_internals(parent, idx - 1);
      } else if (idx + 1 < parent->children.size()) {
        merge_internals(parent, idx);
      }
    }
  }

  /// Merges children[i + 1] into children[i] if they fit, else rebalances
  /// by moving half the surplus.
  void merge_leaves(Internal* parent, size_t i) {
    auto* left = static_cast<Leaf*>(parent->children[i]);
    auto* right = static_cast<Leaf*>(parent->children[i + 1]);
    if (left->keys.size() + right->keys.size() <= kMaxLeaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->values.insert(left->values.end(), right->values.begin(),
                          right->values.end());
      left->next = right->next;
      if (right->next != nullptr) right->next->prev = left;
      if (last_leaf_ == right) last_leaf_ = left;
      delete right;
      parent->keys.erase(parent->keys.begin() + static_cast<long>(i));
      parent->children.erase(parent->children.begin() +
                             static_cast<long>(i) + 1);
    } else if (left->keys.size() < right->keys.size()) {
      // Borrow the front of right.
      left->keys.push_back(right->keys.front());
      left->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[i] = right->keys.front();
    } else {
      // Borrow the back of left.
      right->keys.insert(right->keys.begin(), left->keys.back());
      right->values.insert(right->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[i] = right->keys.front();
    }
  }

  void merge_internals(Internal* parent, size_t i) {
    auto* left = static_cast<Internal*>(parent->children[i]);
    auto* right = static_cast<Internal*>(parent->children[i + 1]);
    if (left->children.size() + right->children.size() <= kMaxInternal + 1) {
      left->keys.push_back(parent->keys[i]);
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->children.insert(left->children.end(), right->children.begin(),
                            right->children.end());
      right->children.clear();
      delete right;
      parent->keys.erase(parent->keys.begin() + static_cast<long>(i));
      parent->children.erase(parent->children.begin() +
                             static_cast<long>(i) + 1);
    } else if (left->children.size() < right->children.size()) {
      left->keys.push_back(parent->keys[i]);
      left->children.push_back(right->children.front());
      parent->keys[i] = right->keys.front();
      right->keys.erase(right->keys.begin());
      right->children.erase(right->children.begin());
    } else {
      right->keys.insert(right->keys.begin(), parent->keys[i]);
      right->children.insert(right->children.begin(), left->children.back());
      parent->keys[i] = left->keys.back();
      left->keys.pop_back();
      left->children.pop_back();
    }
  }

  size_t child_index(const Internal* node, const Key& key) const {
    return static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
  }

  const Leaf* find_leaf(const Key& key) const {
    const Node* node = root_;
    if (node == nullptr) return nullptr;
    while (!node->is_leaf) {
      const auto* internal = static_cast<const Internal*>(node);
      node = internal->children[child_index(internal, key)];
    }
    const auto* leaf = static_cast<const Leaf*>(node);
    // The target key may be the first of the next leaf when separators are
    // stale after lazy deletes.
    if (!leaf->keys.empty() && leaf->keys.back() < key &&
        leaf->next != nullptr) {
      return leaf->next;
    }
    return leaf;
  }

  void destroy(Node* node) {
    if (node == nullptr) return;
    if (node->is_leaf) {
      delete static_cast<Leaf*>(node);
    } else {
      delete static_cast<Internal*>(node);
    }
  }

  static constexpr size_t kMaxLeaf = Order;
  static constexpr size_t kMaxInternal = Order;

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  Leaf* last_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace vdb::index
