#include "obs/metrics.hpp"

#include <bit>

namespace vdb::obs {

std::uint64_t Histogram::bucket_lower_bound(std::size_t i) {
  if (i == 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

void Histogram::record(std::uint64_t value) {
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);

  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      // Upper bound of the bucket, clamped to the observed maximum.
      const std::uint64_t upper =
          i + 1 < kBuckets ? bucket_lower_bound(i + 1) - 1 : max();
      return upper < max() ? upper : max();
    }
  }
  return max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

}  // namespace vdb::obs
