// Metrics registry: named counters, gauges, and fixed-bucket histograms —
// the V$SYSSTAT analogue every engine component registers into.
//
// Hot-path discipline: components resolve their instruments ONCE (at
// construction / wiring time, under the registry mutex) and then update
// them through stable pointers with relaxed atomics — one atomic add per
// event, no allocation, no locking. Replay workers (vdb::parallel_for)
// update the same instruments concurrently, which is why every cell is a
// std::atomic and why the ThreadSanitizer CI job covers this subsystem.
//
// Histograms use fixed power-of-two buckets over simulated microseconds:
// bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0 holds 0),
// so recording is a bit_width + one relaxed fetch_add — no allocation on
// the hot path, ever.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vdb::obs {

/// Monotonic event count (V$SYSSTAT statistic).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (e.g. bytes pending in the log buffer).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over simulated microseconds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  /// Lower bound of bucket i: 0 for bucket 0, else 2^(i-1).
  static std::uint64_t bucket_lower_bound(std::size_t i);

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate quantile (upper bound of the bucket holding the q-th
  /// sample). `q` in (0, 1]; returns 0 when empty.
  std::uint64_t percentile(double q) const;

  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> instrument registry. Registration (get-or-create) takes a mutex
/// and returns a pointer that stays valid for the registry's lifetime;
/// updates through the pointer are lock-free.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Sorted name order (std::map iteration) — deterministic reports.
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vdb::obs
