#include "obs/observability.hpp"

#include <cctype>
#include <cstddef>

namespace vdb::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c); break;
    }
  }
  out.push_back('"');
}

/// Recursive-descent reader for the JSON subset to_json emits (objects,
/// arrays, strings with the escapes above, unsigned/signed integers,
/// booleans). Parse failures set ok=false and poison everything downstream.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool ok() const { return ok_; }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail();
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string read_string() {
    skip_ws();
    std::string out;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail();
      return out;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail();
          return out;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: fail(); return out;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      fail();
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  std::uint64_t read_u64() {
    skip_ws();
    std::uint64_t v = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      any = true;
    }
    if (!any) fail();
    return v;
  }

  std::int64_t read_i64() {
    skip_ws();
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    const std::uint64_t mag = read_u64();
    return neg ? -static_cast<std::int64_t>(mag)
               : static_cast<std::int64_t>(mag);
  }

  bool read_bool() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail();
    return false;
  }

  /// Requires the next token to be the given object key (with colon).
  void expect_key(const char* key) {
    if (read_string() != key) fail();
    consume(':');
  }

  /// Iterates "[" elem ("," elem)* "]"; fn parses one element.
  template <typename Fn>
  void read_array(Fn&& fn) {
    if (!consume('[')) return;
    if (peek(']')) {
      consume(']');
      return;
    }
    while (ok_) {
      fn();
      if (peek(']')) {
        consume(']');
        return;
      }
      if (!consume(',')) return;
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool fail() {
    ok_ = false;
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const WaitEventRow* MetricsSnapshot::wait(const std::string& event) const {
  for (const WaitEventRow& row : wait_events) {
    if (row.event == event) return &row;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"wait_events\":[";
  first = true;
  for (const WaitEventRow& w : wait_events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"event\":";
    append_escaped(out, w.event);
    out += ",\"waits\":" + std::to_string(w.waits);
    out += ",\"time_us\":" + std::to_string(w.time_us);
    out += ",\"max_us\":" + std::to_string(w.max_us);
    out.push_back('}');
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramRow& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_escaped(out, h.name);
    out += ",\"count\":" + std::to_string(h.count);
    out += ",\"sum_us\":" + std::to_string(h.sum_us);
    out += ",\"min_us\":" + std::to_string(h.min_us);
    out += ",\"max_us\":" + std::to_string(h.max_us);
    out += ",\"p50_us\":" + std::to_string(h.p50_us);
    out += ",\"p90_us\":" + std::to_string(h.p90_us);
    out += ",\"p99_us\":" + std::to_string(h.p99_us);
    out.push_back('}');
  }
  out += "],\"recovery\":[";
  first = true;
  for (const TraceRow& t : recovery) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"label\":";
    append_escaped(out, t.label);
    out += ",\"start_us\":" + std::to_string(t.start_us);
    out += ",\"end_us\":" + std::to_string(t.end_us);
    out += ",\"finished\":";
    out += t.finished ? "true" : "false";
    out += ",\"phases\":[";
    bool pfirst = true;
    for (const PhaseRow& p : t.phases) {
      if (!pfirst) out.push_back(',');
      pfirst = false;
      out += "{\"phase\":";
      append_escaped(out, p.phase);
      out += ",\"us\":" + std::to_string(p.us);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::from_json(const std::string& json) {
  MetricsSnapshot snap;
  Reader r(json);

  r.consume('{');
  r.expect_key("counters");
  r.consume('{');
  if (!r.peek('}')) {
    do {
      std::string name = r.read_string();
      r.consume(':');
      snap.counters.emplace_back(std::move(name), r.read_u64());
    } while (r.ok() && !r.peek('}') && r.consume(','));
  }
  r.consume('}');

  r.consume(',');
  r.expect_key("gauges");
  r.consume('{');
  if (!r.peek('}')) {
    do {
      std::string name = r.read_string();
      r.consume(':');
      snap.gauges.emplace_back(std::move(name), r.read_i64());
    } while (r.ok() && !r.peek('}') && r.consume(','));
  }
  r.consume('}');

  r.consume(',');
  r.expect_key("wait_events");
  r.read_array([&] {
    WaitEventRow w;
    r.consume('{');
    r.expect_key("event");
    w.event = r.read_string();
    r.consume(',');
    r.expect_key("waits");
    w.waits = r.read_u64();
    r.consume(',');
    r.expect_key("time_us");
    w.time_us = r.read_u64();
    r.consume(',');
    r.expect_key("max_us");
    w.max_us = r.read_u64();
    r.consume('}');
    snap.wait_events.push_back(std::move(w));
  });

  r.consume(',');
  r.expect_key("histograms");
  r.read_array([&] {
    HistogramRow h;
    r.consume('{');
    r.expect_key("name");
    h.name = r.read_string();
    r.consume(',');
    r.expect_key("count");
    h.count = r.read_u64();
    r.consume(',');
    r.expect_key("sum_us");
    h.sum_us = r.read_u64();
    r.consume(',');
    r.expect_key("min_us");
    h.min_us = r.read_u64();
    r.consume(',');
    r.expect_key("max_us");
    h.max_us = r.read_u64();
    r.consume(',');
    r.expect_key("p50_us");
    h.p50_us = r.read_u64();
    r.consume(',');
    r.expect_key("p90_us");
    h.p90_us = r.read_u64();
    r.consume(',');
    r.expect_key("p99_us");
    h.p99_us = r.read_u64();
    r.consume('}');
    snap.histograms.push_back(std::move(h));
  });

  r.consume(',');
  r.expect_key("recovery");
  r.read_array([&] {
    TraceRow t;
    r.consume('{');
    r.expect_key("label");
    t.label = r.read_string();
    r.consume(',');
    r.expect_key("start_us");
    t.start_us = r.read_u64();
    r.consume(',');
    r.expect_key("end_us");
    t.end_us = r.read_u64();
    r.consume(',');
    r.expect_key("finished");
    t.finished = r.read_bool();
    r.consume(',');
    r.expect_key("phases");
    r.read_array([&] {
      PhaseRow p;
      r.consume('{');
      r.expect_key("phase");
      p.phase = r.read_string();
      r.consume(',');
      r.expect_key("us");
      p.us = r.read_u64();
      r.consume('}');
      t.phases.push_back(std::move(p));
    });
    r.consume('}');
    snap.recovery.push_back(std::move(t));
  });

  r.consume('}');
  if (!r.ok() || !r.at_end()) {
    return Status{ErrorCode::kInvalidArgument, "malformed metrics JSON"};
  }
  return snap;
}

MetricsSnapshot Observability::snapshot() const {
  MetricsSnapshot snap;
  registry_.for_each_counter([&](const std::string& name, const Counter& c) {
    snap.counters.emplace_back(name, c.value());
  });
  registry_.for_each_gauge([&](const std::string& name, const Gauge& g) {
    snap.gauges.emplace_back(name, g.value());
  });
  for (std::size_t i = 0; i < kWaitEventCount; ++i) {
    const auto e = static_cast<WaitEvent>(i);
    if (waits_.total_waits(e) == 0) continue;
    snap.wait_events.push_back(WaitEventRow{
        to_string(e), waits_.total_waits(e), waits_.time_waited(e),
        waits_.max_wait(e)});
  }
  registry_.for_each_histogram(
      [&](const std::string& name, const Histogram& h) {
        if (h.count() == 0) return;
        snap.histograms.push_back(HistogramRow{
            name, h.count(), h.sum(), h.min(), h.max(), h.percentile(0.50),
            h.percentile(0.90), h.percentile(0.99)});
      });
  auto add_trace = [&](const RecoveryTrace& trace) {
    TraceRow row;
    row.label = trace.label;
    row.start_us = trace.start;
    row.end_us = trace.finished ? trace.end : trace.start + trace.total();
    row.finished = trace.finished;
    for (const PhaseSpan& span : trace.spans) {
      row.phases.push_back(PhaseRow{to_string(span.phase), span.duration()});
    }
    snap.recovery.push_back(std::move(row));
  };
  for (const RecoveryTrace& trace : tracer_.history()) add_trace(trace);
  if (tracer_.current() != nullptr) add_trace(*tracer_.current());
  return snap;
}

Observability& default_observability() {
  static Observability instance;
  return instance;
}

}  // namespace vdb::obs
