// Observability context: the metrics registry, wait-event table, and
// recovery-phase tracer as one unit — the "SGA statistics area" of a
// database instance.
//
// Ownership: an Observability normally OUTLIVES database incarnations. The
// experiment harness creates one per experiment and passes it through
// DatabaseConfig::obs, so a crash-restart cycle (old instance destroyed, a
// fresh one constructed over the same host) accumulates into the same
// registry and the whole run snapshots as one row. A Database constructed
// with cfg.obs == nullptr owns a private instance instead; components
// wired with a null pointer fall back to a process-wide default so they
// remain usable standalone (unit tests, microbenchmarks).
//
// MetricsSnapshot is the plain-data export: copyable, comparable, and
// round-trippable through its JSON form — every results/bench_*.json row
// carries one under the "metrics" key.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/recovery_trace.hpp"
#include "obs/wait_events.hpp"

namespace vdb::obs {

struct WaitEventRow {
  std::string event;
  std::uint64_t waits = 0;
  std::uint64_t time_us = 0;
  std::uint64_t max_us = 0;
  bool operator==(const WaitEventRow&) const = default;
};

struct HistogramRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  bool operator==(const HistogramRow&) const = default;
};

struct PhaseRow {
  std::string phase;
  std::uint64_t us = 0;
  bool operator==(const PhaseRow&) const = default;
};

struct TraceRow {
  std::string label;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool finished = false;
  /// Span order preserved (phases may repeat); durations tile the trace.
  std::vector<PhaseRow> phases;
  bool operator==(const TraceRow&) const = default;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<WaitEventRow> wait_events;
  std::vector<HistogramRow> histograms;
  std::vector<TraceRow> recovery;

  bool operator==(const MetricsSnapshot&) const = default;

  /// Counter value by name; 0 when absent.
  std::uint64_t counter(const std::string& name) const;
  /// Wait-event row by name; nullptr when absent.
  const WaitEventRow* wait(const std::string& event) const;

  /// Compact single-line JSON object.
  std::string to_json() const;
  /// Inverse of to_json (accepts any whitespace); kErrorCode on malformed
  /// input. Together with to_json this gives the snapshot a lossless
  /// round-trip, which obs_test locks in.
  static Result<MetricsSnapshot> from_json(const std::string& json);
};

class Observability {
 public:
  MetricsRegistry& registry() { return registry_; }
  WaitEventTable& waits() { return waits_; }
  RecoveryTracer& tracer() { return tracer_; }
  const MetricsRegistry& registry() const { return registry_; }
  const WaitEventTable& waits() const { return waits_; }
  const RecoveryTracer& tracer() const { return tracer_; }

  MetricsSnapshot snapshot() const;

 private:
  MetricsRegistry registry_;
  WaitEventTable waits_;
  RecoveryTracer tracer_;
};

/// Process-wide fallback instance for components wired without an explicit
/// Observability (standalone unit tests, microbenchmarks).
Observability& default_observability();

/// nullptr -> &default_observability(), anything else passes through.
inline Observability* resolve(Observability* obs) {
  return obs != nullptr ? obs : &default_observability();
}

}  // namespace vdb::obs
