#include "obs/recovery_trace.hpp"

#include <utility>

namespace vdb::obs {

const char* to_string(RecoveryPhase p) {
  switch (p) {
    case RecoveryPhase::kDetection: return "detection";
    case RecoveryPhase::kRestore: return "restore";
    case RecoveryPhase::kRedo: return "redo";
    case RecoveryPhase::kUndo: return "undo";
    case RecoveryPhase::kOpen: return "open";
    case RecoveryPhase::kOnDemand: return "on_demand";
    case RecoveryPhase::kResume: return "resume";
    case RecoveryPhase::kPromote: return "promote";
    case RecoveryPhase::kReroute: return "reroute";
    case RecoveryPhase::kResolveInDoubt: return "resolve_indoubt";
    case RecoveryPhase::kCount: break;
  }
  return "?";
}

SimDuration RecoveryTrace::phase_time(RecoveryPhase p) const {
  SimDuration total = 0;
  for (const PhaseSpan& span : spans) {
    if (span.phase == p) total += span.duration();
  }
  return total;
}

SimDuration RecoveryTrace::total() const {
  SimDuration total = 0;
  for (const PhaseSpan& span : spans) total += span.duration();
  return total;
}

void RecoveryTracer::start(std::string label, SimTime now) {
  if (active_) finish(cursor_);
  current_ = RecoveryTrace{};
  current_.label = std::move(label);
  current_.start = now;
  cursor_ = now;
  phase_open_ = false;
  active_ = true;
}

void RecoveryTracer::close_span(SimTime now) {
  if (!phase_open_) return;
  if (now > cursor_) {
    current_.spans.push_back(PhaseSpan{open_phase_, cursor_, now});
    cursor_ = now;
  } else if (!current_.spans.empty() &&
             current_.spans.back().phase == open_phase_) {
    // Zero-length re-entry: nothing to record.
  }
  phase_open_ = false;
}

void RecoveryTracer::enter(RecoveryPhase phase, SimTime now) {
  if (!active_) start("recovery", now);
  close_span(now);
  open_phase_ = phase;
  phase_open_ = true;
}

void RecoveryTracer::exit(SimTime now) {
  if (!active_) return;
  close_span(now);
}

void RecoveryTracer::archive_current() {
  history_.push_back(current_);
  if (history_.size() > kMaxHistory) {
    history_.erase(history_.begin());
  }
}

void RecoveryTracer::finish(SimTime now) {
  if (!active_) return;
  // The harness finishes a trace retroactively at the first post-recovery
  // commit, but early-open restart modes keep recording on-demand spans
  // while the workload runs past that instant. Clamp everything to the
  // finish time so spans still tile [start, end] exactly.
  while (!current_.spans.empty() && current_.spans.back().start >= now) {
    current_.spans.pop_back();
  }
  if (!current_.spans.empty() && current_.spans.back().end > now) {
    current_.spans.back().end = now;
  }
  if (cursor_ > now) cursor_ = now;
  close_span(now);
  // Tail not attributed to any phase (clock advanced after the last span
  // closed): fold it into a resume span so spans keep tiling the trace.
  if (now > cursor_) {
    current_.spans.push_back(PhaseSpan{RecoveryPhase::kResume, cursor_, now});
    cursor_ = now;
  }
  current_.end = now;
  current_.finished = true;
  archive_current();
  active_ = false;
}

const RecoveryTrace* RecoveryTracer::latest() const {
  if (active_) return &current_;
  if (!history_.empty()) return &history_.back();
  return nullptr;
}

}  // namespace vdb::obs
