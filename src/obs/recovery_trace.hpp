// Recovery-phase tracer (V$RECOVERY_PROGRESS analogue).
//
// Decomposes a recovery procedure — instance restart, media recovery,
// block recovery, point-in-time restore, stand-by activation — into
// timestamped phase spans on the simulated clock:
//
//   detection -> restore -> redo roll-forward -> undo -> open
//     -> on-demand redo (early-open restart modes) -> resume
//
// Spans TILE the traced interval: entering a phase closes the open span at
// the current instant and the next span begins exactly there, so the sum
// of all span durations equals end - start to the simulated tick. That
// invariant is what lets the benchmark assert that the per-phase breakdown
// adds up to the headline recovery time (the paper's end-user measure).
//
// The tracer is driven from the experiment thread only (each experiment
// owns its Observability); it is intentionally NOT thread-safe. Phase
// scopes are no-ops while no trace is active *unless* auto_start is left
// on, in which case the first phase entry opens an implicit trace — so
// plain engine tests still get a V$RECOVERY_PROGRESS row for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::obs {

enum class RecoveryPhase : std::uint8_t {
  kDetection = 0,  // failure surfaced -> operator starts the procedure
  kRestore,        // instance start / backup restore / mount
  kRedo,           // roll-forward through archived + online redo
  kUndo,           // loser-transaction rollback
  kOpen,           // checkpoint, object rebuild, open for service
  kOnDemand,       // post-open on-demand / background page redo (M2-M4)
  kResume,         // open -> first post-recovery commit (end-user view)
  kPromote,        // fleet failover: standby activation on the dead shard
  kReroute,        // fleet failover: driver re-attached to the new primary
  kResolveInDoubt, // fleet failover: in-doubt 2PC branches settled
  kCount,
};
constexpr std::size_t kRecoveryPhaseCount =
    static_cast<std::size_t>(RecoveryPhase::kCount);

const char* to_string(RecoveryPhase p);

struct PhaseSpan {
  RecoveryPhase phase = RecoveryPhase::kDetection;
  SimTime start = 0;
  SimTime end = 0;
  SimDuration duration() const { return end - start; }
};

struct RecoveryTrace {
  std::string label;
  SimTime start = 0;
  SimTime end = 0;
  bool finished = false;
  std::vector<PhaseSpan> spans;

  /// Total simulated time spent in one phase (spans aggregate).
  SimDuration phase_time(RecoveryPhase p) const;
  /// Sum over every span — equals end - start for a finished trace.
  SimDuration total() const;
};

class RecoveryTracer {
 public:
  /// Begins a new trace at `now`, finishing any unfinished predecessor.
  void start(std::string label, SimTime now);

  /// Enters `phase`: the open span (if any) is closed at `now`; the new
  /// span begins at the close point, so spans tile without gaps. With no
  /// trace active, auto-starts one labelled "recovery".
  void enter(RecoveryPhase phase, SimTime now);

  /// Closes the open span at `now` (no-op when nothing is open).
  void exit(SimTime now);

  /// Ends the trace: closes any open span and stamps the end time.
  void finish(SimTime now);

  bool active() const { return active_; }
  const RecoveryTrace* current() const {
    return active_ ? &current_ : nullptr;
  }
  /// Most recent trace first is at the back; bounded history.
  const std::vector<RecoveryTrace>& history() const { return history_; }
  /// The trace to report: the active one, else the most recent finished.
  const RecoveryTrace* latest() const;

 private:
  static constexpr std::size_t kMaxHistory = 16;

  void close_span(SimTime now);
  void archive_current();

  bool active_ = false;
  bool phase_open_ = false;
  RecoveryPhase open_phase_ = RecoveryPhase::kDetection;
  SimTime cursor_ = 0;  // where the next span begins
  RecoveryTrace current_;
  std::vector<RecoveryTrace> history_;
};

/// RAII phase entry. Destruction closes the span at the then-current
/// simulated instant; an inner scope that entered a different phase first
/// is handled gracefully (the outer destructor closes whatever is open).
class PhaseScope {
 public:
  PhaseScope(RecoveryTracer* tracer, const sim::VirtualClock* clock,
             RecoveryPhase phase)
      : tracer_(tracer), clock_(clock) {
    if (tracer_ != nullptr && clock_ != nullptr) {
      tracer_->enter(phase, clock_->now());
    }
  }
  ~PhaseScope() {
    if (tracer_ != nullptr && clock_ != nullptr) tracer_->exit(clock_->now());
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  RecoveryTracer* tracer_;
  const sim::VirtualClock* clock_;
};

}  // namespace vdb::obs
