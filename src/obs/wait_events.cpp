#include "obs/wait_events.hpp"

namespace vdb::obs {

const char* to_string(WaitEvent e) {
  switch (e) {
    case WaitEvent::kLogFileSync: return "log_file_sync";
    case WaitEvent::kDbFileSequentialRead: return "db_file_sequential_read";
    case WaitEvent::kCheckpointWait: return "checkpoint_wait";
    case WaitEvent::kBufferBusy: return "buffer_busy";
    case WaitEvent::kArchiveStall: return "archive_stall";
    case WaitEvent::kRecoveryReadStall: return "recovery_read_stall";
    case WaitEvent::kFailoverWait: return "failover_wait";
    case WaitEvent::kEnqLockWait: return "enq_lock_wait";
    case WaitEvent::kOccValidateFail: return "occ_validate_fail";
    case WaitEvent::kCount: break;
  }
  return "?";
}

void WaitEventTable::add_wait(WaitEvent e, SimDuration waited) {
  Row& row = rows_[index(e)];
  row.waits.fetch_add(1, std::memory_order_relaxed);
  row.time.fetch_add(waited, std::memory_order_relaxed);
  std::uint64_t seen = row.max.load(std::memory_order_relaxed);
  while (waited > seen &&
         !row.max.compare_exchange_weak(seen, waited,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace vdb::obs
