// Oracle-style wait events (V$SYSTEM_EVENT analogue).
//
// A wait event is time a foreground or background process spent blocked on
// a specific resource, measured on the *simulated* clock: a WaitScope
// snapshots clock.now() at construction and charges the elapsed simulated
// time to its event at destruction. Because every service demand in the
// system advances the virtual clock, the scope captures exactly the
// modelled device/stall time of whatever it wraps — commit durability
// (log_file_sync), cache miss reads (db_file_sequential_read), checkpoint
// sweeps (checkpoint_wait), dirty-frame eviction (buffer_busy), and log
// switches blocked on the archiver (archive_stall).
//
// Accumulation is relaxed-atomic so replay workers may report waits
// concurrently; scopes themselves are cheap enough for hot paths (two
// clock reads + three atomic adds on close, nothing when the elapsed time
// is zero).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::obs {

enum class WaitEvent : std::uint8_t {
  kLogFileSync = 0,        // commit waiting on LGWR durability
  kDbFileSequentialRead,   // foreground cache-miss read
  kCheckpointWait,         // DBWR/CKPT sweep (full or incremental)
  kBufferBusy,             // eviction blocked writing a dirty frame
  kArchiveStall,           // log switch waiting on the archiver
  kRecoveryReadStall,      // fetch blocked on on-demand single-page redo
  kFailoverWait,           // fleet driver blocked on a shard failover
  kEnqLockWait,            // CC row-lock conflict wait (enq: TX analogue)
  kOccValidateFail,        // work discarded by an OCC validation failure
  kCount,
};
constexpr std::size_t kWaitEventCount =
    static_cast<std::size_t>(WaitEvent::kCount);

const char* to_string(WaitEvent e);

class WaitEventTable {
 public:
  void add_wait(WaitEvent e, SimDuration waited);

  std::uint64_t total_waits(WaitEvent e) const {
    return rows_[index(e)].waits.load(std::memory_order_relaxed);
  }
  SimDuration time_waited(WaitEvent e) const {
    return rows_[index(e)].time.load(std::memory_order_relaxed);
  }
  SimDuration max_wait(WaitEvent e) const {
    return rows_[index(e)].max.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t index(WaitEvent e) { return static_cast<std::size_t>(e); }

  struct Row {
    std::atomic<std::uint64_t> waits{0};
    std::atomic<std::uint64_t> time{0};
    std::atomic<std::uint64_t> max{0};
  };
  Row rows_[kWaitEventCount];
};

/// RAII wait accounting on the simulated clock. Zero-length waits (the
/// wrapped operation advanced no simulated time) are not counted, matching
/// Oracle's convention that a satisfied-from-cache operation is not a wait.
class WaitScope {
 public:
  WaitScope(WaitEventTable* table, const sim::VirtualClock* clock,
            WaitEvent event)
      : table_(table), clock_(clock), event_(event),
        start_(clock != nullptr ? clock->now() : 0) {}
  ~WaitScope() {
    if (table_ == nullptr || clock_ == nullptr) return;
    const SimTime end = clock_->now();
    if (end > start_) table_->add_wait(event_, end - start_);
  }
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  WaitEventTable* table_;
  const sim::VirtualClock* clock_;
  WaitEvent event_;
  SimTime start_;
};

}  // namespace vdb::obs
