#include "recovery/backup.hpp"

#include <algorithm>

#include "common/codec.hpp"

namespace vdb::recovery {

Result<std::uint32_t> BackupManager::take_backup(engine::Database& db) {
  // Checkpoint: every committed change reaches the datafiles, making the
  // copied images consistent as of the recovery position.
  VDB_RETURN_IF_ERROR(db.checkpoint_now());

  BackupSet set;
  set.set_id = next_set_id_++;
  set.backup_lsn = db.redo().recovery_position();

  for (const auto& file : db.storage().files()) {
    if (file.dropped) continue;
    if (file.status != storage::FileStatus::kOnline) {
      return Status{ErrorCode::kOffline,
                    "cannot back up non-online datafile: " + file.path};
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "/set%03u_file%03u.bk", set.set_id,
                  file.id.value);
    BackupFileEntry entry;
    entry.id = file.id;
    entry.original_path = file.path;
    entry.backup_path = dir_ + buf;
    VDB_RETURN_IF_ERROR(
        fs_->copy(file.path, entry.backup_path, sim::IoMode::kForeground));
    set.files.push_back(std::move(entry));
  }

  // Control-file snapshot taken after the checkpoint above.
  engine::ControlFileData control;
  control.db_name = db.config().name;
  control.clean_shutdown = false;
  control.recovery_position = set.backup_lsn;
  control.checkpoint_lsn = set.backup_lsn;
  control.next_txn_id = db.txns().next_id();
  control.archive_mode = db.config().redo.archive_mode;
  control.tablespaces = db.storage().tablespaces();
  control.datafiles = db.storage().files();
  control.catalog = db.cat();
  set.control = std::move(control);

  sets_.push_back(std::move(set));
  VDB_RETURN_IF_ERROR(persist_catalog());
  return sets_.back().set_id;
}

Status BackupManager::restore_datafile(engine::Database& db, FileId id) {
  // Newest set first.
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    for (const auto& entry : it->files) {
      if (entry.id != id) continue;
      if (!fs_->exists(entry.backup_path)) {
        return make_error(ErrorCode::kUnrecoverable,
                          "backup copy missing: " + entry.backup_path);
      }
      VDB_RETURN_IF_ERROR(fs_->copy(entry.backup_path, entry.original_path,
                                    sim::IoMode::kForeground));
      // The restored image is stale: it needs redo from the backup LSN,
      // and it may be shorter than the file had grown to.
      VDB_RETURN_IF_ERROR(db.storage().sync_file_size(id));
      VDB_RETURN_IF_ERROR(db.storage().set_recover_from(id, it->backup_lsn));
      return Status::ok();
    }
  }
  return make_error(ErrorCode::kUnrecoverable,
                    "no backup contains datafile " + std::to_string(id.value));
}

Result<Lsn> BackupManager::restore_block(engine::Database& db, PageId pid) {
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    for (const auto& entry : it->files) {
      if (entry.id != pid.file) continue;
      if (!fs_->exists(entry.backup_path)) {
        return make_error(ErrorCode::kUnrecoverable,
                          "backup copy missing: " + entry.backup_path);
      }
      const std::uint64_t offset =
          static_cast<std::uint64_t>(pid.block) * storage::Page::kSize;
      std::vector<std::uint8_t> image(storage::Page::kSize, 0);
      VDB_ASSIGN_OR_RETURN(std::uint64_t backup_size,
                           fs_->size(entry.backup_path));
      if (offset < backup_size) {
        const std::uint64_t n =
            std::min<std::uint64_t>(storage::Page::kSize, backup_size - offset);
        VDB_ASSIGN_OR_RETURN(
            std::vector<std::uint8_t> bytes,
            fs_->read(entry.backup_path, offset, n, sim::IoMode::kForeground));
        std::copy(bytes.begin(), bytes.end(), image.begin());
      }
      // else: the block did not exist at backup time — a virgin image lets
      // redo replay re-format it.
      VDB_RETURN_IF_ERROR(fs_->write(entry.original_path, offset, image,
                                     sim::IoMode::kForeground));
      (void)db;
      return it->backup_lsn;
    }
  }
  return make_error(
      ErrorCode::kUnrecoverable,
      "no backup contains datafile " + std::to_string(pid.file.value));
}

Result<BackupSet> BackupManager::restore_all(sim::SimFs& fs) {
  if (sets_.empty()) {
    return Status{ErrorCode::kUnrecoverable, "no backups exist"};
  }
  const BackupSet& set = sets_.back();
  for (const auto& entry : set.files) {
    if (!fs.exists(entry.backup_path)) {
      return Status{ErrorCode::kUnrecoverable,
                    "backup copy missing: " + entry.backup_path};
    }
    VDB_RETURN_IF_ERROR(
        fs.copy(entry.backup_path, entry.original_path,
                sim::IoMode::kForeground));
  }
  return set;
}

namespace {

void encode_set(Encoder& enc, const BackupSet& set) {
  enc.put_u32(set.set_id);
  enc.put_u64(set.backup_lsn);
  enc.put_u32(static_cast<std::uint32_t>(set.files.size()));
  for (const auto& entry : set.files) {
    enc.put_u32(entry.id.value);
    enc.put_string(entry.original_path);
    enc.put_string(entry.backup_path);
  }
  set.control.encode(enc);
}

Result<BackupSet> decode_set(Decoder& dec) {
  BackupSet set;
  auto id = dec.get_u32();
  auto lsn = dec.get_u64();
  auto count = dec.get_u32();
  if (!id.is_ok() || !lsn.is_ok() || !count.is_ok()) {
    return Status{ErrorCode::kCorruption, "bad backup set header"};
  }
  set.set_id = id.value();
  set.backup_lsn = lsn.value();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    BackupFileEntry entry;
    auto fid = dec.get_u32();
    auto orig = dec.get_string();
    if (!orig.is_ok()) return orig.status();
    auto bk = dec.get_string();
    if (!bk.is_ok()) return bk.status();
    if (!fid.is_ok()) return fid.status();
    entry.id = FileId{fid.value()};
    entry.original_path = std::move(orig).value();
    entry.backup_path = std::move(bk).value();
    set.files.push_back(std::move(entry));
  }
  auto control = engine::ControlFileData::decode(dec);
  if (!control.is_ok()) return control.status();
  set.control = std::move(control).value();
  return set;
}

}  // namespace

Status BackupManager::persist_catalog() {
  std::vector<std::uint8_t> blob;
  Encoder enc(&blob);
  enc.put_u32(next_set_id_);
  enc.put_u32(static_cast<std::uint32_t>(sets_.size()));
  for (const auto& set : sets_) encode_set(enc, set);

  if (!fs_->exists(catalog_path())) {
    VDB_RETURN_IF_ERROR(fs_->create(catalog_path()));
  }
  VDB_RETURN_IF_ERROR(fs_->truncate(catalog_path(), 0));
  return fs_->write(catalog_path(), 0, blob, sim::IoMode::kForeground,
                    /*sequential=*/true);
}

Status BackupManager::load_catalog() {
  sets_.clear();
  if (!fs_->exists(catalog_path())) return Status::ok();  // no backups yet
  auto blob = fs_->read_all(catalog_path(), sim::IoMode::kForeground);
  if (!blob.is_ok()) return blob.status();
  Decoder dec(blob.value());
  auto next_id = dec.get_u32();
  auto count = dec.get_u32();
  if (!next_id.is_ok() || !count.is_ok()) {
    return make_error(ErrorCode::kCorruption, "bad backup catalog");
  }
  next_set_id_ = next_id.value();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto set = decode_set(dec);
    if (!set.is_ok()) return set.status();
    sets_.push_back(std::move(set).value());
  }
  return Status::ok();
}

std::optional<BackupSet> BackupManager::newest() const {
  if (sets_.empty()) return std::nullopt;
  return sets_.back();
}

Status BackupManager::destroy_backups() {
  for (const std::string& path : fs_->list(dir_)) {
    VDB_RETURN_IF_ERROR(fs_->remove(path));
  }
  sets_.clear();
  return Status::ok();
}

}  // namespace vdb::recovery
