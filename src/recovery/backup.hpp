// Backup manager: consistent backups and datafile restore.
//
// A backup set holds a copy of every datafile plus the control-file
// snapshot taken right after a full checkpoint, tagged with the checkpoint
// LSN. Media recovery restores a file from the newest set and rolls it
// forward with archived + online redo from that LSN; point-in-time recovery
// restores the whole set. The backup catalog itself is persisted in the
// backup area so it survives instance crashes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/control_file.hpp"
#include "engine/database.hpp"
#include "sim/filesystem.hpp"

namespace vdb::recovery {

struct BackupFileEntry {
  FileId id{};
  std::string original_path;
  std::string backup_path;
};

struct BackupSet {
  std::uint32_t set_id = 0;
  /// Every datafile image is consistent as of this LSN.
  Lsn backup_lsn = 0;
  std::vector<BackupFileEntry> files;
  engine::ControlFileData control;
};

class BackupManager {
 public:
  BackupManager(sim::SimFs* fs, std::string backup_dir)
      : fs_(fs), dir_(std::move(backup_dir)) {}

  /// Takes a consistent backup of every datafile (checkpoint first, then
  /// copy — atomic in simulation, standing in for a hot backup with
  /// BEGIN/END BACKUP brackets). Persists the updated backup catalog.
  Result<std::uint32_t> take_backup(engine::Database& db);

  /// Copies one datafile back from the newest backup set containing it and
  /// marks it as needing recovery from the backup LSN.
  Status restore_datafile(engine::Database& db, FileId id);

  /// Block media recovery restore step: copies just one block's image out
  /// of the newest backup set into the live datafile (which stays online)
  /// and returns the LSN to roll that block forward from. A block past the
  /// backup image's end restores as a virgin page for redo to re-format.
  Result<Lsn> restore_block(engine::Database& db, PageId pid);

  /// Restores every datafile of the newest set into place (point-in-time
  /// recovery), returning that set.
  Result<BackupSet> restore_all(sim::SimFs& fs);

  /// Loads the backup catalog from the backup area (after a crash).
  Status load_catalog();

  std::optional<BackupSet> newest() const;
  const std::vector<BackupSet>& sets() const { return sets_; }

  /// Operator fault: destroy all backups ("backups missing to allow
  /// recovery").
  Status destroy_backups();

 private:
  Status persist_catalog();
  std::string catalog_path() const { return dir_ + "/backup_catalog.bk"; }

  sim::SimFs* fs_;
  std::string dir_;
  std::vector<BackupSet> sets_;
  std::uint32_t next_set_id_ = 1;
};

}  // namespace vdb::recovery
