#include "recovery/recovery_manager.hpp"

#include <algorithm>
#include <optional>
#include <vector>
#include <cstdio>

#include "common/codec.hpp"

namespace vdb::recovery {

std::function<bool(const wal::LogRecord&)> file_filter(FileId id) {
  return [id](const wal::LogRecord& rec) {
    switch (rec.type) {
      case wal::LogRecordType::kFormatPage:
        return rec.page.file == id;
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
      case wal::LogRecordType::kDelete:
        return rec.dml.rid.page.file == id;
      default:
        return false;
    }
  };
}

std::function<bool(const wal::LogRecord&)> page_filter(PageId id) {
  return [id](const wal::LogRecord& rec) {
    switch (rec.type) {
      case wal::LogRecordType::kFormatPage:
        return rec.page == id;
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kUpdate:
      case wal::LogRecordType::kDelete:
        return rec.dml.rid.page == id;
      default:
        return false;
    }
  };
}

std::function<bool(const wal::LogRecord&)> stop_before_drop_table(
    const std::string& name) {
  return [name](const wal::LogRecord& rec) {
    return rec.type == wal::LogRecordType::kDropTable && rec.name == name;
  };
}

std::function<bool(const wal::LogRecord&)> stop_before_drop_tablespace(
    const std::string& name) {
  return [name](const wal::LogRecord& rec) {
    return rec.type == wal::LogRecordType::kDropTablespace &&
           rec.name == name;
  };
}

namespace {

struct LogSource {
  std::uint64_t seq = 0;
  Lsn start_lsn = kInvalidLsn;
  bool is_archive = false;
  std::string archive_path;       // when is_archive
  std::uint32_t group_index = 0;  // when !is_archive
};

constexpr size_t kGroupHeaderSize = 20;

/// Reads just the 20-byte header of a log file.
Result<std::pair<std::uint64_t, Lsn>> read_log_header(sim::SimFs& fs,
                                                      const std::string& path) {
  auto bytes = fs.read(path, 0, kGroupHeaderSize, sim::IoMode::kForeground);
  if (!bytes.is_ok()) return bytes.status();
  Decoder dec(bytes.value());
  auto magic = dec.get_u32();
  auto seq = dec.get_u64();
  auto start = dec.get_u64();
  if (!magic.is_ok() || !seq.is_ok() || !start.is_ok()) {
    char detail[64];
    std::snprintf(detail, sizeof(detail),
                  " (offset 0, %zu-byte header, magic=%08x)", kGroupHeaderSize,
                  magic.is_ok() ? magic.value() : 0u);
    return Status{ErrorCode::kCorruption, "bad log header: " + path + detail};
  }
  return std::make_pair(seq.value(), start.value());
}

/// Tiles `phase` into the trace the harness (or startup) opened at the
/// failure instant. No active trace -> no-op, so plain unit-test
/// recoveries stay untraced.
void enter_phase(engine::Database& db, obs::RecoveryPhase phase) {
  obs::RecoveryTracer& tracer = db.obs().tracer();
  if (tracer.active()) tracer.enter(phase, db.clock().now());
}

}  // namespace

Result<RecoveryReport> RecoveryManager::replay_from(
    engine::Database& db, Lsn from,
    const std::function<bool(const wal::LogRecord&)>& should_apply,
    const std::function<bool(const wal::LogRecord&)>& stop_before) {
  sim::SimFs& fs = db.host().fs();
  const engine::CostModel& cost = db.config().cost;
  enter_phase(db, obs::RecoveryPhase::kRedo);

  // Enumerate candidate sources: every archived log plus every live online
  // group, deduplicated by sequence number (an online group that was
  // already archived carries the same records; prefer the archive, which is
  // what a DBA's RECOVER session reads).
  std::vector<LogSource> sources;
  for (const std::string& path :
       fs.list(db.config().redo.archive_dir + "/arch_")) {
    auto header = read_log_header(fs, path);
    if (!header.is_ok()) continue;  // corrupt archive: unreadable, skip
    LogSource src;
    src.seq = header.value().first;
    src.start_lsn = header.value().second;
    src.is_archive = true;
    src.archive_path = path;
    sources.push_back(std::move(src));
  }
  for (const auto& group : db.redo().groups()) {
    if (group.seq == 0) continue;
    const bool have_archive =
        std::any_of(sources.begin(), sources.end(),
                    [&](const LogSource& s) { return s.seq == group.seq; });
    if (have_archive) continue;
    LogSource src;
    src.seq = group.seq;
    src.start_lsn = group.start_lsn;
    src.is_archive = false;
    src.group_index = group.index;
    sources.push_back(std::move(src));
  }
  std::sort(sources.begin(), sources.end(),
            [](const LogSource& a, const LogSource& b) { return a.seq < b.seq; });

  RecoveryReport report;
  report.recovered_to = from;

  // Locate the source containing `from`: the last one starting at or below
  // it.
  std::optional<size_t> first;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].start_lsn <= from) first = i;
  }
  if (!first.has_value()) {
    if (sources.empty() || from >= db.redo().next_lsn()) {
      return report;  // nothing to apply
    }
    report.complete = false;  // redo chain starts after `from`: gap
    return report;
  }

  bool stopped = false;
  Status inner = Status::ok();
  std::uint64_t expected_seq = sources[*first].seq;

  // Two-phase replay: the scan stages page records into the plan; drains
  // apply them partitioned by page across workers (VDB_JOBS). Counters and
  // skip diagnostics accumulate serially, so the report is byte-identical
  // at any worker count.
  auto note_skip = [&](Lsn lsn, const Status& st) {
    report.records_skipped += 1;
    if (report.records_skipped <= 4) {
      std::fprintf(stderr, "[recovery] skipped record lsn=%llu: %s\n",
                   static_cast<unsigned long long>(lsn),
                   st.to_string().c_str());
    }
  };
  engine::RedoApplyPlan plan = db.make_replay_plan(note_skip);
  auto drain_plan = [&]() -> Status {
    auto stats = plan.drain();
    if (!stats.is_ok()) return stats.status();
    report.records_applied += stats.value().applied;
    return Status::ok();
  };

  for (size_t i = *first; i < sources.size() && !stopped; ++i) {
    const LogSource& src = sources[i];
    if (src.seq != expected_seq) {
      // Missing sequence (deleted archive / overwritten group): the chain
      // is broken; recovery cannot proceed past this point.
      VDB_RETURN_IF_ERROR(drain_plan());
      report.complete = false;
      return report;
    }
    expected_seq += 1;

    auto handle_record = [&](const wal::LogRecord& rec) {
      if (stop_before && stop_before(rec)) {
        stopped = true;
        return false;
      }
      db.clock().advance_by(cost.cpu_per_replay_record);
      if (rec.lsn < from) return true;
      if (!should_apply || should_apply(rec)) {
        if (engine::RedoApplyPlan::wants(rec.type)) {
          plan.stage(rec);
        } else {
          // Serial barrier: DDL and transaction bookkeeping records must
          // see every staged page change applied before they run.
          Status st = drain_plan();
          if (st.is_ok()) st = db.apply_record(rec);
          if (!st.is_ok()) {
            if (st.code() != ErrorCode::kOffline &&
                st.code() != ErrorCode::kMediaFailure &&
                st.code() != ErrorCode::kNotFound &&
                st.code() != ErrorCode::kCorruption) {
              inner = st;
              return false;
            }
            note_skip(rec.lsn, st);
          } else {
            report.records_applied += 1;
          }
        }
      }
      report.recovered_to = std::max(report.recovered_to, rec.lsn);
      return true;
    };

    if (src.is_archive) {
      db.clock().advance_by(cost.archive_file_overhead);
      auto bytes = fs.read_all(src.archive_path, sim::IoMode::kForeground);
      if (!bytes.is_ok()) {
        VDB_RETURN_IF_ERROR(drain_plan());
        report.complete = false;  // archive unreadable (corrupted)
        return report;
      }
      report.archives_read += 1;
      VDB_RETURN_IF_ERROR(wal::parse_records(
          std::span<const std::uint8_t>(bytes.value())
              .subspan(kGroupHeaderSize),
          handle_record));
    } else {
      auto member = db.redo().intact_member(src.group_index);
      if (!member.is_ok()) {
        VDB_RETURN_IF_ERROR(drain_plan());
        report.complete = false;  // every member of a needed group lost
        return report;
      }
      auto bytes = fs.read_all(member.value(), sim::IoMode::kForeground);
      if (!bytes.is_ok()) return bytes.status();
      VDB_RETURN_IF_ERROR(wal::parse_records(
          std::span<const std::uint8_t>(bytes.value())
              .subspan(kGroupHeaderSize),
          handle_record));
    }
    if (!inner.is_ok()) return inner;
  }
  VDB_RETURN_IF_ERROR(drain_plan());

  if (stopped) report.complete = false;
  return report;
}

Result<RecoveryReport> RecoveryManager::recover_datafile(engine::Database& db,
                                                         FileId id) {
  const engine::CostModel& cost = db.config().cost;
  db.set_recovering(true);
  enter_phase(db, obs::RecoveryPhase::kRestore);

  // The cache may still hold (clean) frames of the failed file; they are
  // newer than the image about to be restored, and replaying against them
  // would skip work the restored file needs — in particular page formats,
  // whose replay re-establishes the file's allocation high-water mark.
  db.storage().cache().discard_file(id);

  // 1. Restore the file image from the newest backup.
  db.clock().advance_by(cost.restore_file_overhead);
  Status st = backups_->restore_datafile(db, id);
  if (!st.is_ok()) {
    db.set_recovering(false);
    return st;
  }
  auto info = db.storage().file_info(id);
  if (!info.is_ok()) {
    db.set_recovering(false);
    return info.status();
  }

  // 2. Roll forward from the backup LSN with redo touching this file.
  auto report = replay_from(db, info.value()->recover_from, file_filter(id),
                            nullptr);
  if (!report.is_ok()) {
    db.set_recovering(false);
    return report;
  }
  if (!report.value().complete) {
    db.set_recovering(false);
    return Status{ErrorCode::kUnrecoverable,
                  "redo chain incomplete for datafile recovery"};
  }
  report.value().files_restored = 1;

  // 3. Clear the recovery requirement and bring the file online.
  enter_phase(db, obs::RecoveryPhase::kOpen);
  VDB_RETURN_IF_ERROR(db.storage().set_recover_from(id, kInvalidLsn));
  db.set_recovering(false);
  VDB_RETURN_IF_ERROR(db.alter_datafile_online(id));
  // 4. Finish transactions stranded mid-rollback by the media failure.
  VDB_RETURN_IF_ERROR(db.resolve_in_doubt_transactions());
  // Recovery is only complete once every replayed change can survive a
  // subsequent crash.
  VDB_RETURN_IF_ERROR(db.checkpoint_now());
  report.value().recovered_to = db.redo().flushed_lsn();
  return report;
}

Result<RecoveryReport> RecoveryManager::recover_datafile_online(
    engine::Database& db, FileId id) {
  auto info = db.storage().file_info(id);
  if (!info.is_ok()) return info.status();
  if (info.value()->recover_from == kInvalidLsn) {
    // Nothing to roll forward.
    VDB_RETURN_IF_ERROR(db.alter_datafile_online(id));
    RecoveryReport report;
    report.recovered_to = db.redo().flushed_lsn();
    return report;
  }

  db.set_recovering(true);
  auto report = replay_from(db, info.value()->recover_from, file_filter(id),
                            nullptr);
  if (!report.is_ok()) {
    db.set_recovering(false);
    return report;
  }
  if (!report.value().complete) {
    db.set_recovering(false);
    return Status{ErrorCode::kUnrecoverable,
                  "redo chain incomplete for offline datafile"};
  }
  enter_phase(db, obs::RecoveryPhase::kOpen);
  VDB_RETURN_IF_ERROR(db.storage().set_recover_from(id, kInvalidLsn));
  db.set_recovering(false);
  VDB_RETURN_IF_ERROR(db.alter_datafile_online(id));
  VDB_RETURN_IF_ERROR(db.resolve_in_doubt_transactions());
  report.value().recovered_to = db.redo().flushed_lsn();
  return report;
}

Result<RecoveryReport> RecoveryManager::recover_block(engine::Database& db,
                                                      PageId pid) {
  const engine::CostModel& cost = db.config().cost;

  // A cached copy of the block (clean or damaged) would mask the restored
  // image the roll-forward is about to build.
  enter_phase(db, obs::RecoveryPhase::kRestore);
  db.storage().cache().discard_page(pid);

  // 1. Restore just this block's image from the newest backup.
  db.clock().advance_by(cost.restore_block_overhead);
  VDB_ASSIGN_OR_RETURN(Lsn from, backups_->restore_block(db, pid));

  // 2. Roll the single block forward through archived + online redo. The
  //    page filter selects only page-change records, so no DDL barriers
  //    fire and the datafile — and the instance — stay fully available.
  auto report = replay_from(db, from, page_filter(pid), nullptr);
  if (!report.is_ok()) return report;
  if (!report.value().complete) {
    return Status{ErrorCode::kUnrecoverable,
                  "redo chain incomplete for block recovery at " +
                      vdb::to_string(pid)};
  }
  report.value().blocks_restored = 1;

  // 3. Make the repair durable: the rebuild scan and later reads hit the
  //    raw datafile, not just the cache.
  enter_phase(db, obs::RecoveryPhase::kOpen);
  auto flush = db.storage().cache().flush_file(pid.file);
  if (!flush.failures.empty()) return flush.failures.front().second;
  db.storage().clear_corrupt_block(pid);
  report.value().recovered_to = db.redo().flushed_lsn();
  return report;
}

Result<RecoveryManager::PitResult> RecoveryManager::point_in_time_recover(
    const engine::DatabaseConfig& cfg,
    const std::function<bool(const wal::LogRecord&)>& stop_before,
    const std::function<void(engine::Database&)>& pre_open) {
  sim::SimFs& fs = host_->fs();
  const engine::CostModel& cost = cfg.cost;

  // 1. Restore every datafile from the newest backup.
  auto set = backups_->restore_all(fs);
  if (!set.is_ok()) return set.status();
  scheduler_->clock().advance_by(cost.restore_file_overhead *
                                 set.value().files.size());

  // 2. New incarnation, mounted from the backup's control snapshot; online
  //    redo of the crashed incarnation is still readable for the tail.
  auto db = std::make_unique<engine::Database>(host_, scheduler_, cfg);
  enter_phase(*db, obs::RecoveryPhase::kRestore);
  scheduler_->clock().advance_by(cost.instance_startup);
  VDB_RETURN_IF_ERROR(db->mount_from_control(set.value().control));
  if (pre_open) pre_open(*db);  // application hooks (index rebuild, ...)
  VDB_RETURN_IF_ERROR(db->redo().open_existing());
  db->set_recovering(true);

  // 3. Roll forward, stopping just before the offending DDL.
  auto report =
      replay_from(*db, set.value().backup_lsn, nullptr, stop_before);
  if (!report.is_ok()) return report.status();
  report.value().files_restored = set.value().files.size();

  // 4. RESETLOGS: the new incarnation's redo starts above everything the
  //    old one ever wrote, so stale archives can never be confused with new
  //    redo.
  db->set_recovering(false);
  enter_phase(*db, obs::RecoveryPhase::kOpen);
  const Lsn reset_at = db->redo().next_lsn() + (1u << 20);
  VDB_RETURN_IF_ERROR(db->redo().resetlogs(reset_at));
  VDB_RETURN_IF_ERROR(db->open_after_external_recovery());

  PitResult result;
  result.db = std::move(db);
  result.report = std::move(report).value();
  result.report.complete = false;  // point-in-time recovery loses the tail
  return result;
}

Result<RecoveryManager::PitResult> RecoveryManager::restore_to_backup(
    const engine::DatabaseConfig& cfg,
    const std::function<void(engine::Database&)>& pre_open) {
  // Stop predicate that fires immediately: restore only, no roll-forward.
  auto stop_everything = [](const wal::LogRecord&) { return true; };
  return point_in_time_recover(cfg, stop_everything, pre_open);
}

Result<std::unique_ptr<engine::Database>> RecoveryManager::restart_instance(
    const engine::DatabaseConfig& cfg) {
  auto db = std::make_unique<engine::Database>(host_, scheduler_, cfg);
  VDB_RETURN_IF_ERROR(db->startup());
  return db;
}

}  // namespace vdb::recovery
