// Recovery manager: Oracle-style complete and incomplete recovery built on
// backups plus the archived + online redo stream.
//
// The recovery procedures here are the ones the paper's faultload triggers:
//  - crash restart (instance recovery)          — Shutdown abort
//  - datafile media recovery (restore + roll)   — Delete datafile
//  - offline-datafile roll-forward              — Set datafile offline
//  - tablespace online                          — Set tablespace offline
//  - point-in-time (incomplete) recovery        — Delete tablespace /
//                                                 Delete user's object
// Complete recovery loses nothing; incomplete recovery stops just before
// the offending DDL record and loses every transaction committed after
// that point — exactly the paper's complete/incomplete split (Tables 4-5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/database.hpp"
#include "recovery/backup.hpp"
#include "sim/host.hpp"
#include "sim/scheduler.hpp"
#include "wal/log_record.hpp"

namespace vdb::recovery {

struct RecoveryReport {
  /// Database state is current up to this LSN after recovery; committed
  /// transactions whose commit record lies above it are lost.
  Lsn recovered_to = 0;
  bool complete = true;
  std::uint64_t records_applied = 0;
  /// Records whose apply failed against an offline/missing file (their
  /// files are recovered separately).
  std::uint64_t records_skipped = 0;
  std::uint64_t archives_read = 0;
  std::uint64_t files_restored = 0;
  /// Single blocks repaired by online block media recovery.
  std::uint64_t blocks_restored = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(sim::Host* host, sim::Scheduler* scheduler,
                  BackupManager* backups)
      : host_(host), scheduler_(scheduler), backups_(backups) {}

  /// Complete media recovery of a deleted/corrupted datafile on an open
  /// instance: restore from backup, roll forward from the backup LSN using
  /// archived + online redo, bring online. Fails with kUnrecoverable when
  /// the redo chain has a gap (e.g. NOARCHIVELOG and the online logs have
  /// wrapped since the backup).
  Result<RecoveryReport> recover_datafile(engine::Database& db, FileId id);

  /// Rolls an offline datafile forward from its recover_from position and
  /// brings it online (no restore needed).
  Result<RecoveryReport> recover_datafile_online(engine::Database& db,
                                                 FileId id);

  /// Online block media recovery (RMAN BLOCKRECOVER analogue): restores one
  /// confirmed-corrupt block from the newest backup and rolls just that
  /// block forward through archived + online redo. The datafile stays
  /// online throughout — other transactions keep committing. Also usable
  /// from the post-recovery startup hook to repair torn writes before the
  /// rebuild scan.
  Result<RecoveryReport> recover_block(engine::Database& db, PageId pid);

  /// Point-in-time (incomplete) recovery: restore every datafile from the
  /// newest backup, replay archived + online redo and stop immediately
  /// before the first record matching `stop_before`, then RESETLOGS and
  /// open. Returns the new instance.
  struct PitResult {
    std::unique_ptr<engine::Database> db;
    RecoveryReport report;
  };
  Result<PitResult> point_in_time_recover(
      const engine::DatabaseConfig& cfg,
      const std::function<bool(const wal::LogRecord&)>& stop_before,
      const std::function<void(engine::Database&)>& pre_open = {});

  /// Last resort when no redo chain exists: restore the backup and open
  /// with RESETLOGS, losing everything since the backup.
  Result<PitResult> restore_to_backup(
      const engine::DatabaseConfig& cfg,
      const std::function<void(engine::Database&)>& pre_open = {});

  /// Crash restart: new incarnation over the same host; startup() performs
  /// instance recovery.
  Result<std::unique_ptr<engine::Database>> restart_instance(
      const engine::DatabaseConfig& cfg);

 private:
  /// Applies records with lsn >= from, in order, from archives then online
  /// groups. `should_apply` filters (nullptr = apply everything);
  /// `stop_before` ends the replay without applying the matching record
  /// (nullptr = never stop). Detects redo-chain gaps via group sequence
  /// continuity.
  Result<RecoveryReport> replay_from(
      engine::Database& db, Lsn from,
      const std::function<bool(const wal::LogRecord&)>& should_apply,
      const std::function<bool(const wal::LogRecord&)>& stop_before);

  sim::Host* host_;
  sim::Scheduler* scheduler_;
  BackupManager* backups_;
};

/// Filter: records that touch one datafile (page formats + row changes).
std::function<bool(const wal::LogRecord&)> file_filter(FileId id);

/// Filter: records that touch one page (its format + its row changes).
std::function<bool(const wal::LogRecord&)> page_filter(PageId id);

/// Stop predicates for the paper's incomplete-recovery faults.
std::function<bool(const wal::LogRecord&)> stop_before_drop_table(
    const std::string& name);
std::function<bool(const wal::LogRecord&)> stop_before_drop_tablespace(
    const std::string& name);

}  // namespace vdb::recovery
