#include "sim/disk.hpp"

namespace vdb::sim {

SimTime Disk::submit(SimTime now, std::uint64_t bytes, bool sequential) {
  const SimTime start = std::max(now, busy_until_);
  const SimDuration seek =
      sequential ? params_.sequential_seek_time : params_.seek_time;
  const SimDuration transfer =
      bytes * kSecond / params_.bandwidth_bytes_per_sec;
  const SimTime done = start + seek + transfer;
  busy_until_ = done;
  stats_.requests += 1;
  stats_.bytes += bytes;
  stats_.busy_time += seek + transfer;
  return done;
}

}  // namespace vdb::sim
