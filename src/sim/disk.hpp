// Simulated disk with a FIFO service-time model.
//
// Each device serializes requests: a request arriving at time t starts at
// max(t, busy_until) and takes seek + size/bandwidth. Foreground (blocking)
// I/O advances the caller's clock to completion; background I/O (DBWR
// flushes, archiver copies) occupies the device without blocking the caller,
// which is what makes checkpoint and archive activity degrade transaction
// throughput — the effect behind the paper's Figures 4–6.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace vdb::sim {

/// Device parameters. Defaults approximate a year-2000 7200rpm disk, the
/// class of hardware in the paper's testbed.
struct DiskParams {
  SimDuration seek_time = 8 * kMillisecond;      // per random request
  std::uint64_t bandwidth_bytes_per_sec = 20ull * 1024 * 1024;
  /// Sequential requests (append-style) pay a reduced seek.
  SimDuration sequential_seek_time = 500 * kMicrosecond;
};

struct DiskStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  SimDuration busy_time = 0;
  /// Requests that failed with a transient device error (fault injection).
  std::uint64_t transient_errors = 0;
};

class Disk {
 public:
  Disk(DiskId id, std::string name, DiskParams params = {})
      : id_(id), name_(std::move(name)), params_(params) {}

  DiskId id() const { return id_; }
  const std::string& name() const { return name_; }
  const DiskStats& stats() const { return stats_; }
  const DiskParams& params() const { return params_; }

  /// Submits a request at time `now`; returns its completion time. The
  /// device is busy until then. `sequential` selects the reduced seek.
  SimTime submit(SimTime now, std::uint64_t bytes, bool sequential);

  /// Time the device frees up (for diagnostics).
  SimTime busy_until() const { return busy_until_; }

  void reset_stats() { stats_ = {}; }

  /// Records a transiently failed request (counted, not charged: the device
  /// errored out instead of doing the transfer).
  void note_transient_error() { ++stats_.transient_errors; }

 private:
  DiskId id_;
  std::string name_;
  DiskParams params_;
  SimTime busy_until_{0};
  DiskStats stats_;
};

}  // namespace vdb::sim
