#include "sim/filesystem.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace vdb::sim {

void SimFs::mount(std::string prefix, Disk* disk) {
  VDB_CHECK(disk != nullptr);
  mounts_[std::move(prefix)] = disk;
}

Disk* SimFs::disk_for(std::string_view path) const {
  // mounts_ is sorted descending, so the first prefix match is the longest.
  for (const auto& [prefix, disk] : mounts_) {
    if (path.substr(0, prefix.size()) == prefix) return disk;
  }
  return nullptr;
}

Status SimFs::create(const std::string& path) {
  if (files_.contains(path)) {
    return make_error(ErrorCode::kAlreadyExists, "file exists: " + path);
  }
  Disk* disk = disk_for(path);
  if (disk == nullptr) {
    return make_error(ErrorCode::kInvalidArgument, "no mount for: " + path);
  }
  files_[path] = File{disk, {}, 0, {}, kNoTear};
  return Status::ok();
}

bool SimFs::exists(const std::string& path) const {
  return files_.contains(path);
}

Status SimFs::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return make_error(ErrorCode::kNotFound, "no such file: " + path);
  }
  return Status::ok();
}

namespace {

/// End of [offset, offset+len) with saturation (len may be kWholeFile).
std::uint64_t range_end(std::uint64_t offset, std::uint64_t len) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  return len > kMax - offset ? kMax : offset + len;
}

}  // namespace

Status SimFs::corrupt_range(const std::string& path, std::uint64_t offset,
                            std::uint64_t len) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  if (len == 0) return Status::ok();
  file.value()->corrupt.push_back(CorruptRange{offset, len});
  return Status::ok();
}

Status SimFs::corrupt(const std::string& path) {
  return corrupt_range(path, 0, kWholeFile);
}

bool SimFs::is_corrupted(const std::string& path) const {
  auto file = find(path);
  return file.is_ok() && !file.value()->corrupt.empty();
}

Status SimFs::flip_bits(const std::string& path, std::uint64_t offset,
                        std::uint64_t len, std::uint64_t seed) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  File& f = *file.value();
  if (offset >= f.data.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flip_bits past end of " + path);
  }
  const std::uint64_t end = std::min<std::uint64_t>(range_end(offset, len),
                                                    f.data.size());
  Rng rng(seed);
  for (std::uint64_t i = offset; i < end; ++i) {
    f.data[i] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
  }
  return Status::ok();
}

Status SimFs::tear_next_write(const std::string& path,
                              std::uint64_t keep_bytes) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  file.value()->torn_keep = keep_bytes;
  return Status::ok();
}

void SimFs::inject_transient_errors(std::string prefix, SimTime until,
                                    double probability, std::uint64_t seed) {
  transient_ = TransientFault{std::move(prefix), until, probability,
                              Rng(seed)};
}

void SimFs::clear_transient_errors() { transient_.reset(); }

bool SimFs::transient_hit(const std::string& path, Disk* disk) {
  if (!transient_.has_value()) return false;
  if (clock_->now() > transient_->until) {
    transient_.reset();  // the glitch window has passed
    return false;
  }
  const std::string& prefix = transient_->prefix;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  if (!transient_->rng.chance(transient_->probability)) return false;
  if (disk != nullptr) disk->note_transient_error();
  return true;
}

const SimFs::CorruptRange* SimFs::overlap(const File& f, std::uint64_t offset,
                                          std::uint64_t len) {
  const std::uint64_t end = range_end(offset, len);
  for (const CorruptRange& r : f.corrupt) {
    const std::uint64_t rend = range_end(r.offset, r.len);
    if (r.offset < end && offset < rend) return &r;
  }
  return nullptr;
}

void SimFs::heal(File& f, std::uint64_t offset, std::uint64_t end) {
  std::vector<CorruptRange> keep;
  for (const CorruptRange& r : f.corrupt) {
    const std::uint64_t rend = range_end(r.offset, r.len);
    if (rend <= offset || r.offset >= end) {
      keep.push_back(r);
      continue;
    }
    if (r.offset < offset) keep.push_back(CorruptRange{r.offset, offset - r.offset});
    if (rend > end) keep.push_back(CorruptRange{end, rend - end});
  }
  f.corrupt = std::move(keep);
}

Result<std::uint64_t> SimFs::size(const std::string& path) const {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  return static_cast<std::uint64_t>(file.value()->data.size());
}

void SimFs::charge(Disk* disk, std::uint64_t bytes, IoMode mode,
                   bool sequential) {
  const SimTime before = clock_->now();
  const SimTime done = disk->submit(before, bytes, sequential);
  if (mode == IoMode::kForeground) {
    // Diagnostic: long foreground waits (device contention) when tracing.
    if (done - before > 100 * kMillisecond &&
        std::getenv("VDB_TRACE_WAIT") != nullptr) {
      std::fprintf(stderr, "[wait] disk=%s %llu us\n", disk->name().c_str(),
                   static_cast<unsigned long long>(done - before));
    }
    clock_->advance_to(done);
  }
}

Status SimFs::write(const std::string& path, std::uint64_t offset,
                    std::span<const std::uint8_t> data, IoMode mode,
                    bool sequential) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  File& f = *file.value();
  if (transient_hit(path, f.disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient write error on " + path);
  }
  // An armed torn write persists only its sector prefix; the caller still
  // sees OK (the OS acknowledged from cache before the crash).
  std::uint64_t persisted = data.size();
  if (f.torn_keep != kNoTear) {
    persisted = std::min<std::uint64_t>(f.torn_keep, data.size());
    f.torn_keep = kNoTear;
  }
  if (f.data.size() < offset + data.size()) f.data.resize(offset + data.size());
  std::copy(data.begin(), data.begin() + static_cast<long>(persisted),
            f.data.begin() + static_cast<long>(offset));
  heal(f, offset, offset + persisted);
  f.charged = std::max<std::uint64_t>(f.charged, f.data.size());
  charge(f.disk, data.size(), mode, sequential);
  return Status::ok();
}

Status SimFs::append(const std::string& path,
                     std::span<const std::uint8_t> data, IoMode mode,
                     std::uint64_t charge_bytes) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  File& f = *file.value();
  if (transient_hit(path, f.disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient write error on " + path);
  }
  f.data.insert(f.data.end(), data.begin(), data.end());
  const std::uint64_t charged =
      charge_bytes == kChargeActual ? data.size() : charge_bytes;
  f.charged += charged;
  charge(f.disk, charged, mode, /*sequential=*/true);
  return Status::ok();
}

Result<std::uint64_t> SimFs::charged_size(const std::string& path) const {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  return file.value()->charged;
}

Result<std::vector<std::uint8_t>> SimFs::read(const std::string& path,
                                              std::uint64_t offset,
                                              std::uint64_t len, IoMode mode,
                                              bool sequential) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  File& f = *file.value();
  if (transient_hit(path, f.disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient read error on " + path);
  }
  if (const CorruptRange* r = overlap(f, offset, len)) {
    return make_error(ErrorCode::kCorruption,
                      "corrupted file: " + path + " at offset " +
                          std::to_string(r->offset) +
                          (r->len == kWholeFile
                               ? std::string(" (whole file)")
                               : " (" + std::to_string(r->len) + " bytes)"));
  }
  if (offset + len > f.data.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "read past end of " + path);
  }
  std::vector<std::uint8_t> out(
      f.data.begin() + static_cast<long>(offset),
      f.data.begin() + static_cast<long>(offset + len));
  charge(f.disk, len, mode, sequential);
  return out;
}

Result<std::vector<std::uint8_t>> SimFs::read_all(const std::string& path,
                                                  IoMode mode) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  File& f = *file.value();
  if (transient_hit(path, f.disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient read error on " + path);
  }
  if (const CorruptRange* r = overlap(f, 0, kWholeFile)) {
    return make_error(ErrorCode::kCorruption,
                      "corrupted file: " + path + " at offset " +
                          std::to_string(r->offset) +
                          (r->len == kWholeFile
                               ? std::string(" (whole file)")
                               : " (" + std::to_string(r->len) + " bytes)"));
  }
  std::vector<std::uint8_t> out = f.data;
  charge(f.disk, f.charged, mode, /*sequential=*/true);
  return out;
}

Status SimFs::truncate(const std::string& path, std::uint64_t new_size) {
  auto file = find(path);
  if (!file.is_ok()) return file.status();
  file.value()->data.resize(new_size);
  file.value()->charged = new_size;
  // Bytes past the new end no longer exist; drop their corrupt ranges.
  heal(*file.value(), new_size, ~std::uint64_t{0});
  return Status::ok();
}

Status SimFs::copy(const std::string& src, const std::string& dst,
                   IoMode mode) {
  auto sfile = find(src);
  if (!sfile.is_ok()) return sfile.status();
  if (const CorruptRange* r = overlap(*sfile.value(), 0, kWholeFile)) {
    return make_error(ErrorCode::kCorruption,
                      "corrupted file: " + src + " at offset " +
                          std::to_string(r->offset));
  }
  if (transient_hit(src, sfile.value()->disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient read error on " + src);
  }
  if (!files_.contains(dst)) {
    VDB_RETURN_IF_ERROR(create(dst));
  }
  // Re-find src: create() may have invalidated the iterator's referent map
  // node ordering (std::map nodes are stable, but be explicit and safe).
  File& s = *find(src).value();
  File& d = *find(dst).value();
  if (transient_hit(dst, d.disk)) {
    return make_error(ErrorCode::kTransientIo,
                      "transient write error on " + dst);
  }
  d.data = s.data;
  d.charged = s.charged;
  d.corrupt.clear();
  d.torn_keep = kNoTear;
  charge(s.disk, s.charged, mode, /*sequential=*/true);
  charge(d.disk, d.charged, mode, /*sequential=*/true);
  return Status::ok();
}

std::vector<std::string> SimFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<SimFs::File*> SimFs::find(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return make_error(ErrorCode::kNotFound, "no such file: " + path);
  }
  return &it->second;
}

Result<const SimFs::File*> SimFs::find(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return make_error(ErrorCode::kNotFound, "no such file: " + path);
  }
  return &it->second;
}

}  // namespace vdb::sim
