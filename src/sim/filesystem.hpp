// Simulated filesystem.
//
// Database files (control file, datafiles, online redo logs, archived logs,
// backups) live here as named byte arrays placed on simulated disks via
// mount points. This is also the surface the fault injector uses: operator
// faults are real remove()/corrupt_range() calls, and the storage faultload
// (silent bit flips, torn writes, transient device errors) mangles the same
// byte arrays the engine persists to.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/disk.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {

/// Foreground I/O blocks the caller (advances the shared clock to request
/// completion); background I/O only occupies the device.
enum class IoMode { kForeground, kBackground };

class SimFs {
 public:
  explicit SimFs(VirtualClock* clock) : clock_(clock) {}

  /// Routes paths with this prefix to `disk`. Longest-prefix match wins.
  /// Disks are owned by the caller and must outlive the filesystem.
  void mount(std::string prefix, Disk* disk);

  Status create(const std::string& path);
  bool exists(const std::string& path) const;
  Status remove(const std::string& path);

  static constexpr std::uint64_t kWholeFile = ~std::uint64_t{0};

  /// Marks [offset, offset+len) corrupted; reads overlapping the range fail
  /// with kCorruption. Models an operator (or firmware) mangling bytes in
  /// place in a way the device itself reports. Overwriting the bytes heals
  /// the overlapped portion of the range.
  Status corrupt_range(const std::string& path, std::uint64_t offset,
                       std::uint64_t len);

  /// Whole-file corruption (legacy operator-fault surface).
  Status corrupt(const std::string& path);
  bool is_corrupted(const std::string& path) const;

  /// Silent fault: XORs each byte of [offset, offset+len) with a non-zero
  /// mask drawn from a seeded Rng. Reads keep succeeding — only a content
  /// checksum can tell the data went bad.
  Status flip_bits(const std::string& path, std::uint64_t offset,
                   std::uint64_t len, std::uint64_t seed);

  /// Arms a torn write: the NEXT write() to `path` persists only the first
  /// `keep_bytes` bytes of its buffer (the sectors that hit the platter
  /// before the crash), then the arm clears. The caller still sees OK — the
  /// OS acknowledged the write from its cache.
  Status tear_next_write(const std::string& path, std::uint64_t keep_bytes);

  /// Probabilistic transient device errors: until the virtual clock passes
  /// `until`, each read/write touching a path with this prefix fails with
  /// kTransientIo with probability `probability` (seeded, reproducible).
  void inject_transient_errors(std::string prefix, SimTime until,
                               double probability, std::uint64_t seed);
  void clear_transient_errors();

  Result<std::uint64_t> size(const std::string& path) const;

  /// Writes (extending the file if needed) at `offset`.
  Status write(const std::string& path, std::uint64_t offset,
               std::span<const std::uint8_t> data, IoMode mode,
               bool sequential = false);

  /// `charge_bytes` lets the caller account more bytes than are physically
  /// stored: redo records carry realistic logical sizes (Oracle redo entries
  /// are far larger than our compact encodings) without materializing pad
  /// bytes. Defaults to data.size(). The file's charged size drives the I/O
  /// cost of later read_all()/copy() calls.
  Status append(const std::string& path, std::span<const std::uint8_t> data,
                IoMode mode, std::uint64_t charge_bytes = kChargeActual);

  static constexpr std::uint64_t kChargeActual = ~std::uint64_t{0};

  /// Size used for I/O charging (>= physical size when pads were declared).
  Result<std::uint64_t> charged_size(const std::string& path) const;

  Result<std::vector<std::uint8_t>> read(const std::string& path,
                                         std::uint64_t offset,
                                         std::uint64_t len, IoMode mode,
                                         bool sequential = false);

  Result<std::vector<std::uint8_t>> read_all(const std::string& path,
                                             IoMode mode);

  Status truncate(const std::string& path, std::uint64_t new_size);

  /// Whole-file copy, charging a sequential read on the source disk and a
  /// sequential write on the destination disk (backup / archive copy model).
  Status copy(const std::string& src, const std::string& dst, IoMode mode);

  /// Paths starting with `prefix`, sorted lexicographically.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Disk a path would be placed on (nullptr if no mount matches).
  Disk* disk_for(std::string_view path) const;

  VirtualClock& clock() { return *clock_; }

 private:
  struct CorruptRange {
    std::uint64_t offset = 0;
    std::uint64_t len = 0;  // kWholeFile covers everything past offset
  };

  struct File {
    Disk* disk = nullptr;
    std::vector<std::uint8_t> data;
    std::uint64_t charged = 0;  // logical size for I/O accounting
    std::vector<CorruptRange> corrupt;
    std::uint64_t torn_keep = kNoTear;  // armed torn-write prefix length
  };

  static constexpr std::uint64_t kNoTear = ~std::uint64_t{0};

  struct TransientFault {
    std::string prefix;
    SimTime until = 0;
    double probability = 0.0;
    Rng rng;
  };

  /// Charges the I/O and, in foreground mode, blocks until completion.
  void charge(Disk* disk, std::uint64_t bytes, IoMode mode, bool sequential);

  /// Draws a transient-error verdict for an I/O on `path` (expires the
  /// injection window as a side effect).
  bool transient_hit(const std::string& path, Disk* disk);

  /// First corrupt range overlapping [offset, offset+len), if any.
  static const CorruptRange* overlap(const File& f, std::uint64_t offset,
                                     std::uint64_t len);

  /// Removes [offset, end) from the file's corrupt ranges (fresh bytes were
  /// written over them).
  static void heal(File& f, std::uint64_t offset, std::uint64_t end);

  Result<File*> find(const std::string& path);
  Result<const File*> find(const std::string& path) const;

  VirtualClock* clock_;
  std::map<std::string, Disk*, std::greater<>> mounts_;  // longest prefix first
  std::map<std::string, File> files_;
  std::optional<TransientFault> transient_;
};

}  // namespace vdb::sim
