// Simulated filesystem.
//
// Database files (control file, datafiles, online redo logs, archived logs,
// backups) live here as named byte arrays placed on simulated disks via
// mount points. This is also the surface the operator-fault injector uses:
// deleting or corrupting a datafile is a real remove()/corrupt() on this
// filesystem, exactly like an `rm` issued by a careless administrator.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/disk.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {

/// Foreground I/O blocks the caller (advances the shared clock to request
/// completion); background I/O only occupies the device.
enum class IoMode { kForeground, kBackground };

class SimFs {
 public:
  explicit SimFs(VirtualClock* clock) : clock_(clock) {}

  /// Routes paths with this prefix to `disk`. Longest-prefix match wins.
  /// Disks are owned by the caller and must outlive the filesystem.
  void mount(std::string prefix, Disk* disk);

  Status create(const std::string& path);
  bool exists(const std::string& path) const;
  Status remove(const std::string& path);

  /// Marks the file corrupted; subsequent reads fail with kCorruption.
  /// This models an operator overwriting / mangling a file in place.
  Status corrupt(const std::string& path);
  bool is_corrupted(const std::string& path) const;

  Result<std::uint64_t> size(const std::string& path) const;

  /// Writes (extending the file if needed) at `offset`.
  Status write(const std::string& path, std::uint64_t offset,
               std::span<const std::uint8_t> data, IoMode mode,
               bool sequential = false);

  /// `charge_bytes` lets the caller account more bytes than are physically
  /// stored: redo records carry realistic logical sizes (Oracle redo entries
  /// are far larger than our compact encodings) without materializing pad
  /// bytes. Defaults to data.size(). The file's charged size drives the I/O
  /// cost of later read_all()/copy() calls.
  Status append(const std::string& path, std::span<const std::uint8_t> data,
                IoMode mode, std::uint64_t charge_bytes = kChargeActual);

  static constexpr std::uint64_t kChargeActual = ~std::uint64_t{0};

  /// Size used for I/O charging (>= physical size when pads were declared).
  Result<std::uint64_t> charged_size(const std::string& path) const;

  Result<std::vector<std::uint8_t>> read(const std::string& path,
                                         std::uint64_t offset,
                                         std::uint64_t len, IoMode mode,
                                         bool sequential = false);

  Result<std::vector<std::uint8_t>> read_all(const std::string& path,
                                             IoMode mode);

  Status truncate(const std::string& path, std::uint64_t new_size);

  /// Whole-file copy, charging a sequential read on the source disk and a
  /// sequential write on the destination disk (backup / archive copy model).
  Status copy(const std::string& src, const std::string& dst, IoMode mode);

  /// Paths starting with `prefix`, sorted lexicographically.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Disk a path would be placed on (nullptr if no mount matches).
  Disk* disk_for(std::string_view path) const;

  VirtualClock& clock() { return *clock_; }

 private:
  struct File {
    Disk* disk = nullptr;
    std::vector<std::uint8_t> data;
    std::uint64_t charged = 0;  // logical size for I/O accounting
    bool corrupted = false;
  };

  /// Charges the I/O and, in foreground mode, blocks until completion.
  void charge(Disk* disk, std::uint64_t bytes, IoMode mode, bool sequential);

  Result<File*> find(const std::string& path);
  Result<const File*> find(const std::string& path) const;

  VirtualClock* clock_;
  std::map<std::string, Disk*, std::greater<>> mounts_;  // longest prefix first
  std::map<std::string, File> files_;
};

}  // namespace vdb::sim
