// A simulated host: a set of disks plus a filesystem, sharing the global
// virtual clock. The paper's testbed is two such machines (primary and
// stand-by), each with four disks, connected by a network link.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/disk.hpp"
#include "sim/filesystem.hpp"
#include "sim/scheduler.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {

class Host {
 public:
  Host(std::string name, VirtualClock* clock)
      : name_(std::move(name)), fs_(clock) {}

  /// Adds a disk and mounts `mount_point` on it. Mirrors the paper's layout
  /// of separating data, redo, archive, and backup devices.
  Disk* add_disk(const std::string& mount_point, DiskParams params = {}) {
    auto disk = std::make_unique<Disk>(
        DiskId{static_cast<std::uint32_t>(disks_.size())},
        name_ + ":" + mount_point, params);
    Disk* raw = disk.get();
    disks_.push_back(std::move(disk));
    fs_.mount(mount_point, raw);
    return raw;
  }

  const std::string& name() const { return name_; }
  SimFs& fs() { return fs_; }
  const std::vector<std::unique_ptr<Disk>>& disks() const { return disks_; }

 private:
  std::string name_;
  SimFs fs_;
  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace vdb::sim
