#include "sim/network.hpp"

#include <algorithm>

namespace vdb::sim {

SimTime NetworkLink::transfer(SimTime now, std::uint64_t bytes) {
  const SimTime start = std::max(now, busy_until_);
  const SimDuration duration =
      params_.latency + bytes * kSecond / params_.bandwidth_bytes_per_sec;
  busy_until_ = start + duration;
  stats_.transfers += 1;
  stats_.bytes += bytes;
  return busy_until_;
}

}  // namespace vdb::sim
