// Simulated point-to-point network link.
//
// Models the dedicated fast-Ethernet link between the primary and stand-by
// hosts in the paper's testbed. Archive-log shipping charges transfer time
// here; the overhead is part of the stand-by configuration's performance
// cost (paper §5.3).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {

struct NetworkParams {
  std::uint64_t bandwidth_bytes_per_sec = 12ull * 1024 * 1024;  // ~100 Mbit/s
  SimDuration latency = 300 * kMicrosecond;
};

struct NetworkStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
};

class NetworkLink {
 public:
  explicit NetworkLink(NetworkParams params = {}) : params_(params) {}

  /// Completion time of a transfer of `bytes` submitted at `now`. The link
  /// serializes transfers like the disk model.
  SimTime transfer(SimTime now, std::uint64_t bytes);

  const NetworkStats& stats() const { return stats_; }

 private:
  NetworkParams params_;
  SimTime busy_until_{0};
  NetworkStats stats_;
};

}  // namespace vdb::sim
