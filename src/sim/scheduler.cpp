#include "sim/scheduler.hpp"

namespace vdb::sim {

EventHandle Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  VDB_CHECK_MSG(at >= clock_->now(), "event scheduled in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

EventHandle Scheduler::schedule_every(SimDuration period,
                                      std::function<void()> fn) {
  VDB_CHECK(period > 0);
  auto alive = std::make_shared<bool>(true);

  // Self-rescheduling wrapper. It re-arms only while the shared token is
  // still set, so cancel() stops the chain. The stored function holds only
  // a weak reference to itself — each pending Event carries the strong one
  // — so the chain is freed as soon as no event references it (a strong
  // self-capture would be a shared_ptr cycle and leak every timer).
  auto arm = std::make_shared<std::function<void(SimTime)>>();
  std::weak_ptr<std::function<void(SimTime)>> weak_arm = arm;
  *arm = [this, period, fn = std::move(fn), alive, weak_arm](SimTime at) {
    auto self = weak_arm.lock();
    if (!self) return;
    queue_.push(Event{at, next_seq_++,
                      [this, period, fn, alive, self, at] {
                        fn();
                        if (*alive) (*self)(at + period);
                      },
                      alive});
  };
  (*arm)(clock_->now() + period);
  return EventHandle{std::move(alive)};
}

void Scheduler::run_due() {
  while (!queue_.empty() && queue_.top().at <= clock_->now()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;
    // The event's nominal time may be earlier than now if the caller
    // advanced the clock in a block (e.g. a long transaction); events still
    // run in timestamp order.
    ev.fn();
  }
}

void Scheduler::run_until(SimTime t) {
  VDB_CHECK(t >= clock_->now());
  while (!queue_.empty() && queue_.top().at <= t) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;
    if (ev.at > clock_->now()) clock_->advance_to(ev.at);
    ev.fn();
  }
  // An event callback may itself have advanced the clock past the target
  // (e.g. a restart-sweeper tick charging redo-apply CPU); never rewind.
  if (t > clock_->now()) clock_->advance_to(t);
}

SimTime Scheduler::next_event_time() const {
  // Cancelled events may sit at the head; peeking past them would require a
  // mutable pop, so report the head time (a harmless early wake-up).
  return queue_.empty() ? kNoEvent : queue_.top().at;
}

}  // namespace vdb::sim
