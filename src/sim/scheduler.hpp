// Discrete-event scheduler.
//
// Background database processes (checkpointer timeouts, archiver polls,
// standby apply, fault triggers) register callbacks here. The workload
// driver interleaves transaction execution with `run_due()` so that events
// fire at their exact simulated instants.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::sim {

/// Cancellation token for a scheduled event. Destroying the handle does NOT
/// cancel; call cancel() explicitly.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}

  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  explicit Scheduler(VirtualClock* clock) : clock_(clock) {}

  VirtualClock& clock() { return *clock_; }
  SimTime now() const { return clock_->now(); }

  /// Fires `fn` once when the clock reaches `at` (>= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  EventHandle schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(clock_->now() + delay, std::move(fn));
  }

  /// Fires `fn` every `period`, first firing at now + period. The callback
  /// runs until the handle is cancelled.
  EventHandle schedule_every(SimDuration period, std::function<void()> fn);

  /// Runs every event due at or before the current time. Events scheduled
  /// by running events at <= now also run.
  void run_due();

  /// Advances the clock to `t`, firing events at their exact timestamps on
  /// the way. Afterwards now() == t.
  void run_until(SimTime t);

  /// Time of the earliest pending event, or kNoEvent when idle.
  static constexpr SimTime kNoEvent = ~SimTime{0};
  SimTime next_event_time() const;

  size_t pending_count() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among same-time events → determinism
    std::function<void()> fn;
    std::shared_ptr<bool> alive;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  VirtualClock* clock_;
  std::uint64_t next_seq_{0};
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace vdb::sim
