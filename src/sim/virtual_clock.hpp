// Virtual clock for deterministic simulation.
//
// All durations in the system (transaction service times, disk waits,
// recovery work) advance this clock; no wall-clock time is ever read. A
// 20-minute paper experiment completes in milliseconds of real time while
// reporting exact simulated seconds.
//
// Concurrent execution (the transaction coordinator's worker threads) uses
// a per-thread *sink*: while a sink is installed on the calling thread the
// global clock is frozen and every advance accumulates into the sink as an
// offset from the frozen instant instead. Each worker thereby runs on its
// own private timeline for one scheduling round; the round driver then
// advances the global clock once by the makespan (the largest sink),
// modelling N genuinely parallel processors against shared devices.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::sim {

class VirtualClock {
 public:
  SimTime now() const { return now_; }

  /// Moves time forward to `t`. Time never goes backwards. With a local
  /// sink installed the global clock stays frozen and the sink absorbs the
  /// offset instead (max semantics, so chained device busy-until waits do
  /// not double-charge); a target in the thread's past is a no-op.
  void advance_to(SimTime t) {
    if (local_sink_ != nullptr) {
      if (t > now_ && t - now_ > *local_sink_) *local_sink_ = t - now_;
      return;
    }
    VDB_CHECK_MSG(t >= now_, "virtual clock moved backwards");
    now_ = t;
  }

  void advance_by(SimDuration d) {
    if (local_sink_ != nullptr) {
      *local_sink_ += d;
      return;
    }
    now_ += d;
  }

  /// Installs `sink` as the calling thread's private timeline; all
  /// advances on this thread accumulate there until removed. The global
  /// clock must stay frozen (no sink-less advances) while any sink is
  /// installed anywhere.
  static void install_local_sink(SimDuration* sink) { local_sink_ = sink; }
  static void remove_local_sink() { local_sink_ = nullptr; }

  /// The calling thread's sink offset, or 0 with no sink installed — the
  /// worker-local "elapsed this round", used to timestamp commits and to
  /// hand a released lock's availability instant to its waiters.
  static SimDuration local_elapsed() {
    return local_sink_ != nullptr ? *local_sink_ : 0;
  }

  /// Raises the calling thread's sink to `at` (no-op without a sink or if
  /// already past): a worker granted a lock at virtual offset `at` cannot
  /// have proceeded before the holder released it.
  static void raise_local(SimDuration at) {
    if (local_sink_ != nullptr && at > *local_sink_) *local_sink_ = at;
  }

 private:
  SimTime now_{0};
  static inline thread_local SimDuration* local_sink_ = nullptr;
};

}  // namespace vdb::sim
