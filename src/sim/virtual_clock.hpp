// Virtual clock for deterministic simulation.
//
// All durations in the system (transaction service times, disk waits,
// recovery work) advance this clock; no wall-clock time is ever read. A
// 20-minute paper experiment completes in milliseconds of real time while
// reporting exact simulated seconds.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::sim {

class VirtualClock {
 public:
  SimTime now() const { return now_; }

  /// Moves time forward to `t`. Time never goes backwards.
  void advance_to(SimTime t) {
    VDB_CHECK_MSG(t >= now_, "virtual clock moved backwards");
    now_ = t;
  }

  void advance_by(SimDuration d) { now_ += d; }

 private:
  SimTime now_{0};
};

}  // namespace vdb::sim
