#include "standby/standby.hpp"

#include <algorithm>

#include "wal/log_record.hpp"

namespace vdb::standby {

namespace {
constexpr size_t kGroupHeaderSize = 20;
}

StandbyDatabase::StandbyDatabase(sim::Host* standby_host,
                                 sim::Scheduler* scheduler, StandbyConfig cfg,
                                 sim::NetworkLink* link)
    : host_(standby_host), scheduler_(scheduler), cfg_(std::move(cfg)),
      link_(link) {}

Status StandbyDatabase::instantiate_from(engine::Database& primary,
                                         recovery::BackupManager& backups) {
  VDB_CHECK_MSG(!instantiated_, "standby already instantiated");

  // A standby starts life as a restored backup of the primary.
  auto set_id = backups.take_backup(primary);
  if (!set_id.is_ok()) return set_id.status();
  const auto set = backups.newest();
  VDB_CHECK(set.has_value());

  sim::SimFs& primary_fs = primary.host().fs();
  sim::SimFs& standby_fs = host_->fs();
  SimTime arrival = scheduler_->now();
  for (const auto& entry : set->files) {
    auto bytes = primary_fs.read_all(entry.backup_path,
                                     sim::IoMode::kBackground);
    if (!bytes.is_ok()) return bytes.status();
    arrival = link_->transfer(arrival, bytes.value().size());
    if (!standby_fs.exists(entry.original_path)) {
      VDB_RETURN_IF_ERROR(standby_fs.create(entry.original_path));
    }
    VDB_RETURN_IF_ERROR(standby_fs.truncate(entry.original_path, 0));
    VDB_RETURN_IF_ERROR(standby_fs.write(entry.original_path, 0,
                                         bytes.value(),
                                         sim::IoMode::kBackground,
                                         /*sequential=*/true));
  }
  busy_until_ = std::max(busy_until_, arrival);

  db_ = std::make_unique<engine::Database>(host_, scheduler_, cfg_.db);
  VDB_RETURN_IF_ERROR(db_->mount_from_control(set->control));
  db_->set_recovering(true);
  db_->storage().cache().set_io_mode(sim::IoMode::kBackground);
  applied_to_ = set->backup_lsn;
  instantiated_ = true;
  return Status::ok();
}

void StandbyDatabase::on_primary_archive(sim::SimFs& primary_fs,
                                         const std::string& path,
                                         std::uint64_t seq,
                                         SimTime archive_done_at) {
  if (!instantiated_ || activated_) return;

  // Read the archive on the primary (background I/O on its archive disk —
  // part of the standby configuration's overhead on the primary).
  auto bytes = primary_fs.read_all(path, sim::IoMode::kBackground);
  if (!bytes.is_ok()) return;

  // Ship it: the transfer can only start once the archive copy finished.
  const SimTime send_at = std::max(scheduler_->now(), archive_done_at);
  const SimTime arrival = link_->transfer(send_at, bytes.value().size());
  last_arrival_ = std::max(last_arrival_, arrival);

  char buf[48];
  std::snprintf(buf, sizeof(buf), "/arch_%08llu.log",
                static_cast<unsigned long long>(seq));
  const std::string standby_path = cfg_.db.redo.archive_dir + buf;

  // State lands now; the time cost is horizon-accounted at arrival.
  sim::SimFs& standby_fs = host_->fs();
  if (!standby_fs.exists(standby_path)) {
    if (!standby_fs.create(standby_path).is_ok()) return;
  }
  (void)standby_fs.truncate(standby_path, 0);
  (void)standby_fs.write(standby_path, 0, bytes.value(),
                         sim::IoMode::kBackground, /*sequential=*/true);

  busy_until_ = std::max(busy_until_, arrival);
  apply_archive(standby_path);
}

void StandbyDatabase::apply_archive(const std::string& standby_path) {
  auto bytes = host_->fs().read_all(standby_path, sim::IoMode::kBackground);
  if (!bytes.is_ok()) return;

  // Managed recovery is the same two-phase replay the primary's recovery
  // drivers use: scan serially (loser tracking, busy-time accounting),
  // stage page records, drain the partitioned plan at DDL barriers and at
  // the end of the archive. Apply failures are ignored exactly as before —
  // gaps are impossible since archives arrive in sequence order.
  engine::RedoApplyPlan plan = db_->make_replay_plan();

  std::uint64_t records = 0;
  (void)wal::parse_records(
      std::span<const std::uint8_t>(bytes.value()).subspan(kGroupHeaderSize),
      [&](const wal::LogRecord& rec) {
        records += 1;
        applied_to_ = std::max(applied_to_, rec.lsn);
        switch (rec.type) {
          case wal::LogRecordType::kCommit:
          case wal::LogRecordType::kAbort:
            live_.erase(rec.txn.value);
            ended_.insert(rec.txn.value);
            break;
          case wal::LogRecordType::kCheckpoint:
            for (const auto& snap : rec.active_txns) {
              if (ended_.contains(snap.txn.value)) continue;
              LoserTrack track;
              track.ops = snap.ops;
              track.prepared = snap.prepared;
              track.gtxn = snap.gtxn;
              track.coord_shard = snap.coord_shard;
              live_[snap.txn.value] = std::move(track);
            }
            for (const auto& d : rec.coord_decisions) {
              coord_decisions_[d.gtxn] = d.commit;
            }
            break;
          case wal::LogRecordType::kTxnPrepare: {
            LoserTrack& track = live_[rec.txn.value];
            track.prepared = true;
            track.gtxn = rec.gtxn;
            track.coord_shard = rec.coord_shard;
            break;
          }
          case wal::LogRecordType::kCoordCommit:
            coord_decisions_[rec.gtxn] = true;
            break;
          case wal::LogRecordType::kCoordAbort:
            coord_decisions_[rec.gtxn] = false;
            break;
          case wal::LogRecordType::kInsert:
          case wal::LogRecordType::kUpdate:
          case wal::LogRecordType::kDelete:
            plan.stage(rec);
            if (rec.is_clr) {
              live_[rec.txn.value].clrs += 1;
            } else {
              live_[rec.txn.value].ops.push_back(
                  wal::UndoOp{rec.lsn, rec.type, rec.dml});
            }
            break;
          case wal::LogRecordType::kFormatPage:
            plan.stage(rec);
            break;
          default:
            (void)plan.drain();  // DDL barrier
            (void)db_->apply_record(rec);
            break;
        }
        return true;
      });
  (void)plan.drain();
  records_applied_ += records;
  archives_applied_ += 1;
  busy_until_ += records * cfg_.db.cost.cpu_per_replay_record;
}

Result<ActivationReport> StandbyDatabase::activate() {
  VDB_CHECK_MSG(instantiated_, "standby never instantiated");
  VDB_CHECK_MSG(!activated_, "standby already active");

  // Wait for managed recovery to drain whatever has been shipped. The
  // activation window — waiting out managed-recovery apply plus the
  // switchover cost — is the failover's redo phase.
  sim::VirtualClock& clock = scheduler_->clock();
  obs::RecoveryTracer& tracer = db_->obs().tracer();
  if (tracer.active()) tracer.enter(obs::RecoveryPhase::kRedo, clock.now());
  const SimTime ready = std::max({clock.now(), busy_until_, last_arrival_});
  if (ready > clock.now()) clock.advance_to(ready);
  clock.advance_by(cfg_.activation_cost);

  // Open with RESETLOGS: the standby becomes the new primary incarnation.
  db_->storage().cache().set_io_mode(sim::IoMode::kForeground);
  const Lsn reset_at = applied_to_ + (1u << 20);
  VDB_RETURN_IF_ERROR(db_->redo().resetlogs(reset_at));
  // The applied redo may end mid-transaction: roll those losers back
  // before opening (still in recovery mode; CLRs land in the new redo).
  // PREPAREd 2PC branches are adopted as in-doubt instead — the failover
  // orchestrator resolves them against the coordinator's decision.
  if (tracer.active()) tracer.enter(obs::RecoveryPhase::kUndo, clock.now());
  for (const auto& [gtxn, commit] : coord_decisions_) {
    db_->note_coord_decision(gtxn, commit);
  }
  for (auto it = live_.begin(); it != live_.end();) {
    if (!it->second.prepared) {
      ++it;
      continue;
    }
    engine::Database::InDoubtBranch branch;
    branch.txn = TxnId{it->first};
    branch.coord_shard = it->second.coord_shard;
    branch.ops = std::move(it->second.ops);
    branch.clrs = it->second.clrs;
    db_->adopt_in_doubt(it->second.gtxn, std::move(branch));
    it = live_.erase(it);
  }
  for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
    if (it->second.ops.empty()) continue;
    VDB_RETURN_IF_ERROR(db_->undo_incomplete_txn(
        TxnId{it->first}, it->second.ops, it->second.clrs));
  }
  db_->set_recovering(false);
  if (tracer.active()) tracer.enter(obs::RecoveryPhase::kOpen, clock.now());
  VDB_RETURN_IF_ERROR(db_->open_after_external_recovery());
  activated_ = true;

  ActivationReport report;
  report.recovered_to = applied_to_;
  report.archives_applied = archives_applied_;
  report.records_applied = records_applied_;
  return report;
}

}  // namespace vdb::standby
