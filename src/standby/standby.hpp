// Stand-by database: Oracle 8i-style physical standby (the paper's §5.3).
//
// A second host holds a restored copy of the primary created from a backup
// and stays in *managed recovery*: every archived redo log the primary
// produces is shipped over the network link and replayed on arrival. On a
// primary failure the standby is activated: it finishes applying what it
// received, opens with RESETLOGS, and takes over.
//
// Two properties drive the paper's results:
//  - activation time is short and independent of the fault type and of the
//    primary's recovery configuration (Figure 6);
//  - redo in the primary's *current, unarchived* online group never reaches
//    the standby, so transactions committed there are lost on failover —
//    the smaller the redo files, the smaller that exposed window (Figure 7).
//
// Standby work (shipping writes, replay I/O, replay CPU) is accounted on
// the standby host's devices and an internal busy-until horizon, so it
// never steals time from the primary — only the archiver/network overhead
// on the primary side does, which is the performance delta in Figure 6.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "engine/database.hpp"
#include "recovery/backup.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace vdb::standby {

struct StandbyConfig {
  engine::DatabaseConfig db;
  /// Fixed switchover cost: activate command, client redirection.
  SimDuration activation_cost = 12 * kSecond;
};

struct ActivationReport {
  /// The standby is current up to here; primary commits above it are lost.
  Lsn recovered_to = 0;
  std::uint64_t archives_applied = 0;
  std::uint64_t records_applied = 0;
};

class StandbyDatabase {
 public:
  StandbyDatabase(sim::Host* standby_host, sim::Scheduler* scheduler,
                  StandbyConfig cfg, sim::NetworkLink* link);

  /// Builds the standby from a fresh primary backup: ships every datafile
  /// image across the link and mounts the standby in managed recovery.
  Status instantiate_from(engine::Database& primary,
                          recovery::BackupManager& backups);

  /// Wire this to the primary archiver's on_archived hook. Reads the
  /// archive on the primary side, ships it, and schedules its application
  /// at arrival time.
  void on_primary_archive(sim::SimFs& primary_fs, const std::string& path,
                          std::uint64_t seq, SimTime archive_done_at);

  /// Failover: drains received archives, opens with RESETLOGS. Advances the
  /// clock across the activation (this is the measured recovery time).
  Result<ActivationReport> activate();

  engine::Database& db() { return *db_; }
  Lsn applied_to() const { return applied_to_; }
  std::uint64_t archives_applied() const { return archives_applied_; }
  bool active() const { return activated_; }

 private:
  /// Applies one shipped archive (state immediately, time onto the
  /// busy-until horizon).
  void apply_archive(const std::string& standby_path);

  struct LoserTrack {
    std::vector<wal::UndoOp> ops;
    std::uint64_t clrs = 0;
    /// PREPAREd 2PC branch seen in the shipped redo: activation must adopt
    /// it as in-doubt instead of rolling it back.
    bool prepared = false;
    std::uint64_t gtxn = 0;
    std::uint32_t coord_shard = 0;
  };

  sim::Host* host_;
  sim::Scheduler* scheduler_;
  StandbyConfig cfg_;
  sim::NetworkLink* link_;
  std::unique_ptr<engine::Database> db_;
  Lsn applied_to_ = 0;
  std::uint64_t archives_applied_ = 0;
  std::uint64_t records_applied_ = 0;
  SimTime busy_until_ = 0;       // managed-recovery work horizon
  SimTime last_arrival_ = 0;     // latest scheduled archive arrival
  /// Transactions in flight at the tail of the applied redo: an archive can
  /// end mid-transaction, and activation must roll those changes back.
  std::map<std::uint64_t, LoserTrack> live_;
  std::set<std::uint64_t> ended_;
  /// Coordinator decisions seen in the shipped redo, handed to the database
  /// at activation so in-doubt resolution works on the promoted primary.
  std::map<std::uint64_t, bool> coord_decisions_;
  bool activated_ = false;
  bool instantiated_ = false;
};

}  // namespace vdb::standby
