#include "storage/buffer_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace vdb::storage {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) cache_->unpin(id_);
    cache_ = other.cache_;
    id_ = other.id_;
    page_ = other.page_;
    other.cache_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() {
  if (cache_ != nullptr) cache_->unpin(id_);
}

BufferCache::BufferCache(PageStore* store, std::uint32_t capacity,
                         std::function<void(Lsn)> wal_flush)
    : store_(store), capacity_(capacity), wal_flush_(std::move(wal_flush)) {
  VDB_CHECK(capacity_ > 0);
}

Result<PageRef> BufferCache::fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    stats_.hits += 1;
    Frame& f = *it->second;
    f.pins += 1;
    f.lru_tick = ++tick_;
    return PageRef{this, id, &f.page};
  }

  stats_.misses += 1;
  while (frames_.size() >= capacity_) {
    VDB_RETURN_IF_ERROR(evict_one());
  }

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  Status st = store_->load_page(id, &frame->page, io_mode_);
  if (!st.is_ok()) return st;
  frame->pins = 1;
  frame->lru_tick = ++tick_;
  Page* page = &frame->page;
  frames_[id] = std::move(frame);
  return PageRef{this, id, page};
}

void BufferCache::mark_dirty(PageId id, SimTime now) {
  auto it = frames_.find(id);
  VDB_CHECK_MSG(it != frames_.end(), "mark_dirty on non-resident page");
  VDB_CHECK_MSG(it->second->pins > 0, "mark_dirty on unpinned page");
  Frame& frame = *it->second;
  if (!frame.dirty) {
    frame.dirty = true;
    frame.dirty_since = now;
    frame.rec_lsn = frame.page.lsn();
  }
}

CheckpointResult BufferCache::flush_aged(SimTime older_than) {
  CheckpointResult result;
  for (auto& [id, frame] : frames_) {
    if (!frame->dirty || frame->dirty_since > older_than) continue;
    wal_flush_(frame->page.lsn());
    Status st = store_->store_page(id, frame->page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame->dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
    } else {
      result.failures.emplace_back(id, st);
    }
  }
  return result;
}

Lsn BufferCache::min_dirty_rec_lsn() const {
  Lsn min_lsn = kInvalidLsn;
  for (const auto& [id, frame] : frames_) {
    if (frame->dirty) min_lsn = std::min(min_lsn, frame->rec_lsn);
  }
  return min_lsn;
}

void BufferCache::unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;  // frame discarded while pinned-ref lived
  VDB_CHECK(it->second->pins > 0);
  it->second->pins -= 1;
}

Status BufferCache::evict_one() {
  Frame* victim = nullptr;
  for (auto& [id, frame] : frames_) {
    if (frame->pins > 0) continue;
    if (victim == nullptr || frame->lru_tick < victim->lru_tick) {
      victim = frame.get();
    }
  }
  if (victim == nullptr) {
    return make_error(ErrorCode::kInternal, "buffer cache: all pages pinned");
  }
  if (victim->dirty) {
    wal_flush_(victim->page.lsn());
    Status st = store_->store_page(victim->id, victim->page, io_mode_,
                                   /*batched=*/false);
    // A failed write (missing datafile) still frees the frame: the change
    // is preserved in the redo stream and will be reapplied by media
    // recovery, exactly as in the modelled DBMS.
    if (st.is_ok()) stats_.dirty_writes += 1;
  }
  stats_.evictions += 1;
  frames_.erase(victim->id);
  return Status::ok();
}

CheckpointResult BufferCache::checkpoint() {
  CheckpointResult result;
  stats_.checkpoints += 1;

  // Flush the log once past the newest dirty page.
  Lsn max_lsn = 0;
  for (auto& [id, frame] : frames_) {
    if (frame->dirty) max_lsn = std::max(max_lsn, frame->page.lsn());
  }
  if (max_lsn > 0) wal_flush_(max_lsn);

  for (auto& [id, frame] : frames_) {
    if (!frame->dirty) continue;
    Status st = store_->store_page(id, frame->page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame->dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
      stats_.checkpoint_pages += 1;
    } else {
      result.failures.emplace_back(id, st);
    }
  }
  return result;
}

CheckpointResult BufferCache::flush_file(FileId file) {
  CheckpointResult result;
  for (auto& [id, frame] : frames_) {
    if (id.file != file || !frame->dirty) continue;
    wal_flush_(frame->page.lsn());
    Status st = store_->store_page(id, frame->page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame->dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
    } else {
      result.failures.emplace_back(id, st);
    }
  }
  return result;
}

void BufferCache::discard_file(FileId file) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.file == file) {
      VDB_CHECK_MSG(it->second->pins == 0, "discarding pinned page");
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::discard_all() {
  for (auto& [id, frame] : frames_) {
    VDB_CHECK_MSG(frame->pins == 0, "discarding pinned page");
  }
  frames_.clear();
}

std::uint64_t BufferCache::dirty_count() const {
  std::uint64_t n = 0;
  for (const auto& [id, frame] : frames_) {
    if (frame->dirty) ++n;
  }
  return n;
}

}  // namespace vdb::storage
