#include "storage/buffer_cache.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

namespace vdb::storage {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) cache_->unpin(id_);
    cache_ = other.cache_;
    id_ = other.id_;
    page_ = other.page_;
    other.cache_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() {
  if (cache_ != nullptr) cache_->unpin(id_);
}

BufferCache::BufferCache(PageStore* store, std::uint32_t capacity,
                         std::function<void(Lsn)> wal_flush)
    : store_(store), capacity_(capacity), wal_flush_(std::move(wal_flush)) {
  VDB_CHECK(capacity_ > 0);
  // The frame table never outgrows the configured capacity; sizing it up
  // front removes every rehash from the fetch path.
  frames_.reserve(capacity_);
  // Instruments are always wired (default statistics area until the engine
  // re-wires them) so the hot paths never test for null counters.
  set_observability(nullptr, nullptr);
}

void BufferCache::set_observability(obs::Observability* obs,
                                    const sim::VirtualClock* clock) {
  obs::Observability* o = obs::resolve(obs);
  waits_ = &o->waits();
  clock_ = clock;
  obs::MetricsRegistry& reg = o->registry();
  hits_counter_ = reg.counter("buffer cache hits");
  reads_counter_ = reg.counter("physical reads");
  dirty_writes_counter_ = reg.counter("physical writes");
  checkpoint_pages_counter_ = reg.counter("checkpoint pages written");
}

Result<PageRef> BufferCache::fetch(PageId id) {
  if (last_frame_ != nullptr && id == last_id_) {
    stats_.hits += 1;
    hits_counter_->inc();
    last_frame_->pins += 1;
    last_frame_->lru_tick = ++tick_;
    return PageRef{this, id, &last_frame_->page};
  }

  auto it = frames_.find(id);
  if (it != frames_.end()) {
    stats_.hits += 1;
    hits_counter_->inc();
    Frame& f = *it->second;
    f.pins += 1;
    f.lru_tick = ++tick_;
    last_id_ = id;
    last_frame_ = &f;
    return PageRef{this, id, &f.page};
  }

  stats_.misses += 1;
  while (frames_.size() >= capacity_) {
    VDB_RETURN_IF_ERROR(evict_one());
  }

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  Status st;
  {
    obs::WaitScope wait(waits_, clock_, obs::WaitEvent::kDbFileSequentialRead);
    st = store_->load_page(id, &frame->page, io_mode_);
  }
  if (!st.is_ok()) return st;
  reads_counter_->inc();
  frame->pins = 1;
  frame->lru_tick = ++tick_;
  Frame* raw = frame.get();
  frames_[id] = std::move(frame);
  last_id_ = id;
  last_frame_ = raw;
  return PageRef{this, id, &raw->page};
}

void BufferCache::mark_dirty(PageId id, SimTime now, Lsn first_change_lsn) {
  auto it = frames_.find(id);
  VDB_CHECK_MSG(it != frames_.end(), "mark_dirty on non-resident page");
  VDB_CHECK_MSG(it->second->pins > 0, "mark_dirty on unpinned page");
  Frame& frame = *it->second;
  if (!frame.dirty) {
    frame.dirty = true;
    frame.dirty_since = now;
    frame.rec_lsn = first_change_lsn != kInvalidLsn ? first_change_lsn
                                                    : frame.page.lsn();
    dirty_fresh_.push_back(id);
  }
}

void BufferCache::merge_dirty_runs() {
  if (!dirty_fresh_.empty()) {
    std::sort(dirty_fresh_.begin(), dirty_fresh_.end());
    const auto mid = static_cast<std::ptrdiff_t>(dirty_sorted_.size());
    dirty_sorted_.insert(dirty_sorted_.end(), dirty_fresh_.begin(),
                         dirty_fresh_.end());
    std::inplace_merge(dirty_sorted_.begin(), dirty_sorted_.begin() + mid,
                       dirty_sorted_.end());
    dirty_fresh_.clear();
  }
  // Drop stale entries (pages cleaned by eviction or discarded) and the
  // duplicate left when a dirty page was evicted, refetched, and dirtied
  // again.
  std::size_t out = 0;
  PageId prev = PageId::invalid();
  for (PageId id : dirty_sorted_) {
    if (id == prev) continue;
    auto it = frames_.find(id);
    if (it == frames_.end() || !it->second->dirty) continue;
    dirty_sorted_[out++] = id;
    prev = id;
  }
  dirty_sorted_.resize(out);
}

CheckpointResult BufferCache::flush_aged(SimTime older_than) {
  CheckpointResult result;
  merge_dirty_runs();
  std::size_t still_dirty = 0;
  for (PageId id : dirty_sorted_) {
    Frame& frame = *frames_.find(id)->second;
    if (frame.dirty_since > older_than) {
      dirty_sorted_[still_dirty++] = id;
      continue;
    }
    wal_flush_(frame.page.lsn());
    Status st = store_->store_page(id, frame.page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame.dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
      dirty_writes_counter_->inc();
    } else {
      result.failures.emplace_back(id, st);
      dirty_sorted_[still_dirty++] = id;
    }
  }
  dirty_sorted_.resize(still_dirty);
  return result;
}

Lsn BufferCache::min_dirty_rec_lsn() const {
  Lsn min_lsn = kInvalidLsn;
  auto scan = [&](const std::vector<PageId>& run) {
    for (PageId id : run) {
      auto it = frames_.find(id);
      if (it != frames_.end() && it->second->dirty) {
        min_lsn = std::min(min_lsn, it->second->rec_lsn);
      }
    }
  };
  scan(dirty_sorted_);
  scan(dirty_fresh_);
  return min_lsn;
}

void BufferCache::unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;  // frame discarded while pinned-ref lived
  VDB_CHECK(it->second->pins > 0);
  it->second->pins -= 1;
}

Status BufferCache::evict_one() {
  Frame* victim = nullptr;
  for (auto& [id, frame] : frames_) {
    if (frame->pins > 0) continue;
    if (victim == nullptr || frame->lru_tick < victim->lru_tick) {
      victim = frame.get();
    }
  }
  if (victim == nullptr) {
    return make_error(ErrorCode::kInternal, "buffer cache: all pages pinned");
  }
  if (victim->dirty) {
    obs::WaitScope wait(waits_, clock_, obs::WaitEvent::kBufferBusy);
    wal_flush_(victim->page.lsn());
    Status st = store_->store_page(victim->id, victim->page, io_mode_,
                                   /*batched=*/false);
    // A failed write (missing datafile) still frees the frame: the change
    // is preserved in the redo stream and will be reapplied by media
    // recovery, exactly as in the modelled DBMS.
    if (st.is_ok()) {
      stats_.dirty_writes += 1;
      dirty_writes_counter_->inc();
    }
  }
  stats_.evictions += 1;
  if (victim == last_frame_) {
    last_frame_ = nullptr;
    last_id_ = PageId::invalid();
  }
  frames_.erase(victim->id);
  return Status::ok();
}

CheckpointResult BufferCache::checkpoint() {
  CheckpointResult result;
  stats_.checkpoints += 1;
  merge_dirty_runs();

  // Flush the log once past the newest dirty page.
  Lsn max_lsn = 0;
  for (PageId id : dirty_sorted_) {
    max_lsn = std::max(max_lsn, frames_.find(id)->second->page.lsn());
  }
  if (max_lsn > 0) wal_flush_(max_lsn);

  std::size_t still_dirty = 0;
  for (PageId id : dirty_sorted_) {
    Frame& frame = *frames_.find(id)->second;
    Status st = store_->store_page(id, frame.page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame.dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
      stats_.checkpoint_pages += 1;
      dirty_writes_counter_->inc();
      checkpoint_pages_counter_->inc();
    } else {
      result.failures.emplace_back(id, st);
      dirty_sorted_[still_dirty++] = id;
    }
  }
  dirty_sorted_.resize(still_dirty);
  return result;
}

CheckpointResult BufferCache::flush_file(FileId file) {
  CheckpointResult result;
  merge_dirty_runs();
  std::size_t still_dirty = 0;
  for (PageId id : dirty_sorted_) {
    Frame& frame = *frames_.find(id)->second;
    if (id.file != file) {
      dirty_sorted_[still_dirty++] = id;
      continue;
    }
    wal_flush_(frame.page.lsn());
    Status st = store_->store_page(id, frame.page, sim::IoMode::kBackground,
                                   /*batched=*/true);
    if (st.is_ok()) {
      frame.dirty = false;
      result.pages_written += 1;
      stats_.dirty_writes += 1;
      dirty_writes_counter_->inc();
    } else {
      result.failures.emplace_back(id, st);
      dirty_sorted_[still_dirty++] = id;
    }
  }
  dirty_sorted_.resize(still_dirty);
  return result;
}

void BufferCache::discard_file(FileId file) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.file == file) {
      VDB_CHECK_MSG(it->second->pins == 0, "discarding pinned page");
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  last_frame_ = nullptr;
  last_id_ = PageId::invalid();
}

void BufferCache::discard_page(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  VDB_CHECK_MSG(it->second->pins == 0, "discarding pinned page");
  if (it->second.get() == last_frame_) {
    last_frame_ = nullptr;
    last_id_ = PageId::invalid();
  }
  frames_.erase(it);
  // A stale id may linger in the dirty runs; the sweep helpers already skip
  // entries whose frame is gone or clean.
}

void BufferCache::discard_all() {
  for (auto& [id, frame] : frames_) {
    VDB_CHECK_MSG(frame->pins == 0, "discarding pinned page");
  }
  frames_.clear();
  last_frame_ = nullptr;
  last_id_ = PageId::invalid();
  dirty_sorted_.clear();
  dirty_fresh_.clear();
}

std::uint64_t BufferCache::dirty_count() const {
  std::uint64_t n = 0;
  for (const auto& [id, frame] : frames_) {
    if (frame->dirty) ++n;
  }
  return n;
}

}  // namespace vdb::storage
