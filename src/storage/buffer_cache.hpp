// Database buffer cache (Oracle: the buffer cache component of the SGA).
//
// Fixed number of page frames with LRU replacement, pin counts, and dirty
// tracking. Enforces the WAL rule: before a dirty page reaches disk, the
// log must be flushed past that page's LSN (wal_flush hook).
//
// Checkpoints write every dirty frame as *background* I/O on the data
// disks; that burst of device time is precisely what slows concurrent
// transactions down and produces the performance/recovery trade-off the
// paper measures (Figure 4).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"
#include "sim/filesystem.hpp"
#include "sim/virtual_clock.hpp"
#include "storage/page.hpp"

namespace vdb::storage {

/// Backing store for pages; implemented by StorageManager over datafiles.
class PageStore {
 public:
  virtual ~PageStore() = default;
  virtual Status load_page(PageId id, Page* out, sim::IoMode mode) = 0;
  /// `batched`: part of a checkpoint-style sweep — the device sees sorted,
  /// near-sequential I/O (DBWR's elevator), not one random seek per page.
  virtual Status store_page(PageId id, Page& page, sim::IoMode mode,
                            bool batched) = 0;
};

class BufferCache;

/// RAII pin on a cached page. While alive, the frame cannot be evicted and
/// the Page pointer stays valid.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  Page* page() const { return page_; }
  Page* operator->() const { return page_; }
  PageId id() const { return id_; }
  bool valid() const { return page_ != nullptr; }

 private:
  friend class BufferCache;
  PageRef(BufferCache* cache, PageId id, Page* page)
      : cache_(cache), id_(id), page_(page) {}

  BufferCache* cache_ = nullptr;
  PageId id_{PageId::invalid()};
  Page* page_ = nullptr;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_pages = 0;
};

struct CheckpointResult {
  std::uint64_t pages_written = 0;
  /// Pages that could not be written (e.g. their datafile was deleted by an
  /// operator fault). The engine uses these to detect media failures.
  std::vector<std::pair<PageId, Status>> failures;
};

class BufferCache {
 public:
  /// `wal_flush(lsn)` must guarantee the redo stream is durable up to and
  /// including `lsn` before returning.
  BufferCache(PageStore* store, std::uint32_t capacity,
              std::function<void(Lsn)> wal_flush);

  /// Pins and returns the page, reading it from the store on a miss
  /// (foreground I/O — the caller waits).
  Result<PageRef> fetch(PageId id);

  /// Marks a pinned page dirty. The page's own LSN must already be set to
  /// the redo record that modified it. `now` timestamps the first-dirty
  /// instant for aged-flush (incremental checkpoint) policies.
  ///
  /// `first_change_lsn` overrides the frame's recovery LSN (the position
  /// crash recovery must replay from to reconstruct this page). It defaults
  /// to the page's current LSN — correct when mark_dirty follows every
  /// individual change — but batched replay marks a page dirty once after
  /// applying a whole run of records, and must pass the LSN of the *first*
  /// record applied or a checkpoint taken mid-recovery would record a
  /// too-late replay start and lose the earlier changes on a second crash.
  void mark_dirty(PageId id, SimTime now, Lsn first_change_lsn = kInvalidLsn);

  /// Writes all dirty frames (WAL rule enforced, background I/O).
  CheckpointResult checkpoint();

  /// Writes dirty frames whose first-dirty instant is <= `older_than`
  /// (Oracle's log_checkpoint_timeout semantics: no buffer stays dirty
  /// longer than the timeout).
  CheckpointResult flush_aged(SimTime older_than);

  /// LSN of the oldest redo record whose page change may not be on disk —
  /// the recovery start position for an incremental checkpoint. Returns
  /// kInvalidLsn when nothing is dirty.
  Lsn min_dirty_rec_lsn() const;

  /// Writes dirty frames of one file (used before taking a file offline
  /// cleanly or for backup preparation).
  CheckpointResult flush_file(FileId file);

  /// Drops all frames of a file without writing them (file deleted or
  /// taken offline IMMEDIATE: its dirty buffers are lost, which is why the
  /// file later needs redo recovery). Pinned frames must not exist.
  void discard_file(FileId file);

  /// Drops one frame without writing it (block media recovery about to
  /// replace the on-disk block: a cached copy would mask the repair). No-op
  /// when the page is not cached; the page must not be pinned.
  void discard_page(PageId id);

  /// Drops every frame (instance shutdown abort: cache contents vanish).
  void discard_all();

  std::uint64_t dirty_count() const;
  const CacheStats& stats() const { return stats_; }
  std::uint32_t capacity() const { return capacity_; }

  /// I/O mode for miss reads and eviction writes. A stand-by instance in
  /// managed recovery runs with kBackground so its replay I/O occupies its
  /// own devices without blocking the (shared-clock) primary workload.
  void set_io_mode(sim::IoMode mode) { io_mode_ = mode; }

  /// Wires the cache into a statistics area: hit/read counters plus the
  /// db_file_sequential_read and buffer_busy wait events (measured on
  /// `clock`). Instruments are resolved here, once; nullptr obs falls back
  /// to the process-wide default so standalone caches stay observable.
  void set_observability(obs::Observability* obs,
                         const sim::VirtualClock* clock);

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    PageId id{PageId::invalid()};
    bool dirty = false;
    std::uint32_t pins = 0;
    std::uint64_t lru_tick = 0;
    SimTime dirty_since = 0;   // first-dirty instant
    Lsn rec_lsn = kInvalidLsn; // LSN of the record that first dirtied it
  };

  void unpin(PageId id);
  /// Frees one frame, writing it out first if dirty. Fails if everything is
  /// pinned.
  Status evict_one();
  /// Folds pages dirtied since the last sweep into `dirty_sorted_` and
  /// drops stale entries, leaving the exact dirty set in PageId order.
  void merge_dirty_runs();

  PageStore* store_;
  std::uint32_t capacity_;
  sim::IoMode io_mode_ = sim::IoMode::kForeground;
  std::function<void(Lsn)> wal_flush_;
  std::uint64_t tick_{0};
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  /// One-entry fast path for fetch: TPC-C touches the same page in short
  /// bursts (row read → update → index maintenance), so remembering the
  /// last frame skips the hash lookup on the hottest call in the system.
  PageId last_id_{PageId::invalid()};
  Frame* last_frame_ = nullptr;
  /// Dirty-page bookkeeping for checkpoint sweeps. `dirty_sorted_` is the
  /// sorted run surviving the previous sweep; `dirty_fresh_` collects pages
  /// dirtied since. Sweeps sort only the fresh run and merge — reusing the
  /// sorted run instead of re-sorting the whole dirty list, and iterating
  /// the dirty set instead of every frame. Entries may go stale (a dirty
  /// page evicted or discarded); merge_dirty_runs drops them lazily.
  std::vector<PageId> dirty_sorted_;
  std::vector<PageId> dirty_fresh_;
  CacheStats stats_;

  obs::WaitEventTable* waits_ = nullptr;
  const sim::VirtualClock* clock_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* dirty_writes_counter_ = nullptr;
  obs::Counter* checkpoint_pages_counter_ = nullptr;
};

}  // namespace vdb::storage
