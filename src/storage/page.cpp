#include "storage/page.hpp"

#include <cstring>

#include "common/codec.hpp"

namespace vdb::storage {

std::uint16_t Page::capacity_for(std::uint16_t slot_size) {
  const size_t stride = slot_size + 2u;
  // Start from the bitmap-free bound and walk down until header + bitmap +
  // slots fit.
  size_t cap = (kSize - kHeaderBase) / stride;
  while (cap > 0 && kHeaderBase + (cap + 7) / 8 + cap * stride > kSize) {
    --cap;
  }
  VDB_CHECK_MSG(cap > 0, "slot size too large for page");
  return static_cast<std::uint16_t>(cap);
}

void Page::format(TableId owner, std::uint16_t slot_size) {
  buf_.fill(0);
  set_u16(4, kMagic);
  set_u16(6, slot_size);
  set_u32(16, owner.value);
  set_u16(20, capacity_for(slot_size));
  set_u16(22, 0);
}

bool Page::slot_used(std::uint16_t slot) const {
  VDB_CHECK(slot < capacity());
  return (buf_[bitmap_offset() + slot / 8] >> (slot % 8)) & 1;
}

std::uint16_t Page::find_free_slot() const {
  const std::uint16_t cap = capacity();
  if (used_count() >= cap) return kNoSlot;
  for (std::uint16_t s = 0; s < cap; ++s) {
    if (!slot_used(s)) return s;
  }
  return kNoSlot;
}

void Page::set_slot(std::uint16_t slot, std::span<const std::uint8_t> payload) {
  VDB_CHECK(slot < capacity());
  VDB_CHECK_MSG(payload.size() <= slot_size(), "row larger than slot");
  const size_t off = slot_offset(slot);
  set_u16(off, static_cast<std::uint16_t>(payload.size()));
  std::memcpy(buf_.data() + off + 2, payload.data(), payload.size());
  if (!slot_used(slot)) {
    buf_[bitmap_offset() + slot / 8] |= static_cast<std::uint8_t>(1u << (slot % 8));
    set_u16(22, used_count() + 1);
  }
}

void Page::clear_slot(std::uint16_t slot) {
  VDB_CHECK(slot < capacity());
  if (slot_used(slot)) {
    buf_[bitmap_offset() + slot / 8] &=
        static_cast<std::uint8_t>(~(1u << (slot % 8)));
    set_u16(22, used_count() - 1);
  }
}

Result<std::span<const std::uint8_t>> Page::read_slot(
    std::uint16_t slot) const {
  if (slot >= capacity() || !slot_used(slot)) {
    return make_error(ErrorCode::kNotFound, "slot not in use");
  }
  const size_t off = slot_offset(slot);
  const std::uint16_t len = get_u16(off);
  return std::span<const std::uint8_t>{buf_.data() + off + 2, len};
}

void Page::update_checksum() {
  set_u32(0, crc32c({buf_.data() + 4, kSize - 4}));
}

bool Page::verify_checksum() const {
  if (!formatted()) return true;  // virgin page
  return get_u32(0) == crc32c({buf_.data() + 4, kSize - 4});
}

std::uint32_t Page::stored_checksum() const { return get_u32(0); }

std::uint32_t Page::computed_checksum() const {
  return crc32c({buf_.data() + 4, kSize - 4});
}

std::uint16_t Page::get_u16(size_t off) const {
  std::uint16_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
std::uint32_t Page::get_u32(size_t off) const {
  std::uint32_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
std::uint64_t Page::get_u64(size_t off) const {
  std::uint64_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
void Page::set_u16(size_t off, std::uint16_t v) {
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}
void Page::set_u32(size_t off, std::uint32_t v) {
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}
void Page::set_u64(size_t off, std::uint64_t v) {
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}

}  // namespace vdb::storage
