// Fixed-slot 8 KiB database page.
//
// Layout:
//   [0]  u32 checksum        — CRC32C over bytes [4, kSize); set on disk write
//   [4]  u16 magic           — 0xDBDB for formatted pages, 0 when virgin
//   [6]  u16 slot_size       — payload capacity of each slot
//   [8]  u64 page_lsn        — LSN of the last change applied to this page
//   [16] u32 owner           — TableId.value of the owning object
//   [20] u16 slot_capacity
//   [22] u16 used_count
//   [24] bitmap (ceil(capacity/8) bytes), then slots of (u16 len + payload).
//
// Slots are fixed-stride, so updates are always in place and RowIds are
// stable — the property the redo/undo protocol and the in-memory indexes
// rely on.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::storage {

class Page {
 public:
  static constexpr size_t kSize = 8192;
  static constexpr std::uint16_t kMagic = 0xDBDB;
  static constexpr size_t kHeaderBase = 24;

  Page() { buf_.fill(0); }

  std::uint8_t* raw() { return buf_.data(); }
  const std::uint8_t* raw() const { return buf_.data(); }
  std::span<const std::uint8_t> bytes() const { return {buf_.data(), kSize}; }

  /// Largest slot capacity a page can offer for a given payload size.
  static std::uint16_t capacity_for(std::uint16_t slot_size);

  /// Zeroes the page and writes a fresh header for `owner` with `slot_size`
  /// payload slots.
  void format(TableId owner, std::uint16_t slot_size);

  bool formatted() const { return get_u16(4) == kMagic; }
  TableId owner() const { return TableId{get_u32(16)}; }
  std::uint16_t slot_size() const { return get_u16(6); }
  std::uint16_t capacity() const { return get_u16(20); }
  std::uint16_t used_count() const { return get_u16(22); }

  Lsn lsn() const { return get_u64(8); }
  void set_lsn(Lsn lsn) { set_u64(8, lsn); }

  bool slot_used(std::uint16_t slot) const;

  /// Lowest free slot index, or kNoSlot when full.
  static constexpr std::uint16_t kNoSlot = 0xFFFF;
  std::uint16_t find_free_slot() const;

  /// Stores `payload` (size <= slot_size) into `slot`, marking it used.
  void set_slot(std::uint16_t slot, std::span<const std::uint8_t> payload);

  /// Marks `slot` free. The payload bytes are not wiped.
  void clear_slot(std::uint16_t slot);

  /// Payload of a used slot.
  Result<std::span<const std::uint8_t>> read_slot(std::uint16_t slot) const;

  /// Recomputes and stores the checksum (call before writing to disk).
  void update_checksum();

  /// True when the stored checksum matches the contents. All-zero (virgin)
  /// pages verify trivially.
  bool verify_checksum() const;

  /// Checksum recorded in the header (what the writer computed).
  std::uint32_t stored_checksum() const;

  /// Checksum of the current contents (what a verifier computes).
  std::uint32_t computed_checksum() const;

 private:
  size_t bitmap_offset() const { return kHeaderBase; }
  size_t bitmap_bytes() const { return (capacity() + 7) / 8; }
  size_t slot_stride() const { return slot_size() + 2u; }
  size_t slot_offset(std::uint16_t slot) const {
    return kHeaderBase + bitmap_bytes() + slot * slot_stride();
  }

  std::uint16_t get_u16(size_t off) const;
  std::uint32_t get_u32(size_t off) const;
  std::uint64_t get_u64(size_t off) const;
  void set_u16(size_t off, std::uint16_t v);
  void set_u32(size_t off, std::uint32_t v);
  void set_u64(size_t off, std::uint64_t v);

  std::array<std::uint8_t, kSize> buf_;
};

}  // namespace vdb::storage
