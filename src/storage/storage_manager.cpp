#include "storage/storage_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace vdb::storage {

const char* to_string(FileStatus s) {
  switch (s) {
    case FileStatus::kOnline: return "ONLINE";
    case FileStatus::kOffline: return "OFFLINE";
    case FileStatus::kMissing: return "MISSING";
  }
  return "?";
}

const char* to_string(TablespaceStatus s) {
  switch (s) {
    case TablespaceStatus::kOnline: return "ONLINE";
    case TablespaceStatus::kOffline: return "OFFLINE";
  }
  return "?";
}

StorageManager::StorageManager(sim::SimFs* fs, StorageParams params,
                               std::function<void(Lsn)> wal_flush)
    : fs_(fs), params_(params) {
  cache_ = std::make_unique<BufferCache>(this, params_.cache_pages,
                                         std::move(wal_flush));
  set_observability(nullptr, nullptr);
}

void StorageManager::set_observability(obs::Observability* obs,
                                       const sim::VirtualClock* clock) {
  obs::MetricsRegistry& reg = obs::resolve(obs)->registry();
  retries_counter_ = reg.counter("io retries");
  retries_exhausted_counter_ = reg.counter("io retries exhausted");
  cache_->set_observability(obs, clock);
}

Result<TablespaceId> StorageManager::create_tablespace(
    const std::string& name, bool autoextend, std::uint32_t max_blocks) {
  for (const auto& ts : tablespaces_) {
    if (!ts.dropped && ts.name == name) {
      return make_error(ErrorCode::kAlreadyExists, "tablespace " + name);
    }
  }
  TablespaceInfo info;
  info.id = TablespaceId{static_cast<std::uint32_t>(tablespaces_.size())};
  info.name = name;
  info.autoextend = autoextend;
  info.max_blocks = max_blocks;
  tablespaces_.push_back(info);
  return tablespaces_.back().id;
}

Result<FileId> StorageManager::add_datafile(TablespaceId ts,
                                            const std::string& path,
                                            std::uint32_t blocks) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * tsp, ts_mut(ts));
  VDB_RETURN_IF_ERROR(fs_->create(path));
  // Size the file: datafiles are preallocated (zeroed) like Oracle's.
  VDB_RETURN_IF_ERROR(
      fs_->truncate(path, static_cast<std::uint64_t>(blocks) * Page::kSize));

  DataFileInfo info;
  info.id = FileId{static_cast<std::uint32_t>(files_.size())};
  info.tablespace = ts;
  info.path = path;
  info.blocks = blocks;
  files_.push_back(info);
  tsp->files.push_back(info.id);
  return info.id;
}

Result<FileId> StorageManager::attach_datafile(TablespaceId ts,
                                               const std::string& path,
                                               FileId id, std::uint32_t blocks,
                                               FileStatus status,
                                               Lsn recover_from) {
  VDB_CHECK_MSG(id.value == files_.size(),
                "datafiles must be attached in id order");
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * tsp, ts_mut(ts));
  DataFileInfo info;
  info.id = id;
  info.tablespace = ts;
  info.path = path;
  info.blocks = blocks;
  info.status = status;
  info.recover_from = recover_from;
  if (!fs_->exists(path) && status != FileStatus::kMissing) {
    info.status = FileStatus::kMissing;
  }
  files_.push_back(info);
  tsp->files.push_back(id);
  return id;
}

void StorageManager::restore_tablespace(const TablespaceInfo& info) {
  VDB_CHECK(info.id.value == tablespaces_.size());
  tablespaces_.push_back(info);
  // File links are re-established by restore_datafile.
  tablespaces_.back().files.clear();
}

void StorageManager::restore_datafile(const DataFileInfo& info) {
  VDB_CHECK(info.id.value == files_.size());
  files_.push_back(info);
  DataFileInfo& file = files_.back();
  if (!file.dropped) {
    if (!fs_->exists(file.path)) {
      file.status = FileStatus::kMissing;
    } else {
      // The control-file snapshot is only as fresh as the last checkpoint;
      // the physical file may have grown since. Trust the larger size so
      // replay never allocates over live blocks.
      auto physical = fs_->size(file.path);
      if (physical.is_ok()) {
        file.blocks = std::max(
            file.blocks,
            static_cast<std::uint32_t>(physical.value() / Page::kSize));
      }
    }
    VDB_CHECK(info.tablespace.value < tablespaces_.size());
    tablespaces_[info.tablespace.value].files.push_back(file.id);
  }
}

Status StorageManager::set_datafile_offline(FileId id,
                                            Lsn last_checkpoint_lsn,
                                            bool clean) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  if (file->status == FileStatus::kOffline) return Status::ok();
  // OFFLINE IMMEDIATE: dirty buffers are thrown away, so the on-disk image
  // is only current up to the last checkpoint; redo from there is needed to
  // bring the file online again. OFFLINE NORMAL (clean=true) had its dirty
  // buffers flushed by the caller and needs nothing.
  cache_->discard_file(id);
  file->status = FileStatus::kOffline;
  if (!clean) {
    file->recover_from = std::min(file->recover_from, last_checkpoint_lsn);
  }
  return Status::ok();
}

Status StorageManager::set_datafile_online(FileId id) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  if (file->recover_from != kInvalidLsn) {
    return make_error(ErrorCode::kRecoveryRequired,
                      "datafile needs media recovery: " + file->path);
  }
  if (!fs_->exists(file->path)) {
    file->status = FileStatus::kMissing;
    return make_error(ErrorCode::kMediaFailure, "datafile missing: " + file->path);
  }
  file->status = FileStatus::kOnline;
  return Status::ok();
}

Status StorageManager::set_tablespace_offline(TablespaceId id,
                                              Lsn last_checkpoint_lsn) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * ts, ts_mut(id));
  ts->status = TablespaceStatus::kOffline;
  for (FileId fid : ts->files) {
    VDB_RETURN_IF_ERROR(set_datafile_offline(fid, last_checkpoint_lsn));
  }
  return Status::ok();
}

Status StorageManager::set_tablespace_online(TablespaceId id) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * ts, ts_mut(id));
  for (FileId fid : ts->files) {
    VDB_RETURN_IF_ERROR(set_datafile_online(fid));
  }
  ts->status = TablespaceStatus::kOnline;
  return Status::ok();
}

Status StorageManager::drop_tablespace(TablespaceId id, bool delete_files) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * ts, ts_mut(id));
  for (FileId fid : ts->files) {
    auto file = file_mut(fid);
    if (!file.is_ok()) continue;
    cache_->discard_file(fid);
    if (delete_files && fs_->exists(file.value()->path)) {
      (void)fs_->remove(file.value()->path);
    }
    file.value()->dropped = true;
    file.value()->status = FileStatus::kMissing;
  }
  ts->dropped = true;
  return Status::ok();
}

Status StorageManager::set_tablespace_quota(TablespaceId id,
                                            std::uint32_t max_blocks) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * ts, ts_mut(id));
  ts->max_blocks = max_blocks;
  return Status::ok();
}

void StorageManager::mark_missing(FileId id) {
  auto file = file_mut(id);
  if (file.is_ok()) file.value()->status = FileStatus::kMissing;
}

Result<PageId> StorageManager::reserve_page(TablespaceId ts) {
  VDB_ASSIGN_OR_RETURN(TablespaceInfo * tsp, ts_mut(ts));
  if (tsp->status != TablespaceStatus::kOnline) {
    return make_error(ErrorCode::kOffline, "tablespace offline: " + tsp->name);
  }
  if (tsp->files.empty()) {
    return make_error(ErrorCode::kOutOfSpace,
                      "tablespace has no datafiles: " + tsp->name);
  }

  // Round-robin over files so data spreads across devices, as a sensible
  // administrator would configure.
  std::uint32_t& cursor = alloc_cursor_[ts];
  for (size_t attempt = 0; attempt < tsp->files.size(); ++attempt) {
    DataFileInfo* file =
        file_mut(tsp->files[cursor % tsp->files.size()]).value();
    cursor += 1;
    if (file->status != FileStatus::kOnline) continue;
    if (file->high_water < file->blocks) {
      return PageId{file->id, file->high_water};
    }
    // File full: try to extend it within the tablespace quota.
    if (tsp->autoextend) {
      std::uint32_t total = 0;
      for (FileId fid : tsp->files) total += file_mut(fid).value()->blocks;
      if (tsp->max_blocks == 0 ||
          total + params_.extent_blocks <= tsp->max_blocks) {
        VDB_RETURN_IF_ERROR(extend_file(*file, params_.extent_blocks));
        return PageId{file->id, file->high_water};
      }
    }
  }
  return make_error(ErrorCode::kOutOfSpace,
                    "tablespace out of space: " + tsp->name);
}

Status StorageManager::extend_file(DataFileInfo& file,
                                   std::uint32_t add_blocks) {
  file.blocks += add_blocks;
  const std::uint64_t want =
      static_cast<std::uint64_t>(file.blocks) * Page::kSize;
  auto physical = fs_->size(file.path);
  if (!physical.is_ok()) return physical.status();
  // Metadata can lag the physical file after a crash (the control file is
  // only as fresh as the last checkpoint, and recovery-time evictions may
  // already have rewritten high blocks). Growing must therefore never
  // truncate: only extend when the physical file is actually shorter.
  if (physical.value() < want) {
    VDB_RETURN_IF_ERROR(fs_->truncate(file.path, want));
  } else {
    file.blocks = std::max(
        file.blocks,
        static_cast<std::uint32_t>(physical.value() / Page::kSize));
  }
  return Status::ok();
}

Status StorageManager::apply_format(PageId pid, TableId owner,
                                    std::uint16_t slot_size, Lsn lsn) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(pid.file));
  // Replay may format past the current physical size (the original run
  // extended the file); grow as needed.
  while (pid.block >= file->blocks) {
    VDB_RETURN_IF_ERROR(extend_file(*file, params_.extent_blocks));
  }
  VDB_ASSIGN_OR_RETURN(PageRef ref, cache_->fetch(pid));
  ref->format(owner, slot_size);
  ref->set_lsn(lsn);
  cache_->mark_dirty(pid, fs_->clock().now());
  file->high_water = std::max(file->high_water, pid.block + 1);
  return Status::ok();
}

Result<std::vector<std::uint8_t>> StorageManager::read_with_retry(
    const std::string& path, std::uint64_t offset, std::uint64_t len,
    sim::IoMode mode, bool sequential) {
  const IoRetryPolicy& policy = params_.retry;
  SimDuration backoff = policy.initial_backoff;
  for (std::uint32_t attempt = 1;; ++attempt) {
    ++retry_stats_.attempts;
    auto bytes = fs_->read(path, offset, len, mode, sequential);
    if (bytes.is_ok() || bytes.code() != ErrorCode::kTransientIo) return bytes;
    if (attempt >= policy.max_attempts) {
      ++retry_stats_.exhausted;
      retries_exhausted_counter_->inc();
      return make_error(ErrorCode::kTransientIo,
                        bytes.status().message() + " (" +
                            std::to_string(attempt - 1) +
                            " retries exhausted)");
    }
    ++retry_stats_.retries;
    retries_counter_->inc();
    fs_->clock().advance_by(backoff);
    backoff *= policy.multiplier;
  }
}

Status StorageManager::write_with_retry(const std::string& path,
                                        std::uint64_t offset,
                                        std::span<const std::uint8_t> data,
                                        sim::IoMode mode, bool sequential) {
  const IoRetryPolicy& policy = params_.retry;
  SimDuration backoff = policy.initial_backoff;
  for (std::uint32_t attempt = 1;; ++attempt) {
    ++retry_stats_.attempts;
    Status st = fs_->write(path, offset, data, mode, sequential);
    if (st.is_ok() || st.code() != ErrorCode::kTransientIo) return st;
    if (attempt >= policy.max_attempts) {
      ++retry_stats_.exhausted;
      retries_exhausted_counter_->inc();
      return make_error(ErrorCode::kTransientIo,
                        st.message() + " (" + std::to_string(attempt - 1) +
                            " retries exhausted)");
    }
    ++retry_stats_.retries;
    retries_counter_->inc();
    fs_->clock().advance_by(backoff);
    backoff *= policy.multiplier;
  }
}

void StorageManager::note_corrupt(PageId id) {
  for (PageId seen : corrupt_blocks_) {
    if (seen == id) return;
  }
  corrupt_blocks_.push_back(id);
}

void StorageManager::clear_corrupt_block(PageId id) {
  std::erase(corrupt_blocks_, id);
}

Status StorageManager::load_page(PageId id, Page* out, sim::IoMode mode) {
  auto file = file_mut(id.file);
  if (!file.is_ok()) return file.status();
  DataFileInfo& f = *file.value();
  if (f.status == FileStatus::kOffline && !recovery_mode_) {
    return make_error(ErrorCode::kOffline, "datafile offline: " + f.path);
  }
  const std::uint64_t offset =
      static_cast<std::uint64_t>(id.block) * Page::kSize;
  auto bytes = read_with_retry(f.path, offset, Page::kSize, mode,
                               /*sequential=*/false);
  if (!bytes.is_ok()) {
    if (bytes.code() == ErrorCode::kNotFound) {
      f.status = FileStatus::kMissing;
      return make_error(ErrorCode::kMediaFailure,
                        "datafile missing: " + f.path);
    }
    if (bytes.code() == ErrorCode::kCorruption) note_corrupt(id);
    return bytes.status();
  }
  std::copy(bytes.value().begin(), bytes.value().end(), out->raw());
  if (!out->verify_checksum()) {
    note_corrupt(id);
    char detail[64];
    std::snprintf(detail, sizeof(detail),
                  " expected crc32c=%08x actual=%08x",
                  out->stored_checksum(), out->computed_checksum());
    return make_error(ErrorCode::kCorruption,
                      "checksum mismatch at " + vdb::to_string(id) + " (" +
                          f.path + " offset " + std::to_string(offset) + "):" +
                          detail);
  }
  return Status::ok();
}

Status StorageManager::store_page(PageId id, Page& page, sim::IoMode mode,
                                  bool batched) {
  auto file = file_mut(id.file);
  if (!file.is_ok()) return file.status();
  DataFileInfo& f = *file.value();
  if (f.status == FileStatus::kOffline && !recovery_mode_) {
    return make_error(ErrorCode::kOffline, "datafile offline: " + f.path);
  }
  page.update_checksum();
  Status st = write_with_retry(
      f.path, static_cast<std::uint64_t>(id.block) * Page::kSize, page.bytes(),
      mode, /*sequential=*/batched);
  if (!st.is_ok() && st.code() == ErrorCode::kNotFound) {
    f.status = FileStatus::kMissing;
    return make_error(ErrorCode::kMediaFailure, "datafile missing: " + f.path);
  }
  return st;
}

Result<VerifyReport> StorageManager::verify_file(FileId id) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  auto size = fs_->size(file->path);
  if (!size.is_ok()) {
    if (size.code() == ErrorCode::kNotFound) {
      return make_error(ErrorCode::kMediaFailure,
                        "datafile missing: " + file->path);
    }
    return size.status();
  }
  VerifyReport report;
  Page page;
  const std::uint32_t blocks =
      static_cast<std::uint32_t>(size.value() / Page::kSize);
  for (std::uint32_t block = 0; block < blocks; ++block) {
    const PageId pid{id, block};
    const std::uint64_t offset =
        static_cast<std::uint64_t>(block) * Page::kSize;
    ++report.blocks_scanned;
    auto bytes = read_with_retry(file->path, offset, Page::kSize,
                                 sim::IoMode::kForeground,
                                 /*sequential=*/true);
    if (!bytes.is_ok()) {
      // Unreadable (loud corruption, exhausted retries): the block is bad,
      // but the scan keeps going — DBVERIFY reports all damage in one pass.
      note_corrupt(pid);
      report.bad.push_back(
          BadBlock{pid, file->path, offset, 0, 0, bytes.status()});
      continue;
    }
    std::copy(bytes.value().begin(), bytes.value().end(), page.raw());
    if (!page.verify_checksum()) {
      note_corrupt(pid);
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "checksum mismatch: expected crc32c=%08x actual=%08x",
                    page.stored_checksum(), page.computed_checksum());
      report.bad.push_back(BadBlock{pid, file->path, offset,
                                    page.stored_checksum(),
                                    page.computed_checksum(),
                                    make_error(ErrorCode::kCorruption,
                                               detail)});
    }
  }
  return report;
}

Status StorageManager::scan_file(
    FileId id,
    const std::function<void(std::uint32_t, const Page&)>& fn) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  auto bytes = fs_->read_all(file->path, sim::IoMode::kForeground);
  if (!bytes.is_ok()) return bytes.status();
  const auto& data = bytes.value();
  Page page;
  std::uint32_t hwm = 0;
  for (std::uint32_t block = 0; block * Page::kSize < data.size(); ++block) {
    std::copy(data.begin() + static_cast<long>(block) * Page::kSize,
              data.begin() + static_cast<long>(block + 1) * Page::kSize,
              page.raw());
    if (!page.formatted()) continue;
    hwm = block + 1;
    fn(block, page);
  }
  file->high_water = std::max(file->high_water, hwm);
  return Status::ok();
}

Result<const DataFileInfo*> StorageManager::file_info(FileId id) const {
  if (!id.valid() || id.value >= files_.size() || files_[id.value].dropped) {
    return make_error(ErrorCode::kNotFound, "no such datafile");
  }
  return &files_[id.value];
}

Result<const TablespaceInfo*> StorageManager::tablespace_info(
    TablespaceId id) const {
  if (!id.valid() || id.value >= tablespaces_.size() ||
      tablespaces_[id.value].dropped) {
    return make_error(ErrorCode::kNotFound, "no such tablespace");
  }
  return &tablespaces_[id.value];
}

Result<TablespaceId> StorageManager::find_tablespace(
    const std::string& name) const {
  for (const auto& ts : tablespaces_) {
    if (!ts.dropped && ts.name == name) return ts.id;
  }
  return make_error(ErrorCode::kNotFound, "no such tablespace: " + name);
}

void StorageManager::set_high_water(FileId id, std::uint32_t hwm) {
  auto file = file_mut(id);
  if (file.is_ok()) {
    file.value()->high_water = std::max(file.value()->high_water, hwm);
  }
}

Status StorageManager::sync_file_size(FileId id) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  auto size = fs_->size(file->path);
  if (!size.is_ok()) return size.status();
  file->blocks = static_cast<std::uint32_t>(size.value() / Page::kSize);
  file->high_water = std::min(file->high_water, file->blocks);
  return Status::ok();
}

Status StorageManager::set_recover_from(FileId id, Lsn lsn) {
  VDB_ASSIGN_OR_RETURN(DataFileInfo * file, file_mut(id));
  file->recover_from = lsn;
  return Status::ok();
}

Result<DataFileInfo*> StorageManager::file_mut(FileId id) {
  if (!id.valid() || id.value >= files_.size() || files_[id.value].dropped) {
    return make_error(ErrorCode::kNotFound, "no such datafile");
  }
  return &files_[id.value];
}

Result<TablespaceInfo*> StorageManager::ts_mut(TablespaceId id) {
  if (!id.valid() || id.value >= tablespaces_.size() ||
      tablespaces_[id.value].dropped) {
    return make_error(ErrorCode::kNotFound, "no such tablespace");
  }
  return &tablespaces_[id.value];
}

}  // namespace vdb::storage
