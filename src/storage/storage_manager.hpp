// Storage manager: tablespaces, datafiles, space allocation, and the
// PageStore implementation that connects the buffer cache to the simulated
// filesystem.
//
// This layer mirrors Oracle's physical/logical storage split (§2.1 of the
// paper): tablespaces are logical containers physically backed by one or
// more datafiles; space is handed out in extents; datafiles can be taken
// offline, deleted (operator fault), and later restored by media recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/filesystem.hpp"
#include "storage/buffer_cache.hpp"
#include "storage/page.hpp"

namespace vdb::storage {

enum class FileStatus { kOnline, kOffline, kMissing };
enum class TablespaceStatus { kOnline, kOffline };

const char* to_string(FileStatus s);
const char* to_string(TablespaceStatus s);

struct DataFileInfo {
  FileId id{};
  TablespaceId tablespace{};
  std::string path;
  std::uint32_t blocks = 0;  // physical size
  std::uint32_t high_water = 0;  // first never-formatted block
  FileStatus status = FileStatus::kOnline;
  /// Redo position from which this file must be rolled forward when it is
  /// brought back online (set when taken offline immediate / restored).
  Lsn recover_from = kInvalidLsn;
  /// True once the owning tablespace was dropped; the slot stays to keep
  /// FileIds stable within the running instance.
  bool dropped = false;
};

struct TablespaceInfo {
  TablespaceId id{};
  std::string name;
  TablespaceStatus status = TablespaceStatus::kOnline;
  std::vector<FileId> files;
  bool autoextend = true;
  /// Hard cap on total blocks (0 = unlimited); exceeding it yields
  /// kOutOfSpace — the "let a tablespace run out of space" operator fault.
  std::uint32_t max_blocks = 0;
  bool dropped = false;
};

/// Bounded exponential backoff for transient device errors. A read/write
/// that fails with kTransientIo is retried up to max_attempts times total,
/// sleeping (on the simulated clock) initial_backoff, then initial_backoff *
/// multiplier, and so on, between attempts. Exhaustion surfaces the error.
struct IoRetryPolicy {
  std::uint32_t max_attempts = 4;
  SimDuration initial_backoff = 2 * kMillisecond;
  std::uint32_t multiplier = 4;
};

struct IoRetryStats {
  std::uint64_t attempts = 0;   // I/O calls issued (including retries)
  std::uint64_t retries = 0;    // transient failures absorbed by retrying
  std::uint64_t exhausted = 0;  // operations that ran out of attempts
};

struct StorageParams {
  std::uint32_t cache_pages = 2048;   // 16 MiB with 8 KiB pages
  std::uint32_t extent_blocks = 16;   // file growth unit
  IoRetryPolicy retry;
};

/// One corrupt block found by verify_file() (DBVERIFY-style scan).
struct BadBlock {
  PageId page = PageId::invalid();
  std::string path;
  std::uint64_t offset = 0;        // byte offset of the block in the file
  std::uint32_t expected_crc = 0;  // checksum stored in the page header
  std::uint32_t actual_crc = 0;    // checksum of the actual contents
  Status error;                    // why the block is bad
};

struct VerifyReport {
  std::uint64_t blocks_scanned = 0;
  std::vector<BadBlock> bad;
};

class StorageManager final : public PageStore {
 public:
  StorageManager(sim::SimFs* fs, StorageParams params,
                 std::function<void(Lsn)> wal_flush);

  // --- administration -----------------------------------------------------

  Result<TablespaceId> create_tablespace(const std::string& name,
                                         bool autoextend = true,
                                         std::uint32_t max_blocks = 0);

  /// Creates the file in the filesystem sized to `blocks` and attaches it.
  Result<FileId> add_datafile(TablespaceId ts, const std::string& path,
                              std::uint32_t blocks);

  /// Re-attaches an existing file (startup from control file / restore).
  Result<FileId> attach_datafile(TablespaceId ts, const std::string& path,
                                 FileId id, std::uint32_t blocks,
                                 FileStatus status, Lsn recover_from);

  /// Startup-from-control-file: pushes entries verbatim, preserving ids
  /// (including dropped slots). Must be called in id order.
  void restore_tablespace(const TablespaceInfo& info);
  void restore_datafile(const DataFileInfo& info);

  /// OFFLINE IMMEDIATE (default): dirty buffers are discarded; the file
  /// needs redo from the supplied checkpoint LSN before it can come back
  /// online. With `clean` (OFFLINE NORMAL, caller flushed the file first)
  /// no recovery is required.
  Status set_datafile_offline(FileId id, Lsn last_checkpoint_lsn,
                              bool clean = false);
  Status set_datafile_online(FileId id);  // requires recover_from cleared

  /// Recovery mode lifts the offline-access restriction so media recovery
  /// can roll offline files forward.
  void set_recovery_mode(bool on) { recovery_mode_ = on; }

  Status set_tablespace_offline(TablespaceId id, Lsn last_checkpoint_lsn);
  Status set_tablespace_online(TablespaceId id);

  /// Detaches the tablespace and optionally removes its files.
  Status drop_tablespace(TablespaceId id, bool delete_files);

  /// Changes the tablespace's block quota (0 = unlimited).
  Status set_tablespace_quota(TablespaceId id, std::uint32_t max_blocks);

  /// Marks a file missing (media failure detected) without touching disk.
  void mark_missing(FileId id);

  // --- space allocation ---------------------------------------------------

  /// Picks the next free block for a new page of `owner`, round-robin over
  /// the tablespace's online files, extending a file when permitted. Does
  /// NOT format the page: the engine logs a FORMAT record first and then
  /// calls apply_format (same path as redo replay).
  Result<PageId> reserve_page(TablespaceId ts);

  /// Formats `pid` for `owner` in the cache and marks it dirty with `lsn`.
  Status apply_format(PageId pid, TableId owner, std::uint16_t slot_size,
                      Lsn lsn);

  // --- page access --------------------------------------------------------

  Result<PageRef> fetch(PageId id) {
    if (fetch_gate_) {
      Status st = fetch_gate_(id);
      if (!st.is_ok()) return st;
    }
    return cache_->fetch(id);
  }

  /// Pre-fetch hook for the early-open restart modes: invoked with the page
  /// id before the cache is consulted; an error aborts the fetch. The
  /// restart coordinator uses it to roll a page forward on demand (and
  /// disables it from inside its own drains). nullptr uninstalls.
  void set_fetch_gate(std::function<Status(PageId)> gate) {
    fetch_gate_ = std::move(gate);
  }
  void mark_dirty(PageId id) { cache_->mark_dirty(id, fs_->clock().now()); }
  /// Batched-replay variant: records the LSN of the first change this frame
  /// absorbed since it was last clean (see BufferCache::mark_dirty).
  void mark_dirty(PageId id, Lsn first_change_lsn) {
    cache_->mark_dirty(id, fs_->clock().now(), first_change_lsn);
  }
  BufferCache& cache() { return *cache_; }

  /// Sequentially reads a whole file (one bulk I/O charge) and invokes `fn`
  /// for every formatted page. Used to rebuild heap/index metadata after
  /// recovery. Does not populate the cache.
  Status scan_file(FileId id,
                   const std::function<void(std::uint32_t block,
                                            const Page& page)>& fn);

  /// DBVERIFY analogue: reads every block of the file (sequential charge)
  /// and checksums it, without populating the cache. Works on online and
  /// offline files. Bad blocks are also recorded in corrupt_blocks().
  Result<VerifyReport> verify_file(FileId id);

  // --- PageStore ----------------------------------------------------------

  Status load_page(PageId id, Page* out, sim::IoMode mode) override;
  Status store_page(PageId id, Page& page, sim::IoMode mode,
                    bool batched) override;

  // --- introspection ------------------------------------------------------

  Result<const DataFileInfo*> file_info(FileId id) const;
  Result<const TablespaceInfo*> tablespace_info(TablespaceId id) const;
  Result<TablespaceId> find_tablespace(const std::string& name) const;
  const std::vector<DataFileInfo>& files() const { return files_; }
  const std::vector<TablespaceInfo>& tablespaces() const {
    return tablespaces_;
  }
  sim::SimFs& fs() { return *fs_; }
  const StorageParams& params() const { return params_; }

  /// Transient-I/O retry counters (cumulative for this instance).
  const IoRetryStats& retry_stats() const { return retry_stats_; }

  /// Wires this manager and its buffer cache into a statistics area. The
  /// retry loop reports "io retries" / "io retries exhausted" counters;
  /// cache instruments are re-wired in the same call.
  void set_observability(obs::Observability* obs,
                         const sim::VirtualClock* clock);

  /// Blocks whose checksum failed on fetch or verify, pending block media
  /// recovery. Cleared per block once recovery repairs it.
  const std::vector<PageId>& corrupt_blocks() const { return corrupt_blocks_; }
  void clear_corrupt_block(PageId id);

  /// Sets high_water from a recovery scan.
  void set_high_water(FileId id, std::uint32_t hwm);
  Status set_recover_from(FileId id, Lsn lsn);

  /// Re-reads the file's physical size after a restore replaced it with an
  /// older (possibly shorter) image; metadata must not claim blocks the
  /// image does not have. Redo replay re-extends as it formats.
  Status sync_file_size(FileId id);

 private:
  Result<DataFileInfo*> file_mut(FileId id);
  Result<TablespaceInfo*> ts_mut(TablespaceId id);
  Status extend_file(DataFileInfo& file, std::uint32_t add_blocks);

  /// fs_->read / fs_->write wrapped in the bounded-backoff retry loop;
  /// kTransientIo exhaustion is surfaced with the retry count appended.
  Result<std::vector<std::uint8_t>> read_with_retry(const std::string& path,
                                                    std::uint64_t offset,
                                                    std::uint64_t len,
                                                    sim::IoMode mode,
                                                    bool sequential);
  Status write_with_retry(const std::string& path, std::uint64_t offset,
                          std::span<const std::uint8_t> data,
                          sim::IoMode mode, bool sequential);

  void note_corrupt(PageId id);

  sim::SimFs* fs_;
  StorageParams params_;
  bool recovery_mode_ = false;
  std::function<Status(PageId)> fetch_gate_;
  std::unique_ptr<BufferCache> cache_;
  std::vector<TablespaceInfo> tablespaces_;
  std::vector<DataFileInfo> files_;
  std::unordered_map<TablespaceId, std::uint32_t> alloc_cursor_;  // round robin
  IoRetryStats retry_stats_;
  std::vector<PageId> corrupt_blocks_;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* retries_exhausted_counter_ = nullptr;
};

}  // namespace vdb::storage
