#include "storage/table_heap.hpp"

namespace vdb::storage {

Result<TableHeap::InsertSlot> TableHeap::choose_insert_slot() {
  while (!pages_with_space_.empty()) {
    const PageId pid = *pages_with_space_.begin();
    VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(pid));
    const std::uint16_t slot = ref->find_free_slot();
    if (slot != Page::kNoSlot) {
      return InsertSlot{RowId{pid, slot}, false};
    }
    pages_with_space_.erase(pid);
  }
  VDB_ASSIGN_OR_RETURN(PageId pid, sm_->reserve_page(tablespace_));
  return InsertSlot{RowId{pid, 0}, true};
}

Status TableHeap::apply_insert(RowId rid, std::span<const std::uint8_t> row,
                               Lsn lsn) {
  VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(rid.page));
  VDB_CHECK_MSG(ref->formatted(), "insert into unformatted page");
  ref->set_slot(rid.slot, row);
  ref->set_lsn(lsn);
  sm_->mark_dirty(rid.page);
  row_count_ += 1;
  if (ref->used_count() >= ref->capacity()) {
    pages_with_space_.erase(rid.page);
  }
  return Status::ok();
}

Status TableHeap::apply_update(RowId rid, std::span<const std::uint8_t> row,
                               Lsn lsn) {
  VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(rid.page));
  if (!ref->slot_used(rid.slot)) {
    return make_error(ErrorCode::kNotFound,
                      "update of free slot at " + vdb::to_string(rid) +
                          " table " + std::to_string(id_.value));
  }
  ref->set_slot(rid.slot, row);
  ref->set_lsn(lsn);
  sm_->mark_dirty(rid.page);
  return Status::ok();
}

Status TableHeap::apply_delete(RowId rid, Lsn lsn) {
  VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(rid.page));
  if (!ref->slot_used(rid.slot)) {
    return make_error(ErrorCode::kNotFound,
                      "delete of free slot at " + vdb::to_string(rid) +
                          " table " + std::to_string(id_.value));
  }
  ref->clear_slot(rid.slot);
  ref->set_lsn(lsn);
  sm_->mark_dirty(rid.page);
  row_count_ -= 1;
  pages_with_space_.insert(rid.page);
  return Status::ok();
}

Result<std::vector<std::uint8_t>> TableHeap::read(RowId rid) const {
  VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(rid.page));
  auto slot = ref->read_slot(rid.slot);
  if (!slot.is_ok()) {
    return make_error(slot.status().code(),
                      "read of " + vdb::to_string(rid) + " table " +
                          std::to_string(id_.value) + ": " +
                          slot.status().message());
  }
  return std::vector<std::uint8_t>(slot.value().begin(), slot.value().end());
}

Status TableHeap::scan(
    const std::function<bool(RowId, std::span<const std::uint8_t>)>& fn)
    const {
  for (PageId pid : pages_) {
    VDB_ASSIGN_OR_RETURN(PageRef ref, sm_->fetch(pid));
    const std::uint16_t cap = ref->capacity();
    for (std::uint16_t slot = 0; slot < cap; ++slot) {
      if (!ref->slot_used(slot)) continue;
      auto payload = ref->read_slot(slot);
      if (!payload.is_ok()) return payload.status();
      if (!fn(RowId{pid, slot}, payload.value())) return Status::ok();
    }
  }
  return Status::ok();
}

void TableHeap::register_page(PageId pid, bool has_free_slots,
                              std::uint16_t used_count) {
  pages_.push_back(pid);
  if (has_free_slots) pages_with_space_.insert(pid);
  row_count_ += used_count;
}

void TableHeap::adopt_page(PageId pid) {
  pages_.push_back(pid);
  pages_with_space_.insert(pid);
}

void TableHeap::reset() {
  pages_.clear();
  pages_with_space_.clear();
  row_count_ = 0;
}

}  // namespace vdb::storage
