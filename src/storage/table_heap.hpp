// Table heap: fixed-slot row storage for one table over a tablespace.
//
// The heap separates *choosing* a location (choose_insert_slot, which may
// reserve a fresh page) from *applying* a physical change (apply_insert /
// apply_update / apply_delete). The engine logs a redo record between the
// two steps, and recovery replays the exact same apply functions — one code
// path for forward processing and redo, which is how the replayed database
// ends up byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "storage/storage_manager.hpp"

namespace vdb::storage {

class TableHeap {
 public:
  TableHeap(StorageManager* sm, TableId id, TablespaceId ts,
            std::uint16_t slot_size)
      : sm_(sm), id_(id), tablespace_(ts), slot_size_(slot_size) {}

  TableId id() const { return id_; }
  TablespaceId tablespace() const { return tablespace_; }
  std::uint16_t slot_size() const { return slot_size_; }

  /// Location a new row will occupy. When no existing page has room, a new
  /// page is reserved and `needs_format` is set — the caller must log and
  /// apply a FORMAT record before the INSERT record.
  struct InsertSlot {
    RowId rid;
    bool needs_format = false;
  };
  Result<InsertSlot> choose_insert_slot();

  Status apply_insert(RowId rid, std::span<const std::uint8_t> row, Lsn lsn);
  Status apply_update(RowId rid, std::span<const std::uint8_t> row, Lsn lsn);
  Status apply_delete(RowId rid, Lsn lsn);

  Result<std::vector<std::uint8_t>> read(RowId rid) const;

  /// Visits every live row. Return false from `fn` to stop early.
  Status scan(const std::function<bool(RowId, std::span<const std::uint8_t>)>&
                  fn) const;

  /// Registers a page discovered during a post-recovery rebuild scan.
  void register_page(PageId pid, bool has_free_slots,
                     std::uint16_t used_count);

  /// Called by the engine after apply_format of a page it reserved.
  void adopt_page(PageId pid);

  std::uint64_t row_count() const { return row_count_; }
  const std::vector<PageId>& pages() const { return pages_; }

  /// Forgets all in-memory placement state (used before a rebuild).
  void reset();

 private:
  StorageManager* sm_;
  TableId id_;
  TablespaceId tablespace_;
  std::uint16_t slot_size_;

  std::vector<PageId> pages_;
  std::set<PageId> pages_with_space_;
  std::uint64_t row_count_ = 0;
};

}  // namespace vdb::storage
