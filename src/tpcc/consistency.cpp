#include "tpcc/consistency.hpp"

#include <cmath>
#include <cstdio>
#include <map>

namespace vdb::tpcc {

namespace {

constexpr double kMoneyEps = 0.02;

bool money_eq(double a, double b) { return std::fabs(a - b) < kMoneyEps; }

using DKeyT = std::pair<std::uint32_t, std::uint32_t>;
using CKeyT = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

}  // namespace

void ConsistencyChecker::violation(ConsistencyReport* report,
                                   std::string message) {
  report->violations += 1;
  if (report->messages.size() < 16) {
    report->messages.push_back(std::move(message));
  }
}

Result<ConsistencyReport> ConsistencyChecker::run_all() {
  ConsistencyReport report;
  VDB_RETURN_IF_ERROR(check_warehouse_ytd(&report));
  VDB_RETURN_IF_ERROR(check_order_id_monotony(&report));
  VDB_RETURN_IF_ERROR(check_new_order_contiguity(&report));
  VDB_RETURN_IF_ERROR(check_order_line_counts(&report));
  VDB_RETURN_IF_ERROR(check_delivery_flags(&report));
  VDB_RETURN_IF_ERROR(check_customer_balance(&report));
  VDB_RETURN_IF_ERROR(check_warehouse_history(&report));
  return report;
}

Status ConsistencyChecker::check_warehouse_ytd(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<std::uint32_t, double> w_ytd;
  std::map<std::uint32_t, double> d_sum;

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kWarehouse),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<WarehouseRow>(bytes);
        w_ytd[row.w_id] = row.w_ytd;
        return true;
      }));
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kDistrict),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<DistrictRow>(bytes);
        d_sum[row.d_w_id] += row.d_ytd;
        return true;
      }));

  for (const auto& [w, ytd] : w_ytd) {
    if (!money_eq(ytd, d_sum[w])) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "C1: W_YTD(%u)=%.2f != sum(D_YTD)=%.2f", w, ytd,
                    d_sum[w]);
      violation(report, buf);
    }
  }
  return Status::ok();
}

Status ConsistencyChecker::check_order_id_monotony(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<DKeyT, std::uint32_t> next_o;
  std::map<DKeyT, std::uint32_t> max_o;
  std::map<DKeyT, std::uint32_t> max_no;

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kDistrict),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<DistrictRow>(bytes);
        next_o[{row.d_w_id, row.d_id}] = row.d_next_o_id;
        return true;
      }));
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderRow>(bytes);
        auto& v = max_o[{row.o_w_id, row.o_d_id}];
        v = std::max(v, row.o_id);
        return true;
      }));
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kNewOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<NewOrderRow>(bytes);
        auto& v = max_no[{row.no_w_id, row.no_d_id}];
        v = std::max(v, row.no_o_id);
        return true;
      }));

  for (const auto& [key, next] : next_o) {
    auto it = max_o.find(key);
    if (it != max_o.end() && it->second != next - 1) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "C2: (w%u,d%u) d_next_o_id-1=%u != max(o_id)=%u",
                    key.first, key.second, next - 1, it->second);
      violation(report, buf);
    }
    auto nit = max_no.find(key);
    if (nit != max_no.end() && nit->second > next - 1) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "C2: (w%u,d%u) max(no_o_id)=%u beyond d_next_o_id-1=%u",
                    key.first, key.second, nit->second, next - 1);
      violation(report, buf);
    }
  }
  return Status::ok();
}

Status ConsistencyChecker::check_new_order_contiguity(
    ConsistencyReport* report) {
  report->checks_run += 1;
  struct MinMaxCount {
    std::uint32_t min = ~0u;
    std::uint32_t max = 0;
    std::uint32_t count = 0;
  };
  std::map<DKeyT, MinMaxCount> stats;

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kNewOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<NewOrderRow>(bytes);
        auto& s = stats[{row.no_w_id, row.no_d_id}];
        s.min = std::min(s.min, row.no_o_id);
        s.max = std::max(s.max, row.no_o_id);
        s.count += 1;
        return true;
      }));

  for (const auto& [key, s] : stats) {
    if (s.count != s.max - s.min + 1) {
      char buf[160];
      std::snprintf(
          buf, sizeof(buf),
          "C3: (w%u,d%u) new_order count=%u != max-min+1=%u (min=%u max=%u)",
          key.first, key.second, s.count, s.max - s.min + 1, s.min, s.max);
      violation(report, buf);
    }
  }
  return Status::ok();
}

Status ConsistencyChecker::check_order_line_counts(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<CKeyT, std::uint32_t> expected;  // (w,d,o) -> ol_cnt
  std::map<CKeyT, std::uint32_t> actual;

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderRow>(bytes);
        expected[{row.o_w_id, row.o_d_id, row.o_id}] = row.o_ol_cnt;
        return true;
      }));
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrderLine),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderLineRow>(bytes);
        actual[{row.ol_w_id, row.ol_d_id, row.ol_o_id}] += 1;
        return true;
      }));

  for (const auto& [key, cnt] : expected) {
    const auto it = actual.find(key);
    const std::uint32_t have = it == actual.end() ? 0 : it->second;
    if (have != cnt) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "C4: order (w%u,d%u,o%u) has %u lines, expects %u",
                    std::get<0>(key), std::get<1>(key), std::get<2>(key),
                    have, cnt);
      violation(report, buf);
    }
  }
  for (const auto& [key, cnt] : actual) {
    if (!expected.contains(key)) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "C4: orphan order lines at (w%u,d%u,o%u)",
                    std::get<0>(key), std::get<1>(key), std::get<2>(key));
      violation(report, buf);
    }
  }
  return Status::ok();
}

Status ConsistencyChecker::check_delivery_flags(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<CKeyT, bool> has_new_order;
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kNewOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<NewOrderRow>(bytes);
        has_new_order[{row.no_w_id, row.no_d_id, row.no_o_id}] = true;
        return true;
      }));

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderRow>(bytes);
        const bool pending =
            has_new_order.contains({row.o_w_id, row.o_d_id, row.o_id});
        const bool undelivered = row.o_carrier_id < 0;
        if (pending != undelivered) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "C5: order (w%u,d%u,o%u) carrier=%d but new_order "
                        "row %s",
                        row.o_w_id, row.o_d_id, row.o_id, row.o_carrier_id,
                        pending ? "exists" : "missing");
          violation(report, buf);
        }
        return true;
      }));
  return Status::ok();
}

Status ConsistencyChecker::check_customer_balance(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<CKeyT, std::uint32_t> order_customer;  // (w,d,o) -> c
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrder),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderRow>(bytes);
        order_customer[{row.o_w_id, row.o_d_id, row.o_id}] = row.o_c_id;
        return true;
      }));

  std::map<CKeyT, double> delivered_sum;  // (w,d,c)
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kOrderLine),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<OrderLineRow>(bytes);
        if (row.ol_delivery_d == 0) return true;
        auto it = order_customer.find({row.ol_w_id, row.ol_d_id, row.ol_o_id});
        if (it == order_customer.end()) return true;  // caught by C4
        delivered_sum[{row.ol_w_id, row.ol_d_id, it->second}] +=
            row.ol_amount;
        return true;
      }));

  std::map<CKeyT, double> payments;  // (w,d,c)
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kHistory),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<HistoryRow>(bytes);
        payments[{row.h_c_w_id, row.h_c_d_id, row.h_c_id}] += row.h_amount;
        return true;
      }));

  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kCustomer),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<CustomerRow>(bytes);
        const CKeyT key{row.c_w_id, row.c_d_id, row.c_id};
        const double expected =
            delivered_sum[key] - payments[key];
        if (!money_eq(row.c_balance, expected)) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "C-balance: customer (w%u,d%u,c%u) balance=%.2f, "
                        "expected %.2f",
                        row.c_w_id, row.c_d_id, row.c_id, row.c_balance,
                        expected);
          violation(report, buf);
        }
        return true;
      }));
  return Status::ok();
}

Status ConsistencyChecker::check_warehouse_history(ConsistencyReport* report) {
  report->checks_run += 1;
  std::map<std::uint32_t, double> history_sum;
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kHistory),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<HistoryRow>(bytes);
        history_sum[row.h_w_id] += row.h_amount;
        return true;
      }));

  const double initial_hist =
      10.0 * db_->scale().districts_per_warehouse *
      db_->scale().customers_per_district;
  VDB_RETURN_IF_ERROR(db_->db().scan(
      db_->table(Tbl::kWarehouse),
      [&](RowId, std::span<const std::uint8_t> bytes) {
        auto row = from_bytes<WarehouseRow>(bytes);
        const double expected =
            300000.0 + history_sum[row.w_id] - initial_hist;
        if (!money_eq(row.w_ytd, expected)) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "W-history: warehouse %u ytd=%.2f, expected %.2f",
                        row.w_id, row.w_ytd, expected);
          violation(report, buf);
        }
        return true;
      }));
  return Status::ok();
}

}  // namespace vdb::tpcc
