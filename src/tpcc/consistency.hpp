// TPC-C consistency conditions (clause 3.3.2) — the benchmark's
// data-integrity measure.
//
// These checks run on the *actual recovered data* after every experiment;
// a violation means a real redo/undo/recovery defect, which is exactly what
// the paper's "data integrity violations" measure reports (its headline
// finding: none of the injected operator faults caused one).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "tpcc/tpcc_db.hpp"

namespace vdb::tpcc {

struct ConsistencyReport {
  std::uint32_t checks_run = 0;
  std::uint32_t violations = 0;
  std::vector<std::string> messages;  // first few violations, for diagnosis

  bool ok() const { return violations == 0; }
};

class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(TpccDb* db) : db_(db) {}

  /// Runs every implemented condition over full table scans.
  Result<ConsistencyReport> run_all();

  // Individual conditions (spec numbering):
  Status check_warehouse_ytd(ConsistencyReport* report);      // 1
  Status check_order_id_monotony(ConsistencyReport* report);  // 2
  Status check_new_order_contiguity(ConsistencyReport* r);    // 3
  Status check_order_line_counts(ConsistencyReport* report);  // 4
  Status check_delivery_flags(ConsistencyReport* report);     // 5 (NO ↔ carrier)
  Status check_customer_balance(ConsistencyReport* report);   // money flow
  Status check_warehouse_history(ConsistencyReport* report);  // money flow

 private:
  void violation(ConsistencyReport* report, std::string message);

  TpccDb* db_;
};

}  // namespace vdb::tpcc
