#include "tpcc/schema.hpp"

namespace vdb::tpcc {

namespace {

/// Pulls a string field or fails the whole decode.
#define GET_STR(field)                         \
  do {                                         \
    auto _s = dec.get_string();                \
    if (!_s.is_ok()) return _s.status();       \
    row.field = std::move(_s).value();         \
  } while (0)

#define GET_NUM(field, getter)                 \
  do {                                         \
    auto _v = dec.getter();                    \
    if (!_v.is_ok()) return _v.status();       \
    row.field = _v.value();                    \
  } while (0)

}  // namespace

void WarehouseRow::encode(Encoder& enc) const {
  enc.put_u32(w_id);
  enc.put_string(w_name);
  enc.put_string(w_street_1);
  enc.put_string(w_street_2);
  enc.put_string(w_city);
  enc.put_string(w_state);
  enc.put_string(w_zip);
  enc.put_double(w_tax);
  enc.put_double(w_ytd);
}

Result<WarehouseRow> WarehouseRow::decode(Decoder& dec) {
  WarehouseRow row;
  GET_NUM(w_id, get_u32);
  GET_STR(w_name);
  GET_STR(w_street_1);
  GET_STR(w_street_2);
  GET_STR(w_city);
  GET_STR(w_state);
  GET_STR(w_zip);
  GET_NUM(w_tax, get_double);
  GET_NUM(w_ytd, get_double);
  return row;
}

void DistrictRow::encode(Encoder& enc) const {
  enc.put_u32(d_id);
  enc.put_u32(d_w_id);
  enc.put_string(d_name);
  enc.put_string(d_street_1);
  enc.put_string(d_street_2);
  enc.put_string(d_city);
  enc.put_string(d_state);
  enc.put_string(d_zip);
  enc.put_double(d_tax);
  enc.put_double(d_ytd);
  enc.put_u32(d_next_o_id);
}

Result<DistrictRow> DistrictRow::decode(Decoder& dec) {
  DistrictRow row;
  GET_NUM(d_id, get_u32);
  GET_NUM(d_w_id, get_u32);
  GET_STR(d_name);
  GET_STR(d_street_1);
  GET_STR(d_street_2);
  GET_STR(d_city);
  GET_STR(d_state);
  GET_STR(d_zip);
  GET_NUM(d_tax, get_double);
  GET_NUM(d_ytd, get_double);
  GET_NUM(d_next_o_id, get_u32);
  return row;
}

void CustomerRow::encode(Encoder& enc) const {
  enc.put_u32(c_id);
  enc.put_u32(c_d_id);
  enc.put_u32(c_w_id);
  enc.put_string(c_first);
  enc.put_string(c_middle);
  enc.put_string(c_last);
  enc.put_string(c_street_1);
  enc.put_string(c_street_2);
  enc.put_string(c_city);
  enc.put_string(c_state);
  enc.put_string(c_zip);
  enc.put_string(c_phone);
  enc.put_u64(c_since);
  enc.put_string(c_credit);
  enc.put_double(c_credit_lim);
  enc.put_double(c_discount);
  enc.put_double(c_balance);
  enc.put_double(c_ytd_payment);
  enc.put_u32(c_payment_cnt);
  enc.put_u32(c_delivery_cnt);
  enc.put_string(c_data);
}

Result<CustomerRow> CustomerRow::decode(Decoder& dec) {
  CustomerRow row;
  GET_NUM(c_id, get_u32);
  GET_NUM(c_d_id, get_u32);
  GET_NUM(c_w_id, get_u32);
  GET_STR(c_first);
  GET_STR(c_middle);
  GET_STR(c_last);
  GET_STR(c_street_1);
  GET_STR(c_street_2);
  GET_STR(c_city);
  GET_STR(c_state);
  GET_STR(c_zip);
  GET_STR(c_phone);
  GET_NUM(c_since, get_u64);
  GET_STR(c_credit);
  GET_NUM(c_credit_lim, get_double);
  GET_NUM(c_discount, get_double);
  GET_NUM(c_balance, get_double);
  GET_NUM(c_ytd_payment, get_double);
  GET_NUM(c_payment_cnt, get_u32);
  GET_NUM(c_delivery_cnt, get_u32);
  GET_STR(c_data);
  return row;
}

void HistoryRow::encode(Encoder& enc) const {
  enc.put_u32(h_c_id);
  enc.put_u32(h_c_d_id);
  enc.put_u32(h_c_w_id);
  enc.put_u32(h_d_id);
  enc.put_u32(h_w_id);
  enc.put_u64(h_date);
  enc.put_double(h_amount);
  enc.put_string(h_data);
}

Result<HistoryRow> HistoryRow::decode(Decoder& dec) {
  HistoryRow row;
  GET_NUM(h_c_id, get_u32);
  GET_NUM(h_c_d_id, get_u32);
  GET_NUM(h_c_w_id, get_u32);
  GET_NUM(h_d_id, get_u32);
  GET_NUM(h_w_id, get_u32);
  GET_NUM(h_date, get_u64);
  GET_NUM(h_amount, get_double);
  GET_STR(h_data);
  return row;
}

void NewOrderRow::encode(Encoder& enc) const {
  enc.put_u32(no_o_id);
  enc.put_u32(no_d_id);
  enc.put_u32(no_w_id);
}

Result<NewOrderRow> NewOrderRow::decode(Decoder& dec) {
  NewOrderRow row;
  GET_NUM(no_o_id, get_u32);
  GET_NUM(no_d_id, get_u32);
  GET_NUM(no_w_id, get_u32);
  return row;
}

void OrderRow::encode(Encoder& enc) const {
  enc.put_u32(o_id);
  enc.put_u32(o_d_id);
  enc.put_u32(o_w_id);
  enc.put_u32(o_c_id);
  enc.put_u64(o_entry_d);
  enc.put_i64(o_carrier_id);
  enc.put_u8(o_ol_cnt);
  enc.put_u8(o_all_local);
}

Result<OrderRow> OrderRow::decode(Decoder& dec) {
  OrderRow row;
  GET_NUM(o_id, get_u32);
  GET_NUM(o_d_id, get_u32);
  GET_NUM(o_w_id, get_u32);
  GET_NUM(o_c_id, get_u32);
  GET_NUM(o_entry_d, get_u64);
  auto carrier = dec.get_i64();
  if (!carrier.is_ok()) return carrier.status();
  row.o_carrier_id = static_cast<std::int32_t>(carrier.value());
  GET_NUM(o_ol_cnt, get_u8);
  GET_NUM(o_all_local, get_u8);
  return row;
}

void OrderLineRow::encode(Encoder& enc) const {
  enc.put_u32(ol_o_id);
  enc.put_u32(ol_d_id);
  enc.put_u32(ol_w_id);
  enc.put_u8(ol_number);
  enc.put_u32(ol_i_id);
  enc.put_u32(ol_supply_w_id);
  enc.put_u64(ol_delivery_d);
  enc.put_u8(ol_quantity);
  enc.put_double(ol_amount);
  enc.put_string(ol_dist_info);
}

Result<OrderLineRow> OrderLineRow::decode(Decoder& dec) {
  OrderLineRow row;
  GET_NUM(ol_o_id, get_u32);
  GET_NUM(ol_d_id, get_u32);
  GET_NUM(ol_w_id, get_u32);
  GET_NUM(ol_number, get_u8);
  GET_NUM(ol_i_id, get_u32);
  GET_NUM(ol_supply_w_id, get_u32);
  GET_NUM(ol_delivery_d, get_u64);
  GET_NUM(ol_quantity, get_u8);
  GET_NUM(ol_amount, get_double);
  GET_STR(ol_dist_info);
  return row;
}

void ItemRow::encode(Encoder& enc) const {
  enc.put_u32(i_id);
  enc.put_u32(i_im_id);
  enc.put_string(i_name);
  enc.put_double(i_price);
  enc.put_string(i_data);
}

Result<ItemRow> ItemRow::decode(Decoder& dec) {
  ItemRow row;
  GET_NUM(i_id, get_u32);
  GET_NUM(i_im_id, get_u32);
  GET_STR(i_name);
  GET_NUM(i_price, get_double);
  GET_STR(i_data);
  return row;
}

void StockRow::encode(Encoder& enc) const {
  enc.put_u32(s_i_id);
  enc.put_u32(s_w_id);
  enc.put_i64(s_quantity);
  for (const auto& dist : s_dist) enc.put_string(dist);
  enc.put_double(s_ytd);
  enc.put_u32(s_order_cnt);
  enc.put_u32(s_remote_cnt);
  enc.put_string(s_data);
}

Result<StockRow> StockRow::decode(Decoder& dec) {
  StockRow row;
  GET_NUM(s_i_id, get_u32);
  GET_NUM(s_w_id, get_u32);
  auto qty = dec.get_i64();
  if (!qty.is_ok()) return qty.status();
  row.s_quantity = static_cast<std::int32_t>(qty.value());
  for (auto& dist : row.s_dist) {
    auto s = dec.get_string();
    if (!s.is_ok()) return s.status();
    dist = std::move(s).value();
  }
  GET_NUM(s_ytd, get_double);
  GET_NUM(s_order_cnt, get_u32);
  GET_NUM(s_remote_cnt, get_u32);
  GET_STR(s_data);
  return row;
}

}  // namespace vdb::tpcc
