// TPC-C schema: the nine tables of the standard benchmark (clause 1.3),
// with spec-faithful fields and byte-level row codecs.
//
// Rows are stored in fixed slots sized to each table's maximum serialized
// row; codecs are deterministic so recovery replay reproduces rows
// byte-for-byte (asserted by the integration tests).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "common/status.hpp"

namespace vdb::tpcc {

struct WarehouseRow {
  std::uint32_t w_id = 0;
  std::string w_name;      // <= 10
  std::string w_street_1;  // <= 20
  std::string w_street_2;  // <= 20
  std::string w_city;      // <= 20
  std::string w_state;     // 2
  std::string w_zip;       // 9
  double w_tax = 0;
  double w_ytd = 0;

  void encode(Encoder& enc) const;
  static Result<WarehouseRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 160;
};

struct DistrictRow {
  std::uint32_t d_id = 0;
  std::uint32_t d_w_id = 0;
  std::string d_name;      // <= 10
  std::string d_street_1;  // <= 20
  std::string d_street_2;  // <= 20
  std::string d_city;      // <= 20
  std::string d_state;     // 2
  std::string d_zip;       // 9
  double d_tax = 0;
  double d_ytd = 0;
  std::uint32_t d_next_o_id = 1;

  void encode(Encoder& enc) const;
  static Result<DistrictRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 176;
};

struct CustomerRow {
  std::uint32_t c_id = 0;
  std::uint32_t c_d_id = 0;
  std::uint32_t c_w_id = 0;
  std::string c_first;     // <= 16
  std::string c_middle;    // 2
  std::string c_last;      // <= 16
  std::string c_street_1;  // <= 20
  std::string c_street_2;  // <= 20
  std::string c_city;      // <= 20
  std::string c_state;     // 2
  std::string c_zip;       // 9
  std::string c_phone;     // 16
  std::uint64_t c_since = 0;
  std::string c_credit;  // 2: "GC" or "BC"
  double c_credit_lim = 0;
  double c_discount = 0;
  double c_balance = 0;
  double c_ytd_payment = 0;
  std::uint32_t c_payment_cnt = 0;
  std::uint32_t c_delivery_cnt = 0;
  std::string c_data;  // <= 500

  void encode(Encoder& enc) const;
  static Result<CustomerRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 760;
};

struct HistoryRow {
  std::uint32_t h_c_id = 0;
  std::uint32_t h_c_d_id = 0;
  std::uint32_t h_c_w_id = 0;
  std::uint32_t h_d_id = 0;
  std::uint32_t h_w_id = 0;
  std::uint64_t h_date = 0;
  double h_amount = 0;
  std::string h_data;  // <= 24

  void encode(Encoder& enc) const;
  static Result<HistoryRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 96;
};

struct NewOrderRow {
  std::uint32_t no_o_id = 0;
  std::uint32_t no_d_id = 0;
  std::uint32_t no_w_id = 0;

  void encode(Encoder& enc) const;
  static Result<NewOrderRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 24;
};

struct OrderRow {
  std::uint32_t o_id = 0;
  std::uint32_t o_d_id = 0;
  std::uint32_t o_w_id = 0;
  std::uint32_t o_c_id = 0;
  std::uint64_t o_entry_d = 0;
  std::int32_t o_carrier_id = -1;  // -1 = not delivered
  std::uint8_t o_ol_cnt = 0;
  std::uint8_t o_all_local = 1;

  void encode(Encoder& enc) const;
  static Result<OrderRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 48;
};

struct OrderLineRow {
  std::uint32_t ol_o_id = 0;
  std::uint32_t ol_d_id = 0;
  std::uint32_t ol_w_id = 0;
  std::uint8_t ol_number = 0;
  std::uint32_t ol_i_id = 0;
  std::uint32_t ol_supply_w_id = 0;
  std::uint64_t ol_delivery_d = 0;  // 0 = not delivered
  std::uint8_t ol_quantity = 0;
  double ol_amount = 0;
  std::string ol_dist_info;  // 24

  void encode(Encoder& enc) const;
  static Result<OrderLineRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 96;
};

struct ItemRow {
  std::uint32_t i_id = 0;
  std::uint32_t i_im_id = 0;
  std::string i_name;  // <= 24
  double i_price = 0;
  std::string i_data;  // <= 50

  void encode(Encoder& enc) const;
  static Result<ItemRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 112;
};

struct StockRow {
  std::uint32_t s_i_id = 0;
  std::uint32_t s_w_id = 0;
  std::int32_t s_quantity = 0;
  std::array<std::string, 10> s_dist;  // 24 each
  double s_ytd = 0;
  std::uint32_t s_order_cnt = 0;
  std::uint32_t s_remote_cnt = 0;
  std::string s_data;  // <= 50

  void encode(Encoder& enc) const;
  static Result<StockRow> decode(Decoder& dec);
  static constexpr std::uint16_t kSlotSize = 384;
};

/// Canonical table names (owned by the TPCC user in the TPCC tablespace).
inline constexpr const char* kWarehouseTable = "warehouse";
inline constexpr const char* kDistrictTable = "district";
inline constexpr const char* kCustomerTable = "customer";
inline constexpr const char* kHistoryTable = "history";
inline constexpr const char* kNewOrderTable = "new_order";
inline constexpr const char* kOrderTable = "orders";
inline constexpr const char* kOrderLineTable = "order_line";
inline constexpr const char* kItemTable = "item";
inline constexpr const char* kStockTable = "stock";

/// Serializes any row type to bytes.
template <typename Row>
std::vector<std::uint8_t> to_bytes(const Row& row) {
  std::vector<std::uint8_t> out;
  Encoder enc(&out);
  row.encode(enc);
  return out;
}

/// Parses a row, aborting on corruption (row bytes come from our own pages;
/// damage would be an engine bug, which tests must surface loudly).
template <typename Row>
Row from_bytes(std::span<const std::uint8_t> bytes) {
  Decoder dec(bytes);
  auto row = Row::decode(dec);
  VDB_CHECK_MSG(row.is_ok(), "row decode failed");
  return std::move(row).value();
}

}  // namespace vdb::tpcc
