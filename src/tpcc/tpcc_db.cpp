#include "tpcc/tpcc_db.hpp"

#include <algorithm>
#include <cstring>

namespace vdb::tpcc {

const char* table_name(Tbl t) {
  switch (t) {
    case Tbl::kWarehouse: return kWarehouseTable;
    case Tbl::kDistrict: return kDistrictTable;
    case Tbl::kCustomer: return kCustomerTable;
    case Tbl::kHistory: return kHistoryTable;
    case Tbl::kNewOrder: return kNewOrderTable;
    case Tbl::kOrder: return kOrderTable;
    case Tbl::kOrderLine: return kOrderLineTable;
    case Tbl::kItem: return kItemTable;
    case Tbl::kStock: return kStockTable;
  }
  return "?";
}

NameArr to_name_arr(const std::string& s) {
  NameArr arr{};
  std::memcpy(arr.data(), s.data(), std::min(s.size(), arr.size()));
  return arr;
}

namespace {

struct SlotSpec {
  Tbl tbl;
  std::uint16_t slot_size;
};

constexpr SlotSpec kSlots[kTableCount] = {
    {Tbl::kWarehouse, WarehouseRow::kSlotSize},
    {Tbl::kDistrict, DistrictRow::kSlotSize},
    {Tbl::kCustomer, CustomerRow::kSlotSize},
    {Tbl::kHistory, HistoryRow::kSlotSize},
    {Tbl::kNewOrder, NewOrderRow::kSlotSize},
    {Tbl::kOrder, OrderRow::kSlotSize},
    {Tbl::kOrderLine, OrderLineRow::kSlotSize},
    {Tbl::kItem, ItemRow::kSlotSize},
    {Tbl::kStock, StockRow::kSlotSize},
};

}  // namespace

Status TpccDb::create_schema(engine::Database& db,
                             const std::string& tablespace, UserId owner) {
  for (const SlotSpec& spec : kSlots) {
    auto table = db.create_table(table_name(spec.tbl), tablespace,
                                 spec.slot_size, owner);
    if (!table.is_ok()) return table.status();
  }
  return Status::ok();
}

Status TpccDb::attach(engine::Database* db) {
  db_ = db;
  clear_indexes();
  for (const SlotSpec& spec : kSlots) {
    auto id = db_->table_id(table_name(spec.tbl));
    if (!id.is_ok()) return id.status();
    tables_[static_cast<size_t>(spec.tbl)] = id.value();

    const Tbl tbl = spec.tbl;
    db_->register_observer(id.value(),
                           [this, tbl](const engine::RowChange& change) {
                             apply_index_change(tbl, change);
                           });
  }
  db_->set_rebuild_hook(
      [this](TableId table, RowId rid, std::span<const std::uint8_t> row) {
        auto tbl = tbl_of(table);
        if (tbl.has_value()) {
          std::unique_lock lock(index_mu_);
          index_insert(*tbl, rid, row);
        }
      });
  return Status::ok();
}

std::optional<Tbl> TpccDb::tbl_of(TableId id) const {
  for (size_t i = 0; i < kTableCount; ++i) {
    if (tables_[i] == id) return static_cast<Tbl>(i);
  }
  return std::nullopt;
}

void TpccDb::apply_index_change(Tbl t, const engine::RowChange& change) {
  std::unique_lock lock(index_mu_);
  switch (change.kind) {
    case engine::RowChange::Kind::kInsert:
      index_insert(t, change.rid, change.after);
      break;
    case engine::RowChange::Kind::kDelete:
      index_erase(t, change.rid, change.before);
      break;
    case engine::RowChange::Kind::kUpdate:
      // TPC-C business keys are immutable; nothing moves.
      break;
  }
}

void TpccDb::index_insert(Tbl t, RowId rid,
                          std::span<const std::uint8_t> row) {
  switch (t) {
    case Tbl::kWarehouse: {
      auto r = from_bytes<WarehouseRow>(row);
      warehouse_idx_.insert(r.w_id, rid);
      break;
    }
    case Tbl::kDistrict: {
      auto r = from_bytes<DistrictRow>(row);
      district_idx_.insert({r.d_w_id, r.d_id}, rid);
      break;
    }
    case Tbl::kCustomer: {
      auto r = from_bytes<CustomerRow>(row);
      customer_idx_.insert({r.c_w_id, r.c_d_id, r.c_id}, rid);
      name_idx_.insert({r.c_w_id, r.c_d_id, to_name_arr(r.c_last), r.c_id},
                       rid);
      break;
    }
    case Tbl::kHistory:
      break;  // no access path
    case Tbl::kNewOrder: {
      auto r = from_bytes<NewOrderRow>(row);
      new_order_idx_.insert({r.no_w_id, r.no_d_id, r.no_o_id}, rid);
      break;
    }
    case Tbl::kOrder: {
      auto r = from_bytes<OrderRow>(row);
      order_idx_.insert({r.o_w_id, r.o_d_id, r.o_id}, rid);
      order_cust_idx_.insert({r.o_w_id, r.o_d_id, r.o_c_id, r.o_id}, rid);
      break;
    }
    case Tbl::kOrderLine: {
      auto r = from_bytes<OrderLineRow>(row);
      order_line_idx_.insert(
          {r.ol_w_id, r.ol_d_id, r.ol_o_id, r.ol_number}, rid);
      break;
    }
    case Tbl::kItem: {
      auto r = from_bytes<ItemRow>(row);
      item_idx_.insert(r.i_id, rid);
      break;
    }
    case Tbl::kStock: {
      auto r = from_bytes<StockRow>(row);
      stock_idx_.insert({r.s_w_id, r.s_i_id}, rid);
      break;
    }
  }
}

void TpccDb::index_erase(Tbl t, RowId rid, std::span<const std::uint8_t> row) {
  // Erase only if the index still maps the business key to *this* row. A
  // concurrent transaction that aborted a duplicate-key insert delivers a
  // delete notification for a key another (committed) row legitimately
  // owns; an unconditional erase would strip the survivor's entry.
  auto erase_match = [rid](auto& idx, const auto& key) {
    const RowId* cur = idx.find(key);
    if (cur != nullptr && *cur == rid) idx.erase(key);
  };
  switch (t) {
    case Tbl::kWarehouse: {
      auto r = from_bytes<WarehouseRow>(row);
      erase_match(warehouse_idx_, r.w_id);
      break;
    }
    case Tbl::kDistrict: {
      auto r = from_bytes<DistrictRow>(row);
      erase_match(district_idx_, std::tuple{r.d_w_id, r.d_id});
      break;
    }
    case Tbl::kCustomer: {
      auto r = from_bytes<CustomerRow>(row);
      erase_match(customer_idx_, std::tuple{r.c_w_id, r.c_d_id, r.c_id});
      erase_match(name_idx_, std::tuple{r.c_w_id, r.c_d_id,
                                        to_name_arr(r.c_last), r.c_id});
      break;
    }
    case Tbl::kHistory:
      break;
    case Tbl::kNewOrder: {
      auto r = from_bytes<NewOrderRow>(row);
      erase_match(new_order_idx_, std::tuple{r.no_w_id, r.no_d_id, r.no_o_id});
      break;
    }
    case Tbl::kOrder: {
      auto r = from_bytes<OrderRow>(row);
      erase_match(order_idx_, std::tuple{r.o_w_id, r.o_d_id, r.o_id});
      erase_match(order_cust_idx_,
                  std::tuple{r.o_w_id, r.o_d_id, r.o_c_id, r.o_id});
      break;
    }
    case Tbl::kOrderLine: {
      auto r = from_bytes<OrderLineRow>(row);
      erase_match(order_line_idx_,
                  std::tuple{r.ol_w_id, r.ol_d_id, r.ol_o_id, r.ol_number});
      break;
    }
    case Tbl::kItem: {
      auto r = from_bytes<ItemRow>(row);
      erase_match(item_idx_, r.i_id);
      break;
    }
    case Tbl::kStock: {
      auto r = from_bytes<StockRow>(row);
      erase_match(stock_idx_, std::tuple{r.s_w_id, r.s_i_id});
      break;
    }
  }
}

std::optional<RowId> TpccDb::warehouse_rid(std::uint32_t w) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = warehouse_idx_.find(w);
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::optional<RowId> TpccDb::district_rid(std::uint32_t w,
                                          std::uint32_t d) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = district_idx_.find({w, d});
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::optional<RowId> TpccDb::customer_rid(std::uint32_t w, std::uint32_t d,
                                          std::uint32_t c) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = customer_idx_.find({w, d, c});
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::vector<std::pair<std::uint32_t, RowId>> TpccDb::customers_by_name(
    std::uint32_t w, std::uint32_t d, const std::string& last) const {
  std::shared_lock lock(index_mu_);
  std::vector<std::pair<std::uint32_t, RowId>> out;
  const NameArr name = to_name_arr(last);
  name_idx_.scan_range(
      {w, d, name, 0}, {w, d, name, ~0u},
      [&](const std::tuple<std::uint32_t, std::uint32_t, NameArr,
                           std::uint32_t>& key,
          const RowId& rid) {
        out.emplace_back(std::get<3>(key), rid);
        return true;
      });
  return out;
}

std::optional<RowId> TpccDb::item_rid(std::uint32_t i) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = item_idx_.find(i);
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::optional<RowId> TpccDb::stock_rid(std::uint32_t w,
                                       std::uint32_t i) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = stock_idx_.find({w, i});
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::optional<RowId> TpccDb::order_rid(std::uint32_t w, std::uint32_t d,
                                       std::uint32_t o) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = order_idx_.find({w, d, o});
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::optional<std::pair<std::uint32_t, RowId>> TpccDb::last_order_of_customer(
    std::uint32_t w, std::uint32_t d, std::uint32_t c) const {
  std::shared_lock lock(index_mu_);
  std::optional<std::pair<std::uint32_t, RowId>> out;
  order_cust_idx_.scan_range_desc(
      {w, d, c, 0}, {w, d, c, ~0u},
      [&](const std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                           std::uint32_t>& key,
          const RowId& rid) {
        out = {std::get<3>(key), rid};
        return false;  // newest only
      });
  return out;
}

std::optional<std::pair<std::uint32_t, RowId>> TpccDb::oldest_new_order(
    std::uint32_t w, std::uint32_t d) const {
  std::shared_lock lock(index_mu_);
  std::optional<std::pair<std::uint32_t, RowId>> out;
  new_order_idx_.scan_range(
      {w, d, 0}, {w, d, ~0u},
      [&](const std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>& key,
          const RowId& rid) {
        out = {std::get<2>(key), rid};
        return false;  // oldest only
      });
  return out;
}

std::optional<RowId> TpccDb::new_order_rid(std::uint32_t w, std::uint32_t d,
                                           std::uint32_t o) const {
  std::shared_lock lock(index_mu_);
  const RowId* rid = new_order_idx_.find({w, d, o});
  return rid ? std::optional<RowId>(*rid) : std::nullopt;
}

std::vector<RowId> TpccDb::order_lines(std::uint32_t w, std::uint32_t d,
                                       std::uint32_t o) const {
  std::shared_lock lock(index_mu_);
  std::vector<RowId> out;
  order_line_idx_.scan_range(
      {w, d, o, 0}, {w, d, o, ~0u},
      [&](const auto&, const RowId& rid) {
        out.push_back(rid);
        return true;
      });
  return out;
}

std::vector<RowId> TpccDb::order_lines_range(std::uint32_t w, std::uint32_t d,
                                             std::uint32_t o1,
                                             std::uint32_t o2) const {
  std::shared_lock lock(index_mu_);
  std::vector<RowId> out;
  if (o1 >= o2) return out;
  order_line_idx_.scan_range(
      {w, d, o1, 0}, {w, d, o2 - 1, ~0u},
      [&](const auto&, const RowId& rid) {
        out.push_back(rid);
        return true;
      });
  return out;
}

size_t TpccDb::index_entries() const {
  std::shared_lock lock(index_mu_);
  return warehouse_idx_.size() + district_idx_.size() +
         customer_idx_.size() + name_idx_.size() + item_idx_.size() +
         stock_idx_.size() + order_idx_.size() + order_cust_idx_.size() +
         new_order_idx_.size() + order_line_idx_.size();
}

void TpccDb::clear_indexes() {
  std::unique_lock lock(index_mu_);
  warehouse_idx_.clear();
  district_idx_.clear();
  customer_idx_.clear();
  name_idx_.clear();
  item_idx_.clear();
  stock_idx_.clear();
  order_idx_.clear();
  order_cust_idx_.clear();
  new_order_idx_.clear();
  order_line_idx_.clear();
}

}  // namespace vdb::tpcc
