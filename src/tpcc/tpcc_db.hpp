// TPC-C database binding: schema creation, access-path indexes, and typed
// row accessors over the engine's byte-row API.
//
// Indexes are application-side B+-trees keyed by the business keys the five
// transactions need. They are maintained by engine row observers during
// normal processing (including rollbacks) and rebuilt through the engine's
// rebuild hook after any recovery — mirroring how the real benchmark's
// access paths come back after Oracle recovers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "engine/database.hpp"
#include "index/bplus_tree.hpp"
#include "tpcc/schema.hpp"
#include "tpcc/tpcc_random.hpp"

namespace vdb::tpcc {

enum class Tbl : std::uint8_t {
  kWarehouse = 0,
  kDistrict,
  kCustomer,
  kHistory,
  kNewOrder,
  kOrder,
  kOrderLine,
  kItem,
  kStock,
};
constexpr size_t kTableCount = 9;
const char* table_name(Tbl t);

/// Fixed-width last-name key segment.
using NameArr = std::array<char, 16>;
NameArr to_name_arr(const std::string& s);

class TpccDb {
 public:
  explicit TpccDb(TpccScale scale) : scale_(scale) {}

  /// Creates the nine tables (fresh database, open instance).
  Status create_schema(engine::Database& db, const std::string& tablespace,
                       UserId owner);

  /// Binds to an instance: resolves table ids, wires row observers and the
  /// post-recovery rebuild hook, clears in-memory indexes. Call before
  /// startup()/activation for recovered instances so the rebuild scan
  /// repopulates the indexes; for a freshly created database call it right
  /// after create_schema (the loader's inserts then populate the indexes
  /// through the observers).
  Status attach(engine::Database* db);

  engine::Database& db() { return *db_; }
  bool attached() const { return db_ != nullptr; }
  TableId table(Tbl t) const { return tables_[static_cast<size_t>(t)]; }
  const TpccScale& scale() const { return scale_; }

  // --- access paths ---------------------------------------------------------

  std::optional<RowId> warehouse_rid(std::uint32_t w) const;
  std::optional<RowId> district_rid(std::uint32_t w, std::uint32_t d) const;
  std::optional<RowId> customer_rid(std::uint32_t w, std::uint32_t d,
                                    std::uint32_t c) const;
  /// Customers with the given last name, ordered by c_id (clause 2.5.2.2
  /// approximated: selection by id order rather than first-name order).
  std::vector<std::pair<std::uint32_t, RowId>> customers_by_name(
      std::uint32_t w, std::uint32_t d, const std::string& last) const;
  std::optional<RowId> item_rid(std::uint32_t i) const;
  std::optional<RowId> stock_rid(std::uint32_t w, std::uint32_t i) const;
  std::optional<RowId> order_rid(std::uint32_t w, std::uint32_t d,
                                 std::uint32_t o) const;
  /// Highest o_id order of a customer.
  std::optional<std::pair<std::uint32_t, RowId>> last_order_of_customer(
      std::uint32_t w, std::uint32_t d, std::uint32_t c) const;
  /// Lowest o_id pending new-order of a district.
  std::optional<std::pair<std::uint32_t, RowId>> oldest_new_order(
      std::uint32_t w, std::uint32_t d) const;
  std::optional<RowId> new_order_rid(std::uint32_t w, std::uint32_t d,
                                     std::uint32_t o) const;
  /// Order lines of one order, in line order.
  std::vector<RowId> order_lines(std::uint32_t w, std::uint32_t d,
                                 std::uint32_t o) const;
  /// Order lines of orders with o1 <= o_id < o2 (Stock-Level).
  std::vector<RowId> order_lines_range(std::uint32_t w, std::uint32_t d,
                                       std::uint32_t o1,
                                       std::uint32_t o2) const;

  // --- typed row I/O ---------------------------------------------------------

  template <typename Row>
  Result<Row> read_row(TxnId txn, Tbl t, RowId rid) {
    auto bytes = db_->read(txn, table(t), rid);
    if (!bytes.is_ok()) return bytes.status();
    return from_bytes<Row>(bytes.value());
  }

  template <typename Row>
  Result<RowId> insert_row(TxnId txn, Tbl t, const Row& row) {
    return db_->insert(txn, table(t), to_bytes(row));
  }

  template <typename Row>
  Status update_row(TxnId txn, Tbl t, RowId rid, const Row& row) {
    return db_->update(txn, table(t), rid, to_bytes(row));
  }

  size_t index_entries() const;
  void clear_indexes();

 private:
  void apply_index_change(Tbl t, const engine::RowChange& change);
  // Callers of the two low-level maintainers must hold index_mu_ exclusive.
  void index_insert(Tbl t, RowId rid, std::span<const std::uint8_t> row);
  void index_erase(Tbl t, RowId rid, std::span<const std::uint8_t> row);
  std::optional<Tbl> tbl_of(TableId id) const;

  TpccScale scale_;
  engine::Database* db_ = nullptr;
  std::array<TableId, kTableCount> tables_{};

  /// Guards the B+-trees when a transaction coordinator drives the engine
  /// with worker threads: observers mutate under an exclusive lock, the
  /// access-path readers above take it shared. Uncontended (the serial
  /// driver) it is a few atomic ops per call.
  mutable std::shared_mutex index_mu_;

  using U32 = std::uint32_t;
  index::BPlusTree<U32, RowId> warehouse_idx_;
  index::BPlusTree<std::tuple<U32, U32>, RowId> district_idx_;
  index::BPlusTree<std::tuple<U32, U32, U32>, RowId> customer_idx_;
  index::BPlusTree<std::tuple<U32, U32, NameArr, U32>, RowId> name_idx_;
  index::BPlusTree<U32, RowId> item_idx_;
  index::BPlusTree<std::tuple<U32, U32>, RowId> stock_idx_;
  index::BPlusTree<std::tuple<U32, U32, U32>, RowId> order_idx_;
  index::BPlusTree<std::tuple<U32, U32, U32, U32>, RowId> order_cust_idx_;
  index::BPlusTree<std::tuple<U32, U32, U32>, RowId> new_order_idx_;
  index::BPlusTree<std::tuple<U32, U32, U32, U32>, RowId> order_line_idx_;
};

}  // namespace vdb::tpcc
