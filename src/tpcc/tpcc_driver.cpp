#include "tpcc/tpcc_driver.hpp"

#include <algorithm>
#include <string>

namespace vdb::tpcc {

Driver::Driver(TpccDb* db, sim::Scheduler* scheduler, DriverConfig cfg)
    : db_(db), scheduler_(scheduler), cfg_(cfg),
      series_origin_(scheduler->now()),
      random_(Rng{cfg.seed}, db->scale()), txns_(db, &random_) {
  size_t i = 0;
  for (int k = 0; k < 10; ++k) deck_[i++] = TxnType::kNewOrder;
  for (int k = 0; k < 10; ++k) deck_[i++] = TxnType::kPayment;
  deck_[i++] = TxnType::kOrderStatus;
  deck_[i++] = TxnType::kDelivery;
  deck_[i++] = TxnType::kStockLevel;
  // Initial shuffle; the deck is reshuffled every pass.
  Rng& rng = random_.rng();
  for (size_t k = deck_.size(); k > 1; --k) {
    std::swap(deck_[k - 1], deck_[static_cast<size_t>(rng.uniform(
                                0, static_cast<std::int64_t>(k) - 1))]);
  }
}

TxnType Driver::pick_type() {
  if (deck_pos_ >= deck_.size()) {
    deck_pos_ = 0;
    Rng& rng = random_.rng();
    for (size_t k = deck_.size(); k > 1; --k) {
      std::swap(deck_[k - 1], deck_[static_cast<size_t>(rng.uniform(
                                  0, static_cast<std::int64_t>(k) - 1))]);
    }
  }
  return deck_[deck_pos_++];
}

Status Driver::run_until(SimTime until) {
  sim::VirtualClock& clock = scheduler_->clock();
  obs::MetricsRegistry& registry = db_->db().obs().registry();
  for (size_t k = 0; k < kTxnTypes; ++k) {
    latency_hist_[k] = registry.histogram(
        std::string("client response ") + to_string(static_cast<TxnType>(k)));
  }
  while (clock.now() < until) {
    scheduler_->run_due();
    if (clock.now() >= until) break;

    const TxnType type = pick_type();
    const std::uint32_t w = random_.warehouse_id();
    const SimTime begin = clock.now();
    auto outcome = txns_.run(type, w);
    if (!outcome.is_ok()) {
      const ErrorCode code = outcome.code();
      if (code == ErrorCode::kDeadlock || code == ErrorCode::kLockTimeout) {
        stats_.lock_retries += 1;
        continue;
      }
      if (code == ErrorCode::kRecoveryRequired) {
        // M2 early-open restart rejected a pending page. Back off (firing
        // due background events — the restart sweeper among them — at
        // their exact instants) and try again.
        stats_.recovery_retries += 1;
        const SimTime resume_at =
            std::min(until, clock.now() + cfg_.recovery_retry_backoff);
        if (resume_at > clock.now()) scheduler_->run_until(resume_at);
        continue;
      }
      stats_.failed_attempts += 1;
      return outcome.status();
    }
    if (outcome.value().intentional_rollback) {
      stats_.intentional_rollbacks += 1;
      continue;
    }
    if (outcome.value().committed) {
      stats_.committed += 1;
      stats_.committed_by_type[static_cast<size_t>(type)] += 1;
      CommitRecord record{type, outcome.value().commit_lsn, clock.now(),
                          clock.now() - begin};
      commits_.push_back(record);
      latency_hist_[static_cast<size_t>(type)]->record(record.response_time);
      if (type == TxnType::kNewOrder) {
        const size_t bucket = static_cast<size_t>(
            (clock.now() - series_origin_) / cfg_.report_interval);
        if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
        series_[bucket] += 1;
      }
    }
  }
  return Status::ok();
}

double Driver::tpmc(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.type == TxnType::kNewOrder && record.commit_time >= from &&
        record.commit_time < to) {
      count += 1;
    }
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

double Driver::tpm_total(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.commit_time >= from && record.commit_time < to) count += 1;
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

SimDuration Driver::response_percentile(TxnType type, double q) const {
  std::vector<SimDuration> samples;
  for (const CommitRecord& record : commits_) {
    if (record.type == type) samples.push_back(record.response_time);
  }
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t index = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

SimDuration Driver::mean_response(TxnType type) const {
  SimDuration total = 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.type == type) {
      total += record.response_time;
      count += 1;
    }
  }
  return count == 0 ? 0 : total / count;
}

std::uint64_t Driver::count_lost(Lsn recovered_to, SimTime before) const {
  std::uint64_t lost = 0;
  for (const CommitRecord& record : commits_) {
    if (record.commit_time >= before) continue;
    if (record.commit_lsn == 0) continue;  // read-only: nothing to lose
    if (record.commit_lsn > recovered_to) lost += 1;
  }
  return lost;
}

}  // namespace vdb::tpcc
