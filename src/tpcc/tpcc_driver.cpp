#include "tpcc/tpcc_driver.hpp"

#include <algorithm>
#include <string>

namespace vdb::tpcc {

namespace {

void shuffle_deck(std::array<TxnType, 23>& deck, Rng& rng) {
  for (size_t k = deck.size(); k > 1; --k) {
    std::swap(deck[k - 1], deck[static_cast<size_t>(rng.uniform(
                               0, static_cast<std::int64_t>(k) - 1))]);
  }
}

void fill_deck(std::array<TxnType, 23>& deck) {
  size_t i = 0;
  for (int k = 0; k < 10; ++k) deck[i++] = TxnType::kNewOrder;
  for (int k = 0; k < 10; ++k) deck[i++] = TxnType::kPayment;
  deck[i++] = TxnType::kOrderStatus;
  deck[i++] = TxnType::kDelivery;
  deck[i++] = TxnType::kStockLevel;
}

}  // namespace

/// One terminal emulator of the concurrent driver: a private input stream
/// (rng, card deck) and transaction runner, so worker k draws the same
/// inputs regardless of how the other workers' attempts interleave.
struct Driver::WorkerState {
  TpccRandom random;
  TpccTxns txns;
  std::array<TxnType, 23> deck{};
  size_t deck_pos = 0;

  WorkerState(TpccDb* db, std::uint64_t seed)
      : random(Rng{seed}, db->scale()), txns(db, &random) {
    fill_deck(deck);
    shuffle_deck(deck, random.rng());
  }

  TxnType pick_type() {
    if (deck_pos >= deck.size()) {
      deck_pos = 0;
      shuffle_deck(deck, random.rng());
    }
    return deck[deck_pos++];
  }
};

Driver::Driver(TpccDb* db, sim::Scheduler* scheduler, DriverConfig cfg)
    : db_(db), scheduler_(scheduler), cfg_(cfg),
      series_origin_(scheduler->now()),
      random_(Rng{cfg.seed}, db->scale()), txns_(db, &random_) {
  fill_deck(deck_);
  // Initial shuffle; the deck is reshuffled every pass.
  shuffle_deck(deck_, random_.rng());
  if (cfg_.workers > 1) {
    txn::TxnCoordinator::Config ccfg;
    ccfg.workers = cfg_.workers;
    ccfg.protocol = cfg_.cc_protocol;
    coord_ = std::make_unique<txn::TxnCoordinator>(ccfg);
    for (unsigned k = 0; k < coord_->workers(); ++k) {
      workers_.push_back(std::make_unique<WorkerState>(
          db_, cfg_.seed ^ (0x9E3779B97F4A7C15ull * (k + 1))));
    }
  }
}

Driver::~Driver() = default;

TxnType Driver::pick_type() {
  if (deck_pos_ >= deck_.size()) {
    deck_pos_ = 0;
    Rng& rng = random_.rng();
    for (size_t k = deck_.size(); k > 1; --k) {
      std::swap(deck_[k - 1], deck_[static_cast<size_t>(rng.uniform(
                                  0, static_cast<std::int64_t>(k) - 1))]);
    }
  }
  return deck_[deck_pos_++];
}

Status Driver::run_until(SimTime until) {
  obs::MetricsRegistry& registry = db_->db().obs().registry();
  for (size_t k = 0; k < kTxnTypes; ++k) {
    latency_hist_[k] = registry.histogram(
        std::string("client response ") + to_string(static_cast<TxnType>(k)));
  }
  return coord_ ? run_concurrent(until) : run_serial(until);
}

Status Driver::run_serial(SimTime until) {
  sim::VirtualClock& clock = scheduler_->clock();
  while (clock.now() < until) {
    scheduler_->run_due();
    if (clock.now() >= until) break;

    const TxnType type = pick_type();
    const std::uint32_t w = random_.warehouse_id();
    const SimTime begin = clock.now();
    auto outcome = txns_.run(type, w);
    if (!outcome.is_ok()) {
      const ErrorCode code = outcome.code();
      if (code == ErrorCode::kDeadlock || code == ErrorCode::kLockTimeout) {
        stats_.lock_retries += 1;
        continue;
      }
      if (code == ErrorCode::kRecoveryRequired) {
        // M2 early-open restart rejected a pending page. Back off (firing
        // due background events — the restart sweeper among them — at
        // their exact instants) and try again.
        stats_.recovery_retries += 1;
        const SimTime resume_at =
            std::min(until, clock.now() + cfg_.recovery_retry_backoff);
        if (resume_at > clock.now()) scheduler_->run_until(resume_at);
        continue;
      }
      stats_.failed_attempts += 1;
      return outcome.status();
    }
    if (outcome.value().intentional_rollback) {
      stats_.intentional_rollbacks += 1;
      continue;
    }
    if (outcome.value().committed) {
      stats_.committed += 1;
      stats_.committed_by_type[static_cast<size_t>(type)] += 1;
      CommitRecord record{type, outcome.value().commit_lsn, clock.now(),
                          clock.now() - begin};
      commits_.push_back(record);
      latency_hist_[static_cast<size_t>(type)]->record(record.response_time);
      if (type == TxnType::kNewOrder) {
        const size_t bucket = static_cast<size_t>(
            (clock.now() - series_origin_) / cfg_.report_interval);
        if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
        series_[bucket] += 1;
      }
    }
  }
  return Status::ok();
}

Status Driver::run_concurrent(SimTime until) {
  sim::VirtualClock& clock = scheduler_->clock();
  engine::Database& db = db_->db();
  txn::ConcurrencyControl* cc = coord_->cc();
  // Re-wired every call: crash-restart swaps the Database incarnation (and
  // possibly its statistics area), exactly like latency_hist_ above.
  cc->set_observability(&db.obs());
  db.set_concurrency_control(cc);
  struct Uninstall {
    engine::Database* db;
    ~Uninstall() { db->set_concurrency_control(nullptr); }
  } uninstall{&db};

  const unsigned n = coord_->workers();
  struct LocalCommit {
    TxnType type = TxnType::kNewOrder;
    Lsn lsn = 0;
    SimDuration offset = 0;    // worker-local commit instant
    SimDuration response = 0;  // begin -> commit on the worker timeline
    bool valid = false;
  };
  struct RoundResult {
    SimDuration sink = 0;  // worker-local elapsed time this round
    LocalCommit commit;
    std::uint64_t cc_retries = 0;
    std::uint64_t intentional_rollbacks = 0;
    std::uint64_t recovery_retries = 0;
    bool backoff = false;
    Status fatal = Status::ok();
  };
  std::vector<RoundResult> results(n);

  while (clock.now() < until) {
    scheduler_->run_due();
    if (clock.now() >= until) break;
    const SimTime round_start = clock.now();
    for (RoundResult& r : results) r = RoundResult{};

    // One round: every worker completes one interaction on a private
    // timeline (the global clock stays frozen); conflict losers retry with
    // fresh inputs inside the round, per the spec's "resubmit" behaviour.
    coord_->run_round([&](unsigned k) {
      RoundResult& r = results[k];
      WorkerState& ws = *workers_[k];
      sim::VirtualClock::install_local_sink(&r.sink);
      for (int attempt = 0; attempt < 64; ++attempt) {
        const TxnType type = ws.pick_type();
        const std::uint32_t w = ws.random.warehouse_id();
        const SimDuration begin_offset = r.sink;
        auto outcome = ws.txns.run(type, w);
        if (!outcome.is_ok()) {
          const ErrorCode code = outcome.code();
          // kNotFound covers stale access-path races (e.g. two Delivery
          // transactions draining the same oldest NEW-ORDER entry).
          if (code == ErrorCode::kDeadlock || code == ErrorCode::kLockTimeout ||
              code == ErrorCode::kTxnAborted || code == ErrorCode::kNotFound) {
            r.cc_retries += 1;
            continue;
          }
          if (code == ErrorCode::kRecoveryRequired) {
            r.recovery_retries += 1;
            r.backoff = true;
            break;
          }
          // Service failure. The transaction may have died before rollback
          // could reach the protocol's end() hook; drop whatever this
          // thread's transactions still hold so no peer waits forever.
          r.fatal = outcome.status();
          cc->release_thread_residue();
          break;
        }
        if (outcome.value().intentional_rollback) {
          r.intentional_rollbacks += 1;
          break;
        }
        if (outcome.value().committed) {
          r.commit = {type, outcome.value().commit_lsn, r.sink,
                      r.sink - begin_offset, true};
        }
        break;
      }
      sim::VirtualClock::remove_local_sink();
    });

    // The workers ran in parallel on private timelines; the shared clock
    // advances by the round makespan — N workers, N processors.
    SimDuration makespan = 0;
    for (const RoundResult& r : results) makespan = std::max(makespan, r.sink);
    clock.advance_to(round_start + makespan);

    // Merge commits in virtual-time order (ties by worker id) so the
    // commit log and throughput series stay deterministic.
    std::vector<unsigned> order;
    for (unsigned k = 0; k < n; ++k) {
      if (results[k].commit.valid) order.push_back(k);
    }
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
      if (results[a].commit.offset != results[b].commit.offset) {
        return results[a].commit.offset < results[b].commit.offset;
      }
      return a < b;
    });
    for (unsigned k : order) {
      const LocalCommit& c = results[k].commit;
      stats_.committed += 1;
      stats_.committed_by_type[static_cast<size_t>(c.type)] += 1;
      CommitRecord record{c.type, c.lsn, round_start + c.offset, c.response};
      commits_.push_back(record);
      latency_hist_[static_cast<size_t>(c.type)]->record(record.response_time);
      if (c.type == TxnType::kNewOrder) {
        const size_t bucket = static_cast<size_t>(
            (record.commit_time - series_origin_) / cfg_.report_interval);
        if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
        series_[bucket] += 1;
      }
    }

    bool backoff = false;
    Status fatal = Status::ok();
    for (const RoundResult& r : results) {
      stats_.cc_retries += r.cc_retries;
      stats_.intentional_rollbacks += r.intentional_rollbacks;
      stats_.recovery_retries += r.recovery_retries;
      backoff = backoff || r.backoff;
      if (!r.fatal.is_ok()) {
        stats_.failed_attempts += 1;
        if (fatal.is_ok()) fatal = r.fatal;
      }
    }
    if (!fatal.is_ok()) return fatal;
    if (backoff) {
      const SimTime resume_at =
          std::min(until, clock.now() + cfg_.recovery_retry_backoff);
      if (resume_at > clock.now()) scheduler_->run_until(resume_at);
    }
  }
  return Status::ok();
}

txn::CcStats Driver::cc_stats() const {
  return coord_ ? coord_->cc()->stats() : txn::CcStats{};
}

double Driver::tpmc(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.type == TxnType::kNewOrder && record.commit_time >= from &&
        record.commit_time < to) {
      count += 1;
    }
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

double Driver::tpm_total(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.commit_time >= from && record.commit_time < to) count += 1;
  }
  return static_cast<double>(count) / to_seconds(to - from) * 60.0;
}

SimDuration Driver::response_percentile(TxnType type, double q) const {
  std::vector<SimDuration> samples;
  for (const CommitRecord& record : commits_) {
    if (record.type == type) samples.push_back(record.response_time);
  }
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t index = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

SimDuration Driver::mean_response(TxnType type) const {
  SimDuration total = 0;
  std::uint64_t count = 0;
  for (const CommitRecord& record : commits_) {
    if (record.type == type) {
      total += record.response_time;
      count += 1;
    }
  }
  return count == 0 ? 0 : total / count;
}

std::uint64_t Driver::count_lost(Lsn recovered_to, SimTime before) const {
  std::uint64_t lost = 0;
  for (const CommitRecord& record : commits_) {
    if (record.commit_time >= before) continue;
    if (record.commit_lsn == 0) continue;  // read-only: nothing to lose
    if (record.commit_lsn > recovered_to) lost += 1;
  }
  return lost;
}

}  // namespace vdb::tpcc
