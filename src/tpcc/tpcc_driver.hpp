// TPC-C driver system.
//
// The paper's remote terminal emulator, embedded in the simulation: it
// issues the standard transaction mix in a closed loop, timestamps every
// commit together with its commit LSN, and maintains the per-interval
// throughput series used for the performance figures. The commit log is
// the ground truth for the benchmark's lost-transaction measure: a
// committed transaction is lost iff recovery ended below its commit LSN —
// measured from the end-user's point of view, exactly as in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/observability.hpp"
#include "sim/scheduler.hpp"
#include "tpcc/tpcc_txns.hpp"
#include "txn/coordinator.hpp"

namespace vdb::tpcc {

struct DriverConfig {
  std::uint64_t seed = 42;
  /// Throughput series bucket width.
  SimDuration report_interval = 30 * kSecond;
  /// Backoff before retrying a transaction rejected with kRecoveryRequired
  /// (M2 early-open restart rejects access to pages whose redo is still
  /// pending). The end-user keeps hammering; the background sweeper
  /// eventually drains the page and the retry goes through.
  SimDuration recovery_retry_backoff = 100 * kMillisecond;
  /// Terminal emulators running concurrently. 1 keeps the original serial
  /// closed loop (no coordinator, no concurrency control — byte-identical
  /// behaviour); >1 drives the engine through a TxnCoordinator with
  /// `cc_protocol` mediating row conflicts.
  unsigned workers = 1;
  txn::CcProtocol cc_protocol = txn::CcProtocol::k2pl;
};

struct CommitRecord {
  TxnType type;
  Lsn commit_lsn = 0;  // 0 for read-only transactions
  SimTime commit_time = 0;
  SimDuration response_time = 0;  // begin -> commit, end-user view
};

struct DriverStats {
  std::uint64_t committed = 0;
  std::array<std::uint64_t, kTxnTypes> committed_by_type{};
  std::uint64_t intentional_rollbacks = 0;
  std::uint64_t lock_retries = 0;
  std::uint64_t failed_attempts = 0;  // attempts refused by a down service
  /// Attempts bounced by the M2 early-open gate (kRecoveryRequired) and
  /// retried after recovery_retry_backoff.
  std::uint64_t recovery_retries = 0;
  /// Concurrent mode only: attempts aborted by the concurrency-control
  /// protocol (wait-die death, OCC validation failure, stale access-path
  /// race) and retried with fresh inputs.
  std::uint64_t cc_retries = 0;
};

class Driver {
 public:
  Driver(TpccDb* db, sim::Scheduler* scheduler, DriverConfig cfg);
  ~Driver();  // out of line: WorkerState is complete only in the .cpp

  /// Runs the standard mix until the virtual clock reaches `until`, firing
  /// due background events between transactions. Returns OK at the time
  /// limit; a service failure (media error, instance down, …) returns that
  /// error with the clock at the failure instant.
  Status run_until(SimTime until);

  const std::vector<CommitRecord>& commits() const { return commits_; }
  const DriverStats& stats() const { return stats_; }

  /// New-Order transactions committed per minute in [from, to).
  double tpmc(SimTime from, SimTime to) const;
  /// All transactions committed per minute in [from, to).
  double tpm_total(SimTime from, SimTime to) const;

  /// Committed-then-lost transactions: committed before `before`, with an
  /// effective commit LSN above what recovery salvaged.
  std::uint64_t count_lost(Lsn recovered_to, SimTime before) const;

  /// New-Order commits per report interval (throughput series).
  const std::vector<std::uint32_t>& series() const { return series_; }
  SimDuration series_interval() const { return cfg_.report_interval; }

  /// Response-time percentile for one transaction type (TPC-C clause 5.5
  /// reports the 90th). `q` in (0, 1]; returns 0 when no samples exist.
  SimDuration response_percentile(TxnType type, double q) const;
  SimDuration mean_response(TxnType type) const;

  /// Concurrency-control protocol behaviour (all zeros in serial mode).
  txn::CcStats cc_stats() const;
  unsigned workers() const { return coord_ ? coord_->workers() : 1; }

 private:
  struct WorkerState;

  TxnType pick_type();
  Status run_serial(SimTime until);
  Status run_concurrent(SimTime until);

  TpccDb* db_;
  sim::Scheduler* scheduler_;
  DriverConfig cfg_;
  SimTime series_origin_;  // workload start: series buckets are relative
  TpccRandom random_;
  TpccTxns txns_;
  std::vector<CommitRecord> commits_;
  std::vector<std::uint32_t> series_;
  DriverStats stats_;
  /// Card-deck mix: 10 New-Order, 10 Payment, 1 each of the rest, per the
  /// spec's minimum-percentage mix (45/43/4/4/4).
  std::array<TxnType, 23> deck_;
  size_t deck_pos_ = 0;
  /// Per-type response-time histograms ("client response NewOrder", ...),
  /// re-resolved at every run_until() call: a crash-restart cycle swaps in
  /// a new Database incarnation, and with it possibly a new statistics
  /// area, so cached pointers must not outlive one call.
  std::array<obs::Histogram*, kTxnTypes> latency_hist_{};
  /// Concurrent mode (cfg_.workers > 1): the worker pool plus one
  /// terminal-emulator state per worker, persistent across run_until()
  /// calls so a crash-restart resumes each worker's input stream.
  std::unique_ptr<txn::TxnCoordinator> coord_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
};

}  // namespace vdb::tpcc
