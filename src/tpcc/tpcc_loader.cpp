#include "tpcc/tpcc_loader.hpp"

#include <algorithm>
#include <numeric>

namespace vdb::tpcc {

namespace {
/// Commit-batch size: bounds per-transaction undo so bulk load never
/// exhausts a rollback segment.
constexpr std::uint32_t kBatchRows = 2000;
}  // namespace

Result<LoadStats> Loader::load() {
  std::vector<std::uint32_t> all;
  for (std::uint32_t w = 1; w <= db_->scale().warehouses; ++w) {
    all.push_back(w);
  }
  return load_warehouses(all);
}

Result<LoadStats> Loader::load_warehouses(
    const std::vector<std::uint32_t>& ws) {
  engine::Database& db = db_->db();
  // Bulk loads run NOLOGGING (redo off); the harness backs up right after.
  for (size_t i = 0; i < kTableCount; ++i) {
    VDB_RETURN_IF_ERROR(
        db.set_table_logging(table_name(static_cast<Tbl>(i)), false));
  }

  {
    auto txn = db.begin();
    if (!txn.is_ok()) return txn.status();
    TxnId cur = txn.value();
    VDB_RETURN_IF_ERROR(load_items(&cur));
    auto commit = db.commit(cur);
    if (!commit.is_ok()) return commit.status();
  }

  const TpccScale& scale = db_->scale();
  for (const std::uint32_t w : ws) {
    {
      auto txn = db.begin();
      if (!txn.is_ok()) return txn.status();
      TxnId cur = txn.value();
      VDB_RETURN_IF_ERROR(load_warehouse(cur, w));
      VDB_RETURN_IF_ERROR(load_stock(&cur, w));
      auto commit = db.commit(cur);
      if (!commit.is_ok()) return commit.status();
    }
    for (std::uint32_t d = 1; d <= scale.districts_per_warehouse; ++d) {
      auto txn = db.begin();
      if (!txn.is_ok()) return txn.status();
      VDB_RETURN_IF_ERROR(load_district(txn.value(), w, d));
      VDB_RETURN_IF_ERROR(load_customers(txn.value(), w, d));
      VDB_RETURN_IF_ERROR(load_orders(txn.value(), w, d));
      auto commit = db.commit(txn.value());
      if (!commit.is_ok()) return commit.status();
    }
  }

  for (size_t i = 0; i < kTableCount; ++i) {
    VDB_RETURN_IF_ERROR(
        db.set_table_logging(table_name(static_cast<Tbl>(i)), true));
  }
  return stats_;
}

std::string Loader::zip() { return rng_.digit_string(4, 4) + "11111"; }

Status Loader::load_items(TxnId* txn) {
  engine::Database& db = db_->db();
  TpccRandom tr(rng_.split(), db_->scale());
  std::uint32_t in_batch = 0;
  TxnId& cur = *txn;
  for (std::uint32_t i = 1; i <= db_->scale().items; ++i) {
    ItemRow row;
    row.i_id = i;
    row.i_im_id = static_cast<std::uint32_t>(rng_.uniform(1, 10000));
    row.i_name = rng_.alnum_string(14, 24);
    row.i_price = static_cast<double>(rng_.uniform(100, 10000)) / 100.0;
    row.i_data = tr.data_string(26, 50);
    auto rid = db_->insert_row(cur, Tbl::kItem, row);
    if (!rid.is_ok()) return rid.status();
    stats_.rows += 1;
    if (++in_batch >= kBatchRows && i < db_->scale().items) {
      in_batch = 0;
      auto commit = db.commit(cur);
      if (!commit.is_ok()) return commit.status();
      auto next = db.begin();
      if (!next.is_ok()) return next.status();
      cur = next.value();
    }
  }
  return Status::ok();
}

Status Loader::load_warehouse(TxnId txn, std::uint32_t w) {
  WarehouseRow row;
  row.w_id = w;
  row.w_name = rng_.alnum_string(6, 10);
  row.w_street_1 = rng_.alnum_string(10, 20);
  row.w_street_2 = rng_.alnum_string(10, 20);
  row.w_city = rng_.alnum_string(10, 20);
  row.w_state = rng_.alnum_string(2, 2);
  row.w_zip = zip();
  row.w_tax = static_cast<double>(rng_.uniform(0, 2000)) / 10000.0;
  row.w_ytd = 300000.0;
  auto rid = db_->insert_row(txn, Tbl::kWarehouse, row);
  if (!rid.is_ok()) return rid.status();
  stats_.rows += 1;
  return Status::ok();
}

Status Loader::load_stock(TxnId* txn, std::uint32_t w) {
  engine::Database& db = db_->db();
  TpccRandom tr(rng_.split(), db_->scale());
  std::uint32_t in_batch = 0;
  TxnId& cur = *txn;
  for (std::uint32_t i = 1; i <= db_->scale().items; ++i) {
    StockRow row;
    row.s_i_id = i;
    row.s_w_id = w;
    row.s_quantity = static_cast<std::int32_t>(rng_.uniform(10, 100));
    for (auto& dist : row.s_dist) dist = rng_.alnum_string(24, 24);
    row.s_ytd = 0;
    row.s_order_cnt = 0;
    row.s_remote_cnt = 0;
    row.s_data = tr.data_string(26, 50);
    auto rid = db_->insert_row(cur, Tbl::kStock, row);
    if (!rid.is_ok()) return rid.status();
    stats_.rows += 1;
    if (++in_batch >= kBatchRows && i < db_->scale().items) {
      in_batch = 0;
      auto commit = db.commit(cur);
      if (!commit.is_ok()) return commit.status();
      auto next = db.begin();
      if (!next.is_ok()) return next.status();
      cur = next.value();
    }
  }
  return Status::ok();
}

Status Loader::load_district(TxnId txn, std::uint32_t w, std::uint32_t d) {
  DistrictRow row;
  row.d_id = d;
  row.d_w_id = w;
  row.d_name = rng_.alnum_string(6, 10);
  row.d_street_1 = rng_.alnum_string(10, 20);
  row.d_street_2 = rng_.alnum_string(10, 20);
  row.d_city = rng_.alnum_string(10, 20);
  row.d_state = rng_.alnum_string(2, 2);
  row.d_zip = zip();
  row.d_tax = static_cast<double>(rng_.uniform(0, 2000)) / 10000.0;
  row.d_ytd = 30000.0;
  row.d_next_o_id = db_->scale().initial_orders_per_district + 1;
  auto rid = db_->insert_row(txn, Tbl::kDistrict, row);
  if (!rid.is_ok()) return rid.status();
  stats_.rows += 1;
  return Status::ok();
}

Status Loader::load_customers(TxnId txn, std::uint32_t w, std::uint32_t d) {
  TpccRandom tr(rng_.split(), db_->scale());
  const std::uint64_t now = 1;
  for (std::uint32_t c = 1; c <= db_->scale().customers_per_district; ++c) {
    CustomerRow row;
    row.c_id = c;
    row.c_d_id = d;
    row.c_w_id = w;
    row.c_first = rng_.alnum_string(8, 16);
    row.c_middle = "OE";
    // NURand last names for every customer (scaled population keeps the
    // spec's skew so by-name lookups hit several matches).
    row.c_last = tr.nurand_last_name();
    row.c_street_1 = rng_.alnum_string(10, 20);
    row.c_street_2 = rng_.alnum_string(10, 20);
    row.c_city = rng_.alnum_string(10, 20);
    row.c_state = rng_.alnum_string(2, 2);
    row.c_zip = zip();
    row.c_phone = rng_.digit_string(16, 16);
    row.c_since = now;
    row.c_credit = rng_.chance(0.10) ? "BC" : "GC";
    row.c_credit_lim = 50000.0;
    row.c_discount = static_cast<double>(rng_.uniform(0, 5000)) / 10000.0;
    row.c_balance = -10.0;
    row.c_ytd_payment = 10.0;
    row.c_payment_cnt = 1;
    row.c_delivery_cnt = 0;
    row.c_data = rng_.alnum_string(300, 500);
    auto rid = db_->insert_row(txn, Tbl::kCustomer, row);
    if (!rid.is_ok()) return rid.status();
    stats_.rows += 1;

    HistoryRow hist;
    hist.h_c_id = c;
    hist.h_c_d_id = d;
    hist.h_c_w_id = w;
    hist.h_d_id = d;
    hist.h_w_id = w;
    hist.h_date = now;
    hist.h_amount = 10.0;
    hist.h_data = rng_.alnum_string(12, 24);
    auto hrid = db_->insert_row(txn, Tbl::kHistory, hist);
    if (!hrid.is_ok()) return hrid.status();
    stats_.rows += 1;
  }
  return Status::ok();
}

Status Loader::load_orders(TxnId txn, std::uint32_t w, std::uint32_t d) {
  const TpccScale& scale = db_->scale();
  const std::uint32_t orders = scale.initial_orders_per_district;
  // O_C_ID: a permutation of [1, customers] stretched over the orders.
  std::vector<std::uint32_t> customers(orders);
  for (std::uint32_t i = 0; i < orders; ++i) {
    customers[i] = (i % scale.customers_per_district) + 1;
  }
  for (std::uint32_t i = orders; i > 1; --i) {
    std::swap(customers[i - 1],
              customers[static_cast<size_t>(rng_.uniform(0, i - 1))]);
  }

  const std::uint32_t undelivered_from = orders - orders * 30 / 100 + 1;
  for (std::uint32_t o = 1; o <= orders; ++o) {
    const bool delivered = o < undelivered_from;
    OrderRow order;
    order.o_id = o;
    order.o_d_id = d;
    order.o_w_id = w;
    order.o_c_id = customers[o - 1];
    order.o_entry_d = 1;
    order.o_carrier_id =
        delivered ? static_cast<std::int32_t>(rng_.uniform(1, 10)) : -1;
    order.o_ol_cnt = static_cast<std::uint8_t>(rng_.uniform(5, 15));
    order.o_all_local = 1;
    auto orid = db_->insert_row(txn, Tbl::kOrder, order);
    if (!orid.is_ok()) return orid.status();
    stats_.rows += 1;
    stats_.orders += 1;

    for (std::uint8_t line = 1; line <= order.o_ol_cnt; ++line) {
      OrderLineRow ol;
      ol.ol_o_id = o;
      ol.ol_d_id = d;
      ol.ol_w_id = w;
      ol.ol_number = line;
      ol.ol_i_id = static_cast<std::uint32_t>(rng_.uniform(1, scale.items));
      ol.ol_supply_w_id = w;
      ol.ol_delivery_d = delivered ? 1 : 0;
      ol.ol_quantity = 5;
      // Delivered initial lines have zero amount (clause 4.3.3.1), which
      // makes the customer-balance consistency condition exact.
      ol.ol_amount = delivered ? 0.0
                               : static_cast<double>(rng_.uniform(1, 999999)) /
                                     100.0;
      ol.ol_dist_info = rng_.alnum_string(24, 24);
      auto lrid = db_->insert_row(txn, Tbl::kOrderLine, ol);
      if (!lrid.is_ok()) return lrid.status();
      stats_.rows += 1;
      stats_.order_lines += 1;
    }

    if (!delivered) {
      NewOrderRow no;
      no.no_o_id = o;
      no.no_d_id = d;
      no.no_w_id = w;
      auto nrid = db_->insert_row(txn, Tbl::kNewOrder, no);
      if (!nrid.is_ok()) return nrid.status();
      stats_.rows += 1;
    }
  }
  return Status::ok();
}

}  // namespace vdb::tpcc
