// TPC-C initial population (clause 4.3.3), scaled.
//
// Loads with redo logging disabled (the standard bulk-load practice) and a
// backup is taken immediately afterwards by the benchmark harness, exactly
// as the paper's experimental procedure requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "tpcc/tpcc_db.hpp"

namespace vdb::tpcc {

struct LoadStats {
  std::uint64_t rows = 0;
  std::uint64_t orders = 0;
  std::uint64_t order_lines = 0;
};

class Loader {
 public:
  Loader(TpccDb* db, std::uint64_t seed) : db_(db), rng_(seed) {}

  /// Populates all nine tables per the spec's cardinalities (scaled).
  Result<LoadStats> load();

  /// Populates items plus only the listed warehouses — a fleet shard holds
  /// a subset of the warehouse range but the full (replicated) catalog.
  Result<LoadStats> load_warehouses(const std::vector<std::uint32_t>& ws);

 private:
  Status load_items(TxnId* txn);
  Status load_warehouse(TxnId txn, std::uint32_t w);
  Status load_stock(TxnId* txn, std::uint32_t w);
  Status load_district(TxnId txn, std::uint32_t w, std::uint32_t d);
  Status load_customers(TxnId txn, std::uint32_t w, std::uint32_t d);
  Status load_orders(TxnId txn, std::uint32_t w, std::uint32_t d);

  std::string zip();

  TpccDb* db_;
  Rng rng_;
  LoadStats stats_;
};

}  // namespace vdb::tpcc
