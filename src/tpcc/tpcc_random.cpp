#include "tpcc/tpcc_random.hpp"

namespace vdb::tpcc {

namespace {
constexpr const char* kSyllables[] = {"BAR",   "OUGHT", "ABLE", "PRI",
                                      "PRES",  "ESE",   "ANTI", "CALLY",
                                      "ATION", "EING"};
}

std::string TpccRandom::last_name(std::int64_t num) const {
  std::string out;
  out += kSyllables[(num / 100) % 10];
  out += kSyllables[(num / 10) % 10];
  out += kSyllables[num % 10];
  return out;
}

std::string TpccRandom::random_last_name() {
  return last_name(rng_.uniform(0, 999));
}

std::uint32_t TpccRandom::nurand_customer_id() {
  return static_cast<std::uint32_t>(
      rng_.nurand(1023, 1, scale_.customers_per_district, c_id_));
}

std::uint32_t TpccRandom::nurand_item_id() {
  return static_cast<std::uint32_t>(
      rng_.nurand(8191, 1, scale_.items, c_item_));
}

std::string TpccRandom::nurand_last_name() {
  return last_name(rng_.nurand(255, 0, 999, c_last_));
}

std::string TpccRandom::data_string(int min_len, int max_len) {
  std::string data = rng_.alnum_string(min_len, max_len);
  if (rng_.chance(0.10) && data.size() >= 8) {
    const auto pos = static_cast<size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(data.size()) - 8));
    data.replace(pos, 8, "ORIGINAL");
  }
  return data;
}

}  // namespace vdb::tpcc
