// TPC-C random input generation (clauses 2.1.6, 4.3.2, 4.3.3).
//
// Follows the spec's distributions, with value ranges parameterized by the
// scale (the simulated database is a scaled-down TPC-C; distributions and
// skew constants are unchanged).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace vdb::tpcc {

/// Scaled-down TPC-C cardinalities. Ratios between tables follow the spec;
/// absolute counts default far below spec scale so a 20-minute experiment
/// simulates in well under a second of wall time.
struct TpccScale {
  std::uint32_t warehouses = 2;
  std::uint32_t districts_per_warehouse = 10;
  std::uint32_t customers_per_district = 300;   // spec: 3000
  std::uint32_t items = 5000;                   // spec: 100000
  std::uint32_t initial_orders_per_district = 300;  // spec: 3000
};

class TpccRandom {
 public:
  TpccRandom(Rng rng, TpccScale scale) : rng_(std::move(rng)), scale_(scale) {}

  /// C-Last per clause 4.3.2.3: three syllables indexed by a NURand value.
  std::string last_name(std::int64_t num) const;
  std::string random_last_name();

  /// NURand customer id over the scaled range.
  std::uint32_t nurand_customer_id();
  /// NURand item id over the scaled range.
  std::uint32_t nurand_item_id();
  /// NURand last-name selector.
  std::string nurand_last_name();

  std::uint32_t district_id() {
    return static_cast<std::uint32_t>(
        rng_.uniform(1, scale_.districts_per_warehouse));
  }
  std::uint32_t warehouse_id() {
    return static_cast<std::uint32_t>(rng_.uniform(1, scale_.warehouses));
  }

  Rng& rng() { return rng_; }
  const TpccScale& scale() const { return scale_; }

  /// "ORIGINAL" marker appears in 10% of i_data / s_data (clause 4.3.3.1).
  std::string data_string(int min_len, int max_len);

 private:
  Rng rng_;
  TpccScale scale_;
  // Per-run NURand C constants (clause 2.1.6.1).
  std::int64_t c_last_ = 123;
  std::int64_t c_id_ = 259;
  std::int64_t c_item_ = 7911;
};

}  // namespace vdb::tpcc
