#include "tpcc/tpcc_txns.hpp"

#include <algorithm>

namespace vdb::tpcc {

const char* to_string(TxnType t) {
  switch (t) {
    case TxnType::kNewOrder: return "NewOrder";
    case TxnType::kPayment: return "Payment";
    case TxnType::kOrderStatus: return "OrderStatus";
    case TxnType::kDelivery: return "Delivery";
    case TxnType::kStockLevel: return "StockLevel";
  }
  return "?";
}

namespace {

/// Aborts the engine transaction and propagates the original error. Abort
/// failures after instance death are expected and ignored.
Status fail_txn(engine::Database& db, TxnId txn, Status original) {
  (void)db.rollback(txn);
  return original;
}

}  // namespace

Result<TxnOutcome> TpccTxns::run(TxnType type, std::uint32_t w) {
  switch (type) {
    case TxnType::kNewOrder: return new_order(w);
    case TxnType::kPayment: return payment(w);
    case TxnType::kOrderStatus: return order_status(w);
    case TxnType::kDelivery: return delivery(w);
    case TxnType::kStockLevel: return stock_level(w);
  }
  return Status{ErrorCode::kInvalidArgument, "unknown transaction type"};
}

Result<RowId> TpccTxns::select_customer(std::uint32_t w, std::uint32_t d) {
  Rng& rng = random_->rng();
  if (rng.chance(0.60)) {
    const std::string last = random_->nurand_last_name();
    auto matches = db_->customers_by_name(w, d, last);
    if (!matches.empty()) {
      // Median customer, per clause 2.5.2.2.
      return matches[matches.size() / 2].second;
    }
    // Name not present in the scaled population: fall through to by-id.
  }
  const std::uint32_t c = random_->nurand_customer_id();
  auto rid = db_->customer_rid(w, d, c);
  if (!rid.has_value()) {
    return Status{ErrorCode::kNotFound, "customer missing from index"};
  }
  return *rid;
}

Result<TxnOutcome> TpccTxns::new_order(std::uint32_t w) {
  engine::Database& db = db_->db();
  Rng& rng = random_->rng();
  const std::uint32_t d = random_->district_id();
  const SimTime now = db.clock().now();

  auto txn_r = db.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();

  // Inputs (clause 2.4.1).
  const auto ol_cnt = static_cast<std::uint8_t>(rng.uniform(5, 15));
  const bool rollback_last = rng.chance(0.01);
  struct Line {
    std::uint32_t i_id;
    std::uint32_t supply_w;
    std::uint8_t qty;
  };
  std::vector<Line> lines;
  bool all_local = true;
  for (std::uint8_t i = 0; i < ol_cnt; ++i) {
    Line line;
    line.i_id = random_->nurand_item_id();
    if (rollback_last && i + 1 == ol_cnt) line.i_id = 0;  // unused item id
    line.supply_w = w;
    if (random_->scale().warehouses > 1 && rng.chance(0.01)) {
      do {
        line.supply_w = random_->warehouse_id();
      } while (line.supply_w == w);
      all_local = false;
    }
    line.qty = static_cast<std::uint8_t>(rng.uniform(1, 10));
    lines.push_back(line);
  }

  // Warehouse & district (tax, order number).
  auto w_rid = db_->warehouse_rid(w);
  auto d_rid = db_->district_rid(w, d);
  if (!w_rid || !d_rid) {
    return fail_txn(db, txn, Status{ErrorCode::kInternal, "missing w/d"});
  }
  auto wh = db_->read_row<WarehouseRow>(txn, Tbl::kWarehouse, *w_rid);
  if (!wh.is_ok()) return fail_txn(db, txn, wh.status());
  auto dist = db_->read_row<DistrictRow>(txn, Tbl::kDistrict, *d_rid);
  if (!dist.is_ok()) return fail_txn(db, txn, dist.status());

  const std::uint32_t o_id = dist.value().d_next_o_id;
  DistrictRow new_dist = dist.value();
  new_dist.d_next_o_id += 1;
  Status st = db_->update_row(txn, Tbl::kDistrict, *d_rid, new_dist);
  if (!st.is_ok()) return fail_txn(db, txn, st);

  auto c_rid = select_customer(w, d);
  if (!c_rid.is_ok()) return fail_txn(db, txn, c_rid.status());
  auto cust = db_->read_row<CustomerRow>(txn, Tbl::kCustomer, c_rid.value());
  if (!cust.is_ok()) return fail_txn(db, txn, cust.status());

  // Order + NEW-ORDER rows.
  OrderRow order;
  order.o_id = o_id;
  order.o_d_id = d;
  order.o_w_id = w;
  order.o_c_id = cust.value().c_id;
  order.o_entry_d = now;
  order.o_carrier_id = -1;
  order.o_ol_cnt = ol_cnt;
  order.o_all_local = all_local ? 1 : 0;
  auto o_ins = db_->insert_row(txn, Tbl::kOrder, order);
  if (!o_ins.is_ok()) return fail_txn(db, txn, o_ins.status());

  NewOrderRow no;
  no.no_o_id = o_id;
  no.no_d_id = d;
  no.no_w_id = w;
  auto no_ins = db_->insert_row(txn, Tbl::kNewOrder, no);
  if (!no_ins.is_ok()) return fail_txn(db, txn, no_ins.status());

  // Lines.
  std::uint8_t number = 0;
  for (const Line& line : lines) {
    number += 1;
    auto i_rid = db_->item_rid(line.i_id);
    if (!i_rid.has_value()) {
      // Invalid item: business rollback (clause 2.4.2.3).
      VDB_RETURN_IF_ERROR(db.rollback(txn));
      TxnOutcome outcome{TxnType::kNewOrder, false, true, 0};
      return outcome;
    }
    auto item = db_->read_row<ItemRow>(txn, Tbl::kItem, *i_rid);
    if (!item.is_ok()) return fail_txn(db, txn, item.status());

    auto s_rid = db_->stock_rid(line.supply_w, line.i_id);
    if (!s_rid.has_value()) {
      return fail_txn(db, txn, Status{ErrorCode::kInternal, "stock missing"});
    }
    auto stock = db_->read_row<StockRow>(txn, Tbl::kStock, *s_rid);
    if (!stock.is_ok()) return fail_txn(db, txn, stock.status());

    StockRow new_stock = stock.value();
    if (new_stock.s_quantity >= line.qty + 10) {
      new_stock.s_quantity -= line.qty;
    } else {
      new_stock.s_quantity = new_stock.s_quantity - line.qty + 91;
    }
    new_stock.s_ytd += line.qty;
    new_stock.s_order_cnt += 1;
    if (line.supply_w != w) new_stock.s_remote_cnt += 1;
    st = db_->update_row(txn, Tbl::kStock, *s_rid, new_stock);
    if (!st.is_ok()) return fail_txn(db, txn, st);

    OrderLineRow ol;
    ol.ol_o_id = o_id;
    ol.ol_d_id = d;
    ol.ol_w_id = w;
    ol.ol_number = number;
    ol.ol_i_id = line.i_id;
    ol.ol_supply_w_id = line.supply_w;
    ol.ol_delivery_d = 0;
    ol.ol_quantity = line.qty;
    ol.ol_amount = line.qty * item.value().i_price;
    ol.ol_dist_info = stock.value().s_dist[(d - 1) % 10];
    auto ol_ins = db_->insert_row(txn, Tbl::kOrderLine, ol);
    if (!ol_ins.is_ok()) return fail_txn(db, txn, ol_ins.status());
  }

  auto commit = db.commit(txn);
  if (!commit.is_ok()) return fail_txn(db, txn, commit.status());
  TxnOutcome outcome{TxnType::kNewOrder, true, false, commit.value()};
  return outcome;
}

Result<TxnOutcome> TpccTxns::payment(std::uint32_t w) {
  engine::Database& db = db_->db();
  Rng& rng = random_->rng();
  const std::uint32_t d = random_->district_id();
  const double amount = static_cast<double>(rng.uniform(100, 500000)) / 100.0;
  const SimTime now = db.clock().now();

  // 15% remote customers when multiple warehouses exist (clause 2.5.1.2).
  std::uint32_t c_w = w;
  std::uint32_t c_d = d;
  if (random_->scale().warehouses > 1 && rng.chance(0.15)) {
    do {
      c_w = random_->warehouse_id();
    } while (c_w == w);
    c_d = random_->district_id();
  }

  auto txn_r = db.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();

  auto w_rid = db_->warehouse_rid(w);
  auto d_rid = db_->district_rid(w, d);
  if (!w_rid || !d_rid) {
    return fail_txn(db, txn, Status{ErrorCode::kInternal, "missing w/d"});
  }
  auto wh = db_->read_row<WarehouseRow>(txn, Tbl::kWarehouse, *w_rid);
  if (!wh.is_ok()) return fail_txn(db, txn, wh.status());
  WarehouseRow new_wh = wh.value();
  new_wh.w_ytd += amount;
  Status st = db_->update_row(txn, Tbl::kWarehouse, *w_rid, new_wh);
  if (!st.is_ok()) return fail_txn(db, txn, st);

  auto dist = db_->read_row<DistrictRow>(txn, Tbl::kDistrict, *d_rid);
  if (!dist.is_ok()) return fail_txn(db, txn, dist.status());
  DistrictRow new_dist = dist.value();
  new_dist.d_ytd += amount;
  st = db_->update_row(txn, Tbl::kDistrict, *d_rid, new_dist);
  if (!st.is_ok()) return fail_txn(db, txn, st);

  auto c_rid = select_customer(c_w, c_d);
  if (!c_rid.is_ok()) return fail_txn(db, txn, c_rid.status());
  auto cust = db_->read_row<CustomerRow>(txn, Tbl::kCustomer, c_rid.value());
  if (!cust.is_ok()) return fail_txn(db, txn, cust.status());
  CustomerRow new_cust = cust.value();
  new_cust.c_balance -= amount;
  new_cust.c_ytd_payment += amount;
  new_cust.c_payment_cnt += 1;
  if (new_cust.c_credit == "BC") {
    // Bad-credit customers accumulate payment history in c_data.
    char info[64];
    std::snprintf(info, sizeof(info), "%u %u %u %u %u %.2f|",
                  new_cust.c_id, c_d, c_w, d, w, amount);
    new_cust.c_data = std::string(info) + new_cust.c_data;
    if (new_cust.c_data.size() > 500) new_cust.c_data.resize(500);
  }
  st = db_->update_row(txn, Tbl::kCustomer, c_rid.value(), new_cust);
  if (!st.is_ok()) return fail_txn(db, txn, st);

  HistoryRow hist;
  hist.h_c_id = new_cust.c_id;
  hist.h_c_d_id = c_d;
  hist.h_c_w_id = c_w;
  hist.h_d_id = d;
  hist.h_w_id = w;
  hist.h_date = now;
  hist.h_amount = amount;
  hist.h_data = wh.value().w_name + "    " + dist.value().d_name;
  auto h_ins = db_->insert_row(txn, Tbl::kHistory, hist);
  if (!h_ins.is_ok()) return fail_txn(db, txn, h_ins.status());

  auto commit = db.commit(txn);
  if (!commit.is_ok()) return fail_txn(db, txn, commit.status());
  TxnOutcome outcome{TxnType::kPayment, true, false, commit.value()};
  return outcome;
}

Result<TxnOutcome> TpccTxns::order_status(std::uint32_t w) {
  engine::Database& db = db_->db();
  const std::uint32_t d = random_->district_id();

  auto txn_r = db.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();

  auto c_rid = select_customer(w, d);
  if (!c_rid.is_ok()) return fail_txn(db, txn, c_rid.status());
  auto cust = db_->read_row<CustomerRow>(txn, Tbl::kCustomer, c_rid.value());
  if (!cust.is_ok()) return fail_txn(db, txn, cust.status());

  auto last = db_->last_order_of_customer(w, d, cust.value().c_id);
  if (last.has_value()) {
    auto order = db_->read_row<OrderRow>(txn, Tbl::kOrder, last->second);
    if (!order.is_ok()) return fail_txn(db, txn, order.status());
    for (RowId rid : db_->order_lines(w, d, last->first)) {
      auto line = db_->read_row<OrderLineRow>(txn, Tbl::kOrderLine, rid);
      if (!line.is_ok()) return fail_txn(db, txn, line.status());
    }
  }

  auto commit = db.commit(txn);
  if (!commit.is_ok()) return fail_txn(db, txn, commit.status());
  TxnOutcome outcome{TxnType::kOrderStatus, true, false, commit.value()};
  return outcome;
}

Result<TxnOutcome> TpccTxns::delivery(std::uint32_t w) {
  engine::Database& db = db_->db();
  Rng& rng = random_->rng();
  const auto carrier = static_cast<std::int32_t>(rng.uniform(1, 10));
  const SimTime now = db.clock().now();

  auto txn_r = db.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();

  for (std::uint32_t d = 1; d <= random_->scale().districts_per_warehouse;
       ++d) {
    auto oldest = db_->oldest_new_order(w, d);
    if (!oldest.has_value()) continue;  // district fully delivered

    auto no_rid = db_->new_order_rid(w, d, oldest->first);
    if (!no_rid.has_value()) continue;
    // The index lookup above runs outside concurrency control, so the rid
    // can be stale: a concurrent abort frees the slot and an unrelated
    // insert reuses it. Re-read the row under the txn's own mediation and
    // verify the business key before erasing — under 2PL the read lock
    // pins the row until commit; under OCC the erase's early validation
    // aborts us if a writer touched the slot after this read.
    auto no_row = db_->read_row<NewOrderRow>(txn, Tbl::kNewOrder, *no_rid);
    if (!no_row.is_ok()) return fail_txn(db, txn, no_row.status());
    if (no_row.value().no_w_id != w || no_row.value().no_d_id != d ||
        no_row.value().no_o_id != oldest->first) {
      return fail_txn(db, txn,
                      Status{ErrorCode::kNotFound, "new_order slot reused"});
    }
    Status st = db.erase(txn, db_->table(Tbl::kNewOrder), *no_rid);
    if (!st.is_ok()) return fail_txn(db, txn, st);

    auto o_rid = db_->order_rid(w, d, oldest->first);
    if (!o_rid.has_value()) {
      return fail_txn(db, txn, Status{ErrorCode::kInternal, "order missing"});
    }
    auto order = db_->read_row<OrderRow>(txn, Tbl::kOrder, *o_rid);
    if (!order.is_ok()) return fail_txn(db, txn, order.status());
    if (order.value().o_w_id != w || order.value().o_d_id != d ||
        order.value().o_id != oldest->first) {
      return fail_txn(db, txn,
                      Status{ErrorCode::kNotFound, "order slot reused"});
    }
    OrderRow new_order_row = order.value();
    new_order_row.o_carrier_id = carrier;
    st = db_->update_row(txn, Tbl::kOrder, *o_rid, new_order_row);
    if (!st.is_ok()) return fail_txn(db, txn, st);

    double total = 0;
    for (RowId rid : db_->order_lines(w, d, oldest->first)) {
      auto line = db_->read_row<OrderLineRow>(txn, Tbl::kOrderLine, rid);
      if (!line.is_ok()) return fail_txn(db, txn, line.status());
      if (line.value().ol_w_id != w || line.value().ol_d_id != d ||
          line.value().ol_o_id != oldest->first) {
        return fail_txn(
            db, txn, Status{ErrorCode::kNotFound, "order_line slot reused"});
      }
      OrderLineRow new_line = line.value();
      new_line.ol_delivery_d = now;
      total += new_line.ol_amount;
      st = db_->update_row(txn, Tbl::kOrderLine, rid, new_line);
      if (!st.is_ok()) return fail_txn(db, txn, st);
    }

    auto c_rid = db_->customer_rid(w, d, order.value().o_c_id);
    if (!c_rid.has_value()) {
      return fail_txn(db, txn,
                      Status{ErrorCode::kInternal, "customer missing"});
    }
    auto cust = db_->read_row<CustomerRow>(txn, Tbl::kCustomer, *c_rid);
    if (!cust.is_ok()) return fail_txn(db, txn, cust.status());
    CustomerRow new_cust = cust.value();
    new_cust.c_balance += total;
    new_cust.c_delivery_cnt += 1;
    st = db_->update_row(txn, Tbl::kCustomer, *c_rid, new_cust);
    if (!st.is_ok()) return fail_txn(db, txn, st);
  }

  auto commit = db.commit(txn);
  if (!commit.is_ok()) return fail_txn(db, txn, commit.status());
  TxnOutcome outcome{TxnType::kDelivery, true, false, commit.value()};
  return outcome;
}

Result<TxnOutcome> TpccTxns::stock_level(std::uint32_t w) {
  engine::Database& db = db_->db();
  Rng& rng = random_->rng();
  const std::uint32_t d = random_->district_id();
  const auto threshold = static_cast<std::int32_t>(rng.uniform(10, 20));

  auto txn_r = db.begin();
  if (!txn_r.is_ok()) return txn_r.status();
  const TxnId txn = txn_r.value();

  auto d_rid = db_->district_rid(w, d);
  if (!d_rid.has_value()) {
    return fail_txn(db, txn, Status{ErrorCode::kInternal, "missing district"});
  }
  auto dist = db_->read_row<DistrictRow>(txn, Tbl::kDistrict, *d_rid);
  if (!dist.is_ok()) return fail_txn(db, txn, dist.status());

  const std::uint32_t next = dist.value().d_next_o_id;
  const std::uint32_t from = next > 20 ? next - 20 : 1;
  std::vector<std::uint32_t> items;
  for (RowId rid : db_->order_lines_range(w, d, from, next)) {
    auto line = db_->read_row<OrderLineRow>(txn, Tbl::kOrderLine, rid);
    if (!line.is_ok()) return fail_txn(db, txn, line.status());
    items.push_back(line.value().ol_i_id);
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());

  std::uint32_t low = 0;
  for (std::uint32_t item : items) {
    auto s_rid = db_->stock_rid(w, item);
    if (!s_rid.has_value()) continue;
    auto stock = db_->read_row<StockRow>(txn, Tbl::kStock, *s_rid);
    if (!stock.is_ok()) return fail_txn(db, txn, stock.status());
    if (stock.value().s_quantity < threshold) low += 1;
  }
  (void)low;

  auto commit = db.commit(txn);
  if (!commit.is_ok()) return fail_txn(db, txn, commit.status());
  TxnOutcome outcome{TxnType::kStockLevel, true, false, commit.value()};
  return outcome;
}

}  // namespace vdb::tpcc
