// The five TPC-C transaction profiles (clauses 2.4-2.8) implemented against
// the engine through the TpccDb access paths.
//
// Each profile returns the commit LSN on success (0 for read-only work).
// The 1% intentionally-invalid New-Order item triggers a real transaction
// rollback, exercising the undo path continuously during every benchmark
// run. Service failures (media errors, instance down) surface as error
// statuses the driver uses to detect fault activation.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_random.hpp"

namespace vdb::tpcc {

enum class TxnType : std::uint8_t {
  kNewOrder = 0,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};
constexpr size_t kTxnTypes = 5;
const char* to_string(TxnType t);

struct TxnOutcome {
  TxnType type;
  bool committed = false;
  /// Rolled back by business rule (invalid item) — counts as a completed
  /// interaction per the spec, not as a failure.
  bool intentional_rollback = false;
  Lsn commit_lsn = 0;
};

class TpccTxns {
 public:
  TpccTxns(TpccDb* db, TpccRandom* random) : db_(db), random_(random) {}

  /// Runs one transaction of the given type (inputs drawn per spec).
  Result<TxnOutcome> run(TxnType type, std::uint32_t home_warehouse);

  Result<TxnOutcome> new_order(std::uint32_t w);
  Result<TxnOutcome> payment(std::uint32_t w);
  Result<TxnOutcome> order_status(std::uint32_t w);
  Result<TxnOutcome> delivery(std::uint32_t w);
  Result<TxnOutcome> stock_level(std::uint32_t w);

 private:
  /// 60%: by last name (median match); 40%: by NURand id.
  Result<RowId> select_customer(std::uint32_t w, std::uint32_t d);

  TpccDb* db_;
  TpccRandom* random_;
};

}  // namespace vdb::tpcc
