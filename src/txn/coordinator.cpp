#include "txn/coordinator.hpp"

#include <algorithm>

#include "obs/observability.hpp"
#include "sim/virtual_clock.hpp"

namespace vdb::txn {

namespace {

/// Shared machinery for both protocols: a blocking wait-die lock table
/// over LockTarget, per-transaction contexts, and the observability
/// wiring. Wait-die priorities are TxnIds (assigned monotonically under
/// the engine latch): smaller id = older transaction. A requester may wait
/// only if it is older than every conflicting holder; otherwise it dies
/// with kDeadlock. Every wait-for edge therefore points old -> young, so
/// the wait graph is acyclic and deadlock is impossible.
///
/// Virtual-time coupling: workers run on frozen-clock private timelines
/// (VirtualClock local sinks), so a real-thread block has no simulated
/// cost by itself. Instead the releaser stamps the lock entry with its
/// own sink offset at release, and a woken waiter raises its sink to that
/// offset — the lock became available at that instant of the round, and
/// the difference is charged to enq_lock_wait.
class CcBase : public ConcurrencyControl {
 public:
  Status validate(TxnId) override { return Status::ok(); }
  void publish(TxnId) override {}

  void end(TxnId txn, bool committed) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ctx_.find(txn);
    if (it == ctx_.end()) return;
    release_locked(it->second, committed);
    ctx_.erase(it);
    waiters_.notify_all();
  }

  void release_thread_residue() override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::thread::id self = std::this_thread::get_id();
    bool released = false;
    for (auto it = ctx_.begin(); it != ctx_.end();) {
      if (it->second.owner != self) {
        ++it;
        continue;
      }
      release_locked(it->second, /*committed=*/false);
      it = ctx_.erase(it);
      released = true;
    }
    if (released) waiters_.notify_all();
  }

  CcStats stats() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  void set_observability(obs::Observability* obs) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (obs == nullptr) {
      waits_ = nullptr;
      return;
    }
    waits_ = &obs->waits();
    obs::MetricsRegistry& reg = obs->registry();
    wait_die_aborts_ = reg.counter("cc wait_die aborts");
    occ_validate_fails_ = reg.counter("cc occ validate fails");
    lock_waits_ = reg.counter("cc lock waits");
    txns_begun_ = reg.counter("cc txns begun");
    txns_committed_ = reg.counter("cc txns committed");
    txns_aborted_ = reg.counter("cc txns aborted");
  }

 protected:
  struct Entry {
    bool exclusive = false;
    std::vector<TxnId> holders;
    /// Sink offset of the most recent releaser this round; woken waiters
    /// raise their private timeline to it.
    SimDuration release_offset = 0;
  };

  struct Ctx {
    TxnId id{};
    std::thread::id owner;
    SimDuration begin_offset = 0;  // sink offset at first mediation
    std::vector<LockTarget> held;
    /// OCC read set: target -> version observed at first read.
    std::map<LockTarget, std::uint64_t> read_versions;
  };

  Ctx& ensure_ctx_locked(TxnId txn) {
    auto [it, inserted] = ctx_.try_emplace(txn);
    if (inserted) {
      it->second.id = txn;
      it->second.owner = std::this_thread::get_id();
      it->second.begin_offset = sim::VirtualClock::local_elapsed();
      stats_.begun += 1;
      if (txns_begun_ != nullptr) txns_begun_->inc();
    }
    return it->second;
  }

  bool holds(const Ctx& ctx, const LockTarget& t) const {
    return std::find(ctx.held.begin(), ctx.held.end(), t) != ctx.held.end();
  }

  /// True if `txn` may take the lock now (including re-grant / upgrade by
  /// the sole holder).
  static bool can_grant(const Entry& e, TxnId txn, bool exclusive) {
    if (e.holders.empty()) return true;
    if (e.holders.size() == 1 && e.holders[0] == txn) return true;
    if (e.exclusive) return false;
    if (exclusive) return false;
    return true;  // shared with other shared holders
  }

  /// Wait-die: may wait only if strictly older than every conflicting
  /// holder (self never conflicts with itself).
  static bool older_than_all(const Entry& e, TxnId txn) {
    for (TxnId h : e.holders) {
      if (h != txn && h <= txn) return false;
    }
    return true;
  }

  /// Grants or wait-die-aborts one lock request. Returns kDeadlock when
  /// the requester must die. `mu_` must be held; may release it while
  /// blocked.
  Status acquire_locked(std::unique_lock<std::mutex>& lk, TxnId txn,
                        const LockTarget& target, bool exclusive,
                        bool may_wait) {
    bool blocked = false;
    const SimDuration entered_at = sim::VirtualClock::local_elapsed();
    for (;;) {
      Entry& e = table_[target];  // std::map: reference stable across waits
      if (can_grant(e, txn, exclusive)) {
        if (e.holders.empty()) {
          e.holders.push_back(txn);
          e.exclusive = exclusive;
        } else if (e.holders.size() == 1 && e.holders[0] == txn) {
          e.exclusive = e.exclusive || exclusive;
        } else {
          e.holders.push_back(txn);
        }
        Ctx& ctx = ensure_ctx_locked(txn);
        if (!holds(ctx, target)) ctx.held.push_back(target);
        if (blocked) {
          sim::VirtualClock::raise_local(e.release_offset);
          const SimDuration waited =
              sim::VirtualClock::local_elapsed() - entered_at;
          stats_.lock_waits += 1;
          if (lock_waits_ != nullptr) lock_waits_->inc();
          if (waits_ != nullptr && waited > 0) {
            waits_->add_wait(obs::WaitEvent::kEnqLockWait, waited);
          }
        }
        return Status::ok();
      }
      if (!may_wait || !older_than_all(e, txn)) {
        stats_.wait_die_aborts += 1;
        if (wait_die_aborts_ != nullptr) wait_die_aborts_->inc();
        return make_error(ErrorCode::kDeadlock,
                          "wait-die: conflicting lock held by an older or "
                          "non-waitable request");
      }
      blocked = true;
      waiters_.wait(lk);
    }
  }

  /// Releases everything `ctx` holds; `mu_` must be held. The releaser's
  /// sink offset is stamped on each entry for its waiters.
  void release_locked(Ctx& ctx, bool committed) {
    const SimDuration at = sim::VirtualClock::local_elapsed();
    for (const LockTarget& t : ctx.held) {
      auto it = table_.find(t);
      if (it == table_.end()) continue;
      auto& holders = it->second.holders;
      holders.erase(std::remove(holders.begin(), holders.end(), ctx.id),
                    holders.end());
      if (holders.empty()) it->second.exclusive = false;
      it->second.release_offset = at;
    }
    ctx.held.clear();
    if (committed) {
      stats_.committed += 1;
      if (txns_committed_ != nullptr) txns_committed_->inc();
    } else {
      stats_.aborts += 1;
      if (txns_aborted_ != nullptr) txns_aborted_->inc();
    }
  }

  void charge_occ_fail_locked(const Ctx& ctx) {
    stats_.occ_validate_fails += 1;
    if (occ_validate_fails_ != nullptr) occ_validate_fails_->inc();
    if (waits_ != nullptr) {
      const SimDuration wasted =
          sim::VirtualClock::local_elapsed() - ctx.begin_offset;
      if (wasted > 0) {
        waits_->add_wait(obs::WaitEvent::kOccValidateFail, wasted);
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable waiters_;
  std::map<LockTarget, Entry> table_;
  std::unordered_map<TxnId, Ctx> ctx_;
  CcStats stats_;

  obs::WaitEventTable* waits_ = nullptr;
  obs::Counter* wait_die_aborts_ = nullptr;
  obs::Counter* occ_validate_fails_ = nullptr;
  obs::Counter* lock_waits_ = nullptr;
  obs::Counter* txns_begun_ = nullptr;
  obs::Counter* txns_committed_ = nullptr;
  obs::Counter* txns_aborted_ = nullptr;
};

/// Strict 2PL: reads take shared locks, writes exclusive, all held to
/// transaction end; conflicts resolved wait-die.
class TwoPhaseLockingCc final : public CcBase {
 public:
  CcProtocol protocol() const override { return CcProtocol::k2pl; }

  Status mediate(TxnId txn, const LockTarget& target, AccessMode mode,
                 bool may_wait) override {
    std::unique_lock<std::mutex> lk(mu_);
    ensure_ctx_locked(txn);
    return acquire_locked(lk, txn, target,
                          /*exclusive=*/mode == AccessMode::kWrite, may_wait);
  }
};

/// OCC (TicToc-flavoured): reads are lock-free but version-stamped and
/// re-validated at commit; writes take wait-die exclusive locks (updates
/// are in-place with logical undo, so uncommitted data must never be
/// overwritten or read). A read of a write-locked row waits for the
/// writer; a write to a row the transaction already read with a stale
/// version dies immediately (early validation) rather than doing work a
/// commit-time check is guaranteed to discard.
///
/// The version is a write-INTENT stamp, bumped when a write lock is first
/// granted — not at commit. The stamp is recorded here in mediate but the
/// row bytes are read later, under the engine latch, so a writer can
/// lock + update in place inside that window; if the stamp only moved at
/// commit, a reader that saw the dirty bytes of a writer that then
/// ABORTED would pass validation and commit data derived from rolled-back
/// state. Bumping at acquisition makes any reader whose stamp predates a
/// writer's lock tenure fail validation, committed or not — conservative
/// (a spurious abort when the read in fact happened before the writer's
/// bytes landed), but the retry loop absorbs that.
class OccCc final : public CcBase {
 public:
  CcProtocol protocol() const override { return CcProtocol::kOcc; }

  Status mediate(TxnId txn, const LockTarget& target, AccessMode mode,
                 bool may_wait) override {
    std::unique_lock<std::mutex> lk(mu_);
    Ctx& ctx = ensure_ctx_locked(txn);
    if (mode == AccessMode::kRead) {
      if (holds(ctx, target)) return Status::ok();  // own write
      // Wait out (or die to) a concurrent writer: with in-place updates
      // the row's bytes are dirty until the writer resolves.
      bool blocked = false;
      const SimDuration entered_at = sim::VirtualClock::local_elapsed();
      for (;;) {
        Entry& e = table_[target];
        if (e.holders.empty() ||
            (e.holders.size() == 1 && e.holders[0] == txn)) {
          if (blocked) {
            sim::VirtualClock::raise_local(e.release_offset);
            const SimDuration waited =
                sim::VirtualClock::local_elapsed() - entered_at;
            stats_.lock_waits += 1;
            if (lock_waits_ != nullptr) lock_waits_->inc();
            if (waits_ != nullptr && waited > 0) {
              waits_->add_wait(obs::WaitEvent::kEnqLockWait, waited);
            }
          }
          break;
        }
        if (!may_wait || !older_than_all(e, txn)) {
          stats_.wait_die_aborts += 1;
          if (wait_die_aborts_ != nullptr) wait_die_aborts_->inc();
          return make_error(ErrorCode::kDeadlock,
                            "wait-die: row write-locked by an older writer");
        }
        blocked = true;
        waiters_.wait(lk);
      }
      ctx.read_versions.try_emplace(target, version_of(target));
      return Status::ok();
    }
    // Write: exclusive wait-die lock, held to end. Whether the txn held
    // it before matters below; the bool survives the wait (only the txn
    // itself could change its own holdings, and it is blocked here).
    const bool already_held = holds(ctx, target);
    VDB_RETURN_IF_ERROR(acquire_locked(lk, txn, target, /*exclusive=*/true,
                                       may_wait));
    // Early validation: writing a row this transaction read at a version
    // that has since moved is a guaranteed commit-time failure — die now,
    // before generating redo/undo for doomed work. Checked before the
    // txn's own intent bump so it never trips on itself.
    Ctx& c = ctx_.find(txn)->second;
    auto seen = c.read_versions.find(target);
    if (seen != c.read_versions.end() &&
        seen->second != version_of(target)) {
      charge_occ_fail_locked(c);
      return make_error(ErrorCode::kTxnAborted,
                        "occ: read version moved before write");
    }
    if (!already_held) versions_[target] += 1;
    return Status::ok();
  }

  Status validate(TxnId txn) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ctx_.find(txn);
    if (it == ctx_.end()) return Status::ok();  // read-nothing transaction
    Ctx& ctx = it->second;
    for (const auto& [target, version] : ctx.read_versions) {
      // Targets this transaction write-locked are stable (only the lock
      // holder can publish); unlocked read-set entries must still be at
      // the observed version.
      if (holds(ctx, target)) continue;
      if (version_of(target) != version) {
        charge_occ_fail_locked(ctx);
        return make_error(ErrorCode::kTxnAborted,
                          "occ: validation failed (stale read set)");
      }
    }
    return Status::ok();
  }

  // publish() is the CcBase no-op: the write-intent stamp already moved
  // at lock acquisition, which is what readers validate against.

 private:
  std::uint64_t version_of(const LockTarget& t) const {
    auto it = versions_.find(t);
    return it == versions_.end() ? 0 : it->second;
  }

  std::map<LockTarget, std::uint64_t> versions_;
};

}  // namespace

std::unique_ptr<ConcurrencyControl> make_concurrency_control(CcProtocol p) {
  if (p == CcProtocol::kOcc) return std::make_unique<OccCc>();
  return std::make_unique<TwoPhaseLockingCc>();
}

TxnCoordinator::TxnCoordinator(Config cfg)
    : cc_(make_concurrency_control(cfg.protocol)) {
  if (cfg.obs != nullptr) cc_->set_observability(cfg.obs);
  const unsigned n = std::max(1u, cfg.workers);
  threads_.reserve(n);
  for (unsigned k = 0; k < n; ++k) {
    threads_.emplace_back([this, k] { worker_main(k); });
  }
}

TxnCoordinator::~TxnCoordinator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  round_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TxnCoordinator::run_round(const std::function<void(unsigned)>& fn) {
  std::unique_lock<std::mutex> lk(mu_);
  task_ = &fn;
  round_seq_ += 1;
  running_ = workers();
  round_start_.notify_all();
  round_done_.wait(lk, [&] { return running_ == 0; });
  task_ = nullptr;
}

void TxnCoordinator::worker_main(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      round_start_.wait(lk, [&] { return stop_ || round_seq_ != seen; });
      if (stop_) return;
      seen = round_seq_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_ -= 1;
      if (running_ == 0) round_done_.notify_one();
    }
  }
}

}  // namespace vdb::txn
