// Transaction coordinator: N worker threads executing transactions
// concurrently against the engine, with pluggable concurrency control.
//
// Two layers live here:
//
//  - ConcurrencyControl: the plug-in contract the engine delegates row
//    conflict mediation to while a coordinator drives it. Two protocols
//    ship: strict two-phase locking with wait-die deadlock avoidance
//    (blocking waits, provably deadlock-free), and an OCC/TicToc-style
//    scheme (version-stamped reads validated at commit, writes locked
//    wait-die to keep in-place updates safe for logical undo).
//
//  - TxnCoordinator: the worker pool. Execution proceeds in *rounds*: the
//    round driver freezes the global virtual clock, every worker runs one
//    closed-loop transaction on a private per-thread timeline
//    (VirtualClock local sinks), and the driver then advances the global
//    clock by the round makespan — N workers model N processors sharing
//    the simulated devices.
//
// Thread-safety contract with the engine: every engine entry point a
// worker calls runs under the Database's coordinator latch, so redo
// staging into the flat pending arena, group commit, buffer cache and
// txn-manager state stay serialized; ConcurrencyControl::mediate is called
// *before* the latch is taken, so a blocked waiter never holds the latch
// its lock holder needs to commit and release.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "txn/lock_manager.hpp"

namespace vdb::obs {
class Observability;
}

namespace vdb::txn {

enum class CcProtocol : std::uint8_t {
  k2pl = 0,  // strict 2PL, wait-die
  kOcc,      // OCC: versioned reads, write locks, validate at commit
};

inline const char* to_string(CcProtocol p) {
  switch (p) {
    case CcProtocol::k2pl: return "2pl";
    case CcProtocol::kOcc: return "occ";
  }
  return "?";
}

inline bool parse_cc_protocol(const std::string& s, CcProtocol* out) {
  if (s == "2pl" || s == "2PL") *out = CcProtocol::k2pl;
  else if (s == "occ" || s == "OCC" || s == "tictoc") *out = CcProtocol::kOcc;
  else return false;
  return true;
}

enum class AccessMode : std::uint8_t { kRead, kWrite };

/// Aggregated protocol behaviour, reported per experiment.
struct CcStats {
  std::uint64_t begun = 0;            // distinct transactions mediated
  std::uint64_t committed = 0;        // ended committed
  std::uint64_t aborts = 0;           // ended aborted (all causes)
  std::uint64_t wait_die_aborts = 0;  // died younger at a lock conflict
  std::uint64_t occ_validate_fails = 0;  // stale read set (early or commit)
  std::uint64_t lock_waits = 0;          // blocking waits survived
};

/// The engine-side plug-in contract. All hooks are thread-safe. `mediate`
/// may block (2PL waits); everything else returns promptly. validate() and
/// publish() are called by Database::commit under the coordinator latch —
/// validate before the commit record is appended (a failure turns the
/// commit into an error the worker rolls back), publish after the commit
/// is durable but before the latch is released, so no concurrent
/// validation can slip between a commit and its version bumps.
class ConcurrencyControl {
 public:
  virtual ~ConcurrencyControl() = default;

  virtual CcProtocol protocol() const = 0;

  /// Admission for one row access, called before the engine latch.
  /// `may_wait=false` (inserts pick their slot under the latch) converts a
  /// would-wait into a wait-die abort.
  virtual Status mediate(TxnId txn, const LockTarget& target, AccessMode mode,
                         bool may_wait) = 0;

  /// Commit-time validation (OCC read-set check; 2PL always passes).
  virtual Status validate(TxnId txn) = 0;

  /// Makes the committed transaction's writes visible to validators
  /// (bumps write-set versions). Must run under the engine latch.
  virtual void publish(TxnId txn) = 0;

  /// Transaction finished (committed or rolled back): release every
  /// resource it holds and wake waiters. Never blocks.
  virtual void end(TxnId txn, bool committed) = 0;

  /// Releases anything still held by transactions the calling worker
  /// thread started — the escape hatch when an instance failure aborts a
  /// transaction without reaching rollback (and therefore end()), which
  /// would otherwise strand lock waiters for the rest of the round.
  virtual void release_thread_residue() = 0;

  virtual CcStats stats() const = 0;

  /// Wires abort counters and the enq_lock_wait / occ_validate_fail wait
  /// events into the instance's statistics area.
  virtual void set_observability(obs::Observability* obs) = 0;
};

std::unique_ptr<ConcurrencyControl> make_concurrency_control(CcProtocol p);

/// Persistent worker pool with a round barrier. The round driver (the
/// TPC-C driver's concurrent loop) calls run_round(fn) repeatedly; each
/// call executes fn(worker_index) once on every worker concurrently and
/// returns when all have finished. Workers install/remove their own clock
/// sinks; the pool only provides the threads and the barrier.
class TxnCoordinator {
 public:
  struct Config {
    unsigned workers = 2;
    CcProtocol protocol = CcProtocol::k2pl;
    obs::Observability* obs = nullptr;
  };

  explicit TxnCoordinator(Config cfg);
  ~TxnCoordinator();
  TxnCoordinator(const TxnCoordinator&) = delete;
  TxnCoordinator& operator=(const TxnCoordinator&) = delete;

  ConcurrencyControl* cc() { return cc_.get(); }
  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// One round: fn(k) runs concurrently for every worker k; blocks until
  /// all return. fn must not touch the global clock (install a sink).
  void run_round(const std::function<void(unsigned)>& fn);

 private:
  void worker_main(unsigned index);

  std::unique_ptr<ConcurrencyControl> cc_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t round_seq_ = 0;
  unsigned running_ = 0;
  bool stop_ = false;
};

}  // namespace vdb::txn
