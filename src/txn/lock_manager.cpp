#include "txn/lock_manager.hpp"

#include <algorithm>

namespace vdb::txn {

Status LockManager::acquire(TxnId txn, const LockTarget& target,
                            LockMode mode) {
  auto it = table_.find(target);
  if (it == table_.end()) {
    table_[target] = Entry{mode, {txn}};
    by_txn_[txn].push_back(target);
    stats_.grants += 1;
    return Status::ok();
  }

  Entry& entry = it->second;
  const bool already_holder =
      std::find(entry.holders.begin(), entry.holders.end(), txn) !=
      entry.holders.end();

  if (already_holder) {
    if (mode == LockMode::kExclusive && entry.mode == LockMode::kShared) {
      if (entry.holders.size() == 1) {
        entry.mode = LockMode::kExclusive;  // upgrade by sole holder
        stats_.grants += 1;
        return Status::ok();
      }
      stats_.conflicts += 1;
      return make_error(ErrorCode::kLockTimeout, "upgrade conflict");
    }
    return Status::ok();
  }

  if (mode == LockMode::kShared && entry.mode == LockMode::kShared) {
    entry.holders.push_back(txn);
    by_txn_[txn].push_back(target);
    stats_.grants += 1;
    return Status::ok();
  }

  stats_.conflicts += 1;
  // Wait-die: a requester younger than every holder dies (deadlock
  // avoidance); an older one would be allowed to wait — reported as a
  // timeout the caller may retry.
  const bool younger_than_all =
      std::all_of(entry.holders.begin(), entry.holders.end(),
                  [&](TxnId holder) { return txn.value > holder.value; });
  if (younger_than_all) {
    stats_.deadlock_aborts += 1;
    return make_error(ErrorCode::kDeadlock, "wait-die: younger requester");
  }
  return make_error(ErrorCode::kLockTimeout, "resource busy");
}

void LockManager::release_all(TxnId txn) {
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const LockTarget& target : it->second) {
    auto entry_it = table_.find(target);
    if (entry_it == table_.end()) continue;
    auto& holders = entry_it->second.holders;
    holders.erase(std::remove(holders.begin(), holders.end(), txn),
                  holders.end());
    if (holders.empty()) table_.erase(entry_it);
  }
  by_txn_.erase(it);
}

bool LockManager::holds(TxnId txn, const LockTarget& target,
                        LockMode mode) const {
  auto it = table_.find(target);
  if (it == table_.end()) return false;
  if (mode == LockMode::kExclusive && it->second.mode != LockMode::kExclusive) {
    return false;
  }
  return std::find(it->second.holders.begin(), it->second.holders.end(),
                   txn) != it->second.holders.end();
}

}  // namespace vdb::txn
