// Two-phase-locking lock manager with row and table granularity.
//
// Conflict resolution is wait-die flavoured but non-blocking: the simulator
// executes transactions one at a time, so a conflicting request means a
// still-open transaction holds the resource; younger requesters are told to
// die (kDeadlock), older ones get kLockTimeout and retry at the driver
// level. Locks are all released at transaction end (strict 2PL).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::txn {

enum class LockMode : std::uint8_t { kShared, kExclusive };

/// Lockable resource: a whole table or one row.
struct LockTarget {
  TableId table{};
  RowId rid{RowId::invalid()};
  bool whole_table = false;

  static LockTarget for_table(TableId t) { return {t, RowId::invalid(), true}; }
  static LockTarget for_row(TableId t, RowId r) { return {t, r, false}; }

  auto operator<=>(const LockTarget&) const = default;
};

struct LockStats {
  std::uint64_t grants = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t deadlock_aborts = 0;
};

class LockManager {
 public:
  /// Grants or refuses immediately. Re-acquisition and shared→exclusive
  /// upgrade by the sole holder are allowed.
  Status acquire(TxnId txn, const LockTarget& target, LockMode mode);

  void release_all(TxnId txn);

  /// Number of resources currently locked (diagnostics / tests).
  size_t locked_count() const { return table_.size(); }
  bool holds(TxnId txn, const LockTarget& target, LockMode mode) const;
  const LockStats& stats() const { return stats_; }

 private:
  struct Entry {
    LockMode mode;
    std::vector<TxnId> holders;
  };

  std::map<LockTarget, Entry> table_;
  std::unordered_map<TxnId, std::vector<LockTarget>> by_txn_;
  LockStats stats_;
};

}  // namespace vdb::txn
