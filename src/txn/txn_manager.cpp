#include "txn/txn_manager.hpp"

#include <algorithm>

namespace vdb::txn {

TxnManager::TxnManager(RollbackSegmentConfig cfg) : cfg_(cfg) {
  segments_.resize(cfg_.count);
  for (std::uint32_t i = 0; i < cfg_.count; ++i) {
    segments_[i].index = i;
    segments_[i].capacity = cfg_.bytes_each;
    segments_[i].online = cfg_.online;
  }
}

Result<TxnId> TxnManager::begin() {
  // Least-loaded online segment.
  RollbackSegment* best = nullptr;
  for (auto& seg : segments_) {
    if (!seg.online) continue;
    if (best == nullptr || seg.active_txns < best->active_txns) best = &seg;
  }
  if (best == nullptr) {
    return make_error(ErrorCode::kOffline, "no rollback segment online");
  }
  Transaction txn;
  txn.id = TxnId{next_id_++};
  txn.rollback_segment = best->index;
  best->active_txns += 1;
  const TxnId id = txn.id;
  active_[id] = std::move(txn);
  return id;
}

Status TxnManager::record_op(TxnId id, wal::UndoOp op) {
  VDB_ASSIGN_OR_RETURN(Transaction * txn, get(id));
  const std::uint64_t bytes =
      op.change.before.size() + op.change.after.size() + 64;
  RollbackSegment& seg = segments_[txn->rollback_segment];
  if (seg.used + bytes > seg.capacity) {
    return make_error(ErrorCode::kOutOfSpace,
                      "rollback segment " + std::to_string(seg.index) +
                          " out of space");
  }
  seg.used += bytes;
  txn->undo_bytes += bytes;
  if (txn->first_lsn == kInvalidLsn) txn->first_lsn = op.lsn;
  txn->undo.push_back(std::move(op));
  return Status::ok();
}

Status TxnManager::mark_committed(TxnId id, Lsn commit_lsn) {
  VDB_ASSIGN_OR_RETURN(Transaction * txn, get(id));
  RollbackSegment& seg = segments_[txn->rollback_segment];
  seg.used -= std::min(seg.used, txn->undo_bytes);
  seg.active_txns -= 1;
  txn->state = TxnState::kCommitted;
  txn->commit_lsn = commit_lsn;
  active_.erase(id);
  return Status::ok();
}

Status TxnManager::mark_aborted(TxnId id) {
  VDB_ASSIGN_OR_RETURN(Transaction * txn, get(id));
  RollbackSegment& seg = segments_[txn->rollback_segment];
  seg.used -= std::min(seg.used, txn->undo_bytes);
  seg.active_txns -= 1;
  txn->state = TxnState::kAborted;
  active_.erase(id);
  return Status::ok();
}

Result<Transaction*> TxnManager::get(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) {
    return make_error(ErrorCode::kNotFound, "no such active transaction");
  }
  return &it->second;
}

bool TxnManager::is_active(TxnId id) const { return active_.contains(id); }

Status TxnManager::mark_end_logged(TxnId id) {
  VDB_ASSIGN_OR_RETURN(Transaction * txn, get(id));
  txn->end_logged = true;
  return Status::ok();
}

Status TxnManager::mark_prepared(TxnId id, std::uint64_t gtxn,
                                 std::uint32_t coord_shard, Lsn prepare_lsn) {
  VDB_ASSIGN_OR_RETURN(Transaction * txn, get(id));
  txn->prepared = true;
  txn->gtxn = gtxn;
  txn->coord_shard = coord_shard;
  txn->prepare_lsn = prepare_lsn;
  return Status::ok();
}

std::vector<wal::TxnSnapshot> TxnManager::snapshot_active() const {
  std::vector<wal::TxnSnapshot> out;
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    if (txn.end_logged) continue;
    wal::TxnSnapshot snap;
    snap.txn = id;
    snap.ops = txn.undo;
    snap.prepared = txn.prepared;
    snap.gtxn = txn.gtxn;
    snap.coord_shard = txn.coord_shard;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const wal::TxnSnapshot& a, const wal::TxnSnapshot& b) {
              return a.txn.value < b.txn.value;
            });
  return out;
}

Status TxnManager::set_segment_offline(std::uint32_t index) {
  if (index >= segments_.size()) {
    return make_error(ErrorCode::kNotFound, "no such rollback segment");
  }
  segments_[index].online = false;
  return Status::ok();
}

Status TxnManager::set_segment_online(std::uint32_t index) {
  if (index >= segments_.size()) {
    return make_error(ErrorCode::kNotFound, "no such rollback segment");
  }
  segments_[index].online = true;
  return Status::ok();
}

void TxnManager::restore_next_id(std::uint64_t next) {
  next_id_ = std::max(next_id_, next);
}

void TxnManager::clear() {
  active_.clear();
  for (auto& seg : segments_) {
    seg.used = 0;
    seg.active_txns = 0;
  }
}

}  // namespace vdb::txn
