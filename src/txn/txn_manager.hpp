// Transaction manager: transaction lifecycle, undo bookkeeping, rollback
// segments, and the active-transaction snapshot embedded in checkpoints.
//
// Undo is kept twice, deliberately: in memory for runtime rollback, and in
// the redo stream (before-images in DML records + checkpoint snapshots) for
// crash recovery — the compact stand-in for Oracle's persistent rollback
// segments. Rollback segments here act as the *space accounting* entity:
// a transaction whose undo outgrows its segment aborts with kOutOfSpace,
// which is exactly the observable effect of the paper's "allow a rollback
// segment to run out of space" operator fault.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "txn/lock_manager.hpp"
#include "wal/log_record.hpp"

namespace vdb::txn {

enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

struct RollbackSegmentConfig {
  std::uint32_t count = 8;
  std::uint64_t bytes_each = 4 * 1024 * 1024;
  bool online = true;
};

struct RollbackSegment {
  std::uint32_t index = 0;
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;
  bool online = true;
  std::uint32_t active_txns = 0;
};

struct Transaction {
  TxnId id{};
  TxnState state = TxnState::kActive;
  /// The COMMIT/ABORT record has been appended to the redo stream: the
  /// transaction's fate is decided, so checkpoint snapshots must no longer
  /// list it as active (its end record may even precede the checkpoint
  /// record when a log-switch checkpoint fires inside the commit flush).
  bool end_logged = false;
  /// Ops already successfully compensated (from the tail of `undo`); a
  /// rollback interrupted by a media failure resumes here.
  std::uint32_t compensated = 0;
  std::vector<wal::UndoOp> undo;
  std::uint32_t rollback_segment = 0;
  std::uint64_t undo_bytes = 0;
  Lsn first_lsn = kInvalidLsn;
  Lsn commit_lsn = kInvalidLsn;
  /// 2PC branch state: a prepared transaction's fate belongs to its global
  /// coordinator — it cannot be rolled back unilaterally, and checkpoint
  /// snapshots must carry the prepare so recovery keeps it in doubt.
  bool prepared = false;
  std::uint64_t gtxn = 0;
  std::uint32_t coord_shard = 0;
  Lsn prepare_lsn = kInvalidLsn;
};

class TxnManager {
 public:
  explicit TxnManager(RollbackSegmentConfig cfg = {});

  /// Opens a transaction, binding it to the least-loaded online rollback
  /// segment. Fails when no rollback segment is online.
  Result<TxnId> begin();

  /// Registers one executed operation for potential rollback. Fails with
  /// kOutOfSpace when the bound rollback segment is exhausted (the caller
  /// must abort the transaction).
  Status record_op(TxnId txn, wal::UndoOp op);

  /// Marks committed and frees undo space/locks bookkeeping. The engine
  /// writes the commit record; `commit_lsn` is stored for diagnostics.
  Status mark_committed(TxnId txn, Lsn commit_lsn);

  /// Marks aborted (after the engine applied compensations) and frees space.
  Status mark_aborted(TxnId txn);

  Result<Transaction*> get(TxnId txn);
  bool is_active(TxnId txn) const;
  size_t active_count() const { return active_.size(); }

  /// Marks that the transaction's end record is in the redo stream (called
  /// right after appending COMMIT/ABORT, before the flush).
  Status mark_end_logged(TxnId txn);

  /// Marks a branch PREPAREd for global transaction `gtxn` coordinated by
  /// `coord_shard` (called right after appending the kTxnPrepare record).
  Status mark_prepared(TxnId txn, std::uint64_t gtxn,
                       std::uint32_t coord_shard, Lsn prepare_lsn);

  /// Snapshot of every active transaction (end record not yet logged) for a
  /// checkpoint record.
  std::vector<wal::TxnSnapshot> snapshot_active() const;

  /// Operator-fault hooks.
  Status set_segment_offline(std::uint32_t index);
  Status set_segment_online(std::uint32_t index);
  const std::vector<RollbackSegment>& segments() const { return segments_; }

  /// Restores the id counter after recovery (max replayed id + 1).
  void restore_next_id(std::uint64_t next);
  std::uint64_t next_id() const { return next_id_; }

  /// Drops all in-flight state (instance crash).
  void clear();

 private:
  std::uint64_t next_id_ = 1;
  RollbackSegmentConfig cfg_;
  std::vector<RollbackSegment> segments_;
  std::unordered_map<TxnId, Transaction> active_;
};

}  // namespace vdb::txn
