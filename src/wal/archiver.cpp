#include "wal/archiver.hpp"

#include <algorithm>

namespace vdb::wal {

Status Archiver::archive_group(const RedoGroup& group) {
  auto member = log_->intact_member(group.index);
  if (!member.is_ok()) return member.status();
  const std::string src = member.value();
  const std::string dst = log_->archive_path(group.seq);
  if (fs_->exists(dst)) {
    VDB_RETURN_IF_ERROR(fs_->remove(dst));
  }
  VDB_RETURN_IF_ERROR(fs_->copy(src, dst, sim::IoMode::kBackground));

  // The group becomes reusable when the slower of the two devices finishes.
  const sim::Disk* sdisk = fs_->disk_for(src);
  const sim::Disk* ddisk = fs_->disk_for(dst);
  SimTime done = fs_->clock().now();
  if (sdisk != nullptr) done = std::max(done, sdisk->busy_until());
  if (ddisk != nullptr) done = std::max(done, ddisk->busy_until());

  VDB_RETURN_IF_ERROR(log_->mark_archived(group.index, done));
  archived_count_ += 1;
  archived_counter_->inc();
  last_seq_ = std::max(last_seq_, group.seq);
  if (on_archived) on_archived(dst, group.seq, done);
  return Status::ok();
}

}  // namespace vdb::wal
