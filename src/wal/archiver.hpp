// ARCH: the archive-log writer.
//
// When ARCHIVELOG mode is on, every finalized online redo group is copied
// to the archive destination before its group may be reused. Copies run as
// background I/O — they steal disk bandwidth from transactions (the
// moderate overhead in the paper's Figure 5) — and the group only becomes
// reusable at the copy's completion time (small groups + fast redo
// generation can therefore stall the log, the "insufficient redo log groups
// to support archive" operator-fault scenario).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "sim/filesystem.hpp"
#include "wal/redo_log.hpp"

namespace vdb::wal {

class Archiver {
 public:
  Archiver(sim::SimFs* fs, RedoLog* log) : fs_(fs), log_(log) {
    set_observability(nullptr);
  }

  /// Wires ARCH into a statistics area ("archived logs" counter).
  void set_observability(obs::Observability* obs) {
    archived_counter_ = obs::resolve(obs)->registry().counter("archived logs");
  }

  /// Copies the group's file to archive_path(seq) and marks the group
  /// archived at the copy's completion time.
  Status archive_group(const RedoGroup& group);

  /// Invoked after each successful archive copy — the stand-by manager
  /// hooks this to ship the file to the secondary host.
  std::function<void(const std::string& archive_path, std::uint64_t seq,
                     SimTime done_at)>
      on_archived;

  std::uint64_t archived_count() const { return archived_count_; }
  std::uint64_t last_archived_seq() const { return last_seq_; }

 private:
  sim::SimFs* fs_;
  RedoLog* log_;
  std::uint64_t archived_count_ = 0;
  std::uint64_t last_seq_ = 0;
  obs::Counter* archived_counter_ = nullptr;
};

}  // namespace vdb::wal
