#include "wal/log_record.hpp"

#include <cstring>

namespace vdb::wal {

const char* to_string(LogRecordType t) {
  switch (t) {
    case LogRecordType::kInsert: return "INSERT";
    case LogRecordType::kUpdate: return "UPDATE";
    case LogRecordType::kDelete: return "DELETE";
    case LogRecordType::kFormatPage: return "FORMAT";
    case LogRecordType::kCommit: return "COMMIT";
    case LogRecordType::kAbort: return "ABORT";
    case LogRecordType::kCheckpoint: return "CHECKPOINT";
    case LogRecordType::kCreateTable: return "CREATE_TABLE";
    case LogRecordType::kDropTable: return "DROP_TABLE";
    case LogRecordType::kDropTablespace: return "DROP_TABLESPACE";
    case LogRecordType::kTxnPrepare: return "TXN_PREPARE";
    case LogRecordType::kCoordCommit: return "COORD_COMMIT";
    case LogRecordType::kCoordAbort: return "COORD_ABORT";
  }
  return "?";
}

namespace {

// Before/after images share most bytes on typical updates (a few numeric
// columns change). Encode the common prefix and suffix once; this keeps the
// redo stream — and therefore archive-log memory footprints across hundreds
// of simulated experiments — compact without losing full-image semantics.
void encode_dml(Encoder& enc, const DmlChange& dml) {
  // Fixed header + four length-prefixed blobs; the images bound the total.
  enc.reserve(46 + dml.before.size() + dml.after.size());
  enc.put_u32(dml.table.value);
  enc.put_u32(dml.rid.page.file.value);
  enc.put_u32(dml.rid.page.block);
  enc.put_u16(dml.rid.slot);

  const auto& b = dml.before;
  const auto& a = dml.after;
  size_t prefix = 0;
  const size_t max_common = std::min(b.size(), a.size());
  while (prefix < max_common && b[prefix] == a[prefix]) ++prefix;
  size_t suffix = 0;
  while (suffix < max_common - prefix &&
         b[b.size() - 1 - suffix] == a[a.size() - 1 - suffix]) {
    ++suffix;
  }
  enc.put_u32(static_cast<std::uint32_t>(b.size()));
  enc.put_u32(static_cast<std::uint32_t>(a.size()));
  enc.put_u32(static_cast<std::uint32_t>(prefix));
  enc.put_u32(static_cast<std::uint32_t>(suffix));
  enc.put_bytes({b.data(), prefix});  // == a[0, prefix)
  enc.put_bytes({b.data() + prefix, b.size() - prefix - suffix});
  enc.put_bytes({a.data() + prefix, a.size() - prefix - suffix});
  enc.put_bytes({b.data() + b.size() - suffix, suffix});  // == a tail
}

// Zero-copy decode: the prefix/mid/suffix pieces stay as views into the
// framed payload and are assembled straight into the caller's (reused)
// image vectors — clear() keeps capacity, so a warmed-up scratch record
// decodes with no heap traffic.
Status decode_dml(Decoder& dec, DmlChange* dml) {
  auto table = dec.get_u32();
  auto file = dec.get_u32();
  auto block = dec.get_u32();
  auto slot = dec.get_u16();
  auto before_len = dec.get_u32();
  auto after_len = dec.get_u32();
  auto prefix_len = dec.get_u32();
  auto suffix_len = dec.get_u32();
  if (!table.is_ok() || !file.is_ok() || !block.is_ok() || !slot.is_ok() ||
      !before_len.is_ok() || !after_len.is_ok() || !prefix_len.is_ok() ||
      !suffix_len.is_ok()) {
    return make_error(ErrorCode::kCorruption, "bad dml payload");
  }
  auto prefix = dec.get_view();
  if (!prefix.is_ok()) return prefix.status();
  auto mid_before = dec.get_view();
  if (!mid_before.is_ok()) return mid_before.status();
  auto mid_after = dec.get_view();
  if (!mid_after.is_ok()) return mid_after.status();
  auto suffix = dec.get_view();
  if (!suffix.is_ok()) return suffix.status();

  auto assemble = [&](std::span<const std::uint8_t> mid, std::uint32_t total,
                      std::vector<std::uint8_t>* out) -> Status {
    if (prefix.value().size() + mid.size() + suffix.value().size() != total) {
      return Status{ErrorCode::kCorruption, "dml image length mismatch"};
    }
    out->clear();
    out->reserve(total);
    out->insert(out->end(), prefix.value().begin(), prefix.value().end());
    out->insert(out->end(), mid.begin(), mid.end());
    out->insert(out->end(), suffix.value().begin(), suffix.value().end());
    return Status::ok();
  };
  VDB_RETURN_IF_ERROR(
      assemble(mid_before.value(), before_len.value(), &dml->before));
  VDB_RETURN_IF_ERROR(
      assemble(mid_after.value(), after_len.value(), &dml->after));

  dml->table = TableId{table.value()};
  dml->rid = RowId{PageId{FileId{file.value()}, block.value()}, slot.value()};
  return Status::ok();
}

}  // namespace

void LogRecord::encode(Encoder& enc) const {
  enc.put_u8(static_cast<std::uint8_t>(type));
  enc.put_u64(txn.value);
  enc.put_u64(lsn);
  enc.put_u8(is_clr ? 1 : 0);
  switch (type) {
    case LogRecordType::kInsert:
    case LogRecordType::kUpdate:
    case LogRecordType::kDelete:
      encode_dml(enc, dml);
      break;
    case LogRecordType::kFormatPage:
      enc.put_u32(page.file.value);
      enc.put_u32(page.block);
      enc.put_u32(format_owner.value);
      enc.put_u16(slot_size);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kCreateTable:
      enc.put_string(name);
      enc.put_u32(table_id.value);
      enc.put_u32(tablespace_id.value);
      enc.put_u32(owner_user.value);
      enc.put_u16(ddl_slot_size);
      break;
    case LogRecordType::kDropTable:
      enc.put_string(name);
      enc.put_u32(table_id.value);
      break;
    case LogRecordType::kDropTablespace:
      enc.put_string(name);
      enc.put_u32(tablespace_id.value);
      break;
    case LogRecordType::kTxnPrepare:
      enc.put_u64(gtxn);
      enc.put_u32(coord_shard);
      break;
    case LogRecordType::kCoordCommit:
    case LogRecordType::kCoordAbort:
      enc.put_u64(gtxn);
      break;
    case LogRecordType::kCheckpoint:
      enc.put_u64(recovery_start_lsn);
      enc.put_u32(static_cast<std::uint32_t>(active_txns.size()));
      for (const auto& snap : active_txns) {
        enc.put_u64(snap.txn.value);
        enc.put_u8(snap.prepared ? 1 : 0);
        enc.put_u64(snap.gtxn);
        enc.put_u32(snap.coord_shard);
        enc.put_u32(static_cast<std::uint32_t>(snap.ops.size()));
        for (const auto& op : snap.ops) {
          enc.put_u64(op.lsn);
          enc.put_u8(static_cast<std::uint8_t>(op.op));
          encode_dml(enc, op.change);
        }
      }
      enc.put_u32(static_cast<std::uint32_t>(coord_decisions.size()));
      for (const auto& d : coord_decisions) {
        enc.put_u64(d.gtxn);
        enc.put_u8(d.commit ? 1 : 0);
      }
      break;
  }
}

Result<LogRecord> LogRecord::decode(Decoder& dec) {
  LogRecord rec;
  VDB_RETURN_IF_ERROR(decode_into(dec, &rec));
  return rec;
}

Status LogRecord::decode_into(Decoder& dec, LogRecord* out) {
  LogRecord& rec = *out;
  // Reset every field the upcoming type may not touch, keeping the heap
  // buffers' capacity so repeated decodes through one scratch record stop
  // allocating once warmed up.
  rec.dml.table = TableId{};
  rec.dml.rid = RowId{};
  rec.dml.before.clear();
  rec.dml.after.clear();
  rec.page = PageId::invalid();
  rec.format_owner = TableId{};
  rec.slot_size = 0;
  rec.name.clear();
  rec.table_id = TableId{};
  rec.tablespace_id = TablespaceId{};
  rec.owner_user = UserId{};
  rec.ddl_slot_size = 0;
  rec.gtxn = 0;
  rec.coord_shard = 0;
  rec.recovery_start_lsn = kInvalidLsn;
  rec.active_txns.clear();
  rec.coord_decisions.clear();

  auto type = dec.get_u8();
  auto txn = dec.get_u64();
  auto lsn = dec.get_u64();
  auto clr = dec.get_u8();
  if (!type.is_ok() || !txn.is_ok() || !lsn.is_ok() || !clr.is_ok()) {
    return make_error(ErrorCode::kCorruption, "bad record header");
  }
  rec.type = static_cast<LogRecordType>(type.value());
  rec.txn = TxnId{txn.value()};
  rec.lsn = lsn.value();
  rec.is_clr = clr.value() != 0;

  switch (rec.type) {
    case LogRecordType::kInsert:
    case LogRecordType::kUpdate:
    case LogRecordType::kDelete:
      VDB_RETURN_IF_ERROR(decode_dml(dec, &rec.dml));
      break;
    case LogRecordType::kFormatPage: {
      auto file = dec.get_u32();
      auto block = dec.get_u32();
      auto owner = dec.get_u32();
      auto slot_size = dec.get_u16();
      if (!file.is_ok() || !block.is_ok() || !owner.is_ok() ||
          !slot_size.is_ok()) {
        return make_error(ErrorCode::kCorruption, "bad format payload");
      }
      rec.page = PageId{FileId{file.value()}, block.value()};
      rec.format_owner = TableId{owner.value()};
      rec.slot_size = slot_size.value();
      break;
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      break;
    case LogRecordType::kCreateTable: {
      auto name = dec.get_string();
      if (!name.is_ok()) return name.status();
      auto table = dec.get_u32();
      auto ts = dec.get_u32();
      auto user = dec.get_u32();
      auto slot_size = dec.get_u16();
      if (!table.is_ok() || !ts.is_ok() || !user.is_ok() ||
          !slot_size.is_ok()) {
        return make_error(ErrorCode::kCorruption, "bad create-table payload");
      }
      rec.name = std::move(name).value();
      rec.table_id = TableId{table.value()};
      rec.tablespace_id = TablespaceId{ts.value()};
      rec.owner_user = UserId{user.value()};
      rec.ddl_slot_size = slot_size.value();
      break;
    }
    case LogRecordType::kDropTable: {
      auto name = dec.get_string();
      if (!name.is_ok()) return name.status();
      auto table = dec.get_u32();
      if (!table.is_ok()) return table.status();
      rec.name = std::move(name).value();
      rec.table_id = TableId{table.value()};
      break;
    }
    case LogRecordType::kDropTablespace: {
      auto name = dec.get_string();
      if (!name.is_ok()) return name.status();
      auto ts = dec.get_u32();
      if (!ts.is_ok()) return ts.status();
      rec.name = std::move(name).value();
      rec.tablespace_id = TablespaceId{ts.value()};
      break;
    }
    case LogRecordType::kTxnPrepare: {
      auto gtxn = dec.get_u64();
      auto coord = dec.get_u32();
      if (!gtxn.is_ok() || !coord.is_ok()) {
        return make_error(ErrorCode::kCorruption, "bad prepare payload");
      }
      rec.gtxn = gtxn.value();
      rec.coord_shard = coord.value();
      break;
    }
    case LogRecordType::kCoordCommit:
    case LogRecordType::kCoordAbort: {
      auto gtxn = dec.get_u64();
      if (!gtxn.is_ok()) return gtxn.status();
      rec.gtxn = gtxn.value();
      break;
    }
    case LogRecordType::kCheckpoint: {
      auto start = dec.get_u64();
      auto count = dec.get_u32();
      if (!start.is_ok() || !count.is_ok()) {
        return make_error(ErrorCode::kCorruption, "bad checkpoint payload");
      }
      rec.recovery_start_lsn = start.value();
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        TxnSnapshot snap;
        auto txn_id = dec.get_u64();
        auto prepared = dec.get_u8();
        auto snap_gtxn = dec.get_u64();
        auto snap_coord = dec.get_u32();
        auto ops = dec.get_u32();
        if (!txn_id.is_ok() || !prepared.is_ok() || !snap_gtxn.is_ok() ||
            !snap_coord.is_ok() || !ops.is_ok()) {
          return make_error(ErrorCode::kCorruption, "bad txn snapshot");
        }
        snap.txn = TxnId{txn_id.value()};
        snap.prepared = prepared.value() != 0;
        snap.gtxn = snap_gtxn.value();
        snap.coord_shard = snap_coord.value();
        for (std::uint32_t j = 0; j < ops.value(); ++j) {
          UndoOp op;
          auto op_lsn = dec.get_u64();
          auto op_type = dec.get_u8();
          if (!op_lsn.is_ok() || !op_type.is_ok()) {
            return make_error(ErrorCode::kCorruption, "bad undo op");
          }
          op.lsn = op_lsn.value();
          op.op = static_cast<LogRecordType>(op_type.value());
          VDB_RETURN_IF_ERROR(decode_dml(dec, &op.change));
          snap.ops.push_back(std::move(op));
        }
        rec.active_txns.push_back(std::move(snap));
      }
      auto decisions = dec.get_u32();
      if (!decisions.is_ok()) {
        return make_error(ErrorCode::kCorruption, "bad decision table");
      }
      for (std::uint32_t i = 0; i < decisions.value(); ++i) {
        auto d_gtxn = dec.get_u64();
        auto d_commit = dec.get_u8();
        if (!d_gtxn.is_ok() || !d_commit.is_ok()) {
          return make_error(ErrorCode::kCorruption, "bad coord decision");
        }
        rec.coord_decisions.push_back(
            CoordDecision{d_gtxn.value(), d_commit.value() != 0});
      }
      break;
    }
    default:
      return make_error(ErrorCode::kCorruption, "unknown record type");
  }
  return Status::ok();
}

std::uint64_t LogRecord::serialized_size() const {
  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  encode(enc);
  return buf.size() + 8;  // + framing
}

std::uint64_t frame_record(const LogRecord& rec,
                           std::vector<std::uint8_t>* out) {
  // Encode straight into the destination: reserve an 8-byte header slot,
  // let the payload land after it, then patch length + CRC back in. The
  // record never exists in a temporary buffer, so appending to a reusable
  // arena is allocation-free once the arena has grown to steady state.
  const std::uint64_t start = out->size();
  out->resize(start + 8);
  Encoder enc(out);
  rec.encode(enc);
  const std::uint64_t payload_len = out->size() - start - 8;
  const std::span<const std::uint8_t> payload(out->data() + start + 8,
                                              payload_len);
  const std::uint32_t len_le = static_cast<std::uint32_t>(payload_len);
  const std::uint32_t crc_le = crc32c(payload);
  std::memcpy(out->data() + start, &len_le, 4);
  std::memcpy(out->data() + start + 4, &crc_le, 4);
  return out->size() - start;
}

Status parse_records(
    std::span<const std::uint8_t> data,
    const std::function<bool(const LogRecord&, std::uint64_t)>& fn) {
  LogRecord scratch;  // reused across records; callback must not retain it
  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    Decoder header(data.subspan(pos, 8));
    const std::uint32_t len = header.get_u32().value();
    const std::uint32_t crc = header.get_u32().value();
    if (pos + 8 + len > data.size()) break;  // torn tail
    auto payload = data.subspan(pos + 8, len);
    if (crc32c(payload) != crc) break;  // torn / corrupt tail
    Decoder dec(payload);
    VDB_RETURN_IF_ERROR(LogRecord::decode_into(dec, &scratch));
    if (!fn(scratch, 8 + static_cast<std::uint64_t>(len))) {
      return Status::ok();
    }
    pos += 8 + len;
  }
  return Status::ok();
}

Status parse_records(std::span<const std::uint8_t> data,
                     const std::function<bool(const LogRecord&)>& fn) {
  return parse_records(
      data, [&fn](const LogRecord& rec, std::uint64_t) { return fn(rec); });
}

}  // namespace vdb::wal
