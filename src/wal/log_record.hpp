// Redo log records.
//
// The redo stream is the database's single source of recovery truth:
// physical-logical DML records (with before- and after-images), page format
// records, DDL markers, transaction end markers, and checkpoint records
// carrying the active-transaction undo snapshot. Records are CRC-protected
// and self-delimiting so a reader can detect a torn tail.
//
// Incomplete (point-in-time) recovery — the paper's "delete tablespace" and
// "delete user's object" faults — works by replaying this stream and
// stopping just before the offending DDL record.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace vdb::wal {

enum class LogRecordType : std::uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kFormatPage = 4,
  kCommit = 5,
  kAbort = 6,
  kCheckpoint = 7,
  kCreateTable = 8,
  kDropTable = 9,
  kDropTablespace = 10,
  // Two-phase commit (presumed abort). A PREPARE makes a branch's fate
  // externally decided: recovery must keep it in doubt instead of rolling
  // it back as a loser. The coordinator's decision is durable only as a
  // kCoordCommit record (abort is presumed when no decision survives).
  kTxnPrepare = 11,
  kCoordCommit = 12,
  kCoordAbort = 13,
};

const char* to_string(LogRecordType t);

/// One row-level change: enough to redo (after) and to undo (before).
struct DmlChange {
  TableId table{};
  RowId rid{};
  std::vector<std::uint8_t> before;  // empty for inserts
  std::vector<std::uint8_t> after;   // empty for deletes
};

/// A DML op as remembered for undo, stamped with the LSN of its redo record
/// (used to deduplicate checkpoint snapshots against replayed records).
struct UndoOp {
  Lsn lsn = kInvalidLsn;
  LogRecordType op = LogRecordType::kInsert;
  DmlChange change;
};

/// Snapshot of one in-flight transaction embedded in a checkpoint record.
struct TxnSnapshot {
  TxnId txn{};
  std::vector<UndoOp> ops;
  /// 2PC branch state: a prepared branch must survive recovery in doubt.
  bool prepared = false;
  std::uint64_t gtxn = 0;
  std::uint32_t coord_shard = 0;
};

/// Coordinator decision remembered across checkpoints: until every
/// participant acknowledged, the outcome of a global transaction must be
/// reconstructible from the redo stream alone.
struct CoordDecision {
  std::uint64_t gtxn = 0;
  bool commit = false;
};

struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  TxnId txn{};
  Lsn lsn = kInvalidLsn;  // assigned by RedoLog::append

  /// True for compensation records written while rolling back; recovery
  /// counts them to know how much undo already happened.
  bool is_clr = false;

  // kInsert / kUpdate / kDelete
  DmlChange dml;

  // kFormatPage
  PageId page{PageId::invalid()};
  TableId format_owner{};
  std::uint16_t slot_size = 0;

  // kCreateTable / kDropTable / kDropTablespace
  std::string name;
  TableId table_id{};
  TablespaceId tablespace_id{};
  UserId owner_user{};
  std::uint16_t ddl_slot_size = 0;

  // kTxnPrepare / kCoordCommit / kCoordAbort
  /// Global transaction id (fleet-unique) and the coordinator shard that
  /// owns the commit decision for it.
  std::uint64_t gtxn = 0;
  std::uint32_t coord_shard = 0;

  // kCheckpoint
  /// Replay may start here: every change below this LSN is on disk.
  Lsn recovery_start_lsn = kInvalidLsn;
  std::vector<TxnSnapshot> active_txns;
  /// Undropped coordinator decisions (2PC outcomes not yet acknowledged by
  /// every participant when the checkpoint was taken).
  std::vector<CoordDecision> coord_decisions;

  void encode(Encoder& enc) const;
  static Result<LogRecord> decode(Decoder& dec);

  /// Allocation-light decode: overwrites `out` in place, reusing the
  /// capacity of its vectors and strings. The steady-state replay path —
  /// millions of records per experiment — decodes through here with zero
  /// heap traffic once the scratch record's buffers have warmed up.
  static Status decode_into(Decoder& dec, LogRecord* out);

  /// Serialized size plus the fixed framing overhead.
  std::uint64_t serialized_size() const;
};

/// Framing: [u32 len][u32 crc][payload]. Returns bytes appended. Encodes
/// directly into `out` (header patched back after the payload lands), so
/// appending to a pre-sized arena performs no temporary allocation.
std::uint64_t frame_record(const LogRecord& rec,
                           std::vector<std::uint8_t>* out);

/// Parses every intact record from a log file body, stopping silently at a
/// torn tail. `fn` returns false to stop early.
///
/// The LogRecord passed to `fn` is a scratch object reused across
/// invocations: callers must copy any field they retain past the callback
/// (every in-tree caller already copies into its own bookkeeping).
Status parse_records(std::span<const std::uint8_t> data,
                     const std::function<bool(const LogRecord&)>& fn);

/// As above, additionally reporting each record's framed size in bytes
/// (header + payload, before charged overhead) so callers can account for
/// log-space consumption without re-encoding the record.
Status parse_records(
    std::span<const std::uint8_t> data,
    const std::function<bool(const LogRecord&, std::uint64_t)>& fn);

}  // namespace vdb::wal
