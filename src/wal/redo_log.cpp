#include "wal/redo_log.hpp"

#include <algorithm>

#include "common/codec.hpp"

namespace vdb::wal {

namespace {
constexpr std::uint32_t kGroupMagic = 0x52444C47;  // "RDLG"
constexpr size_t kGroupHeaderSize = 20;            // magic + seq + start_lsn
}  // namespace

RedoLog::RedoLog(sim::SimFs* fs, RedoLogConfig cfg, Callbacks cb)
    : fs_(fs), cfg_(cfg), cb_(std::move(cb)) {
  VDB_CHECK_MSG(cfg_.groups >= 2, "Oracle requires at least two redo groups");
  groups_.resize(cfg_.groups);
  for (std::uint32_t i = 0; i < cfg_.groups; ++i) {
    groups_[i].index = i;
    groups_[i].archived = true;
  }
  set_observability(nullptr, nullptr);
}

void RedoLog::set_observability(obs::Observability* obs,
                                const sim::VirtualClock* clock) {
  obs::Observability* o = obs::resolve(obs);
  waits_ = &o->waits();
  obs_clock_ = clock;
  obs::MetricsRegistry& reg = o->registry();
  redo_bytes_counter_ = reg.counter("redo size bytes");
  redo_writes_counter_ = reg.counter("redo writes");
  log_switches_counter_ = reg.counter("log switches");
}

std::string RedoLog::member_path(std::uint32_t index,
                                 std::uint32_t member) const {
  const std::string& dir = member < cfg_.member_dirs.size()
                               ? cfg_.member_dirs[member]
                               : cfg_.dir;
  char buf[48];
  if (member == 0) {
    std::snprintf(buf, sizeof(buf), "/group_%02u.log", index);
  } else {
    std::snprintf(buf, sizeof(buf), "/group_%02u_m%u.log", index, member);
  }
  return dir + buf;
}

Result<std::string> RedoLog::intact_member(std::uint32_t index) const {
  for (std::uint32_t m = 0; m < std::max<std::uint32_t>(
                                    1, cfg_.members_per_group);
       ++m) {
    const std::string path = member_path(index, m);
    if (fs_->exists(path) && !fs_->is_corrupted(path)) return path;
  }
  return Status{ErrorCode::kMediaFailure,
                "all members of redo group " + std::to_string(index) +
                    " lost"};
}

Status RedoLog::for_each_member(
    std::uint32_t index,
    const std::function<Status(const std::string&)>& fn) {
  Status last = Status::ok();
  std::uint32_t succeeded = 0;
  for (std::uint32_t m = 0;
       m < std::max<std::uint32_t>(1, cfg_.members_per_group); ++m) {
    Status st = fn(member_path(index, m));
    if (st.is_ok()) {
      succeeded += 1;
    } else {
      last = st;
    }
  }
  if (succeeded == 0) return last;
  return Status::ok();
}

std::string RedoLog::archive_path(std::uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/arch_%08llu.log",
                static_cast<unsigned long long>(seq));
  return cfg_.archive_dir + buf;
}

Status RedoLog::write_group_header(std::uint32_t index) {
  std::vector<std::uint8_t> header;
  Encoder enc(&header);
  enc.put_u32(kGroupMagic);
  enc.put_u64(groups_[index].seq);
  enc.put_u64(groups_[index].start_lsn);
  return for_each_member(index, [&](const std::string& path) {
    return fs_->write(path, 0, header, sim::IoMode::kForeground,
                      /*sequential=*/true);
  });
}

Status RedoLog::create() {
  for (std::uint32_t i = 0; i < cfg_.groups; ++i) {
    VDB_RETURN_IF_ERROR(for_each_member(
        i, [&](const std::string& path) { return fs_->create(path); }));
  }
  current_ = 0;
  RedoGroup& g = groups_[0];
  g.seq = next_seq_++;
  g.start_lsn = next_lsn_;
  g.current = true;
  g.archived = false;
  VDB_RETURN_IF_ERROR(write_group_header(0));
  return Status::ok();
}

Status RedoLog::open_existing() {
  std::uint64_t max_seq = 0;
  for (std::uint32_t i = 0; i < cfg_.groups; ++i) {
    RedoGroup& g = groups_[i];
    g = RedoGroup{};
    g.index = i;
    g.archived = true;
    auto member = intact_member(i);
    if (!member.is_ok()) return member.status();
    auto bytes = fs_->read_all(member.value(), sim::IoMode::kForeground);
    if (!bytes.is_ok()) return bytes.status();
    const auto& data = bytes.value();
    if (data.size() < kGroupHeaderSize) continue;  // never used
    Decoder dec(data);
    if (dec.get_u32().value() != kGroupMagic) continue;
    g.seq = dec.get_u64().value();
    g.start_lsn = dec.get_u64().value();
    Lsn end = g.start_lsn;
    std::uint64_t charged = 0;
    // The sized parse overload reports each record's framed length, so the
    // charged-size reconstruction no longer re-encodes every record.
    VDB_RETURN_IF_ERROR(parse_records(
        std::span<const std::uint8_t>(data).subspan(kGroupHeaderSize),
        [&](const LogRecord& rec, std::uint64_t framed) {
          const std::uint64_t total = framed + cfg_.record_overhead;
          end = rec.lsn + total;
          charged += total;
          return true;
        }));
    g.end_lsn = end;
    g.charged_bytes = charged;
    if (g.seq > max_seq) {
      max_seq = g.seq;
      current_ = i;
    }
  }
  next_seq_ = max_seq + 1;
  for (auto& g : groups_) g.current = false;
  RedoGroup& cur = groups_[current_];
  cur.current = true;
  if (cur.seq != 0) {
    next_lsn_ = std::max<Lsn>(1, cur.end_lsn);
    cur.end_lsn = kInvalidLsn;  // reopened for writing
  }
  flushed_lsn_ = next_lsn_;
  return Status::ok();
}

Lsn RedoLog::append(LogRecord& rec) {
  rec.lsn = next_lsn_;
  Pending p;
  p.lsn = rec.lsn;
  p.offset = pending_buf_.size();
  const std::uint64_t framed = frame_record(rec, &pending_buf_);
  p.len = static_cast<std::uint32_t>(framed);
  p.charged = framed + cfg_.record_overhead;
  p.commit = rec.type == LogRecordType::kCommit;
  next_lsn_ += p.charged;
  pending_.push_back(p);
  return rec.lsn;
}

Status RedoLog::switch_group() {
  RedoGroup& old = groups_[current_];
  old.end_lsn = flushed_lsn_;
  old.current = false;
  old.archived = !cfg_.archive_mode;
  switches_ += 1;
  log_switches_counter_->inc();
  if (cb_.on_group_finalized) cb_.on_group_finalized(old);

  const std::uint32_t next = (current_ + 1) % cfg_.groups;
  RedoGroup& target = groups_[next];

  // Reuse rule 1: the checkpoint position must have advanced past the
  // target's contents, or those changes would become unrecoverable.
  if (target.seq != 0 && target.end_lsn != kInvalidLsn &&
      recovery_position_ < target.end_lsn) {
    if (cb_.force_checkpoint) cb_.force_checkpoint();
    if (recovery_position_ < target.end_lsn) {
      return make_error(ErrorCode::kInternal,
                        "log switch blocked: checkpoint did not advance");
    }
  }

  // Reuse rule 2: ARCHIVELOG databases must not overwrite an unarchived
  // group. Waiting for an in-flight archive copy stalls the whole instance
  // ("archival required").
  if (cfg_.archive_mode && target.seq != 0) {
    if (!target.archived) {
      return make_error(ErrorCode::kUnrecoverable,
                        "log switch blocked: group not archived");
    }
    if (fs_->clock().now() < target.archive_done_at) {
      obs::WaitScope stall(waits_, obs_clock_, obs::WaitEvent::kArchiveStall);
      const SimDuration wait = target.archive_done_at - fs_->clock().now();
      stall_time_ += wait;
      fs_->clock().advance_to(target.archive_done_at);
    }
  }

  current_ = next;
  target.index = next;
  target.seq = next_seq_++;
  target.start_lsn = next_lsn_;  // refined when the first record lands
  target.end_lsn = kInvalidLsn;
  target.charged_bytes = 0;
  target.archived = false;
  target.archive_done_at = 0;
  target.current = true;
  VDB_RETURN_IF_ERROR(for_each_member(next, [&](const std::string& path) {
    if (!fs_->exists(path)) {
      // A deleted member is re-created at reuse, restoring redundancy —
      // Oracle similarly tolerates a lost member until the group cycles.
      VDB_RETURN_IF_ERROR(fs_->create(path));
    }
    return fs_->truncate(path, 0);
  }));
  return Status::ok();
}

Status RedoLog::force_switch() {
  VDB_RETURN_IF_ERROR(flush());
  return switch_group();
}

Status RedoLog::flush() {
  if (flushing_) return Status::ok();  // outer invocation drains the queue
  flushing_ = true;
  Status result = Status::ok();

  while (pending_head_ < pending_.size() && result.is_ok()) {
    // LGWR writes one contiguous batch per group visit: a single device
    // request per flush instead of one per record. Entries sit back-to-back
    // in the pending arena, so the batch is a borrowed span — zero copies.
    RedoGroup* g = &groups_[current_];
    if (g->charged_bytes == 0) {
      g->start_lsn = pending_[pending_head_].lsn;
      Status st = write_group_header(current_);
      if (!st.is_ok()) {
        result = st;
        break;
      }
    }

    const std::size_t batch_begin = pending_head_;
    std::uint64_t batch_charge = 0;
    std::uint64_t batch_commits = 0;
    Lsn batch_end = flushed_lsn_;
    while (pending_head_ < pending_.size()) {
      const Pending& rec = pending_[pending_head_];
      const bool fits = g->charged_bytes + batch_charge + rec.charged <=
                        cfg_.file_size_bytes;
      // An oversized record on a fresh group is written regardless (a file
      // must hold at least one record).
      const bool force = pending_head_ == batch_begin && g->charged_bytes == 0;
      if (!fits && !force) break;
      batch_charge += rec.charged;
      batch_end = rec.lsn + rec.charged;
      if (rec.commit) batch_commits += 1;
      pending_head_ += 1;
    }

    if (pending_head_ > batch_begin) {
      const Pending& first = pending_[batch_begin];
      const Pending& last = pending_[pending_head_ - 1];
      const std::span<const std::uint8_t> batch(
          pending_buf_.data() + first.offset,
          (last.offset + last.len) - first.offset);
      Status st = for_each_member(current_, [&](const std::string& path) {
        return fs_->append(path, batch, sim::IoMode::kForeground,
                           batch_charge);
      });
      if (!st.is_ok()) {
        result = st;
        break;
      }
      g->charged_bytes += batch_charge;
      flushed_lsn_ = batch_end;
      redo_bytes_counter_->inc(batch_charge);
      redo_writes_counter_->inc();
      gc_stats_.flushes += 1;
      gc_stats_.batched_commits += batch_commits;
      gc_stats_.max_commits_per_flush =
          std::max(gc_stats_.max_commits_per_flush, batch_commits);
    }

    if (pending_head_ < pending_.size()) {
      // Next record does not fit: log switch (may append checkpoint records
      // to pending_ through the callbacks; the loop drains them too).
      result = switch_group();
    }
  }
  flushing_ = false;
  if (pending_head_ == pending_.size()) {
    // Fully drained: compact the arena. clear() keeps capacity, so the
    // steady-state append→flush cycle never reallocates.
    pending_.clear();
    pending_buf_.clear();
    pending_head_ = 0;
  }
  return result;
}

Status RedoLog::flush_to(Lsn lsn) {
  if (flushed_lsn_ > lsn) return Status::ok();
  return flush();
}

Status RedoLog::commit_flush(Lsn commit_lsn) {
  gc_stats_.commit_requests += 1;
  // Already durable (an earlier batch carried it), or an outer flush is
  // mid-drain and will: the commit rides that flush for free.
  if (flushed_lsn_ > commit_lsn || flushing_) {
    gc_stats_.piggybacked += 1;
    return Status::ok();
  }
  return flush();
}

void RedoLog::discard_unflushed() {
  pending_.clear();
  pending_buf_.clear();
  pending_head_ = 0;
}

void RedoLog::note_recovery_position(Lsn lsn) {
  recovery_position_ = std::max(recovery_position_, lsn);
}

Status RedoLog::mark_archived(std::uint32_t index, SimTime done_at) {
  if (index >= groups_.size()) {
    return make_error(ErrorCode::kInvalidArgument, "no such redo group");
  }
  groups_[index].archived = true;
  groups_[index].archive_done_at = done_at;
  return Status::ok();
}

Lsn RedoLog::oldest_online_lsn() const {
  Lsn oldest = kInvalidLsn;
  for (const auto& g : groups_) {
    if (g.seq == 0) continue;
    oldest = std::min(oldest, g.start_lsn);
  }
  return oldest == kInvalidLsn ? next_lsn_ : oldest;
}

Status RedoLog::read_online(Lsn from,
                            const std::function<bool(const LogRecord&)>& fn) {
  std::vector<const RedoGroup*> ordered;
  for (const auto& g : groups_) {
    if (g.seq == 0) continue;
    ordered.push_back(&g);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const RedoGroup* a, const RedoGroup* b) {
              return a->seq < b->seq;
            });
  for (const RedoGroup* g : ordered) {
    if (g->end_lsn != kInvalidLsn && g->end_lsn <= from) continue;
    auto member = intact_member(g->index);
    if (!member.is_ok()) return member.status();
    auto bytes = fs_->read_all(member.value(), sim::IoMode::kForeground);
    if (!bytes.is_ok()) return bytes.status();
    if (bytes.value().size() < kGroupHeaderSize) continue;
    bool keep_going = true;
    VDB_RETURN_IF_ERROR(parse_records(
        std::span<const std::uint8_t>(bytes.value()).subspan(kGroupHeaderSize),
        [&](const LogRecord& rec) {
          if (rec.lsn < from) return true;
          keep_going = fn(rec);
          return keep_going;
        }));
    if (!keep_going) break;
  }
  return Status::ok();
}

Status RedoLog::resetlogs(Lsn next_lsn) {
  VDB_CHECK_MSG(pending_head_ == pending_.size(),
                "resetlogs with buffered records");
  next_lsn_ = std::max(next_lsn_, next_lsn);
  flushed_lsn_ = next_lsn_;
  recovery_position_ = next_lsn_;
  for (std::uint32_t i = 0; i < cfg_.groups; ++i) {
    VDB_RETURN_IF_ERROR(for_each_member(i, [&](const std::string& path) {
      if (!fs_->exists(path)) {
        VDB_RETURN_IF_ERROR(fs_->create(path));
      }
      return fs_->truncate(path, 0);
    }));
    groups_[i] = RedoGroup{};
    groups_[i].index = i;
    groups_[i].archived = true;
  }
  current_ = 0;
  RedoGroup& g = groups_[0];
  g.seq = next_seq_++;
  g.start_lsn = next_lsn_;
  g.current = true;
  g.archived = false;
  return write_group_header(0);
}

std::uint64_t RedoLog::pending_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t i = pending_head_; i < pending_.size(); ++i) {
    total += pending_[i].charged;
  }
  return total;
}

}  // namespace vdb::wal
