// Online redo log: circular groups, log buffer, LGWR flush, log switches.
//
// Mirrors Oracle's online redo architecture (§2.1 of the paper):
//  - a fixed set of groups used circularly; when the current file fills, the
//    log switches to the next group;
//  - a group may be reused only after (a) the checkpoint position has
//    advanced past its contents and (b) it has been archived (when
//    ARCHIVELOG is on). Otherwise the database stalls — Oracle's
//    "checkpoint not complete / archival required" events — modelled by
//    advancing the virtual clock to the blocking operation's completion;
//  - every switch notifies the engine, which archives the finalized group
//    and takes the log-switch checkpoint (the paper's "# CKPT per
//    experiment" counts exactly these).
//
// LSNs are logical byte offsets in the redo stream, advanced by each
// record's *charged* size (serialized bytes + a configurable per-record
// overhead standing in for the headers/change-vector bloat of real redo).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/observability.hpp"
#include "sim/filesystem.hpp"
#include "wal/log_record.hpp"

namespace vdb::wal {

struct RedoLogConfig {
  std::string dir = "/redo";
  std::uint64_t file_size_bytes = 10 * 1024 * 1024;
  std::uint32_t groups = 3;
  bool archive_mode = false;
  std::string archive_dir = "/arch";
  /// Charged-size padding per record (realistic redo-entry overhead).
  std::uint64_t record_overhead = 256;
  /// Members per group (Oracle redo multiplexing). Every member receives
  /// every write; reads fall back to any intact member, so losing one
  /// member file — the "delete a redo log file" operator fault — costs
  /// nothing as long as a sibling survives. The member directories should
  /// sit on different disks; putting them all on one disk is itself a
  /// catalogued operator fault.
  std::uint32_t members_per_group = 1;
  /// Mount prefix per member (member m uses member_dirs[m], falling back
  /// to `dir` when the list is short).
  std::vector<std::string> member_dirs;
};

/// Group-commit accounting: how often a commit's durability was satisfied
/// by an already-completed or in-flight flush instead of a fresh device
/// write, and how many commit records each physical flush carried.
struct GroupCommitStats {
  std::uint64_t commit_requests = 0;  // commit_flush() calls
  std::uint64_t piggybacked = 0;      // satisfied with no new device flush
  std::uint64_t flushes = 0;          // physical LGWR batch writes
  std::uint64_t batched_commits = 0;  // commit records across all batches
  std::uint64_t max_commits_per_flush = 0;
};

struct RedoGroup {
  std::uint32_t index = 0;
  std::uint64_t seq = 0;            // monotonically increasing per use
  Lsn start_lsn = kInvalidLsn;      // first lsn written in this use
  Lsn end_lsn = kInvalidLsn;        // one past the last lsn (set when closed)
  std::uint64_t charged_bytes = 0;
  bool archived = true;             // vacuously true in NOARCHIVELOG
  SimTime archive_done_at = 0;      // background copy completion
  bool current = false;
};

class RedoLog {
 public:
  struct Callbacks {
    /// A group filled and was closed. The engine must archive it (if
    /// ARCHIVELOG) and take the log-switch checkpoint.
    std::function<void(const RedoGroup&)> on_group_finalized;
    /// The next group in rotation still contains un-checkpointed redo; the
    /// engine must complete a full checkpoint before the switch proceeds.
    std::function<void()> force_checkpoint;
  };

  RedoLog(sim::SimFs* fs, RedoLogConfig cfg, Callbacks cb);

  /// Creates the group files for a brand-new database.
  Status create();

  /// Reopens existing group files after an instance crash; restores group
  /// metadata from file headers and contents.
  Status open_existing();

  /// Assigns the record's LSN and buffers it (redo log buffer).
  Lsn append(LogRecord& rec);

  /// LGWR force: writes every buffered record to the current group file
  /// (foreground I/O), switching groups as files fill.
  Status flush();

  /// Guarantees durability up to `lsn` (no-op when already flushed).
  Status flush_to(Lsn lsn);

  /// Commit durability with group-commit semantics: if the commit record at
  /// `commit_lsn` is already durable, or an outer flush is mid-drain and
  /// will carry it, the commit piggybacks on that flush instead of issuing
  /// its own. Otherwise triggers a normal LGWR flush whose batch carries
  /// every co-buffered record — co-arriving commits share one device write.
  Status commit_flush(Lsn commit_lsn);

  /// Operator-initiated log switch (ALTER SYSTEM SWITCH LOGFILE): flushes
  /// the buffer, finalizes the current group — archiving it in ARCHIVELOG
  /// mode — and continues in the next one.
  Status force_switch();

  const GroupCommitStats& group_commit_stats() const { return gc_stats_; }

  /// Wires LGWR into a statistics area: redo size/write counters plus the
  /// archive_stall wait event charged when a log switch blocks on the
  /// archiver (measured on `clock`).
  void set_observability(obs::Observability* obs,
                         const sim::VirtualClock* clock);

  /// Instance crash: buffered, unflushed entries disappear.
  void discard_unflushed();

  Lsn next_lsn() const { return next_lsn_; }
  Lsn flushed_lsn() const { return flushed_lsn_; }

  /// The engine reports the recovery position of the latest checkpoint
  /// record; groups entirely below it may be reused.
  void note_recovery_position(Lsn lsn);
  Lsn recovery_position() const { return recovery_position_; }

  Status mark_archived(std::uint32_t index, SimTime done_at);

  /// Oldest LSN still present in the online groups (recovery reaching
  /// further back must use archived logs).
  Lsn oldest_online_lsn() const;

  /// Reads every record with lsn >= from currently retained online, in LSN
  /// order (foreground I/O).
  Status read_online(Lsn from,
                     const std::function<bool(const LogRecord&)>& fn);

  const std::vector<RedoGroup>& groups() const { return groups_; }
  std::uint32_t current_group() const { return current_; }
  std::uint64_t switch_count() const { return switches_; }
  std::uint64_t stall_time() const { return stall_time_; }
  const RedoLogConfig& config() const { return cfg_; }

  std::string group_path(std::uint32_t index) const {
    return member_path(index, 0);
  }
  /// Path of one member file of a group.
  std::string member_path(std::uint32_t index, std::uint32_t member) const;
  std::string archive_path(std::uint64_t seq) const;

  /// First member of the group whose file still exists and is readable —
  /// the read path used by recovery and archiving. Fails only when every
  /// member is gone (an unrecoverable operator fault).
  Result<std::string> intact_member(std::uint32_t index) const;

  /// Bytes buffered but not yet flushed (diagnostics).
  std::uint64_t pending_bytes() const;

  /// RESETLOGS after incomplete (point-in-time) recovery or stand-by
  /// activation: every group file is re-initialized empty and the LSN
  /// counter jumps to `next_lsn` (chosen above any LSN of the previous
  /// incarnation so old archives can never be confused with new redo).
  Status resetlogs(Lsn next_lsn);

 private:
  /// One buffered record: a slice of the shared pending arena. Records are
  /// framed back-to-back into `pending_buf_`, so any run of consecutive
  /// entries is one contiguous span — LGWR writes a whole batch without
  /// copying it into a staging buffer first.
  struct Pending {
    std::uint64_t offset;  // into pending_buf_
    std::uint32_t len;     // framed bytes at offset
    Lsn lsn;
    std::uint64_t charged;
    bool commit;  // kCommit record (group-commit stats)
  };

  Status write_group_header(std::uint32_t index);
  Status switch_group();
  /// Applies `fn` to every member path; succeeds if at least one member
  /// write succeeded (a lost member degrades redundancy, not service).
  Status for_each_member(std::uint32_t index,
                         const std::function<Status(const std::string&)>& fn);

  sim::SimFs* fs_;
  RedoLogConfig cfg_;
  Callbacks cb_;

  std::vector<RedoGroup> groups_;
  std::uint32_t current_ = 0;
  std::uint64_t next_seq_ = 1;
  Lsn next_lsn_ = 1;  // 0 is reserved as "before everything"
  Lsn flushed_lsn_ = 0;
  Lsn recovery_position_ = 0;
  std::uint64_t switches_ = 0;
  SimDuration stall_time_ = 0;
  bool flushing_ = false;
  /// Flat arena holding every buffered record's framed bytes; entries in
  /// `pending_` index into it. Compacted (cleared, capacity kept) only when
  /// fully drained so offsets of records appended mid-flush by checkpoint
  /// callbacks stay valid. Steady state performs zero allocations.
  std::vector<std::uint8_t> pending_buf_;
  std::vector<Pending> pending_;
  std::size_t pending_head_ = 0;  // first unflushed entry in pending_
  GroupCommitStats gc_stats_;

  obs::WaitEventTable* waits_ = nullptr;
  const sim::VirtualClock* obs_clock_ = nullptr;
  obs::Counter* redo_bytes_counter_ = nullptr;
  obs::Counter* redo_writes_counter_ = nullptr;
  obs::Counter* log_switches_counter_ = nullptr;
};

}  // namespace vdb::wal
