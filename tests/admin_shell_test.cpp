#include <gtest/gtest.h>

#include "engine/admin_shell.hpp"
#include "faults/fault_injector.hpp"
#include "tests/test_env.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::put_row;

class AdminShellTest : public ::testing::Test {
 protected:
  SimEnv env_;
  std::unique_ptr<SmallDb> db_;
  std::unique_ptr<AdminShell> shell_;

  void SetUp() override {
    db_ = std::make_unique<SmallDb>(env_);
    shell_ = std::make_unique<AdminShell>(db_->db.get());
  }

  std::string run(const std::string& command) {
    auto result = shell_->execute(command);
    VDB_CHECK_MSG(result.is_ok(), result.status().to_string());
    return result.value();
  }
};

TEST_F(AdminShellTest, ShowTablesListsSchema) {
  EXPECT_NE(run("SHOW TABLES").find("accounts"), std::string::npos);
}

TEST_F(AdminShellTest, ShowDatafilesAndTablespaces) {
  EXPECT_NE(run("SHOW DATAFILES").find("/data/users01.dbf"),
            std::string::npos);
  EXPECT_NE(run("SHOW TABLESPACES").find("USERS"), std::string::npos);
}

TEST_F(AdminShellTest, CreateAndDropTable) {
  run("CREATE TABLE audit TABLESPACE USERS SLOTSIZE 64 OWNER APP");
  EXPECT_TRUE(db_->db->table_id("audit").is_ok());
  run("DROP TABLE audit");
  EXPECT_FALSE(db_->db->table_id("audit").is_ok());
}

TEST_F(AdminShellTest, TablespaceOfflineOnlineCycle) {
  run("ALTER TABLESPACE USERS OFFLINE");
  auto txn = db_->db->begin();
  EXPECT_FALSE(
      db_->db->insert(txn.value(), db_->table, testing::row("x")).is_ok());
  ASSERT_TRUE(db_->db->rollback(txn.value()).is_ok());
  run("ALTER TABLESPACE USERS ONLINE");
  put_row(*db_->db, db_->table, "works");
}

TEST_F(AdminShellTest, DatafileOfflineById) {
  run("ALTER DATAFILE 0 OFFLINE");
  EXPECT_EQ(db_->db->storage().file_info(FileId{0}).value()->status,
            storage::FileStatus::kOffline);
}

TEST_F(AdminShellTest, RollbackSegmentAdmin) {
  run("ALTER ROLLBACK SEGMENT 0 OFFLINE");
  EXPECT_FALSE(db_->db->txns().segments()[0].online);
  run("ALTER ROLLBACK SEGMENT 0 ONLINE");
  EXPECT_TRUE(db_->db->txns().segments()[0].online);
}

TEST_F(AdminShellTest, QuotaCommand) {
  run("ALTER TABLESPACE USERS QUOTA 8");
  auto ts = db_->db->storage().find_tablespace("USERS");
  ASSERT_TRUE(ts.is_ok());
  EXPECT_EQ(db_->db->storage().tablespace_info(ts.value()).value()->max_blocks,
            8u);
}

TEST_F(AdminShellTest, HostEscapes) {
  run("HOST RM /data/users01.dbf");
  EXPECT_FALSE(env_.host.fs().exists("/data/users01.dbf"));
}

TEST_F(AdminShellTest, VerifyReportsFlippedBits) {
  put_row(*db_->db, db_->table, "victim");
  ASSERT_TRUE(db_->db->checkpoint_now().is_ok());
  EXPECT_NE(run("VERIFY").find("0 corrupt block(s)"), std::string::npos);

  // The silent-corruption OS escape, then DBVERIFY catches it.
  run("HOST FLIPBITS /data/users01.dbf 100 16 7");
  const std::string out = run("VERIFY");
  EXPECT_NE(out.find("1 corrupt block(s)"), std::string::npos);
  EXPECT_NE(out.find("block 0"), std::string::npos);
  EXPECT_NE(out.find("checksum mismatch"), std::string::npos);
}

TEST_F(AdminShellTest, ArchiveLogList) {
  const std::string out = run("ARCHIVE LOG LIST");
  EXPECT_NE(out.find("NOARCHIVELOG"), std::string::npos);
  EXPECT_NE(out.find("CURRENT"), std::string::npos);
}

TEST_F(AdminShellTest, ShutdownAbortCommand) {
  run("SHUTDOWN ABORT");
  EXPECT_EQ(db_->db->state(), InstanceState::kCrashed);
}

TEST_F(AdminShellTest, SyntaxErrorsRejected) {
  EXPECT_EQ(shell_->execute("FROB THE KNOB").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(shell_->execute("ALTER TABLESPACE USERS SIDEWAYS").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(shell_->execute("ALTER DATAFILE xyz OFFLINE").code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(AdminShellTest, ScriptSkipsCommentsAndStopsOnError) {
  auto out = shell_->run_script(R"(
      # comment line
      -- another comment
      SHOW TABLES
      CHECKPOINT
  )");
  ASSERT_TRUE(out.is_ok());
  EXPECT_NE(out.value().find("accounts"), std::string::npos);

  auto bad = shell_->run_script("CHECKPOINT\nDROP TABLE ghost\nCHECKPOINT");
  EXPECT_EQ(bad.code(), ErrorCode::kNotFound);
}

/// The paper's methodology round-trip: the injector's fault scripts, run
/// through the admin shell, have exactly the injector's effect.
TEST_F(AdminShellTest, FaultScriptsMatchInjector) {
  using faults::FaultSpec;
  using faults::FaultType;
  FaultSpec spec;
  spec.tablespace = "USERS";
  spec.table = "accounts";

  // Set-tablespace-offline via script.
  spec.type = FaultType::kSetTablespaceOffline;
  auto script = faults::FaultInjector::script_for(*db_->db, spec);
  ASSERT_TRUE(script.is_ok());
  ASSERT_TRUE(shell_->run_script(script.value()).is_ok());
  auto ts = db_->db->storage().find_tablespace("USERS");
  EXPECT_EQ(db_->db->storage().tablespace_info(ts.value()).value()->status,
            storage::TablespaceStatus::kOffline);
  ASSERT_TRUE(db_->db->alter_tablespace_online("USERS").is_ok());

  // Delete-datafile via script (an OS rm).
  spec.type = FaultType::kDeleteDatafile;
  script = faults::FaultInjector::script_for(*db_->db, spec);
  ASSERT_TRUE(script.is_ok());
  EXPECT_EQ(script.value(), "HOST RM /data/users01.dbf");
  ASSERT_TRUE(shell_->run_script(script.value()).is_ok());
  EXPECT_FALSE(env_.host.fs().exists("/data/users01.dbf"));

  // Drop-table via script.
  spec.type = FaultType::kDeleteUserObject;
  script = faults::FaultInjector::script_for(*db_->db, spec);
  ASSERT_TRUE(script.is_ok());
  ASSERT_TRUE(shell_->run_script(script.value()).is_ok());
  EXPECT_FALSE(db_->db->table_id("accounts").is_ok());
}

}  // namespace
}  // namespace vdb::engine
