#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "index/bplus_tree.hpp"

namespace vdb::index {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree<int, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.find(1), nullptr);
  EXPECT_FALSE(tree.erase(1));
  EXPECT_TRUE(tree.validate());
}

TEST(BPlusTree, InsertFindErase) {
  BPlusTree<int, std::string> tree;
  EXPECT_TRUE(tree.insert(5, "five"));
  EXPECT_TRUE(tree.insert(3, "three"));
  EXPECT_FALSE(tree.insert(5, "dup"));  // duplicate rejected
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_NE(tree.find(5), nullptr);
  EXPECT_EQ(*tree.find(5), "five");
  EXPECT_TRUE(tree.erase(5));
  EXPECT_EQ(tree.find(5), nullptr);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, SplitsUnderLoad) {
  BPlusTree<int, int, 8> tree;  // tiny order forces deep trees
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tree.insert(i, i * 2));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.validate());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(tree.find(i), nullptr) << i;
    EXPECT_EQ(*tree.find(i), i * 2);
  }
}

TEST(BPlusTree, ReverseInsertionOrder) {
  BPlusTree<int, int, 8> tree;
  for (int i = 999; i >= 0; --i) EXPECT_TRUE(tree.insert(i, i));
  EXPECT_TRUE(tree.validate());
  int expect = 0;
  tree.for_each([&](const int& k, const int&) {
    EXPECT_EQ(k, expect++);
    return true;
  });
  EXPECT_EQ(expect, 1000);
}

TEST(BPlusTree, ScanRangeAscending) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 100; i += 2) tree.insert(i, i);
  std::vector<int> seen;
  tree.scan_range(10, 20, [&](const int& k, const int&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{10, 12, 14, 16, 18, 20}));
}

TEST(BPlusTree, ScanRangeEarlyStop) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 100; ++i) tree.insert(i, i);
  std::vector<int> seen;
  tree.scan_range(0, 99, [&](const int& k, const int&) {
    seen.push_back(k);
    return seen.size() < 3;
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(BPlusTree, ScanRangeDescending) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 100; i += 2) tree.insert(i, i);
  std::vector<int> seen;
  tree.scan_range_desc(10, 20, [&](const int& k, const int&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{20, 18, 16, 14, 12, 10}));
}

TEST(BPlusTree, ScanDescFindsNewestFirst) {
  BPlusTree<int, int, 8> tree;
  for (int i = 1; i <= 50; ++i) tree.insert(i, i);
  int newest = -1;
  tree.scan_range_desc(0, 1000, [&](const int& k, const int&) {
    newest = k;
    return false;
  });
  EXPECT_EQ(newest, 50);
}

TEST(BPlusTree, ScanEmptyRanges) {
  BPlusTree<int, int, 8> tree;
  for (int i = 10; i < 20; ++i) tree.insert(i, i);
  int count = 0;
  auto counter = [&](const int&, const int&) {
    ++count;
    return true;
  };
  tree.scan_range(0, 5, counter);
  tree.scan_range(25, 30, counter);
  tree.scan_range_desc(0, 5, counter);
  tree.scan_range_desc(25, 30, counter);
  EXPECT_EQ(count, 0);  // all four ranges miss every key
}

TEST(BPlusTree, TupleKeys) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  BPlusTree<Key, int> tree;
  tree.insert({1, 2, 3}, 1);
  tree.insert({1, 2, 4}, 2);
  tree.insert({1, 3, 1}, 3);
  std::vector<int> seen;
  tree.scan_range({1, 2, 0}, {1, 2, ~0u}, [&](const Key&, const int& v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(BPlusTree, ClearResets) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 500; ++i) tree.insert(i, i);
  tree.clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.validate());
  EXPECT_TRUE(tree.insert(1, 1));
}

TEST(BPlusTree, EraseEverything) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 300; ++i) tree.insert(i, i);
  for (int i = 0; i < 300; ++i) EXPECT_TRUE(tree.erase(i)) << i;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.validate());
}

TEST(BPlusTree, EraseEverythingReverse) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 300; ++i) tree.insert(i, i);
  for (int i = 299; i >= 0; --i) EXPECT_TRUE(tree.erase(i)) << i;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.validate());
}

/// Property test: random interleaved operations behave exactly like
/// std::map, and structural invariants hold throughout.
class BTreeModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeModelCheck, MatchesStdMap) {
  Rng rng(GetParam());
  BPlusTree<int, int, 8> tree;
  std::map<int, int> model;

  for (int op = 0; op < 5000; ++op) {
    const int key = static_cast<int>(rng.uniform(0, 400));
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      const int value = static_cast<int>(rng.uniform(0, 1 << 30));
      EXPECT_EQ(tree.insert(key, value), model.emplace(key, value).second);
    } else if (dice < 0.85) {
      EXPECT_EQ(tree.erase(key), model.erase(key) > 0);
    } else {
      const int* found = tree.find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    if (op % 500 == 0) ASSERT_TRUE(tree.validate()) << "op " << op;
  }
  ASSERT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(), model.size());

  // Full in-order agreement.
  auto it = model.begin();
  tree.for_each([&](const int& k, const int& v) {
    EXPECT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());

  // Random range scans agree with the model.
  for (int scan = 0; scan < 50; ++scan) {
    int lo = static_cast<int>(rng.uniform(0, 400));
    int hi = static_cast<int>(rng.uniform(0, 400));
    if (lo > hi) std::swap(lo, hi);
    std::vector<int> tree_keys;
    tree.scan_range(lo, hi, [&](const int& k, const int&) {
      tree_keys.push_back(k);
      return true;
    });
    std::vector<int> model_keys;
    for (auto mit = model.lower_bound(lo);
         mit != model.end() && mit->first <= hi; ++mit) {
      model_keys.push_back(mit->first);
    }
    EXPECT_EQ(tree_keys, model_keys) << "range [" << lo << "," << hi << "]";

    std::vector<int> tree_desc;
    tree.scan_range_desc(lo, hi, [&](const int& k, const int&) {
      tree_desc.push_back(k);
      return true;
    });
    std::reverse(model_keys.begin(), model_keys.end());
    EXPECT_EQ(tree_desc, model_keys);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace vdb::index
