#include <gtest/gtest.h>

#include <map>

#include "storage/buffer_cache.hpp"
#include "storage/page.hpp"

namespace vdb::storage {
namespace {

/// In-memory PageStore recording I/O and WAL-rule compliance.
class FakeStore : public PageStore {
 public:
  Status load_page(PageId id, Page* out, sim::IoMode) override {
    loads += 1;
    auto it = pages.find(id);
    if (it == pages.end()) {
      if (fail_missing) {
        return make_error(ErrorCode::kMediaFailure, "missing");
      }
      *out = Page{};  // virgin
      return Status::ok();
    }
    *out = it->second;
    return Status::ok();
  }

  Status store_page(PageId id, Page& page, sim::IoMode,
                    bool) override {
    if (fail_stores) return make_error(ErrorCode::kMediaFailure, "gone");
    stores += 1;
    page.update_checksum();
    pages[id] = page;
    last_stored_lsn = page.lsn();
    return Status::ok();
  }

  std::map<PageId, Page> pages;
  int loads = 0;
  int stores = 0;
  bool fail_missing = false;
  bool fail_stores = false;
  Lsn last_stored_lsn = 0;
};

PageId pid(std::uint32_t block) { return PageId{FileId{0}, block}; }

class BufferCacheTest : public ::testing::Test {
 protected:
  FakeStore store_;
  Lsn flushed_to_ = 0;
  BufferCache cache_{&store_, 4, [this](Lsn lsn) {
                       flushed_to_ = std::max(flushed_to_, lsn);
                     }};
};

TEST_F(BufferCacheTest, MissThenHit) {
  {
    auto ref = cache_.fetch(pid(1));
    ASSERT_TRUE(ref.is_ok());
  }
  EXPECT_EQ(store_.loads, 1);
  {
    auto ref = cache_.fetch(pid(1));
    ASSERT_TRUE(ref.is_ok());
  }
  EXPECT_EQ(store_.loads, 1);  // hit
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(BufferCacheTest, EvictsLruWhenFull) {
  for (std::uint32_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache_.fetch(pid(b)).is_ok());
  }
  // Touch page 0 so page 1 becomes LRU.
  ASSERT_TRUE(cache_.fetch(pid(0)).is_ok());
  ASSERT_TRUE(cache_.fetch(pid(9)).is_ok());  // evicts 1
  EXPECT_EQ(cache_.stats().evictions, 1u);
  const int loads_before = store_.loads;
  ASSERT_TRUE(cache_.fetch(pid(0)).is_ok());  // still resident
  EXPECT_EQ(store_.loads, loads_before);
  ASSERT_TRUE(cache_.fetch(pid(1)).is_ok());  // was evicted: reload
  EXPECT_EQ(store_.loads, loads_before + 1);
}

TEST_F(BufferCacheTest, PinnedPagesNotEvicted) {
  auto p0 = cache_.fetch(pid(0));
  ASSERT_TRUE(p0.is_ok());
  // Fill the rest and force evictions; page 0 is pinned throughout.
  for (std::uint32_t b = 1; b < 10; ++b) {
    ASSERT_TRUE(cache_.fetch(pid(b)).is_ok());
  }
  Page* still = p0.value().page();
  ASSERT_NE(still, nullptr);
  // Fetching 0 again must not reload.
  const int loads = store_.loads;
  ASSERT_TRUE(cache_.fetch(pid(0)).is_ok());
  EXPECT_EQ(store_.loads, loads);
}

TEST_F(BufferCacheTest, AllPinnedFailsFetch) {
  std::vector<PageRef> pins;
  for (std::uint32_t b = 0; b < 4; ++b) {
    auto ref = cache_.fetch(pid(b));
    ASSERT_TRUE(ref.is_ok());
    pins.push_back(std::move(ref).value());
  }
  EXPECT_EQ(cache_.fetch(pid(99)).code(), ErrorCode::kInternal);
}

TEST_F(BufferCacheTest, DirtyEvictionWritesAndRespectsWalRule) {
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    ref.value()->set_lsn(777);
    cache_.mark_dirty(pid(0), 10);
  }
  for (std::uint32_t b = 1; b < 6; ++b) {
    ASSERT_TRUE(cache_.fetch(pid(b)).is_ok());
  }
  EXPECT_GE(store_.stores, 1);
  EXPECT_GE(flushed_to_, 777u);  // log forced before the page hit disk
  EXPECT_TRUE(store_.pages.contains(pid(0)));
  EXPECT_EQ(store_.pages[pid(0)].lsn(), 777u);
}

TEST_F(BufferCacheTest, CheckpointWritesAllDirty) {
  for (std::uint32_t b = 0; b < 3; ++b) {
    auto ref = cache_.fetch(pid(b));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    ref.value()->set_lsn(100 + b);
    cache_.mark_dirty(pid(b), 5);
  }
  EXPECT_EQ(cache_.dirty_count(), 3u);
  auto result = cache_.checkpoint();
  EXPECT_EQ(result.pages_written, 3u);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(cache_.dirty_count(), 0u);
  EXPECT_GE(flushed_to_, 102u);
  // Second checkpoint writes nothing.
  EXPECT_EQ(cache_.checkpoint().pages_written, 0u);
}

TEST_F(BufferCacheTest, CheckpointReportsFailures) {
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(pid(0), 5);
  }
  store_.fail_stores = true;
  auto result = cache_.checkpoint();
  EXPECT_EQ(result.pages_written, 0u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].second.code(), ErrorCode::kMediaFailure);
  EXPECT_EQ(cache_.dirty_count(), 1u);  // stays dirty
}

TEST_F(BufferCacheTest, FlushAgedHonorsCutoff) {
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(pid(0), /*now=*/10);
  }
  {
    auto ref = cache_.fetch(pid(1));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(pid(1), /*now=*/100);
  }
  auto result = cache_.flush_aged(/*older_than=*/50);
  EXPECT_EQ(result.pages_written, 1u);
  EXPECT_EQ(cache_.dirty_count(), 1u);
}

TEST_F(BufferCacheTest, MinDirtyRecLsn) {
  EXPECT_EQ(cache_.min_dirty_rec_lsn(), kInvalidLsn);
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    ref.value()->set_lsn(500);
    cache_.mark_dirty(pid(0), 1);
    // Re-dirty with a higher lsn: rec_lsn keeps the FIRST dirty position.
    ref.value()->set_lsn(900);
    cache_.mark_dirty(pid(0), 2);
  }
  EXPECT_EQ(cache_.min_dirty_rec_lsn(), 500u);
  cache_.checkpoint();
  EXPECT_EQ(cache_.min_dirty_rec_lsn(), kInvalidLsn);
  {
    // Dirty again after flush: rec_lsn resets to the current page lsn.
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->set_lsn(1000);
    cache_.mark_dirty(pid(0), 3);
  }
  EXPECT_EQ(cache_.min_dirty_rec_lsn(), 1000u);
}

TEST_F(BufferCacheTest, DiscardFileDropsFramesWithoutWriting) {
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(pid(0), 1);
  }
  const int stores = store_.stores;
  cache_.discard_file(FileId{0});
  EXPECT_EQ(store_.stores, stores);  // nothing written
  EXPECT_EQ(cache_.dirty_count(), 0u);
}

TEST_F(BufferCacheTest, FlushFileTargetsOneFile) {
  {
    auto ref = cache_.fetch(PageId{FileId{0}, 0});
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(PageId{FileId{0}, 0}, 1);
  }
  {
    auto ref = cache_.fetch(PageId{FileId{1}, 0});
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    cache_.mark_dirty(PageId{FileId{1}, 0}, 1);
  }
  auto result = cache_.flush_file(FileId{0});
  EXPECT_EQ(result.pages_written, 1u);
  EXPECT_EQ(cache_.dirty_count(), 1u);
}

TEST_F(BufferCacheTest, LastFetchedFastPathSurvivesEviction) {
  // Engage the last-fetched fast path with back-to-back fetches of one
  // page, then evict that page through LRU pressure. The recycled frame
  // must not be served for the old id afterwards.
  {
    auto ref = cache_.fetch(pid(0));
    ASSERT_TRUE(ref.is_ok());
    ref.value()->format(TableId{1}, 16);
    ref.value()->set_lsn(321);
    cache_.mark_dirty(pid(0), 1);
  }
  {
    auto again = cache_.fetch(pid(0));  // fast-path hit
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value()->lsn(), 321u);
  }
  EXPECT_EQ(cache_.stats().hits, 1u);

  // Push page 0 out (capacity 4, LRU order 0,1,2,3 → fetching 4 new pages
  // evicts it first) and recycle its frame for other ids.
  for (std::uint32_t b = 1; b <= 4; ++b) {
    ASSERT_TRUE(cache_.fetch(pid(b)).is_ok());
  }
  EXPECT_GE(cache_.stats().evictions, 1u);

  const int loads = store_.loads;
  auto back = cache_.fetch(pid(0));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(store_.loads, loads + 1);  // reloaded, not stale fast-path frame
  EXPECT_EQ(back.value()->lsn(), 321u);  // dirty eviction preserved it
}

TEST_F(BufferCacheTest, LoadFailurePropagates) {
  store_.fail_missing = true;
  store_.pages.clear();
  EXPECT_EQ(cache_.fetch(pid(3)).code(), ErrorCode::kMediaFailure);
}

}  // namespace
}  // namespace vdb::storage
