#include <gtest/gtest.h>

#include "catalog/catalog.hpp"

namespace vdb::catalog {
namespace {

TEST(Catalog, UserLifecycle) {
  Catalog cat;
  auto sys = cat.create_user("SYS", true);
  ASSERT_TRUE(sys.is_ok());
  auto app = cat.create_user("APP", false);
  ASSERT_TRUE(app.is_ok());
  EXPECT_NE(sys.value(), app.value());
  EXPECT_EQ(cat.create_user("APP", false).code(), ErrorCode::kAlreadyExists);

  auto found = cat.find_user("APP");
  ASSERT_TRUE(found.is_ok());
  EXPECT_FALSE(found.value()->is_dba);

  EXPECT_TRUE(cat.drop_user("APP").is_ok());
  EXPECT_EQ(cat.find_user("APP").code(), ErrorCode::kNotFound);
  EXPECT_EQ(cat.drop_user("APP").code(), ErrorCode::kNotFound);
}

TEST(Catalog, TableLifecycle) {
  Catalog cat;
  auto user = cat.create_user("APP", false);
  ASSERT_TRUE(user.is_ok());
  auto table = cat.create_table("orders", TablespaceId{1}, 48, user.value(),
                                {{"o_id", ColumnType::kInt}});
  ASSERT_TRUE(table.is_ok());
  EXPECT_EQ(cat.create_table("orders", TablespaceId{1}, 48, user.value())
                .code(),
            ErrorCode::kAlreadyExists);

  auto def = cat.find_table("orders");
  ASSERT_TRUE(def.is_ok());
  EXPECT_EQ(def.value()->slot_size, 48);
  EXPECT_EQ(def.value()->owner, user.value());
  EXPECT_TRUE(def.value()->logging);
  ASSERT_EQ(def.value()->columns.size(), 1u);
  EXPECT_EQ(def.value()->columns[0].name, "o_id");

  ASSERT_TRUE(cat.set_logging(table.value(), false).is_ok());
  EXPECT_FALSE(cat.find_table(table.value()).value()->logging);

  EXPECT_TRUE(cat.drop_table(table.value()).is_ok());
  EXPECT_EQ(cat.find_table("orders").code(), ErrorCode::kNotFound);
}

TEST(Catalog, CreateWithIdPreservesCounter) {
  Catalog cat;
  ASSERT_TRUE(cat.create_table_with_id(TableId{10}, "t", TablespaceId{0}, 8,
                                       UserId{1})
                  .is_ok());
  EXPECT_EQ(cat.create_table_with_id(TableId{10}, "t2", TablespaceId{0}, 8,
                                     UserId{1})
                .code(),
            ErrorCode::kAlreadyExists);
  auto next = cat.create_table("after", TablespaceId{0}, 8, UserId{1});
  ASSERT_TRUE(next.is_ok());
  EXPECT_GT(next.value().value, 10u);
}

TEST(Catalog, TablesInTablespace) {
  Catalog cat;
  ASSERT_TRUE(
      cat.create_table("a", TablespaceId{1}, 8, UserId{1}).is_ok());
  ASSERT_TRUE(
      cat.create_table("b", TablespaceId{2}, 8, UserId{1}).is_ok());
  ASSERT_TRUE(
      cat.create_table("c", TablespaceId{1}, 8, UserId{1}).is_ok());
  EXPECT_EQ(cat.tables_in(TablespaceId{1}).size(), 2u);
  EXPECT_EQ(cat.tables_in(TablespaceId{2}).size(), 1u);
  EXPECT_EQ(cat.tables().size(), 3u);
}

TEST(Catalog, EncodeDecodeRoundtrip) {
  Catalog cat;
  auto user = cat.create_user("APP", false);
  ASSERT_TRUE(user.is_ok());
  ASSERT_TRUE(cat.create_user("DBA", true).is_ok());
  ASSERT_TRUE(cat.create_table("orders", TablespaceId{1}, 48, user.value(),
                               {{"o_id", ColumnType::kInt},
                                {"total", ColumnType::kDouble}})
                  .is_ok());
  auto nolog = cat.create_table("staging", TablespaceId{2}, 96, user.value());
  ASSERT_TRUE(nolog.is_ok());
  ASSERT_TRUE(cat.set_logging(nolog.value(), false).is_ok());

  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  cat.encode(enc);
  Decoder dec(buf);
  auto back = Catalog::decode(dec);
  ASSERT_TRUE(back.is_ok());

  EXPECT_EQ(back.value().users().size(), 2u);
  EXPECT_EQ(back.value().tables().size(), 2u);
  auto orders = back.value().find_table("orders");
  ASSERT_TRUE(orders.is_ok());
  EXPECT_EQ(orders.value()->columns.size(), 2u);
  EXPECT_EQ(orders.value()->columns[1].type, ColumnType::kDouble);
  EXPECT_FALSE(back.value().find_table("staging").value()->logging);

  // Id counters survive: new objects don't collide.
  auto next = back.value().create_table("new", TablespaceId{1}, 8,
                                        user.value());
  ASSERT_TRUE(next.is_ok());
  EXPECT_NE(next.value(), orders.value()->id);
  EXPECT_NE(next.value(), nolog.value());
}

TEST(Catalog, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3};
  Decoder dec(garbage);
  EXPECT_FALSE(Catalog::decode(dec).is_ok());
}

}  // namespace
}  // namespace vdb::catalog
