// Checkpoint/undo-snapshot interactions with crash recovery: transactions
// in flight *across* a checkpoint are the hard case for the recovery
// protocol — their pre-checkpoint changes are on disk and must be undone
// from the checkpoint record's snapshot.
#include <gtest/gtest.h>

#include "tests/test_env.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::small_db_config;

TEST(CheckpointSnapshot, InFlightTxnAtCheckpointIsUndoneAfterCrash) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  put_row(*db.db, db.table, "committed");

  // A transaction straddles a full checkpoint: its changes reach disk with
  // the checkpoint, but it never commits.
  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("straddler")).is_ok());
  ASSERT_TRUE(db.db->checkpoint_now().is_ok());
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("post-ckpt")).is_ok());
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  const auto rows = all_rows(*db2, db2->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"committed"}));
}

TEST(CheckpointSnapshot, TxnCommittedAfterCheckpointSurvives) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);

  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("survivor")).is_ok());
  ASSERT_TRUE(db.db->checkpoint_now().is_ok());
  ASSERT_TRUE(db.db->commit(txn.value()).is_ok());
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  const auto rows = all_rows(*db2, db2->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"survivor"}));
}

TEST(CheckpointSnapshot, UpdateStraddlingCheckpointRestoresBeforeImage) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  const RowId rid = put_row(*db.db, db.table, "original");

  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.db->update(txn.value(), db.table, rid, row("dirty")).is_ok());
  ASSERT_TRUE(db.db->checkpoint_now().is_ok());  // "dirty" reaches disk
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  const auto rows = all_rows(*db2, db2->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"original"}));
}

TEST(CheckpointSnapshot, MultipleCheckpointsAcrossOneTxn) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  put_row(*db.db, db.table, "base");

  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db.db->insert(txn.value(), db.table, row("x" + std::to_string(i)))
            .is_ok());
    ASSERT_TRUE(db.db->checkpoint_now().is_ok());
  }
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  const auto rows = all_rows(*db2, db2->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"base"}));
}

TEST(CheckpointSnapshot, PartialRollbackBeforeCrashCompletesAtRecovery) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  const RowId keep = put_row(*db.db, db.table, "keep");

  // Transaction does work, checkpoints happen mid-flight, then the txn
  // starts rolling back but the instance dies before the ABORT record.
  // (Simulate by crashing right after a checkpoint with the txn open; the
  // recovery undo path must cope with snapshot + post-snapshot records.)
  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.db->erase(txn.value(), db.table, keep).is_ok());
  ASSERT_TRUE(db.db->checkpoint_now().is_ok());
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("zombie")).is_ok());
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  const auto rows = all_rows(*db2, db2->table_id("accounts").value());
  EXPECT_EQ(rows, (std::vector<std::string>{"keep"}));  // delete undone
}

TEST(CheckpointSnapshot, CrashDuringIdlePeriodRecoversInstantly) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  put_row(*db.db, db.table, "x");
  ASSERT_TRUE(db.db->checkpoint_now().is_ok());
  const SimTime before = env.clock.now();
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  // Nothing to replay beyond the checkpoint: recovery is dominated by the
  // fixed instance-startup cost.
  EXPECT_LT(env.clock.now() - before,
            cfg.cost.instance_startup + 5 * kSecond);
}

}  // namespace
}  // namespace vdb::engine
