#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table_printer.hpp"
#include "common/types.hpp"

namespace vdb {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = make_error(ErrorCode::kMediaFailure, "file gone");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kMediaFailure);
  EXPECT_EQ(st.to_string(), "MediaFailure: file gone");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status{ErrorCode::kNotFound, "nope"};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

Result<int> helper_returning(int v, bool fail) {
  if (fail) return Status{ErrorCode::kInvalidArgument, "fail"};
  return v;
}

Status uses_assign_or_return(bool fail, int* out) {
  VDB_ASSIGN_OR_RETURN(int v, helper_returning(7, fail));
  *out = v;
  return Status::ok();
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(uses_assign_or_return(false, &out).is_ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(uses_assign_or_return(true, &out).code(),
            ErrorCode::kInvalidArgument);
}

TEST(StrongId, DistinctAndComparable) {
  FileId a{1}, b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_FALSE(FileId::invalid().valid());
  EXPECT_TRUE(a.valid());
}

TEST(PageIdRowId, HashAndCompare) {
  std::set<PageId> pages;
  pages.insert(PageId{FileId{1}, 5});
  pages.insert(PageId{FileId{1}, 5});
  pages.insert(PageId{FileId{2}, 5});
  EXPECT_EQ(pages.size(), 2u);
  RowId r1{PageId{FileId{1}, 5}, 3};
  RowId r2{PageId{FileId{1}, 5}, 4};
  EXPECT_LT(r1, r2);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(1500 * kMillisecond), 1.5);
  EXPECT_EQ(from_seconds(2.5), 2500 * kMillisecond);
  EXPECT_EQ(format_duration(1500 * kMillisecond), "1.500s");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
  // Degenerate range.
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NurandStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.nurand(255, 1, 3000, 123);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Rng, NurandIsSkewed) {
  // NURand concentrates mass: some values must appear far more often than
  // the uniform expectation.
  Rng rng(19);
  std::map<std::int64_t, int> hist;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hist[rng.nurand(255, 0, 999, 42)] += 1;
  int max_count = 0;
  for (const auto& [v, c] : hist) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3 * n / 1000);  // > 3x uniform frequency
}

TEST(Rng, StringHelpers) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const std::string a = rng.alnum_string(5, 10);
    EXPECT_GE(a.size(), 5u);
    EXPECT_LE(a.size(), 10u);
    const std::string d = rng.digit_string(4, 4);
    EXPECT_EQ(d.size(), 4u);
    for (char c : d) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  // Streams should diverge.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Codec, PrimitiveRoundtrip) {
  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  enc.put_u8(200);
  enc.put_u16(50000);
  enc.put_u32(4000000000u);
  enc.put_u64(~0ull - 5);
  enc.put_i64(-123456789);
  enc.put_double(3.25);
  enc.put_string("hello");
  enc.put_string("");

  Decoder dec(buf);
  EXPECT_EQ(dec.get_u8().value(), 200);
  EXPECT_EQ(dec.get_u16().value(), 50000);
  EXPECT_EQ(dec.get_u32().value(), 4000000000u);
  EXPECT_EQ(dec.get_u64().value(), ~0ull - 5);
  EXPECT_EQ(dec.get_i64().value(), -123456789);
  EXPECT_DOUBLE_EQ(dec.get_double().value(), 3.25);
  EXPECT_EQ(dec.get_string().value(), "hello");
  EXPECT_EQ(dec.get_string().value(), "");
  EXPECT_TRUE(dec.done());
}

TEST(Codec, TruncationDetected) {
  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  enc.put_u64(1);
  Decoder dec(std::span<const std::uint8_t>(buf).subspan(0, 4));
  EXPECT_EQ(dec.get_u64().code(), ErrorCode::kCorruption);
}

TEST(Codec, TruncatedBlobDetected) {
  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  enc.put_string("hello world");
  buf.resize(buf.size() - 3);
  Decoder dec(buf);
  EXPECT_EQ(dec.get_string().code(), ErrorCode::kCorruption);
}

TEST(Codec, RandomBlobsRoundtrip) {
  Rng rng(37);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> blob(
        static_cast<size_t>(rng.uniform(0, 300)));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    std::vector<std::uint8_t> buf;
    Encoder enc(&buf);
    enc.put_bytes(blob);
    Decoder dec(buf);
    EXPECT_EQ(dec.get_bytes().value(), blob);
  }
}

TEST(Crc32c, KnownProperties) {
  const std::vector<std::uint8_t> a{'a', 'b', 'c'};
  const std::vector<std::uint8_t> b{'a', 'b', 'd'};
  EXPECT_EQ(crc32c(a), crc32c(a));
  EXPECT_NE(crc32c(a), crc32c(b));
  EXPECT_NE(crc32c(a), crc32c({}));
}

TEST(TablePrinter, RendersAlignedTable) {
  TablePrinter t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(1000.0, 0), "1000");
}

}  // namespace
}  // namespace vdb
