// Transaction coordinator and concurrency-control tests, built as a
// separate binary (label: concurrency) so the cc-stress CI job can run
// exactly this suite under ThreadSanitizer.
//
// Covers: serial equivalence at workers=1, the 2PL vs OCC conflict matrix
// through the plug-in contract, wait-die deadlock freedom under an 8-thread
// stress load, throughput scaling, and crash-during-concurrent-execution
// recovery — including the byte-identical replay at 1 vs 4 redo jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "benchmark/experiment.hpp"
#include "txn/coordinator.hpp"

namespace vdb::bench {
namespace {

ExperimentOptions cc_options() {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
  opts.duration = 4 * kMinute;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 100;
  opts.scale.items = 1000;
  opts.scale.initial_orders_per_district = 100;
  opts.seed = 4242;
  return opts;
}

faults::FaultSpec crash_at(SimDuration at) {
  faults::FaultSpec spec;
  spec.type = faults::FaultType::kShutdownAbort;
  spec.inject_at = at;
  spec.tablespace = "TPCC";
  spec.table = "history";
  return spec;
}

TxnId tid(std::uint64_t n) { return TxnId{n}; }

txn::LockTarget target(std::uint32_t n) {
  return txn::LockTarget::for_row(TableId{1},
                                  RowId{PageId{FileId{1}, n}, 0});
}

// --- serial equivalence ----------------------------------------------------

TEST(Coordinator, WorkersOneIsByteIdenticalToSerialDriver) {
  auto base = Experiment(cc_options()).run();
  ASSERT_TRUE(base.is_ok()) << base.status().to_string();
  for (const txn::CcProtocol protocol :
       {txn::CcProtocol::k2pl, txn::CcProtocol::kOcc}) {
    ExperimentOptions opts = cc_options();
    opts.workers = 1;
    opts.cc_protocol = protocol;
    auto r = Experiment(opts).run();
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r.value().committed, base.value().committed)
        << txn::to_string(protocol);
    EXPECT_EQ(r.value().tpmc, base.value().tpmc) << txn::to_string(protocol);
    EXPECT_EQ(r.value().redo_bytes, base.value().redo_bytes)
        << txn::to_string(protocol);
    EXPECT_EQ(r.value().cc_aborts, 0u);
    EXPECT_EQ(r.value().cc_retries, 0u);
    EXPECT_EQ(r.value().workers, 1u);
  }
}

// --- the conflict matrix through the plug-in contract ----------------------

TEST(ConcurrencyControl, TwoPlSharedReadersCoexist) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::k2pl);
  EXPECT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  EXPECT_TRUE(cc->mediate(tid(2), target(1), txn::AccessMode::kRead, true).is_ok());
  cc->end(tid(1), true);
  cc->end(tid(2), true);
  EXPECT_EQ(cc->stats().committed, 2u);
  EXPECT_EQ(cc->stats().wait_die_aborts, 0u);
}

TEST(ConcurrencyControl, TwoPlYoungerWriterDies) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::k2pl);
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kWrite, true).is_ok());
  // Younger (larger id) requester vs older holder: dies, never waits.
  auto st = cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, true);
  EXPECT_EQ(st.code(), ErrorCode::kDeadlock);
  // Shared request conflicts with the exclusive holder the same way.
  EXPECT_EQ(cc->mediate(tid(2), target(1), txn::AccessMode::kRead, true).code(),
            ErrorCode::kDeadlock);
  cc->end(tid(1), true);
  cc->end(tid(2), false);
  EXPECT_EQ(cc->stats().wait_die_aborts, 2u);
}

TEST(ConcurrencyControl, TwoPlOlderWriterWaitsForYoungerRelease) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::k2pl);
  ASSERT_TRUE(cc->mediate(tid(5), target(1), txn::AccessMode::kWrite, true).is_ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    // Txn 2 is older than holder 5: allowed to block until 5 resolves.
    ASSERT_TRUE(
        cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, true).is_ok());
    acquired.store(true);
    cc->end(tid(2), true);
  });
  // Wait until txn 2 is inside mediate. stats() needs the protocol mutex,
  // which mediate holds from entry until its condition-variable wait — so
  // once begun reads 2, the older transaction is already blocked.
  while (cc->stats().begun < 2) std::this_thread::yield();
  cc->end(tid(5), true);
  older.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(cc->stats().committed, 2u);
  EXPECT_GE(cc->stats().lock_waits, 1u);
}

TEST(ConcurrencyControl, TwoPlNonWaitableRequestDiesInsteadOfBlocking) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::k2pl);
  ASSERT_TRUE(cc->mediate(tid(5), target(1), txn::AccessMode::kWrite, true).is_ok());
  // Older than the holder but may_wait=false (the insert path): dies.
  EXPECT_EQ(cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, false).code(),
            ErrorCode::kDeadlock);
  cc->end(tid(5), true);
  cc->end(tid(2), false);
}

TEST(ConcurrencyControl, OccStaleReadFailsValidation) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::kOcc);
  // Txn 1 reads the row, then txn 2 writes and commits it.
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  ASSERT_TRUE(cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, true).is_ok());
  ASSERT_TRUE(cc->validate(tid(2)).is_ok());
  cc->publish(tid(2));
  cc->end(tid(2), true);
  // Txn 1's read set is now stale: commit-time validation must fail.
  EXPECT_EQ(cc->validate(tid(1)).code(), ErrorCode::kTxnAborted);
  cc->end(tid(1), false);
  EXPECT_EQ(cc->stats().occ_validate_fails, 1u);
}

TEST(ConcurrencyControl, OccWriteAfterStaleReadDiesEarly) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::kOcc);
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  ASSERT_TRUE(cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, true).is_ok());
  ASSERT_TRUE(cc->validate(tid(2)).is_ok());
  cc->publish(tid(2));
  cc->end(tid(2), true);
  // Read-modify-write on a version that moved: dies at the write, before
  // any redo/undo is generated for doomed work.
  EXPECT_EQ(cc->mediate(tid(1), target(1), txn::AccessMode::kWrite, true).code(),
            ErrorCode::kTxnAborted);
  cc->end(tid(1), false);
  EXPECT_EQ(cc->stats().occ_validate_fails, 1u);
}

TEST(ConcurrencyControl, OccReadersDoNotBlockEachOtherOrValidationWithoutWriters) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::kOcc);
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  ASSERT_TRUE(cc->mediate(tid(2), target(1), txn::AccessMode::kRead, true).is_ok());
  EXPECT_TRUE(cc->validate(tid(1)).is_ok());
  EXPECT_TRUE(cc->validate(tid(2)).is_ok());
  cc->end(tid(1), true);
  cc->end(tid(2), true);
  EXPECT_EQ(cc->stats().occ_validate_fails, 0u);
  EXPECT_EQ(cc->stats().wait_die_aborts, 0u);
}

TEST(ConcurrencyControl, OccReadOverlappingAbortedWriterFailsValidation) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::kOcc);
  // Txn 1 stamps its read, then txn 2 write-locks the row and ABORTS.
  // The stamp is taken in mediate but the bytes are read later under the
  // engine latch, so txn 1 may have seen txn 2's in-place bytes before
  // the rollback undid them: validation must fail even though no commit
  // ever moved the row.
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  ASSERT_TRUE(cc->mediate(tid(2), target(1), txn::AccessMode::kWrite, true).is_ok());
  cc->end(tid(2), false);
  EXPECT_EQ(cc->validate(tid(1)).code(), ErrorCode::kTxnAborted);
  cc->end(tid(1), false);
  EXPECT_EQ(cc->stats().occ_validate_fails, 1u);
}

TEST(ConcurrencyControl, OwnWriteThenReadNeedsNoVersionCheck) {
  auto cc = txn::make_concurrency_control(txn::CcProtocol::kOcc);
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kWrite, true).is_ok());
  ASSERT_TRUE(cc->mediate(tid(1), target(1), txn::AccessMode::kRead, true).is_ok());
  EXPECT_TRUE(cc->validate(tid(1)).is_ok());
  cc->publish(tid(1));
  cc->end(tid(1), true);
  EXPECT_EQ(cc->stats().committed, 1u);
}

// --- wait-die deadlock freedom under stress --------------------------------

// 8 threads x 200 transactions over 8 hot rows, each transaction locking a
// random subset in a random order — the classic deadlock recipe. Wait-die
// must resolve every conflict (by blocking or by aborting the younger);
// the ctest TIMEOUT property converts a lost wakeup or cycle into a
// failure. Run for both protocols: OCC's writer locks use the same table.
class WaitDieStress : public ::testing::TestWithParam<txn::CcProtocol> {};

TEST_P(WaitDieStress, NoDeadlockAndNoLostTransactions) {
  auto cc = txn::make_concurrency_control(GetParam());
  constexpr unsigned kThreads = 8;
  constexpr unsigned kTxnsPerThread = 200;
  constexpr std::uint32_t kRows = 8;
  std::atomic<std::uint64_t> next_txn{1};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t * 7919u + 17u);
      for (unsigned i = 0; i < kTxnsPerThread; ++i) {
        const TxnId txn = tid(next_txn.fetch_add(1));
        const unsigned locks = 2 + rng() % 3;
        bool ok = true;
        for (unsigned j = 0; j < locks && ok; ++j) {
          const auto mode = (rng() % 2 == 0) ? txn::AccessMode::kRead
                                             : txn::AccessMode::kWrite;
          ok = cc->mediate(txn, target(rng() % kRows), mode, true).is_ok();
        }
        cc->end(txn, ok);
        (ok ? committed : aborted).fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const txn::CcStats stats = cc->stats();
  EXPECT_EQ(committed.load() + aborted.load(), kThreads * kTxnsPerThread);
  EXPECT_EQ(stats.begun, kThreads * kTxnsPerThread);
  EXPECT_EQ(stats.committed, committed.load());
  EXPECT_EQ(stats.aborts, aborted.load());
  EXPECT_GT(committed.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, WaitDieStress,
                         ::testing::Values(txn::CcProtocol::k2pl,
                                           txn::CcProtocol::kOcc),
                         [](const auto& info) {
                           return std::string(txn::to_string(info.param));
                         });

// --- the worker pool -------------------------------------------------------

TEST(Coordinator, RoundBarrierRunsEveryWorkerEachRound) {
  txn::TxnCoordinator::Config cfg;
  cfg.workers = 4;
  txn::TxnCoordinator coord(cfg);
  ASSERT_EQ(coord.workers(), 4u);
  std::atomic<unsigned> calls{0};
  for (int round = 0; round < 10; ++round) {
    coord.run_round([&](unsigned) { calls.fetch_add(1); });
  }
  EXPECT_EQ(calls.load(), 40u);
}

// --- end-to-end concurrent workload ----------------------------------------

TEST(Coordinator, ThroughputScalesFaultFree) {
  ExperimentOptions one = cc_options();
  ExperimentOptions four = cc_options();
  four.workers = 4;
  auto r1 = Experiment(one).run();
  auto r4 = Experiment(four).run();
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  ASSERT_TRUE(r4.is_ok()) << r4.status().to_string();
  EXPECT_EQ(r4.value().integrity_violations, 0u);
  // Four workers model four processors; even with single-warehouse
  // contention the makespan rounds must beat the serial loop clearly.
  EXPECT_GT(r4.value().tpmc, r1.value().tpmc * 1.3);
  EXPECT_GT(r4.value().committed, r1.value().committed);
}

class CrashUnderLoad : public ::testing::TestWithParam<txn::CcProtocol> {};

TEST_P(CrashUnderLoad, RecoversWithZeroViolations) {
  ExperimentOptions opts = cc_options();
  opts.workers = 4;
  opts.cc_protocol = GetParam();
  opts.fault = crash_at(100 * kSecond);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ExperimentResult& r = result.value();
  EXPECT_TRUE(r.fault_injected);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.recovery_complete);
  // Group commit made every acknowledged commit durable before the crash:
  // instance recovery must lose nothing and violate nothing, exactly as in
  // the serial experiments.
  EXPECT_EQ(r.lost_committed, 0u);
  EXPECT_EQ(r.integrity_violations, 0u);
  EXPECT_GT(r.committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, CrashUnderLoad,
                         ::testing::Values(txn::CcProtocol::k2pl,
                                           txn::CcProtocol::kOcc),
                         [](const auto& info) {
                           return std::string(txn::to_string(info.param));
                         });

TEST(Coordinator, CrashRecoveryIdenticalAtReplayJobsOneAndFour) {
  // The partitioned replay promises byte-identical results at any job
  // count. Serial execution is the deterministic probe: the same crash
  // replayed by 1 and by 4 workers must land on the same state. (A
  // concurrent forward run is not reproducible — wait-die outcomes depend
  // on physical thread interleaving — so the workers=4 case is covered by
  // the invariant check below, not by equality.)
  auto run_serial_with_jobs = [](const char* jobs) {
    setenv("VDB_JOBS", jobs, 1);
    ExperimentOptions opts = cc_options();
    opts.fault = crash_at(100 * kSecond);
    auto result = Experiment(opts).run();
    unsetenv("VDB_JOBS");
    return result;
  };
  auto r1 = run_serial_with_jobs("1");
  auto r4 = run_serial_with_jobs("4");
  ASSERT_TRUE(r1.is_ok()) << r1.status().to_string();
  ASSERT_TRUE(r4.is_ok()) << r4.status().to_string();
  EXPECT_EQ(r1.value().committed, r4.value().committed);
  EXPECT_EQ(r1.value().redo_bytes, r4.value().redo_bytes);
  EXPECT_EQ(r1.value().lost_committed, r4.value().lost_committed);
  EXPECT_EQ(r1.value().integrity_violations, 0u);
  EXPECT_EQ(r4.value().integrity_violations, 0u);
  EXPECT_EQ(r1.value().tpmc, r4.value().tpmc);

  // Crash mid-concurrent-run is the hardest input the replay sees (redo
  // staged by four workers through the shared arena): the run itself is
  // not reproducible, but every replay of it must satisfy the full
  // consistency battery whatever the job count.
  auto run_concurrent_with_jobs = [](const char* jobs) {
    setenv("VDB_JOBS", jobs, 1);
    ExperimentOptions opts = cc_options();
    opts.workers = 4;
    opts.fault = crash_at(100 * kSecond);
    auto result = Experiment(opts).run();
    unsetenv("VDB_JOBS");
    return result;
  };
  for (const char* jobs : {"1", "4"}) {
    auto result = run_concurrent_with_jobs(jobs);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_TRUE(result.value().recovered) << "replay jobs " << jobs;
    EXPECT_EQ(result.value().lost_committed, 0u) << "replay jobs " << jobs;
    EXPECT_EQ(result.value().integrity_violations, 0u)
        << "replay jobs " << jobs;
  }
}

}  // namespace
}  // namespace vdb::bench
