// Storage-fault faultload: verify-on-read (CRC32C on every fetch miss),
// bounded I/O retry with simulated-clock backoff, and online block media
// recovery (the RMAN BLOCKRECOVER analogue). Covers the full chain from a
// silent on-disk bit flip to a repaired block under live TPC-C load.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchmark/experiment.hpp"
#include "faults/extended_faults.hpp"
#include "recovery/backup.hpp"
#include "recovery/recovery_manager.hpp"
#include "storage/page.hpp"
#include "tests/test_env.hpp"

namespace vdb::recovery {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::row_str;
using testing::small_db_config;

class CorruptionTest : public ::testing::Test {
 protected:
  SimEnv env_;
  engine::DatabaseConfig cfg_ = small_db_config(/*archive=*/true);
  std::unique_ptr<SmallDb> db_;
  std::unique_ptr<BackupManager> backups_;
  std::unique_ptr<RecoveryManager> rm_;

  void SetUp() override {
    db_ = std::make_unique<SmallDb>(env_, cfg_);
    backups_ = std::make_unique<BackupManager>(&env_.host.fs(), "/backup");
    rm_ = std::make_unique<RecoveryManager>(&env_.host, &env_.sched,
                                            backups_.get());
  }

  engine::Database& db() { return *db_->db; }
  TableId table() { return db_->table; }
  sim::SimFs& fs() { return env_.host.fs(); }

  /// Verify every live datafile and repair each bad block online; returns
  /// the number of blocks repaired (the post-recovery hook used below).
  Result<std::uint64_t> repair_all(engine::Database& d) {
    std::uint64_t repaired = 0;
    std::vector<PageId> bad;
    for (const auto& file : d.storage().files()) {
      if (file.dropped || file.status == storage::FileStatus::kMissing) {
        continue;
      }
      auto report = d.storage().verify_file(file.id);
      if (!report.is_ok()) return report.status();
      for (const auto& block : report.value().bad) bad.push_back(block.page);
    }
    for (PageId pid : bad) {
      auto rep = rm_->recover_block(d, pid);
      if (!rep.is_ok()) return rep.status();
      repaired += rep.value().blocks_restored;
    }
    return repaired;
  }
};

// A silent bit flip on disk is caught by the CRC32C check at the next fetch
// miss, with the path, offset, and both checksums in the error message.
TEST_F(CorruptionTest, ChecksumMismatchDetectedOnFetchMiss) {
  RowId rid = put_row(db(), table(), "victim");
  for (int i = 0; i < 20; ++i) put_row(db(), table(), "filler");
  ASSERT_TRUE(db().checkpoint_now().is_ok());
  db().storage().cache().discard_all();

  ASSERT_TRUE(fs().flip_bits("/data/users01.dbf",
                             static_cast<std::uint64_t>(rid.page.block) *
                                     storage::Page::kSize +
                                 64,
                             16, /*seed=*/7)
                  .is_ok());

  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  auto read = db().read(txn.value(), table(), rid);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), ErrorCode::kCorruption);
  EXPECT_NE(read.status().message().find("checksum mismatch"),
            std::string::npos)
      << read.status().to_string();
  EXPECT_NE(read.status().message().find("/data/users01.dbf"),
            std::string::npos);
  EXPECT_NE(read.status().message().find("expected crc32c="),
            std::string::npos);
  ASSERT_TRUE(db().rollback(txn.value()).is_ok());

  ASSERT_EQ(db().storage().corrupt_blocks().size(), 1u);
  EXPECT_EQ(db().storage().corrupt_blocks().front(), rid.page);
}

// Online block media recovery restores the damaged block from the backup
// and rolls it forward; the result is byte-identical whatever the replay
// worker count (the partitioned-apply determinism guarantee).
std::vector<std::uint8_t> recovered_block_bytes(unsigned replay_jobs) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config(/*archive=*/true);
  cfg.replay_jobs = replay_jobs;
  SmallDb small(env, cfg);
  BackupManager backups(&env.host.fs(), "/backup");
  RecoveryManager rm(&env.host, &env.sched, &backups);

  VDB_CHECK(backups.take_backup(*small.db).is_ok());
  RowId mid{};
  for (int i = 0; i < 300; ++i) {
    RowId rid = put_row(*small.db, small.table, "r" + std::to_string(i));
    if (i == 150) mid = rid;
  }
  VDB_CHECK(small.db->checkpoint_now().is_ok());

  const std::string path = "/data/users01.dbf";
  VDB_CHECK(env.host.fs()
                .flip_bits(path,
                           static_cast<std::uint64_t>(mid.page.block) *
                                   storage::Page::kSize +
                               64,
                           32, /*seed=*/9)
                .is_ok());

  auto report = rm.recover_block(*small.db, mid.page);
  VDB_CHECK_MSG(report.is_ok(), report.status().to_string());
  VDB_CHECK(report.value().complete);
  VDB_CHECK(report.value().blocks_restored == 1);

  // All 301 rows (one from SmallDb setup path excluded — 300 inserted) are
  // intact, including the one on the repaired block.
  auto txn = small.db->begin();
  VDB_CHECK(txn.is_ok());
  auto back = small.db->read(txn.value(), small.table, mid);
  VDB_CHECK_MSG(back.is_ok(), back.status().to_string());
  VDB_CHECK(row_str(back.value()) == "r150");
  VDB_CHECK(small.db->commit(txn.value()).is_ok());

  auto bytes = env.host.fs().read(
      path,
      static_cast<std::uint64_t>(mid.page.block) * storage::Page::kSize,
      storage::Page::kSize, sim::IoMode::kForeground);
  VDB_CHECK(bytes.is_ok());
  return bytes.value();
}

TEST(BlockRecovery, ByteIdenticalAcrossReplayJobCounts) {
  EXPECT_EQ(recovered_block_bytes(1), recovered_block_bytes(4));
}

// A torn page write at crash time: the flush persists only the first 512
// bytes (one sector), the instance dies, and instance recovery alone cannot
// fix the block (replay starts past the tearing checkpoint). The
// post-recovery hook repairs it from the backup before the rebuild scan
// reads it.
TEST_F(CorruptionTest, TornWriteAtCrashRepairedDuringStartup) {
  std::vector<RowId> rids;
  for (int i = 0; i < 30; ++i) {
    rids.push_back(put_row(db(), table(), "orig" + std::to_string(i)));
  }
  ASSERT_TRUE(backups_->take_backup(db()).is_ok());
  ASSERT_TRUE(db().checkpoint_now().is_ok());

  // Update a row that lives past byte 512 of its page so the lost tail of
  // the torn write actually carries changed bytes.
  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(
      db().update(txn.value(), table(), rids[20], row("updated")).is_ok());
  ASSERT_TRUE(db().commit(txn.value()).is_ok());

  ASSERT_TRUE(fs().tear_next_write("/data/users01.dbf", 512).is_ok());
  ASSERT_TRUE(db().checkpoint_now().is_ok());  // the tear fires here
  ASSERT_TRUE(db().shutdown_abort().is_ok());

  auto fresh =
      std::make_unique<engine::Database>(&env_.host, &env_.sched, cfg_);
  std::uint64_t repaired = 0;
  fresh->set_post_recovery_hook([&](engine::Database& d) -> Status {
    auto n = repair_all(d);
    if (!n.is_ok()) return n.status();
    repaired = n.value();
    return Status::ok();
  });
  ASSERT_TRUE(fresh->startup().is_ok());
  EXPECT_EQ(repaired, 1u);

  auto txn2 = fresh->begin();
  ASSERT_TRUE(txn2.is_ok());
  auto back = fresh->read(txn2.value(), table(), rids[20]);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(row_str(back.value()), "updated");
  ASSERT_TRUE(fresh->commit(txn2.value()).is_ok());
  EXPECT_EQ(all_rows(*fresh, table()).size(), 30u);

  // Nothing left for DBVERIFY to complain about.
  auto verify = fresh->storage().verify_file(FileId{0});
  ASSERT_TRUE(verify.is_ok());
  EXPECT_TRUE(verify.value().bad.empty());
}

// A transient error window shorter than the retry backoff is absorbed: the
// first attempt fails, the 2 ms backoff outlives the glitch, the retry
// succeeds, and the caller never sees an error.
TEST_F(CorruptionTest, TransientErrorAbsorbedByRetry) {
  RowId rid = put_row(db(), table(), "steady");
  ASSERT_TRUE(db().checkpoint_now().is_ok());
  db().storage().cache().discard_all();

  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  fs().inject_transient_errors("/data/users01.dbf",
                               env_.clock.now() + 1 * kMillisecond,
                               /*probability=*/1.0, /*seed=*/11);
  auto read = db().read(txn.value(), table(), rid);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(row_str(read.value()), "steady");
  ASSERT_TRUE(db().commit(txn.value()).is_ok());

  EXPECT_EQ(db().storage().retry_stats().retries, 1u);
  EXPECT_EQ(db().storage().retry_stats().exhausted, 0u);
}

// A glitch that outlives the whole retry budget surfaces as kTransientIo
// with the exhaustion count in the message — and clears cleanly once the
// device recovers.
TEST_F(CorruptionTest, TransientRetryExhaustionSurfacesCleanly) {
  RowId rid = put_row(db(), table(), "steady");
  ASSERT_TRUE(db().checkpoint_now().is_ok());
  db().storage().cache().discard_all();

  auto txn = db().begin();
  ASSERT_TRUE(txn.is_ok());
  fs().inject_transient_errors("/data/users01.dbf",
                               env_.clock.now() + 60 * kMinute,
                               /*probability=*/1.0, /*seed=*/11);
  auto read = db().read(txn.value(), table(), rid);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), ErrorCode::kTransientIo);
  EXPECT_NE(read.status().message().find("retries exhausted"),
            std::string::npos)
      << read.status().to_string();
  ASSERT_TRUE(db().rollback(txn.value()).is_ok());
  EXPECT_EQ(db().storage().retry_stats().exhausted, 1u);
  EXPECT_EQ(db().storage().retry_stats().retries, 3u);

  // No damage: once the device recovers, the same read succeeds.
  fs().clear_transient_errors();
  auto txn2 = db().begin();
  ASSERT_TRUE(txn2.is_ok());
  auto again = db().read(txn2.value(), table(), rid);
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_EQ(row_str(again.value()), "steady");
  ASSERT_TRUE(db().commit(txn2.value()).is_ok());
  EXPECT_TRUE(db().storage().corrupt_blocks().empty());
}

// ---- Experiment-level: the faultload under live TPC-C. ----

bench::ExperimentOptions tpcc_options() {
  bench::ExperimentOptions opts;
  opts.config = bench::RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
  opts.archive_mode = true;
  opts.duration = 4 * kMinute;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 100;
  opts.scale.items = 1000;
  opts.scale.initial_orders_per_district = 100;
  opts.seed = 4242;
  opts.storage_inject_at = 100 * kSecond;
  return opts;
}

// Single-page silent corruption under live load: detected at the fetch
// miss, repaired online (no datafile offline, no full restore), zero lost
// transactions, zero integrity violations.
TEST(CorruptionExperiment, OnlineBlockRepairUnderLiveLoad) {
  bench::ExperimentOptions opts = tpcc_options();
  faults::ExtendedFaultSpec spec;
  spec.type = faults::ExtendedFaultType::kSilentPageCorruption;
  spec.tablespace = "TPCC";
  spec.datafile_index = 0;
  spec.page_block = 0;  // the warehouse page — every transaction reads it
  opts.storage_fault = spec;

  auto result = bench::Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const bench::ExperimentResult& r = result.value();
  EXPECT_TRUE(r.fault_injected);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.recovery_complete);
  EXPECT_EQ(r.bad_blocks_found, 1u);
  EXPECT_EQ(r.blocks_repaired, 1u);
  EXPECT_EQ(r.lost_committed, 0u);
  EXPECT_EQ(r.integrity_violations, 0u);
  EXPECT_GT(r.recovery_time, 0u);
}

// A transient glitch below the retry budget costs retries, not
// transactions: the workload never sees an error and nothing is damaged.
TEST(CorruptionExperiment, TransientGlitchBelowBudgetAbsorbed) {
  bench::ExperimentOptions opts = tpcc_options();
  faults::ExtendedFaultSpec spec;
  spec.type = faults::ExtendedFaultType::kTransientIoErrors;
  spec.tablespace = "TPCC";
  spec.datafile_index = 0;
  spec.error_window = 10 * kSecond;
  spec.error_probability = 0.05;
  opts.storage_fault = spec;

  auto result = bench::Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const bench::ExperimentResult& r = result.value();
  EXPECT_TRUE(r.fault_injected);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.failed_attempts, 0u);
  EXPECT_GT(r.io_retries, 0u);
  EXPECT_EQ(r.io_retry_exhausted, 0u);
  EXPECT_GT(r.transient_errors, 0u);
  EXPECT_EQ(r.bad_blocks_found, 0u);
  EXPECT_EQ(r.lost_committed, 0u);
  EXPECT_EQ(r.integrity_violations, 0u);
}

}  // namespace
}  // namespace vdb::recovery
