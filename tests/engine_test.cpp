#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "engine/control_file.hpp"
#include "tests/test_env.hpp"

namespace vdb::engine {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::all_rows;
using testing::put_row;
using testing::row;
using testing::row_str;
using testing::small_db_config;

TEST(Engine, CreateOpensDatabase) {
  SimEnv env;
  SmallDb db(env);
  EXPECT_TRUE(db.db->is_open());
  EXPECT_EQ(db.db->state(), InstanceState::kOpen);
}

TEST(Engine, InsertReadCommit) {
  SimEnv env;
  SmallDb db(env);
  const RowId rid = put_row(*db.db, db.table, "hello");
  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  auto back = db.db->read(txn.value(), db.table, rid);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(row_str(back.value()), "hello");
  ASSERT_TRUE(db.db->commit(txn.value()).is_ok());
}

TEST(Engine, CommitReturnsIncreasingLsns) {
  SimEnv env;
  SmallDb db(env);
  auto t1 = db.db->begin();
  ASSERT_TRUE(db.db->insert(t1.value(), db.table, row("a")).is_ok());
  auto l1 = db.db->commit(t1.value());
  auto t2 = db.db->begin();
  ASSERT_TRUE(db.db->insert(t2.value(), db.table, row("b")).is_ok());
  auto l2 = db.db->commit(t2.value());
  ASSERT_TRUE(l1.is_ok());
  ASSERT_TRUE(l2.is_ok());
  EXPECT_LT(l1.value(), l2.value());
}

TEST(Engine, ReadOnlyCommitHasNoLsn) {
  SimEnv env;
  SmallDb db(env);
  const RowId rid = put_row(*db.db, db.table, "x");
  auto txn = db.db->begin();
  ASSERT_TRUE(db.db->read(txn.value(), db.table, rid).is_ok());
  auto lsn = db.db->commit(txn.value());
  ASSERT_TRUE(lsn.is_ok());
  EXPECT_EQ(lsn.value(), 0u);
}

TEST(Engine, RollbackUndoesEverything) {
  SimEnv env;
  SmallDb db(env);
  const RowId keep = put_row(*db.db, db.table, "keep");

  auto txn = db.db->begin();
  ASSERT_TRUE(txn.is_ok());
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("tmp1")).is_ok());
  ASSERT_TRUE(db.db->update(txn.value(), db.table, keep, row("mutated")).is_ok());
  ASSERT_TRUE(db.db->erase(txn.value(), db.table, keep).is_ok());
  ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());

  const auto rows = all_rows(*db.db, db.table);
  EXPECT_EQ(rows, (std::vector<std::string>{"keep"}));
}

TEST(Engine, RowTooLargeRejected) {
  SimEnv env;
  SmallDb db(env);
  auto txn = db.db->begin();
  std::vector<std::uint8_t> huge(1000);
  EXPECT_EQ(db.db->insert(txn.value(), db.table, huge).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());
}

TEST(Engine, ObserversSeeChangesIncludingRollback) {
  SimEnv env;
  SmallDb db(env);
  std::vector<std::string> events;
  db.db->register_observer(db.table, [&](const RowChange& change) {
    switch (change.kind) {
      case RowChange::Kind::kInsert: events.push_back("ins"); break;
      case RowChange::Kind::kUpdate: events.push_back("upd"); break;
      case RowChange::Kind::kDelete: events.push_back("del"); break;
    }
  });
  auto txn = db.db->begin();
  ASSERT_TRUE(db.db->insert(txn.value(), db.table, row("a")).is_ok());
  ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());
  EXPECT_EQ(events, (std::vector<std::string>{"ins", "del"}));
}

TEST(Engine, DropTableRemovesAccess) {
  SimEnv env;
  SmallDb db(env);
  put_row(*db.db, db.table, "x");
  ASSERT_TRUE(db.db->drop_table("accounts").is_ok());
  auto txn = db.db->begin();
  EXPECT_EQ(db.db->insert(txn.value(), db.table, row("y")).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(db.db->table_id("accounts").code(), ErrorCode::kNotFound);
}

TEST(Engine, TablespaceOfflineBlocksDml) {
  SimEnv env;
  SmallDb db(env);
  const RowId rid = put_row(*db.db, db.table, "x");
  ASSERT_TRUE(db.db->alter_tablespace_offline("USERS").is_ok());
  auto txn = db.db->begin();
  EXPECT_FALSE(db.db->read(txn.value(), db.table, rid).is_ok());
  ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());
  // OFFLINE NORMAL: comes back without recovery.
  ASSERT_TRUE(db.db->alter_tablespace_online("USERS").is_ok());
  auto txn2 = db.db->begin();
  EXPECT_TRUE(db.db->read(txn2.value(), db.table, rid).is_ok());
  ASSERT_TRUE(db.db->commit(txn2.value()).is_ok());
}

TEST(Engine, CleanShutdownAndStartup) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  std::vector<std::string> expect;
  {
    SmallDb db(env, cfg);
    for (int i = 0; i < 50; ++i) {
      expect.push_back("row" + std::to_string(i));
      put_row(*db.db, db.table, expect.back());
    }
    ASSERT_TRUE(db.db->shutdown().is_ok());
    EXPECT_FALSE(db.db->is_open());
  }
  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  auto table = db2->table_id("accounts");
  ASSERT_TRUE(table.is_ok());
  auto rows = all_rows(*db2, table.value());
  std::sort(rows.begin(), rows.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(rows, expect);
}

TEST(Engine, CrashRecoveryPreservesCommitted) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  for (int i = 0; i < 100; ++i) {
    put_row(*db.db, db.table, "c" + std::to_string(i));
  }
  // One uncommitted transaction dies with the instance.
  auto doomed = db.db->begin();
  ASSERT_TRUE(db.db->insert(doomed.value(), db.table, row("doomed")).is_ok());
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());
  EXPECT_EQ(db.db->state(), InstanceState::kCrashed);

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  auto table = db2->table_id("accounts");
  ASSERT_TRUE(table.is_ok());
  const auto rows = all_rows(*db2, table.value());
  EXPECT_EQ(rows.size(), 100u);
  for (const auto& r : rows) EXPECT_NE(r, "doomed");
}

TEST(Engine, NologgingChangesAreNotCrashSafe) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  ASSERT_TRUE(db.db->set_table_logging("accounts", false).is_ok());
  put_row(*db.db, db.table, "unlogged");
  ASSERT_TRUE(db.db->set_table_logging("accounts", true).is_ok());
  put_row(*db.db, db.table, "logged");
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  auto rows = all_rows(*db2, db2->table_id("accounts").value());
  // The logged row survives; the unlogged one may or may not (it is lost
  // here because no checkpoint flushed it).
  EXPECT_NE(std::find(rows.begin(), rows.end(), "logged"), rows.end());
}

TEST(Engine, CheckpointCountersAdvance) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 64 * 1024;  // switch often
  cfg.checkpoint_timeout = 5 * kSecond;
  SmallDb db(env, cfg);
  for (int i = 0; i < 300; ++i) {
    put_row(*db.db, db.table, std::string(40, 'x'));
    env.sched.run_due();
  }
  EXPECT_GT(db.db->stats().full_checkpoints, 0u);
  EXPECT_GT(db.db->redo().switch_count(), 0u);
  // Idle time lets the log_checkpoint_timeout timer fire.
  env.sched.run_until(env.clock.now() + 30 * kSecond);
  EXPECT_GT(db.db->stats().incremental_checkpoints, 0u);
}

TEST(Engine, ControlFileSurvivesOneCopyLoss) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  put_row(*db.db, db.table, "x");
  ASSERT_TRUE(db.db->shutdown().is_ok());
  // The operator deletes one control file copy; the multiplexed copy saves
  // the day.
  ASSERT_TRUE(env.host.fs().remove(cfg.control_files[0]).is_ok());
  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  EXPECT_TRUE(db2->startup().is_ok());
}

TEST(Engine, AllControlFilesLostIsFatal) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  SmallDb db(env, cfg);
  ASSERT_TRUE(db.db->shutdown().is_ok());
  for (const auto& path : cfg.control_files) {
    (void)env.host.fs().remove(path);
  }
  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  EXPECT_FALSE(db2->startup().is_ok());
}

TEST(Engine, ControlFileDataRoundtrip) {
  ControlFileData data;
  data.db_name = "test";
  data.clean_shutdown = true;
  data.recovery_position = 777;
  data.next_txn_id = 42;
  data.last_archived_seq = 5;
  storage::TablespaceInfo ts;
  ts.id = TablespaceId{0};
  ts.name = "USERS";
  data.tablespaces.push_back(ts);
  storage::DataFileInfo file;
  file.id = FileId{0};
  file.tablespace = TablespaceId{0};
  file.path = "/data/u.dbf";
  file.blocks = 10;
  file.high_water = 4;
  data.datafiles.push_back(file);

  std::vector<std::uint8_t> buf;
  Encoder enc(&buf);
  data.encode(enc);
  Decoder dec(buf);
  auto back = ControlFileData::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().db_name, "test");
  EXPECT_TRUE(back.value().clean_shutdown);
  EXPECT_EQ(back.value().recovery_position, 777u);
  EXPECT_EQ(back.value().next_txn_id, 42u);
  ASSERT_EQ(back.value().datafiles.size(), 1u);
  EXPECT_EQ(back.value().datafiles[0].high_water, 4u);
}

TEST(Engine, CrashRecoveryWithStaleControlFileMetadata) {
  // Regression: the control file is only as fresh as the last checkpoint.
  // If datafiles grew afterwards, recovery-time extends must never truncate
  // the physical file beneath blocks that replay (or its evictions) already
  // rebuilt. A tiny cache + no checkpoints maximizes replay evictions.
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 64 * 1024 * 1024;  // no switches
  cfg.checkpoint_timeout = 0;                   // no incremental checkpoints
  cfg.storage.cache_pages = 32;                 // heavy eviction
  SmallDb db(env, cfg);
  // Grow the table far past the control-file-recorded size.
  std::vector<std::string> expect;
  for (int i = 0; i < 4000; ++i) {
    expect.push_back("grow" + std::to_string(i));
    put_row(*db.db, db.table, expect.back());
  }
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  auto rows = all_rows(*db2, db2->table_id("accounts").value());
  std::sort(rows.begin(), rows.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(rows, expect);
}

/// Crash-recovery property test: random committed/uncommitted work, a crash
/// at a random point, then recovery must reproduce exactly the committed
/// state (tracked in a shadow map).
class CrashRecoveryModelCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrashRecoveryModelCheck, RecoversExactlyCommittedState) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 128 * 1024;  // force switches mid-run
  cfg.checkpoint_timeout = 3 * kSecond;
  SmallDb db(env, cfg);
  Rng rng(GetParam());

  std::map<RowId, std::string> shadow;   // committed state
  std::vector<RowId> live;               // committed row ids

  const int txn_count = static_cast<int>(rng.uniform(20, 120));
  for (int t = 0; t < txn_count; ++t) {
    env.sched.run_due();
    auto txn = db.db->begin();
    ASSERT_TRUE(txn.is_ok());
    std::map<RowId, std::string> local = shadow;
    std::vector<RowId> local_live = live;
    const int ops = static_cast<int>(rng.uniform(1, 15));
    bool aborted = false;
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.5 || local_live.empty()) {
        const std::string value =
            "v" + std::to_string(t) + "_" + std::to_string(op);
        auto rid = db.db->insert(txn.value(), db.table, row(value));
        ASSERT_TRUE(rid.is_ok());
        local[rid.value()] = value;
        local_live.push_back(rid.value());
      } else if (dice < 0.8) {
        const size_t pick = static_cast<size_t>(
            rng.uniform(0, static_cast<std::int64_t>(local_live.size()) - 1));
        const std::string value = "u" + std::to_string(t);
        ASSERT_TRUE(db.db->update(txn.value(), db.table, local_live[pick],
                                  row(value))
                        .is_ok());
        local[local_live[pick]] = value;
      } else {
        const size_t pick = static_cast<size_t>(
            rng.uniform(0, static_cast<std::int64_t>(local_live.size()) - 1));
        ASSERT_TRUE(
            db.db->erase(txn.value(), db.table, local_live[pick]).is_ok());
        local.erase(local_live[pick]);
        local_live.erase(local_live.begin() + static_cast<long>(pick));
      }
    }
    if (rng.chance(0.2)) {
      ASSERT_TRUE(db.db->rollback(txn.value()).is_ok());
      aborted = true;
    } else {
      ASSERT_TRUE(db.db->commit(txn.value()).is_ok());
    }
    if (!aborted) {
      shadow = std::move(local);
      live = std::move(local_live);
    }
  }

  // Crash mid-life with possibly one transaction in flight.
  auto in_flight = db.db->begin();
  ASSERT_TRUE(in_flight.is_ok());
  ASSERT_TRUE(
      db.db->insert(in_flight.value(), db.table, row("in-flight")).is_ok());
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());

  auto db2 = std::make_unique<Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  auto table = db2->table_id("accounts");
  ASSERT_TRUE(table.is_ok());

  std::map<RowId, std::string> recovered;
  ASSERT_TRUE(db2->scan(table.value(),
                        [&](RowId rid, std::span<const std::uint8_t> bytes) {
                          recovered[rid] = row_str(bytes);
                          return true;
                        })
                  .is_ok());
  EXPECT_EQ(recovered, shadow) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryModelCheck,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace vdb::engine
