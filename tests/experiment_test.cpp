// End-to-end dependability-benchmark experiments: the paper's methodology
// executed at test scale, asserting the headline findings hold on our
// implementation:
//  - every injected fault is recovered by the matching procedure,
//  - NO fault causes data-integrity violations (the paper's key claim),
//  - complete recovery loses no committed transactions,
//  - incomplete recovery and failover lose a bounded tail.
#include <gtest/gtest.h>

#include "benchmark/experiment.hpp"

namespace vdb::bench {
namespace {

ExperimentOptions base_options() {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
  opts.duration = 4 * kMinute;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 100;
  opts.scale.items = 1000;
  opts.scale.initial_orders_per_district = 100;
  opts.seed = 4242;
  return opts;
}

faults::FaultSpec fault(faults::FaultType type) {
  faults::FaultSpec spec;
  spec.type = type;
  spec.inject_at = 100 * kSecond;
  spec.tablespace = "TPCC";
  spec.table = "history";
  return spec;
}

TEST(Experiment, BaselineRunsCleanly) {
  ExperimentOptions opts = base_options();
  Experiment exp(opts);
  auto result = exp.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result.value().tpmc, 100.0);
  EXPECT_GT(result.value().committed, 1000u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
  EXPECT_FALSE(result.value().fault_injected);
  EXPECT_FALSE(result.value().series.empty());
}

TEST(Experiment, ArchiveModeCostsLittle) {
  ExperimentOptions plain = base_options();
  ExperimentOptions archived = base_options();
  archived.archive_mode = true;
  auto r1 = Experiment(plain).run();
  auto r2 = Experiment(archived).run();
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  // Paper Figure 5: moderate impact — always less than 15% here.
  EXPECT_GT(r2.value().tpmc, r1.value().tpmc * 0.85);
  EXPECT_LE(r2.value().tpmc, r1.value().tpmc * 1.001);
}

TEST(Experiment, ShutdownAbortRecoversLosslessly) {
  ExperimentOptions opts = base_options();
  opts.fault = fault(faults::FaultType::kShutdownAbort);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_TRUE(result.value().recovery_complete);
  EXPECT_EQ(result.value().lost_committed, 0u);   // paper §5.1
  EXPECT_EQ(result.value().integrity_violations, 0u);
  EXPECT_GT(result.value().recovery_time, 0u);
}

TEST(Experiment, DeleteDatafileRecoversCompletely) {
  ExperimentOptions opts = base_options();
  opts.archive_mode = true;
  opts.fault = fault(faults::FaultType::kDeleteDatafile);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_TRUE(result.value().recovery_complete);
  EXPECT_EQ(result.value().lost_committed, 0u);   // complete recovery
  EXPECT_EQ(result.value().integrity_violations, 0u);
  EXPECT_GT(result.value().archives_read, 0u);
}

TEST(Experiment, SetDatafileOfflineRollsForwardFast) {
  ExperimentOptions opts = base_options();
  opts.archive_mode = true;
  opts.fault = fault(faults::FaultType::kSetDatafileOffline);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_EQ(result.value().lost_committed, 0u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
  EXPECT_LT(result.value().recovery_time, 30 * kSecond);
}

TEST(Experiment, SetTablespaceOfflineRecoversInAboutASecond) {
  ExperimentOptions opts = base_options();
  opts.archive_mode = true;
  opts.fault = fault(faults::FaultType::kSetTablespaceOffline);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_EQ(result.value().lost_committed, 0u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
  // Paper Table 5: "always close to 1 second".
  EXPECT_LT(result.value().recovery_time, 3 * kSecond);
}

TEST(Experiment, DropTableNeedsIncompleteRecovery) {
  ExperimentOptions opts = base_options();
  opts.archive_mode = true;
  opts.fault = fault(faults::FaultType::kDeleteUserObject);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_FALSE(result.value().recovery_complete);
  // Paper §5.2: loss is consistently very small (recovery starts at once).
  EXPECT_LE(result.value().lost_committed, 5u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
  EXPECT_GT(result.value().archives_read, 0u);
}

TEST(Experiment, DropTablespaceNeedsIncompleteRecovery) {
  ExperimentOptions opts = base_options();
  opts.archive_mode = true;
  opts.fault = fault(faults::FaultType::kDeleteTablespace);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_FALSE(result.value().recovery_complete);
  EXPECT_LE(result.value().lost_committed, 5u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
}

TEST(Experiment, StandbyFailoverLosesUnarchivedTail) {
  ExperimentOptions opts = base_options();
  opts.with_standby = true;
  opts.fault = fault(faults::FaultType::kShutdownAbort);
  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_FALSE(result.value().recovery_complete);
  EXPECT_GT(result.value().lost_committed, 0u);  // unarchived tail
  EXPECT_EQ(result.value().integrity_violations, 0u);
}

TEST(Experiment, StandbyLossShrinksWithSmallerRedoFiles) {
  // Paper Figure 7: the exposed window is the current redo group.
  std::uint64_t lost_small = 0, lost_large = 0;
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F1G3T1", 1, 3, 60};
    opts.with_standby = true;
    opts.fault = fault(faults::FaultType::kShutdownAbort);
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    lost_small = result.value().lost_committed;
  }
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
    opts.with_standby = true;
    opts.fault = fault(faults::FaultType::kShutdownAbort);
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    lost_large = result.value().lost_committed;
  }
  EXPECT_LT(lost_small, lost_large);
}

TEST(Experiment, HigherCheckpointRateShortensCrashRecovery) {
  // Paper Figure 4 / Table 5 shutdown-abort rows: more checkpointing →
  // shorter instance recovery.
  SimDuration slow_ckpt_time = 0, fast_ckpt_time = 0;
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F100G3T20", 100, 3, 1200};
    opts.fault = fault(faults::FaultType::kShutdownAbort);
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok());
    slow_ckpt_time = result.value().recovery_time;
  }
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F1G3T1", 1, 3, 60};
    opts.fault = fault(faults::FaultType::kShutdownAbort);
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok());
    fast_ckpt_time = result.value().recovery_time;
  }
  EXPECT_LT(fast_ckpt_time, slow_ckpt_time);
}

TEST(Experiment, SmallRedoFilesCheckpointMore) {
  // Paper Table 3: checkpoint count scales with redo volume / file size.
  std::uint64_t ckpt_small = 0, ckpt_large = 0;
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F1G3T1", 1, 3, 60};
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok());
    ckpt_small = result.value().full_checkpoints;
  }
  {
    ExperimentOptions opts = base_options();
    opts.config = RecoveryConfigSpec{"F100G3T1", 100, 3, 60};
    auto result = Experiment(opts).run();
    ASSERT_TRUE(result.is_ok());
    ckpt_large = result.value().full_checkpoints;
  }
  EXPECT_GT(ckpt_small, 5 * std::max<std::uint64_t>(ckpt_large, 1));
}

}  // namespace
}  // namespace vdb::bench
