// Extended-faultload tests, including the paper's proposed two-fault
// experiments: a latent fault against a recovery mechanism followed by a
// benchmark fault that needs that mechanism.
#include <gtest/gtest.h>

#include "faults/extended_faults.hpp"
#include "faults/fault_injector.hpp"
#include "recovery/recovery_manager.hpp"
#include "tests/test_env.hpp"
#include "wal/redo_log.hpp"

namespace vdb::faults {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::put_row;
using testing::small_db_config;

class ExtendedFaultTest : public ::testing::Test {
 protected:
  SimEnv env_;
  engine::DatabaseConfig cfg_ = small_db_config(/*archive=*/true);
  std::unique_ptr<SmallDb> db_;
  std::unique_ptr<recovery::BackupManager> backups_;
  std::unique_ptr<recovery::RecoveryManager> rm_;
  std::unique_ptr<ExtendedFaultInjector> injector_;

  void SetUp() override {
    cfg_.redo.file_size_bytes = 64 * 1024;  // archive quickly
    db_ = std::make_unique<SmallDb>(env_, cfg_);
    backups_ =
        std::make_unique<recovery::BackupManager>(&env_.host.fs(), "/backup");
    rm_ = std::make_unique<recovery::RecoveryManager>(&env_.host, &env_.sched,
                                                      backups_.get());
    injector_ = std::make_unique<ExtendedFaultInjector>(backups_.get());
  }

  void workload(int rows) {
    for (int i = 0; i < rows; ++i) {
      put_row(*db_->db, db_->table, std::string(50, 'w'));
    }
  }

  ExtendedFaultSpec spec(ExtendedFaultType type) {
    ExtendedFaultSpec s;
    s.type = type;
    s.tablespace = "USERS";
    return s;
  }
};

TEST_F(ExtendedFaultTest, LatentClassification) {
  EXPECT_TRUE(is_latent(ExtendedFaultType::kDeleteArchiveLog));
  EXPECT_TRUE(is_latent(ExtendedFaultType::kDestroyBackups));
  EXPECT_TRUE(is_latent(ExtendedFaultType::kCorruptControlFile));
  EXPECT_FALSE(is_latent(ExtendedFaultType::kTablespaceOutOfSpace));
  EXPECT_FALSE(is_latent(ExtendedFaultType::kKillUserSession));
}

TEST_F(ExtendedFaultTest, CorruptDatafileSurfacesAsChecksumFailure) {
  const RowId rid = put_row(*db_->db, db_->table, "x");
  ASSERT_TRUE(db_->db->checkpoint_now().is_ok());
  db_->db->storage().cache().discard_all();
  ASSERT_TRUE(
      injector_->inject(*db_->db, spec(ExtendedFaultType::kCorruptDatafile))
          .is_ok());
  auto txn = db_->db->begin();
  EXPECT_EQ(db_->db->read(txn.value(), db_->table, rid).code(),
            ErrorCode::kCorruption);
  ASSERT_TRUE(db_->db->rollback(txn.value()).is_ok());
}

TEST_F(ExtendedFaultTest, TablespaceOutOfSpaceBlocksGrowth) {
  ASSERT_TRUE(
      injector_->inject(*db_->db, spec(ExtendedFaultType::kTablespaceOutOfSpace))
          .is_ok());
  // Existing pages fill, then allocation fails with kOutOfSpace.
  Status last = Status::ok();
  for (int i = 0; i < 9000 && last.is_ok(); ++i) {
    auto txn = db_->db->begin();
    auto rid =
        db_->db->insert(txn.value(), db_->table, testing::row("zzzz"));
    if (rid.is_ok()) {
      last = db_->db->commit(txn.value()).status();
    } else {
      last = rid.status();
      ASSERT_TRUE(db_->db->rollback(txn.value()).is_ok());
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kOutOfSpace);
  // Recovery: the DBA raises the quota.
  ASSERT_TRUE(db_->db->alter_tablespace_quota("USERS", 0).is_ok());
  put_row(*db_->db, db_->table, "room again");
}

TEST_F(ExtendedFaultTest, AllRollbackSegmentsOfflineBlocksTxns) {
  const auto segments = db_->db->txns().segments().size();
  for (std::uint32_t i = 0; i < segments; ++i) {
    ExtendedFaultSpec s = spec(ExtendedFaultType::kRollbackSegmentOffline);
    s.rollback_segment = i;
    ASSERT_TRUE(injector_->inject(*db_->db, s).is_ok());
  }
  EXPECT_EQ(db_->db->begin().code(), ErrorCode::kOffline);
  ASSERT_TRUE(db_->db->alter_rollback_segment_online(0).is_ok());
  EXPECT_TRUE(db_->db->begin().is_ok());
}

TEST_F(ExtendedFaultTest, CorruptControlFileSavedByMultiplexing) {
  put_row(*db_->db, db_->table, "x");
  ASSERT_TRUE(db_->db->shutdown().is_ok());
  ASSERT_TRUE(
      injector_->inject(*db_->db, spec(ExtendedFaultType::kCorruptControlFile))
          .is_ok());
  auto db2 = std::make_unique<engine::Database>(&env_.host, &env_.sched, cfg_);
  EXPECT_TRUE(db2->startup().is_ok());  // second copy saves the mount
}

// --- the paper's two-fault experiments (§4 rationale) ---------------------

TEST_F(ExtendedFaultTest, TwoFault_DeleteArchiveThenDeleteDatafile) {
  ASSERT_TRUE(backups_->take_backup(*db_->db).is_ok());
  workload(600);  // produce several archived logs
  ASSERT_GT(env_.host.fs().list("/arch/arch_").size(), 2u);

  // First (latent) fault: an archived log disappears. Nothing visible.
  ASSERT_TRUE(
      injector_->inject(*db_->db, spec(ExtendedFaultType::kDeleteArchiveLog))
          .is_ok());
  put_row(*db_->db, db_->table, "still fine");

  // Second fault: delete a datafile. Media recovery now finds a hole in
  // the redo chain and fails — the latent fault becomes visible.
  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db_->db->storage().cache().discard_all();
  db_->db->storage().mark_missing(FileId{0});
  EXPECT_EQ(rm_->recover_datafile(*db_->db, FileId{0}).code(),
            ErrorCode::kUnrecoverable);
}

TEST_F(ExtendedFaultTest, TwoFault_DestroyBackupsThenDeleteDatafile) {
  ASSERT_TRUE(backups_->take_backup(*db_->db).is_ok());
  workload(100);
  ASSERT_TRUE(
      injector_->inject(*db_->db, spec(ExtendedFaultType::kDestroyBackups))
          .is_ok());
  put_row(*db_->db, db_->table, "still fine");

  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db_->db->storage().cache().discard_all();
  db_->db->storage().mark_missing(FileId{0});
  EXPECT_EQ(rm_->recover_datafile(*db_->db, FileId{0}).code(),
            ErrorCode::kUnrecoverable);
}

TEST_F(ExtendedFaultTest, TwoFault_ArchiveIntactRecovers) {
  // Control arm: without the latent fault, the same second fault recovers.
  ASSERT_TRUE(backups_->take_backup(*db_->db).is_ok());
  workload(600);
  ASSERT_TRUE(env_.host.fs().remove("/data/users01.dbf").is_ok());
  db_->db->storage().cache().discard_all();
  db_->db->storage().mark_missing(FileId{0});
  EXPECT_TRUE(rm_->recover_datafile(*db_->db, FileId{0}).is_ok());
}

}  // namespace
}  // namespace vdb::faults

namespace vdb::wal {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::put_row;
using testing::small_db_config;

TEST(RedoMultiplexing, SurvivesLossOfOneMember) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.members_per_group = 2;
  cfg.redo.member_dirs = {"/redo", "/arch"};  // second member elsewhere
  SmallDb db(env, cfg);
  for (int i = 0; i < 50; ++i) put_row(*db.db, db.table, "m");

  // Operator fault: delete member 0 of the current group.
  const std::uint32_t current = db.db->redo().current_group();
  ASSERT_TRUE(
      env.host.fs().remove(db.db->redo().member_path(current, 0)).is_ok());

  // Writes continue against the surviving member...
  for (int i = 0; i < 50; ++i) put_row(*db.db, db.table, "n");

  // ...and crash recovery reads from it.
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());
  auto db2 = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db2->startup().is_ok());
  EXPECT_EQ(testing::all_rows(*db2, db2->table_id("accounts").value()).size(),
            100u);
}

TEST(RedoMultiplexing, SingleMemberLossIsFatalForRecovery) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();  // one member per group
  SmallDb db(env, cfg);
  for (int i = 0; i < 50; ++i) put_row(*db.db, db.table, "m");
  const std::uint32_t current = db.db->redo().current_group();
  ASSERT_TRUE(db.db->shutdown_abort().is_ok());
  ASSERT_TRUE(
      env.host.fs().remove(db.db->redo().member_path(current, 0)).is_ok());
  auto db2 = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  EXPECT_FALSE(db2->startup().is_ok());  // redo needed for crash recovery
}

TEST(RedoMultiplexing, LostMemberRecreatedOnReuse) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 32 * 1024;
  cfg.redo.members_per_group = 2;
  SmallDb db(env, cfg);
  const std::string member1 = db.db->redo().member_path(0, 1);
  ASSERT_TRUE(env.host.fs().remove(member1).is_ok());
  // Enough redo to cycle every group at least once.
  for (int i = 0; i < 800; ++i) put_row(*db.db, db.table, std::string(50, 'x'));
  EXPECT_TRUE(env.host.fs().exists(member1));  // redundancy restored
}

}  // namespace
}  // namespace vdb::wal
