#include <gtest/gtest.h>

#include "faults/classification.hpp"
#include "faults/fault_injector.hpp"
#include "tests/test_env.hpp"

namespace vdb::faults {
namespace {

using testing::SimEnv;
using testing::SmallDb;
using testing::put_row;

TEST(Classification, FiveClassesAsInPaper) {
  EXPECT_EQ(fault_classes().size(), 5u);  // paper Table 1
}

TEST(Classification, TypeTableMatchesPaper) {
  // Table 2 lists 31 concrete types across the five classes.
  EXPECT_EQ(fault_types().size(), 31u);
  // Exactly six are selected into the benchmark faultload (§4).
  size_t injected = 0;
  for (const auto& type : fault_types()) {
    if (type.injected_in_benchmark) injected += 1;
  }
  EXPECT_EQ(injected, kFaultTypeCount);
}

TEST(Classification, PortabilityMixMatchesPaper) {
  size_t oracle_specific = 0, portable = 0;
  for (const auto& type : fault_types()) {
    if (type.portability == Portability::kOracleSpecific) {
      oracle_specific += 1;
    } else {
      portable += 1;
    }
  }
  // "Most of the faults are expected to be found in other DBMS."
  EXPECT_GT(portable, oracle_specific * 2);
}

TEST(RecoveryKinds, MappingMatchesPaper) {
  // Complete-recovery faults (Table 5).
  EXPECT_EQ(recovery_kind(FaultType::kShutdownAbort),
            RecoveryKind::kInstanceRestart);
  EXPECT_EQ(recovery_kind(FaultType::kDeleteDatafile),
            RecoveryKind::kMediaRecovery);
  EXPECT_EQ(recovery_kind(FaultType::kSetDatafileOffline),
            RecoveryKind::kDatafileRollForward);
  EXPECT_EQ(recovery_kind(FaultType::kSetTablespaceOffline),
            RecoveryKind::kTablespaceOnline);
  // Incomplete-recovery faults (Table 4).
  EXPECT_TRUE(incomplete_recovery(FaultType::kDeleteTablespace));
  EXPECT_TRUE(incomplete_recovery(FaultType::kDeleteUserObject));
  EXPECT_FALSE(incomplete_recovery(FaultType::kShutdownAbort));
  EXPECT_FALSE(incomplete_recovery(FaultType::kDeleteDatafile));
}

class InjectorTest : public ::testing::Test {
 protected:
  SimEnv env_;
  std::unique_ptr<SmallDb> db_;
  FaultInjector injector_;

  void SetUp() override {
    db_ = std::make_unique<SmallDb>(env_);
    put_row(*db_->db, db_->table, "data");
  }

  FaultSpec spec(FaultType type) {
    FaultSpec s;
    s.type = type;
    s.tablespace = "USERS";
    s.table = "accounts";
    s.datafile_index = 0;
    return s;
  }
};

TEST_F(InjectorTest, ShutdownAbortKillsInstance) {
  ASSERT_TRUE(injector_.inject(*db_->db, spec(FaultType::kShutdownAbort))
                  .is_ok());
  EXPECT_EQ(db_->db->state(), engine::InstanceState::kCrashed);
  EXPECT_EQ(injector_.injected_count(), 1u);
}

TEST_F(InjectorTest, DeleteDatafileRemovesTheFile) {
  ASSERT_TRUE(env_.host.fs().exists("/data/users01.dbf"));
  ASSERT_TRUE(injector_.inject(*db_->db, spec(FaultType::kDeleteDatafile))
                  .is_ok());
  EXPECT_FALSE(env_.host.fs().exists("/data/users01.dbf"));
  // The instance is still up — damage surfaces later (latent fault).
  EXPECT_TRUE(db_->db->is_open());
}

TEST_F(InjectorTest, DeleteTablespaceDropsObjects) {
  ASSERT_TRUE(injector_.inject(*db_->db, spec(FaultType::kDeleteTablespace))
                  .is_ok());
  EXPECT_EQ(db_->db->table_id("accounts").code(), ErrorCode::kNotFound);
  EXPECT_FALSE(env_.host.fs().exists("/data/users01.dbf"));
}

TEST_F(InjectorTest, SetDatafileOfflineBlocksAccess) {
  ASSERT_TRUE(
      injector_.inject(*db_->db, spec(FaultType::kSetDatafileOffline))
          .is_ok());
  auto txn = db_->db->begin();
  ASSERT_TRUE(txn.is_ok());
  EXPECT_FALSE(
      db_->db->insert(txn.value(), db_->table, testing::row("x")).is_ok());
  ASSERT_TRUE(db_->db->rollback(txn.value()).is_ok());
}

TEST_F(InjectorTest, SetTablespaceOfflineBlocksAccess) {
  ASSERT_TRUE(
      injector_.inject(*db_->db, spec(FaultType::kSetTablespaceOffline))
          .is_ok());
  auto txn = db_->db->begin();
  EXPECT_FALSE(
      db_->db->insert(txn.value(), db_->table, testing::row("x")).is_ok());
  ASSERT_TRUE(db_->db->rollback(txn.value()).is_ok());
  // Recovery is one ALTER ... ONLINE.
  ASSERT_TRUE(db_->db->alter_tablespace_online("USERS").is_ok());
  put_row(*db_->db, db_->table, "works-again");
}

TEST_F(InjectorTest, DeleteUserObjectDropsTable) {
  ASSERT_TRUE(injector_.inject(*db_->db, spec(FaultType::kDeleteUserObject))
                  .is_ok());
  EXPECT_EQ(db_->db->table_id("accounts").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(db_->db->is_open());  // instance survives
}

TEST_F(InjectorTest, TargetDatafileResolves) {
  auto fid = FaultInjector::target_datafile(*db_->db,
                                            spec(FaultType::kDeleteDatafile));
  ASSERT_TRUE(fid.is_ok());
  EXPECT_EQ(fid.value(), FileId{0});
  FaultSpec bad = spec(FaultType::kDeleteDatafile);
  bad.datafile_index = 99;
  EXPECT_FALSE(FaultInjector::target_datafile(*db_->db, bad).is_ok());
}

TEST_F(InjectorTest, UnknownTargetsFail) {
  FaultSpec s = spec(FaultType::kDeleteTablespace);
  s.tablespace = "NOPE";
  EXPECT_FALSE(injector_.inject(*db_->db, s).is_ok());
  FaultSpec t = spec(FaultType::kDeleteUserObject);
  t.table = "ghost";
  EXPECT_FALSE(injector_.inject(*db_->db, t).is_ok());
}

}  // namespace
}  // namespace vdb::faults
