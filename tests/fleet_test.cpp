#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "engine/admin_shell.hpp"
#include "faults/classification.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_admin.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_experiment.hpp"
#include "fleet/fleet_txns.hpp"
#include "fleet/orchestrator.hpp"

namespace vdb::fleet {
namespace {

FleetConfig small_cfg(std::uint32_t shards = 2) {
  FleetConfig cfg;
  cfg.shards = shards;
  // Spec district count (the loader seeds W_YTD assuming it); everything
  // else shrunk for test speed.
  cfg.scale.warehouses = 4;
  cfg.scale.customers_per_district = 30;
  cfg.scale.items = 200;
  cfg.scale.initial_orders_per_district = 30;
  return cfg;
}

/// Drives the closed loop until the armed crash fires (bounded so a
/// never-firing hook fails the test instead of hanging it).
Status drive_until_crash(FleetDriver* driver, Fleet* fleet) {
  return driver->run_until(fleet->clock().now() + 120 * kMinute);
}

/// The one distributed transaction the crash caught in flight.
GlobalTxn* unfinished_gtxn(Fleet* fleet) {
  GlobalTxn* found = nullptr;
  for (auto& [id, g] : fleet->registry().txns()) {
    if (!g.finished) {
      EXPECT_EQ(found, nullptr) << "more than one unfinished gtxn";
      found = &g;
    }
  }
  return found;
}

TEST(FleetTest, PartitionCoversEveryWarehouseOnce) {
  Fleet fleet(small_cfg(2));
  ASSERT_TRUE(fleet.setup().is_ok());
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < fleet.size(); ++i) {
    EXPECT_FALSE(fleet.shard(i).warehouses.empty());
    for (const std::uint32_t w : fleet.shard(i).warehouses) {
      EXPECT_EQ(fleet.shard_of(w), i);
      total += 1;
    }
  }
  EXPECT_EQ(total, fleet.scale().warehouses);
}

TEST(FleetTest, FaultFreeRunCommitsCrossShardWork) {
  FleetExperimentOptions opts;
  opts.shards = 2;
  opts.duration = 2 * kMinute;
  opts.fleet = small_cfg();
  auto result = FleetExperiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  const FleetExperimentResult& r = result.value();
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.cross_shard_started, 0u);
  EXPECT_GT(r.cross_shard_committed, 0u);
  EXPECT_EQ(r.atomicity_violations, 0u);
  EXPECT_EQ(r.promotions, 0u);
  EXPECT_GT(r.integrity_checks, 0u);
  EXPECT_EQ(r.integrity_violations, 0u)
      << (r.integrity_messages.empty() ? "" : r.integrity_messages.front());
  EXPECT_FALSE(r.history_check_skipped);
}

TEST(FleetTest, CoordinatorCrashAfterDecisionCommitsEverywhere) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  obs::Observability obs;
  FleetDriver driver(&fleet, &obs, FleetDriverConfig{});
  FailoverOrchestrator orch(&fleet, OrchestratorConfig{}, &obs);

  std::optional<std::uint32_t> victim;
  driver.txns().arm_crash(CrashPoint::kAfterDecision, [&](std::uint32_t s) {
    victim = s;
    (void)fleet.kill_shard(s);
  });
  Status st = drive_until_crash(&driver, &fleet);
  ASSERT_FALSE(st.is_ok());
  ASSERT_TRUE(victim.has_value());

  GlobalTxn* g = unfinished_gtxn(&fleet);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->coord, *victim);
  EXPECT_TRUE(g->decided);
  EXPECT_TRUE(g->decision);
  for (const BranchRecord& b : g->branches) EXPECT_EQ(b.outcome, '?');

  // Operator restarts the dead coordinator in place: instance recovery
  // reconstructs the prepared branch and the durable COMMIT decision.
  ASSERT_TRUE(fleet.restart_shard(*victim).is_ok());
  ASSERT_TRUE(fleet.healthy());
  orch.resolve_in_doubt();

  EXPECT_TRUE(g->finished);
  for (const BranchRecord& b : g->branches) {
    EXPECT_EQ(b.outcome, 'C') << "branch on shard " << b.shard;
  }
  EXPECT_EQ(fleet.registry().atomicity_violations(), 0u);
  EXPECT_GE(orch.in_doubt_resolved(), 2u);
}

TEST(FleetTest, CoordinatorCrashBeforePrepareAbortsEverywhere) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  obs::Observability obs;
  FleetDriver driver(&fleet, &obs, FleetDriverConfig{});

  std::optional<std::uint32_t> victim;
  driver.txns().arm_crash(CrashPoint::kBeforePrepare, [&](std::uint32_t s) {
    victim = s;
    (void)fleet.kill_shard(s);
  });
  Status st = drive_until_crash(&driver, &fleet);
  ASSERT_FALSE(st.is_ok());
  ASSERT_TRUE(victim.has_value());

  // Nothing was prepared, so the interaction settled as a plain abort on
  // the spot: no branch is in doubt anywhere.
  ASSERT_FALSE(fleet.registry().txns().empty());
  const GlobalTxn& g = fleet.registry().txns().rbegin()->second;
  EXPECT_TRUE(g.finished);
  for (const BranchRecord& b : g.branches) EXPECT_EQ(b.outcome, 'A');

  ASSERT_TRUE(fleet.restart_shard(*victim).is_ok());
  EXPECT_TRUE(fleet.healthy());
  EXPECT_TRUE(fleet.shard(*victim).db->in_doubt_branches().empty());
  EXPECT_EQ(fleet.registry().atomicity_violations(), 0u);
}

TEST(FleetTest, ParticipantCrashMidPrepareAbortsEverywhere) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  obs::Observability obs;
  FleetDriver driver(&fleet, &obs, FleetDriverConfig{});

  std::optional<std::uint32_t> victim;
  driver.txns().arm_crash(CrashPoint::kMidPrepare, [&](std::uint32_t s) {
    victim = s;
    (void)fleet.kill_shard(s);
  });
  Status st = drive_until_crash(&driver, &fleet);
  ASSERT_FALSE(st.is_ok());
  ASSERT_TRUE(victim.has_value());

  // The participant died before its PREPARE: the coordinator decided
  // abort, and the dead shard's branch is a plain loser that instance
  // recovery rolls back without coordination.
  ASSERT_FALSE(fleet.registry().txns().empty());
  const GlobalTxn& g = fleet.registry().txns().rbegin()->second;
  EXPECT_NE(g.coord, *victim);
  EXPECT_TRUE(g.finished);
  EXPECT_FALSE(g.decided);
  for (const BranchRecord& b : g.branches) EXPECT_EQ(b.outcome, 'A');

  ASSERT_TRUE(fleet.restart_shard(*victim).is_ok());
  EXPECT_TRUE(fleet.healthy());
  EXPECT_TRUE(fleet.shard(*victim).db->in_doubt_branches().empty());
  EXPECT_EQ(fleet.registry().atomicity_violations(), 0u);
}

TEST(FleetTest, UndecidedCoordinatorCrashPresumesAbortOnPromotion) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  obs::Observability obs;
  FleetDriver driver(&fleet, &obs, FleetDriverConfig{});
  FailoverOrchestrator orch(&fleet, OrchestratorConfig{}, &obs);

  std::optional<std::uint32_t> victim;
  driver.txns().arm_crash(CrashPoint::kAfterPrepares, [&](std::uint32_t s) {
    victim = s;
    (void)fleet.kill_shard(s);
  });
  Status st = drive_until_crash(&driver, &fleet);
  ASSERT_FALSE(st.is_ok());
  ASSERT_TRUE(victim.has_value());

  GlobalTxn* g = unfinished_gtxn(&fleet);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->coord, *victim);
  EXPECT_FALSE(g->decided);

  // Failover replaces the coordinator with its standby, whose redo can
  // never contain a decision record — the presumption takes over and
  // every surviving branch must abort identically.
  ASSERT_TRUE(orch.force_failover(*victim).is_ok());
  ASSERT_TRUE(fleet.healthy());
  EXPECT_EQ(orch.promotions(), 1u);

  EXPECT_TRUE(g->finished);
  for (const BranchRecord& b : g->branches) {
    EXPECT_NE(b.outcome, 'C') << "branch on shard " << b.shard;
    if (b.shard != *victim) EXPECT_EQ(b.outcome, 'A');
  }
  EXPECT_EQ(fleet.registry().atomicity_violations(), 0u);
}

TEST(FleetTest, AdminShellShowsAndFailsOverTheFleet) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  obs::Observability obs;
  FleetDriver driver(&fleet, &obs, FleetDriverConfig{});
  FailoverOrchestrator orch(&fleet, OrchestratorConfig{}, &obs);

  // The operator's console is a shard instance's shell with the fleet
  // hooks bound on top.
  engine::AdminShell shell(&fleet.active_db(0));
  shell.bind_fleet(make_admin_hooks(&fleet, &orch, &obs));

  ASSERT_TRUE(driver.run_until(fleet.clock().now() + 1 * kMinute).is_ok());

  auto show = shell.execute("SHOW FLEET");
  ASSERT_TRUE(show.is_ok()) << show.status().message();
  EXPECT_NE(show.value().find("fleet: 2 shards"), std::string::npos);
  EXPECT_NE(show.value().find("role=primary"), std::string::npos);
  EXPECT_NE(show.value().find("atomicity_violations=0"), std::string::npos);

  // Operator-initiated switchover of shard 1 onto its standby.
  auto failover = shell.execute("ALTER FLEET FAILOVER 1");
  ASSERT_TRUE(failover.is_ok()) << failover.status().message();
  EXPECT_TRUE(fleet.healthy());
  EXPECT_EQ(orch.promotions(), 1u);
  EXPECT_TRUE(fleet.shard(1).promoted);

  show = shell.execute("SHOW FLEET");
  ASSERT_TRUE(show.is_ok());
  EXPECT_NE(show.value().find("role=promoted-standby"), std::string::npos);

  // The failover procedure is traced on the fleet statistics area and
  // surfaces through the shard shell's V$RECOVERY_PROGRESS.
  auto progress = shell.execute("V$RECOVERY_PROGRESS");
  ASSERT_TRUE(progress.is_ok());
  EXPECT_NE(progress.value().find("fleet failover shard 1"),
            std::string::npos);
  EXPECT_NE(progress.value().find("promote"), std::string::npos);
  EXPECT_NE(progress.value().find("reroute"), std::string::npos);

  EXPECT_FALSE(shell.execute("ALTER FLEET FAILOVER 9").is_ok());
}

TEST(FleetTest, AdminShellFleetCommandsRequireABinding) {
  Fleet fleet(small_cfg());
  ASSERT_TRUE(fleet.setup().is_ok());
  engine::AdminShell shell(&fleet.active_db(0));
  auto show = shell.execute("SHOW FLEET");
  ASSERT_FALSE(show.is_ok());
  EXPECT_EQ(show.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(shell.execute("ALTER FLEET FAILOVER 0").is_ok());
}

FleetExperimentResult run_with_jobs(const char* jobs) {
  setenv("VDB_JOBS", jobs, 1);
  FleetExperimentOptions opts;
  opts.shards = 2;
  opts.scenario = faults::FleetScenario::kSingleShardCrash;
  opts.duration = 4 * kMinute;
  opts.inject_at = 1 * kMinute;
  opts.fleet = small_cfg();
  auto result = FleetExperiment(opts).run();
  unsetenv("VDB_JOBS");
  EXPECT_TRUE(result.is_ok());
  return result.is_ok() ? result.value() : FleetExperimentResult{};
}

TEST(FleetTest, ExperimentDeterministicAcrossReplayJobCounts) {
  const FleetExperimentResult serial = run_with_jobs("1");
  const FleetExperimentResult parallel = run_with_jobs("4");
  EXPECT_EQ(serial.committed, parallel.committed);
  EXPECT_EQ(serial.cross_shard_committed, parallel.cross_shard_committed);
  EXPECT_EQ(serial.cross_shard_started, parallel.cross_shard_started);
  EXPECT_EQ(serial.promotions, parallel.promotions);
  EXPECT_EQ(serial.in_doubt_resolved, parallel.in_doubt_resolved);
  EXPECT_EQ(serial.atomicity_violations, parallel.atomicity_violations);
  EXPECT_EQ(serial.lost_committed, parallel.lost_committed);
  EXPECT_EQ(serial.lost_per_shard, parallel.lost_per_shard);
  EXPECT_EQ(serial.recovery_time, parallel.recovery_time);
  EXPECT_EQ(serial.detection_delay, parallel.detection_delay);
  EXPECT_DOUBLE_EQ(serial.tpmc, parallel.tpmc);
  EXPECT_EQ(serial.series, parallel.series);
  EXPECT_EQ(serial.atomicity_violations, 0u);
}

}  // namespace
}  // namespace vdb::fleet
