// End-to-end two-fault experiments through the Experiment harness (the
// extension campaign), plus driver response-time reporting.
#include <gtest/gtest.h>

#include "benchmark/experiment.hpp"
#include "tests/test_env.hpp"
#include "tpcc/tpcc_db.hpp"
#include "tpcc/tpcc_driver.hpp"
#include "tpcc/tpcc_loader.hpp"

namespace vdb::bench {
namespace {

ExperimentOptions two_fault_options() {
  ExperimentOptions opts;
  opts.config = RecoveryConfigSpec{"F10G3T1", 10, 3, 60};
  opts.archive_mode = true;
  opts.duration = 4 * kMinute;
  opts.scale.warehouses = 1;
  opts.scale.customers_per_district = 100;
  opts.scale.items = 1000;
  opts.scale.initial_orders_per_district = 100;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::kDeleteDatafile;
  fault.inject_at = 150 * kSecond;
  opts.fault = fault;
  return opts;
}

TEST(LatentExperiment, ControlArmRecoversCompletely) {
  auto result = Experiment(two_fault_options()).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_TRUE(result.value().recovery_complete);
  EXPECT_EQ(result.value().lost_committed, 0u);
  EXPECT_EQ(result.value().integrity_violations, 0u);
}

TEST(LatentExperiment, DeletedArchiveDegradesToRestore) {
  ExperimentOptions opts = two_fault_options();
  faults::ExtendedFaultSpec latent;
  latent.type = faults::ExtendedFaultType::kDeleteArchiveLog;
  opts.latent_fault = latent;
  opts.latent_inject_at = 60 * kSecond;

  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_FALSE(result.value().recovery_complete);
  // Restore-to-backup: everything committed since the backup is gone.
  EXPECT_GT(result.value().lost_committed, 100u);
  // ...but whatever was recovered is intact.
  EXPECT_EQ(result.value().integrity_violations, 0u);
}

TEST(LatentExperiment, MissingBackupsAreUnrecoverable) {
  ExperimentOptions opts = two_fault_options();
  faults::ExtendedFaultSpec latent;
  latent.type = faults::ExtendedFaultType::kDestroyBackups;
  opts.latent_fault = latent;

  auto result = Experiment(opts).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_FALSE(result.value().recovered);
  EXPECT_FALSE(result.value().recovery_complete);
  EXPECT_GT(result.value().lost_committed, 100u);
}

}  // namespace
}  // namespace vdb::bench

namespace vdb::tpcc {
namespace {

using ::vdb::testing::SimEnv;
using ::vdb::testing::small_db_config;

TEST(DriverResponseTimes, PercentilesAreOrderedAndPositive) {
  SimEnv env;
  engine::DatabaseConfig cfg = small_db_config();
  cfg.redo.file_size_bytes = 4 * 1024 * 1024;
  cfg.storage.cache_pages = 1024;
  auto db = std::make_unique<engine::Database>(&env.host, &env.sched, cfg);
  ASSERT_TRUE(db->create().is_ok());
  ASSERT_TRUE(db->create_tablespace("TPCC", {{"/data/t1.dbf", 256},
                                             {"/data/t2.dbf", 256}})
                  .is_ok());
  auto user = db->create_user("TPCC", false);
  TpccScale scale;
  scale.warehouses = 1;
  scale.customers_per_district = 50;
  scale.items = 300;
  scale.initial_orders_per_district = 50;
  TpccDb tdb(scale);
  ASSERT_TRUE(tdb.create_schema(*db, "TPCC", user.value()).is_ok());
  ASSERT_TRUE(tdb.attach(db.get()).is_ok());
  Loader loader(&tdb, 5);
  ASSERT_TRUE(loader.load().is_ok());

  Driver driver(&tdb, &env.sched, DriverConfig{7});
  ASSERT_TRUE(driver.run_until(env.clock.now() + 60 * kSecond).is_ok());

  for (TxnType type : {TxnType::kNewOrder, TxnType::kPayment}) {
    const SimDuration p50 = driver.response_percentile(type, 0.5);
    const SimDuration p90 = driver.response_percentile(type, 0.9);
    EXPECT_GT(p50, 0u);
    EXPECT_GE(p90, p50);
    EXPECT_GT(driver.mean_response(type), 0u);
  }
  // New-Order does more work than Payment: its responses are longer.
  EXPECT_GT(driver.mean_response(TxnType::kNewOrder),
            driver.mean_response(TxnType::kPayment));
  // No samples → zero.
  Driver empty(&tdb, &env.sched, DriverConfig{8});
  EXPECT_EQ(empty.response_percentile(TxnType::kDelivery, 0.9), 0u);
}

}  // namespace
}  // namespace vdb::tpcc
